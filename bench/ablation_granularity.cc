/**
 * @file
 * Granularity ablation: the *simulation* counterpart of Figure 10.
 * For fixed Q and B, sweep the CFDS granularity b and measure on the
 * cycle-level simulator what the analytical model predicts: SRAM
 * footprints shrink with b while the reordering machinery (RR
 * occupancy, skips, pipeline delay) grows -- the trade-off that
 * creates the interior optimum.
 */

#include <cstdio>

#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "bench_common.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

int
main(int argc, char **argv)
{
    const auto slots = bench::scaledSlots(
        80000, bench::smokeMode(argc, argv));
    const unsigned queues = 16, B = 16, banks = 128;
    std::printf("Granularity ablation (simulated): Q=%u, B=%u,"
                " M=%u, worst-case round-robin, %lu slots.\n\n",
                queues, B, banks,
                static_cast<unsigned long>(slots));
    std::printf("%4s %10s %10s %10s %10s %10s %10s\n", "b",
                "pipeline", "hSRAM hw", "tSRAM hw", "RR hw",
                "skips", "grants");
    for (unsigned b : {16u, 8u, 4u, 2u, 1u}) {
        BufferConfig cfg;
        cfg.params = model::BufferParams{
            queues, B, b, b == B ? 1u : banks};
        cfg.measureOnly = true;
        HybridBuffer buf(cfg);
        RoundRobinWorstCase wl(queues, 7, 1.0, 64);
        SimRunner runner(buf, wl);
        const auto r = runner.run(slots);
        const auto rep = buf.report();
        std::printf("%4u %10lu %10ld %10ld %10ld %10ld %10lu\n", b,
                    static_cast<unsigned long>(buf.pipelineDepth()),
                    rep.headSramHighWater, rep.tailSramHighWater,
                    rep.rrHighWater, rep.rrMaxSkips,
                    static_cast<unsigned long>(r.grants));
    }
    std::printf("\nShape check (paper Fig. 10): SRAM high waters fall"
                " as b shrinks while the\nreordering state (RR"
                " occupancy, skips) and the b=1 pipeline grow --"
                " hence an\ninterior optimum when both are converted"
                " to area/delay by the technology model.\n");
    return 0;
}
