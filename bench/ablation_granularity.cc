/**
 * @file
 * Granularity ablation: the *simulation* counterpart of Figure 10.
 * For fixed Q and B, sweep the CFDS granularity b and measure on the
 * cycle-level simulator what the analytical model predicts: SRAM
 * footprints shrink with b while the reordering machinery (RR
 * occupancy, skips, pipeline delay) grows -- the trade-off that
 * creates the interior optimum.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

sweep::TaskResult
runPoint(unsigned b, std::uint64_t slots)
{
    const unsigned queues = 16, B = 16, banks = 128;
    BufferConfig cfg;
    cfg.params =
        model::BufferParams{queues, B, b, b == B ? 1u : banks};
    cfg.measureOnly = true;
    HybridBuffer buf(cfg);
    RoundRobinWorstCase wl(queues, 7, 1.0, 64);
    SimRunner runner(buf, wl);
    const auto r = runner.run(slots);
    const auto rep = buf.report();

    sweep::TaskResult res;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%4u %10lu %10ld %10ld %10ld %10ld %10lu\n", b,
                  static_cast<unsigned long>(buf.pipelineDepth()),
                  rep.headSramHighWater, rep.tailSramHighWater,
                  rep.rrHighWater, rep.rrMaxSkips,
                  static_cast<unsigned long>(r.grants));
    res.text = line;
    sweep::Record rec;
    rec.set("b", b)
        .set("queues", queues)
        .set("B", B)
        .set("banks", b == B ? 1u : banks)
        .set("slots", slots)
        .set("pipeline", buf.pipelineDepth())
        .set("head_sram_hw", rep.headSramHighWater)
        .set("tail_sram_hw", rep.tailSramHighWater)
        .set("rr_hw", rep.rrHighWater)
        .set("rr_max_skips", rep.rrMaxSkips)
        .set("grants", r.grants);
    res.records.push_back(std::move(rec));
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);
    const auto slots = pktbuf::bench::scaledSlots(80000, opt.smoke);
    std::printf("Granularity ablation (simulated): Q=16, B=16,"
                " M=128, worst-case round-robin, %lu slots.\n\n",
                static_cast<unsigned long>(slots));
    std::printf("%4s %10s %10s %10s %10s %10s %10s\n", "b",
                "pipeline", "hSRAM hw", "tSRAM hw", "RR hw", "skips",
                "grants");
    std::vector<sweep::Task> tasks;
    for (unsigned b : {16u, 8u, 4u, 2u, 1u}) {
        tasks.push_back(sweep::Task{
            "b" + std::to_string(b),
            [b, slots](const sweep::SweepContext &) {
                return runPoint(b, slots);
            },
        });
    }
    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);
    std::printf("\nShape check (paper Fig. 10): SRAM high waters fall"
                " as b shrinks while the\nreordering state (RR"
                " occupancy, skips) and the b=1 pipeline grow --"
                " hence an\ninterior optimum when both are converted"
                " to area/delay by the technology model.\n");
    return pktbuf::bench::finish("ablation_granularity", rep, tasks,
                                 opt);
}
