/**
 * @file
 * MMA ablation (Section 3 / [13]): how much head SRAM do ECQF (full
 * lookahead) and MDQF (no lookahead) actually need?  Measured SRAM
 * high-water marks under the adversarial round-robin and saturated
 * uniform traffic, against the analytical sizes Q(b-1) and
 * Q(b-1)(2 + ln Q).
 *
 * The point of ECQF -- and the reason the paper's CFDS keeps it --
 * is that lookahead shrinks the SRAM by the (2 + ln Q) factor.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

std::int64_t
measure(MmaKind mma, unsigned queues, unsigned gran,
        std::uint64_t slots)
{
    std::int64_t worst = 0;
    for (int pat = 0; pat < 2; ++pat) {
        BufferConfig cfg;
        cfg.params = model::BufferParams{queues, gran, gran, 1};
        cfg.mma = mma;
        cfg.measureOnly = true;
        HybridBuffer buf(cfg);
        std::unique_ptr<Workload> wl;
        if (pat == 0)
            wl = std::make_unique<RoundRobinWorstCase>(queues, 3, 1.0,
                                                       64);
        else
            wl = std::make_unique<UniformRandom>(queues, 3, 1.0);
        SimRunner runner(buf, *wl);
        runner.run(slots);
        worst = std::max(worst, buf.report().headSramHighWater);
    }
    return worst;
}

sweep::TaskResult
runPoint(unsigned q, std::uint64_t slots)
{
    const unsigned b = 8;
    const auto e = measure(MmaKind::Ecqf, q, b, slots);
    const auto m = measure(MmaKind::Mdqf, q, b, slots);
    const double bound =
        static_cast<double>(model::mdqfSramCells(q, b)) /
        model::ecqfSramCells(q, b);
    sweep::TaskResult res;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%4u %4u | %10ld %12lu | %10ld %12lu | %7.2fx\n", q,
                  b, e,
                  static_cast<unsigned long>(model::ecqfSramCells(q, b)),
                  m,
                  static_cast<unsigned long>(model::mdqfSramCells(q, b)),
                  bound);
    res.text = line;
    sweep::Record rec;
    rec.set("queues", q)
        .set("b", b)
        .set("slots", slots)
        .set("ecqf_measured", e)
        .set("ecqf_bound", model::ecqfSramCells(q, b))
        .set("mdqf_measured", m)
        .set("mdqf_bound", model::mdqfSramCells(q, b))
        .set("provisioning_factor", bound);
    res.records.push_back(std::move(rec));
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);
    const auto slots = pktbuf::bench::scaledSlots(60000, opt.smoke);
    std::printf("MMA ablation: measured head-SRAM high water (cells)"
                " under adversarial traffic,\nagainst the SRAM each"
                " algorithm must PROVISION for zero loss on any"
                " pattern.\n\n");
    std::printf("%4s %4s | %10s %12s | %10s %12s | %8s\n", "Q", "b",
                "ECQF meas", "Q(b-1)", "MDQF meas", "Q(b-1)(2+lnQ)",
                "bound");
    std::vector<sweep::Task> tasks;
    for (unsigned q : {4u, 8u, 16u, 32u}) {
        tasks.push_back(sweep::Task{
            "q" + std::to_string(q),
            [q, slots](const sweep::SweepContext &) {
                return runPoint(q, slots);
            },
        });
    }
    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);
    std::printf("\nThe 'bound' column is what matters for silicon:"
                " MDQF must provision (2 + ln Q)x\nmore SRAM to"
                " survive crafted patterns, even though benign"
                " traffic (measured) parks\nlittle -- that"
                " provisioning factor is why ECQF's lookahead is"
                " worth the pipeline delay.\n");
    return pktbuf::bench::finish("ablation_mma", rep, tasks, opt);
}
