/**
 * @file
 * Shared front end for the stand-alone bench harnesses.  Every bench
 * accepts the same flags:
 *
 *   --smoke      reduced slot budgets (what CI runs on every push)
 *   --jobs N     shard the bench's tasks over N worker threads
 *                (0 = all hardware threads)
 *   --json PATH  write the machine-readable result records as JSON
 *                ("-" = stdout); the BENCH_*.json baselines are made
 *                of exactly this output
 *   --csv PATH   same records as CSV
 *
 * Unknown arguments are rejected loudly: a mistyped --smoke silently
 * running the full-length sweep is exactly the CI failure mode this
 * helper exists to prevent.
 *
 * Each bench builds a list of sweep::Task objects, runs them through
 * sweep::runSweep, prints the buffered per-task text in task order
 * (so output is byte-identical for any --jobs), and finishes through
 * finish(), which emits the JSON/CSV artifacts and turns any task
 * failure into a non-zero exit.
 */

#ifndef PKTBUF_BENCH_COMMON_HH
#define PKTBUF_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sweep/emit.hh"
#include "sweep/sweep.hh"

namespace pktbuf::bench
{

/** Parsed common bench options. */
struct Options
{
    bool smoke = false;
    unsigned jobs = 1;
    std::string jsonPath;  //!< empty = no JSON artifact
    std::string csvPath;   //!< empty = no CSV artifact
};

/**
 * Parse the uniform bench flags; exits(2) on anything unknown.
 * `extra_usage` lets a bench document additional context lines.
 */
inline Options
parseArgs(int argc, char **argv, const char *extra_usage = nullptr)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            opt.smoke = true;
        } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            opt.jsonPath = argv[++i];
        } else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc) {
            opt.csvPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "%s: unknown argument '%s'\n"
                         "usage: %s [--smoke] [--jobs N]"
                         " [--json PATH] [--csv PATH]\n%s",
                         argv[0], argv[i], argv[0],
                         extra_usage ? extra_usage : "");
            std::exit(2);
        }
    }
    return opt;
}

/**
 * Scale a slot budget down in smoke mode, keeping enough slots for
 * the buffer to reach steady state past warmup and pipeline fill.
 */
inline std::uint64_t
scaledSlots(std::uint64_t full, bool smoke)
{
    constexpr std::uint64_t kFloor = 4000;
    if (!smoke || full <= kFloor)
        return full;
    const std::uint64_t reduced = full / 10;
    return reduced < kFloor ? kFloor : reduced;
}

/**
 * Run `tasks` with the options' thread count, print every task's
 * buffered text in task order, and return the report.  Timing goes
 * to stderr so stdout stays byte-identical across thread counts.
 */
inline sweep::SweepReport
runAndPrint(const std::vector<sweep::Task> &tasks, const Options &opt)
{
    sweep::SweepOptions so;
    so.jobs = opt.jobs;
    const auto rep = sweep::runSweep(tasks, so);
    for (const auto &r : rep.results)
        std::fputs(r.text.c_str(), stdout);
    std::fprintf(stderr, "[%zu tasks, %u jobs, %.2fs]\n",
                 tasks.size(), rep.jobs, rep.wallSeconds);
    return rep;
}

/**
 * Emit the requested JSON/CSV artifacts and report failures.
 *
 * @return the process exit code: 0 when every task passed.
 */
inline int
finish(const char *tool, const sweep::SweepReport &rep,
       const std::vector<sweep::Task> &tasks, const Options &opt,
       sweep::Record meta = {})
{
    meta.set("smoke", opt.smoke);
    sweep::emitArtifacts(rep, tasks,
                         sweep::EmitMeta{tool, std::move(meta)},
                         opt.jsonPath, opt.csvPath);
    for (std::size_t i = 0; i < rep.results.size(); ++i) {
        if (!rep.results[i].ok) {
            std::fprintf(stderr, "FAILED: %s\n",
                         rep.results[i].error.c_str());
        }
    }
    if (rep.failed) {
        std::fprintf(stderr, "%s: %zu of %zu tasks failed\n", tool,
                     rep.failed, rep.results.size());
    }
    return rep.failed == 0 ? 0 : 1;
}

} // namespace pktbuf::bench

#endif // PKTBUF_BENCH_COMMON_HH
