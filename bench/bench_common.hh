/**
 * @file
 * Shared helpers for the stand-alone bench harnesses.  Every
 * simulation-driven bench accepts `--smoke`: CI runs the same
 * binaries at reduced slot budgets so a regression in any harness is
 * caught without paying full sweep time on every push.
 */

#ifndef PKTBUF_BENCH_COMMON_HH
#define PKTBUF_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pktbuf::bench
{

/**
 * True when argv contains --smoke.  Any other argument is rejected
 * loudly: a mistyped --smoke silently running the full-length sweep
 * is exactly the CI failure mode this helper exists to prevent.
 */
inline bool
smokeMode(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'"
                         " (only --smoke is accepted)\n",
                         argv[0], argv[i]);
            std::exit(2);
        }
    }
    return smoke;
}

/**
 * Scale a slot budget down in smoke mode, keeping enough slots for
 * the buffer to reach steady state past warmup and pipeline fill.
 */
inline std::uint64_t
scaledSlots(std::uint64_t full, bool smoke)
{
    constexpr std::uint64_t kFloor = 4000;
    if (!smoke || full <= kFloor)
        return full;
    const std::uint64_t reduced = full / 10;
    return reduced < kFloor ? kFloor : reduced;
}

} // namespace pktbuf::bench

#endif // PKTBUF_BENCH_COMMON_HH
