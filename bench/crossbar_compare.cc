/**
 * @file
 * Crossbar scheduler comparison: the three matching disciplines
 * (iSLIP, QPS, random-maximal) side by side, two ways --
 *
 *   1. pattern grid: every cross-port traffic pattern at 8 ports and
 *      the default load, exposing delay-vs-pattern behavior (incast
 *      and permutation punish a scheduler that revisits stale
 *      choices; the hold window earns its keep there);
 *   2. load ladder: 16-port uniform traffic at offered loads 0.30 to
 *      0.90, the classic throughput-vs-load curve -- iSLIP's
 *      desynchronized pointers should hold throughput near 1.0 all
 *      the way up, random-maximal should sag first.
 *
 * Also reported: mean matching size and mean scheduler iterations
 * per active slot (iSLIP stops early once an iteration adds no
 * edge, so its iteration count is itself a load signal).
 *
 * One task per configuration; inputs run sequentially inside their
 * task, so stdout and artifacts are byte-identical for any --jobs.
 * The committed baseline bench/baselines/BENCH_crossbar.json is the
 * full sweep's --json output (master seed 1), gated in CI by
 * tools/perf_gate.py.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "crossbar/crossbar_sim.hh"

using namespace pktbuf;
using namespace pktbuf::xbar;

namespace
{

sweep::TaskResult
runConfig(const CrossbarConfig &cfg, const std::string &label)
{
    const auto out = runCrossbar(cfg);
    sweep::TaskResult res;
    const auto *delay = out.report.agg("mean_delay_slots");
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "%-44s %9llu %9llu %8.4f %7.3f %7.3f %8.1f  %s\n",
        label.c_str(),
        static_cast<unsigned long long>(out.report.arrivals),
        static_cast<unsigned long long>(out.report.matchEdges),
        out.report.throughput, out.report.meanMatchSize,
        out.report.meanIterations, delay ? delay->p99 : 0.0,
        out.passed ? "ok" : "FAIL");
    res.text = line;
    if (!out.passed)
        res.text += "  " + out.failure + "\n";
    res.records.push_back(crossbarRecord(cfg, out));
    res.ok = out.passed;
    if (!out.passed)
        res.error = out.failure;
    return res;
}

std::string
loadLabel(const CrossbarConfig &cfg)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "_l%02u",
                  static_cast<unsigned>(cfg.load * 100.0 + 0.5));
    return cfg.name() + buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);

    const SchedulerKind kinds[] = {SchedulerKind::Islip,
                                   SchedulerKind::Qps,
                                   SchedulerKind::RandomMaximal};
    const sw::TrafficPattern patterns[] = {
        sw::TrafficPattern::Uniform,
        sw::TrafficPattern::Hotspot,
        sw::TrafficPattern::Incast,
        sw::TrafficPattern::Permutation,
    };
    const double loads[] = {0.30, 0.45, 0.60, 0.75, 0.90};

    std::vector<CrossbarConfig> cfgs;
    // Part 1: scheduler x pattern at 8 ports, default load.
    for (const auto kind : kinds) {
        for (const auto pattern : patterns) {
            CrossbarConfig cfg;
            cfg.ports = 8;
            cfg.pattern = pattern;
            cfg.scheduler = kind;
            cfg.slots = pktbuf::bench::scaledSlots(20000, opt.smoke);
            cfg.masterSeed = 1;
            cfgs.push_back(cfg);
        }
    }
    // Part 2: scheduler x offered load, 16-port uniform.
    for (const auto kind : kinds) {
        for (const auto load : loads) {
            CrossbarConfig cfg;
            cfg.ports = 16;
            cfg.pattern = sw::TrafficPattern::Uniform;
            cfg.scheduler = kind;
            cfg.load = load;
            cfg.slots = pktbuf::bench::scaledSlots(20000, opt.smoke);
            cfg.masterSeed = 1;
            cfgs.push_back(cfg);
        }
    }

    std::printf("Crossbar scheduler comparison: {islip, qps, random}"
                " x patterns at 8 ports,\nthen x offered load 0.30.."
                "0.90 on 16-port uniform traffic.\n\n");
    std::printf("%-44s %9s %9s %8s %7s %7s %8s  %s\n", "crossbar",
                "arrivals", "matched", "thrpt", "msize", "miters",
                "d_p99", "status");

    std::vector<sweep::Task> tasks;
    tasks.reserve(cfgs.size());
    for (const auto &cfg : cfgs) {
        const auto label = loadLabel(cfg);
        tasks.push_back(sweep::Task{
            label,
            [cfg, label](const sweep::SweepContext &) {
                return runConfig(cfg, label);
            },
        });
    }
    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);
    std::printf(
        "\nReading: every discipline here completes to a *maximal*"
        " matching, so under\nadmissible i.i.d. load all three hold"
        " thrpt ~1.0 even at 0.90 offered -- the\ncurves separate in"
        " the work columns instead: miters climbs with load for\n"
        "iSLIP (more rounds until no edge is added) and QPS (holds"
        " expire, resampling\nresumes) while random stays flat, and"
        " the skewed patterns (incast above all)\nwiden d_p99."
        "  msize tracks how much parallel work each load level"
        " leaves the\nfabric per slot.\n");
    sweep::Record meta;
    meta.set("configs", cfgs.size());
    return pktbuf::bench::finish("crossbar_compare", rep, tasks, opt,
                                 std::move(meta));
}
