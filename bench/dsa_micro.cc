/**
 * @file
 * google-benchmark microbenchmark of the DRAM Scheduler Algorithm:
 * wake-up/select cost of the Requests Register at the sizes Table 2
 * reports (8 .. 4096 entries).  This is the *simulator's* cost of
 * the operation; the hardware cost is modeled analytically in
 * model/issue_queue (Section 8.1).
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "dss/request_register.hh"

using namespace pktbuf;
using namespace pktbuf::dss;

namespace
{

DramRequest
randomRequest(Rng &rng, unsigned banks)
{
    DramRequest r;
    r.kind = rng.chance(0.5) ? DramRequest::Kind::Read
                             : DramRequest::Kind::Write;
    r.physQueue = static_cast<QueueId>(rng.below(512));
    r.blockOrdinal = rng.below(1 << 20);
    r.bank = static_cast<unsigned>(rng.below(banks));
    return r;
}

void
BM_SelectOldestReady(benchmark::State &state)
{
    const auto entries = static_cast<std::size_t>(state.range(0));
    Rng rng(42);
    RequestRegister rr(0, true);
    for (std::size_t i = 0; i < entries; ++i)
        rr.push(randomRequest(rng, 256));

    // A quarter of the banks are locked, so the scan skips work.
    for (auto _ : state) {
        auto sel = rr.selectOldestReady(
            [](unsigned bank) { return bank % 4 == 0; });
        benchmark::DoNotOptimize(sel);
        if (sel)
            rr.push(*sel); // keep occupancy constant
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_PushCancel(benchmark::State &state)
{
    const auto entries = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    RequestRegister rr(0, true);
    for (std::size_t i = 0; i < entries; ++i)
        rr.push(randomRequest(rng, 256));
    for (auto _ : state) {
        auto req = randomRequest(rng, 256);
        rr.push(req);
        auto c = rr.cancel([&](const DramRequest &r) {
            return r.physQueue == req.physQueue &&
                   r.kind == req.kind;
        });
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(BM_SelectOldestReady)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)
    ->Arg(4096);
BENCHMARK(BM_PushCancel)->Arg(64)->Arg(1024);

BENCHMARK_MAIN();
