/**
 * @file
 * Event-core vs reference engine throughput: every configuration of
 * the throughput baseline measured under both execution engines
 * (BufferConfig::eventCore off and on), plus idle-heavy legs where
 * the event engine's quiescent-slot skip dominates.  Emits the
 * BENCH_event_core.json baseline; rows come in reference/event pairs
 * whose deterministic fields (grants above all) must match exactly --
 * the bench doubles as a coarse differential check, and the perf
 * gate's median normalization preserves the event:reference speed
 * ratio across machines.
 *
 * Timing note: wall-clock numbers only make sense with --jobs 1 (the
 * default here); sharding timing runs across threads measures
 * contention, not the simulator.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

enum class Wl
{
    Uniform,
    WorstCase,
    Idle,  //!< sparse traffic: mostly-quiescent slots
};

struct Config
{
    const char *name;
    unsigned queues;
    unsigned granRads;  // B
    unsigned gran;      // b
    unsigned banks;     // M
    Wl wl;
    bool check;
};

constexpr Config kConfigs[] = {
    {"rads_uniform_q8", 8, 8, 8, 1, Wl::Uniform, false},
    {"rads_uniform_q64", 64, 8, 8, 1, Wl::Uniform, false},
    {"cfds_uniform_q8", 8, 8, 2, 32, Wl::Uniform, false},
    {"cfds_uniform_q64", 64, 8, 2, 32, Wl::Uniform, false},
    {"cfds_worstcase_checked_q8", 8, 8, 2, 32, Wl::WorstCase, true},
    {"cfds_worstcase_checked_q64", 64, 8, 2, 32, Wl::WorstCase, true},
    {"rads_worstcase_checked_q64", 64, 8, 8, 1, Wl::WorstCase, true},
    {"rads_idle_q64", 64, 8, 8, 1, Wl::Idle, false},
    {"cfds_idle_q64", 64, 8, 2, 32, Wl::Idle, false},
};

std::unique_ptr<Workload>
makeWl(const Config &c)
{
    switch (c.wl) {
      case Wl::Uniform:
        return std::make_unique<UniformRandom>(c.queues, 11, 0.95);
      case Wl::WorstCase:
        return std::make_unique<RoundRobinWorstCase>(c.queues, 3, 1.0,
                                                     64);
      case Wl::Idle:
        // 5% load: the line is idle most slots, the regime the
        // quiescent skip is built for (lightly loaded switch ports).
        return std::make_unique<UniformRandom>(c.queues, 11, 0.05);
    }
    return nullptr;
}

const char *
wlName(Wl w)
{
    switch (w) {
      case Wl::Uniform:
        return "uniform";
      case Wl::WorstCase:
        return "worstcase";
      case Wl::Idle:
        return "idle";
    }
    return "?";
}

sweep::TaskResult
measure(const Config &c, bool event_core, std::uint64_t min_slots)
{
    BufferConfig cfg;
    cfg.params = model::BufferParams{c.queues, c.granRads, c.gran,
                                     c.banks};
    cfg.eventCore = event_core;
    HybridBuffer buf(cfg);
    const auto wl = makeWl(c);
    SimRunner runner(buf, *wl, c.check);

    // Warm the pipeline and caches out of the measured window.
    runner.run(4096);

    constexpr std::uint64_t kChunk = 16384;
    std::uint64_t slots = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (slots < min_slots) {
        runner.run(kChunk);
        slots += kChunk;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    const auto rep = buf.report();
    const double slots_per_sec = slots / secs;
    const char *engine = event_core ? "event" : "reference";

    sweep::TaskResult r;
    char buf2[192];
    std::snprintf(buf2, sizeof(buf2),
                  "%-28s %-9s Q=%-3u b=%-2u %-9s chk=%d"
                  " %10.2f Mslots/s\n",
                  c.name, engine, c.queues, c.gran, wlName(c.wl),
                  c.check ? 1 : 0, slots_per_sec / 1e6);
    r.text = buf2;
    sweep::Record rec;
    rec.set("name", std::string(c.name) + "_" + engine)
        .set("config", c.name)
        .set("engine", engine)
        .set("queues", c.queues)
        .set("B", c.granRads)
        .set("b", c.gran)
        .set("banks", c.banks)
        .set("workload", wlName(c.wl))
        .set("checker", c.check)
        .set("slots", slots)
        .set("seconds", secs)
        .set("slots_per_sec", slots_per_sec)
        .set("grants", rep.grants);
    r.records.push_back(std::move(rec));
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);
    const std::uint64_t min_slots = opt.smoke ? 1u << 15 : 1u << 21;

    std::vector<sweep::Task> tasks;
    for (const auto &c : kConfigs) {
        for (const bool event_core : {false, true}) {
            tasks.push_back(sweep::Task{
                std::string(c.name) + "_" +
                    (event_core ? "event" : "reference"),
                [&c, event_core,
                 min_slots](const sweep::SweepContext &) {
                    return measure(c, event_core, min_slots);
                },
            });
        }
    }

    std::printf("Event-core vs reference engine throughput (steady"
                " state, %s budget;\ntiming is wall-clock, run with"
                " --jobs 1 for comparable numbers).\n\n",
                opt.smoke ? "smoke" : "full");
    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);

    // Speedups to stderr: informative, but run-dependent, so they
    // must never reach the byte-identical stdout/artifact channel.
    for (std::size_t i = 0; i + 1 < rep.results.size(); i += 2) {
        const auto &ref = rep.results[i];
        const auto &evt = rep.results[i + 1];
        if (!ref.ok || !evt.ok || ref.records.empty() ||
            evt.records.empty()) {
            continue;
        }
        const auto *rs = ref.records[0].find("seconds");
        const auto *es = evt.records[0].find("seconds");
        if (rs && es && es->asReal() > 0.0) {
            std::fprintf(stderr, "  %-28s event/reference speedup"
                         " %.2fx\n",
                         kConfigs[i / 2].name,
                         rs->asReal() / es->asReal());
        }
    }

    sweep::Record meta;
    meta.set("min_slots", min_slots);
    return pktbuf::bench::finish("event_core", rep, tasks, opt,
                                 std::move(meta));
}
