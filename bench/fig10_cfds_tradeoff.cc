/**
 * @file
 * Figure 10 harness: SRAM (h-SRAM + t-SRAM) area and the most
 * restrictive access time at OC-3072, as a function of the total
 * delay (lookahead for RADS; lookahead + latency for CFDS), for
 * granularities b in {32 (RADS), 16, 8, 4, 2, 1}, Q = 512, M = 256.
 *
 * Paper reference points: CFDS with b = 4 meets 3.2 ns with ~10 us
 * delay and ~0.6 cm^2 total, while RADS needs > 50 us and ~2 cm^2
 * yet only reaches ~7 ns.  There is an optimal b strictly inside
 * (1, B).
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "model/dimensioning.hh"
#include "model/sram_designs.hh"

using namespace pktbuf;
using namespace pktbuf::model;

namespace
{

sweep::TaskResult
sweepGran(unsigned b)
{
    const unsigned queues = 512, gran_rads = 32, banks = 256;
    const double slot = slotTimeNs(LineRate::OC3072);
    BufferParams p{queues, gran_rads, b,
                   b == gran_rads ? 1u : banks};
    const auto lmax = ecqfLookaheadSlots(queues, b);
    const auto lat = p.isRads() ? 0 : latencySlots(p);

    sweep::TaskResult res;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\n--- b = %u%s (latency register %lu slots) ---\n",
                  b, p.isRads() ? " (RADS)" : "",
                  static_cast<unsigned long>(lat));
    res.text = buf;
    std::snprintf(buf, sizeof(buf), "%12s %12s %12s %12s %8s\n",
                  "delay(us)", "h+t(KB)", "best impl", "access(ns)",
                  "area");
    res.text += buf;
    for (unsigned i = 2; i <= 12; i += 2) {
        const std::uint64_t la = lmax * i / 12;
        if (la == 0)
            continue;
        const auto head = headSramSpec(p, la);
        const std::uint64_t tail_cells =
            tailSramCells(queues, b) + lat;
        const auto h_cam = sizeSramBuffer(SramDesign::GlobalCam,
                                          head.cells, head.lists,
                                          queues);
        const auto h_ll = sizeSramBuffer(
            SramDesign::LinkedListTimeMux, head.cells, head.lists,
            queues);
        const auto t_cam = sizeSramBuffer(SramDesign::GlobalCam,
                                          tail_cells, head.lists,
                                          queues);
        const auto t_ll = sizeSramBuffer(
            SramDesign::LinkedListTimeMux, tail_cells, head.lists,
            queues);
        const bool cam_best = h_cam.effectiveNs < h_ll.effectiveNs;
        const double access =
            cam_best ? h_cam.effectiveNs : h_ll.effectiveNs;
        const double area_cm2 =
            (cam_best ? h_cam.areaMm2 + t_cam.areaMm2
                      : h_ll.areaMm2 + t_ll.areaMm2) /
            100.0;
        const double delay_us = (la + lat) * slot / 1000.0;
        std::snprintf(buf, sizeof(buf),
                      "%12.2f %12.1f %12s %9.2f %s %8.3f\n", delay_us,
                      (head.cells + tail_cells) * kCellBytes / 1024.0,
                      cam_best ? "CAM" : "LL-mux", access,
                      access <= slot ? "ok " : "SLO", area_cm2);
        res.text += buf;
        sweep::Record rec;
        rec.set("b", b)
            .set("is_rads", p.isRads())
            .set("latency_slots", lat)
            .set("lookahead", la)
            .set("delay_us", delay_us)
            .set("sram_kb",
                 (head.cells + tail_cells) * kCellBytes / 1024.0)
            .set("best_impl", cam_best ? "cam" : "llmux")
            .set("access_ns", access)
            .set("meets_slot", access <= slot)
            .set("area_cm2", area_cm2);
        res.records.push_back(std::move(rec));
    }
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);
    std::printf("Reproduction of Figure 10 (Section 8.3): SRAM area"
                " and access time vs delay at OC-3072\n"
                "(Q=512, B=32, M=256; slot 3.2 ns; 'SLO' = misses the"
                " slot time).\n");
    std::vector<sweep::Task> tasks;
    for (unsigned b : {32u, 16u, 8u, 4u, 2u, 1u}) {
        tasks.push_back(sweep::Task{
            "b" + std::to_string(b),
            [b](const sweep::SweepContext &) { return sweepGran(b); },
        });
    }
    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);
    std::printf("\nPaper check: b=4 compliant with ~10 us delay and"
                " well under 1 cm^2 total;\nRADS (b=32) never"
                " compliant even at >50 us.\n");
    return pktbuf::bench::finish("fig10_cfds_tradeoff", rep, tasks,
                                 opt);
}
