/**
 * @file
 * Figure 11 harness: the maximum number of queues each configuration
 * supports at OC-3072 while meeting the 3.2 ns access-time
 * constraint (maximum lookahead), for b in {32 (RADS), 16, 8, 4, 2,
 * 1} and M = 256 banks.
 *
 * Paper reference: CFDS reaches up to ~850 queues, several times the
 * RADS maximum (~140), with an interior optimum in b.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "model/sram_designs.hh"

using namespace pktbuf;
using namespace pktbuf::model;

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);
    std::printf("Reproduction of Figure 11 (Section 8.4): maximum"
                " number of queues at OC-3072.\n\n");
    std::printf("%6s %12s %12s\n", "b", "Qmax RADS", "Qmax CFDS");

    // Each granularity's search over Q is an independent task; every
    // task also derives the (cheap, closed-form) RADS reference so
    // its printed row is self-contained.
    std::vector<sweep::Task> tasks;
    const auto addPoint = [&tasks](unsigned b) {
        tasks.push_back(sweep::Task{
            "b" + std::to_string(b),
            [b](const sweep::SweepContext &) {
                const unsigned rads =
                    maxQueuesMeetingSlot(32, 32, 1, LineRate::OC3072);
                const unsigned cfds =
                    b == 32 ? rads  // the b=32 column is RADS itself
                            : maxQueuesMeetingSlot(32, b, 256,
                                                   LineRate::OC3072);
                sweep::TaskResult r;
                char buf[96];
                std::snprintf(buf, sizeof(buf), "%6u %12u %12u\n", b,
                              rads, cfds);
                r.text = buf;
                sweep::Record rec;
                rec.set("b", b)
                    .set("qmax_rads", rads)
                    .set("qmax_cfds", cfds)
                    .set("gain", static_cast<double>(cfds) / rads);
                r.records.push_back(std::move(rec));
                return r;
            },
        });
    };
    for (unsigned b : {32u, 16u, 8u, 4u, 2u, 1u})
        addPoint(b);

    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);

    // Summary straight from the task records -- no recomputation.
    unsigned best_q = 0, best_b = 0, rads = 0;
    for (const auto &r : rep.results) {
        for (const auto &rec : r.records) {
            const auto b =
                static_cast<unsigned>(rec.find("b")->asUInt());
            const auto cfds = static_cast<unsigned>(
                rec.find("qmax_cfds")->asUInt());
            rads =
                static_cast<unsigned>(rec.find("qmax_rads")->asUInt());
            if (cfds > best_q) {
                best_q = cfds;
                best_b = b;
            }
        }
    }
    if (rads) {
        std::printf("\nBest: b=%u with %u queues (%.1fx the RADS"
                    " maximum of %u).\n",
                    best_b, best_q,
                    static_cast<double>(best_q) / rads, rads);
    }
    std::printf("Paper check: several-fold gain over RADS with an"
                " interior optimum (paper reports up to ~850 physical"
                " queues, ~6x).\n");
    return pktbuf::bench::finish("fig11_max_queues", rep, tasks, opt);
}
