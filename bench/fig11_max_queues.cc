/**
 * @file
 * Figure 11 harness: the maximum number of queues each configuration
 * supports at OC-3072 while meeting the 3.2 ns access-time
 * constraint (maximum lookahead), for b in {32 (RADS), 16, 8, 4, 2,
 * 1} and M = 256 banks.
 *
 * Paper reference: CFDS reaches up to ~850 queues, several times the
 * RADS maximum (~140), with an interior optimum in b.
 */

#include <cstdio>

#include "model/sram_designs.hh"

using namespace pktbuf;
using namespace pktbuf::model;

int
main()
{
    std::printf("Reproduction of Figure 11 (Section 8.4): maximum"
                " number of queues at OC-3072.\n\n");
    std::printf("%6s %12s %12s\n", "b", "Qmax RADS", "Qmax CFDS");
    const unsigned rads =
        maxQueuesMeetingSlot(32, 32, 1, LineRate::OC3072);
    unsigned best_q = 0, best_b = 0;
    for (unsigned b : {32u, 16u, 8u, 4u, 2u, 1u}) {
        unsigned cfds = 0;
        if (b == 32) {
            cfds = rads; // the first column is the RADS point
        } else {
            cfds = maxQueuesMeetingSlot(32, b, 256, LineRate::OC3072);
        }
        if (cfds > best_q) {
            best_q = cfds;
            best_b = b;
        }
        std::printf("%6u %12u %12u\n", b, rads, cfds);
    }
    std::printf("\nBest: b=%u with %u queues (%.1fx the RADS"
                " maximum of %u).\n",
                best_b, best_q,
                static_cast<double>(best_q) / rads, rads);
    std::printf("Paper check: several-fold gain over RADS with an"
                " interior optimum (paper reports up to ~850 physical"
                " queues, ~6x).\n");
    return 0;
}
