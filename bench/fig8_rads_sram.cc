/**
 * @file
 * Figure 8 harness: h-SRAM access time and area as a function of the
 * lookahead for the RADS scheme, for the two shared-SRAM designs
 * (global CAM, time-multiplexed unified linked list), at OC-768
 * (Q = 128, B = 8) and OC-3072 (Q = 512, B = 32).
 *
 * Paper reference points: OC-768 SRAM ranges 300 KB -> 64 KB and both
 * designs beat the 12.8 ns slot; OC-3072 ranges 6.2 MB -> 1.0 MB and
 * no design meets 3.2 ns.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "model/dimensioning.hh"
#include "model/sram_designs.hh"

using namespace pktbuf;
using namespace pktbuf::model;

namespace
{

sweep::TaskResult
sweepRate(const char *name, unsigned queues, unsigned gran,
          LineRate rate, unsigned points)
{
    const double slot = slotTimeNs(rate);
    const auto lmax = ecqfLookaheadSlots(queues, gran);
    sweep::TaskResult res;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\n=== Figure 8: %s (Q=%u, B=%u, slot %.1f ns)"
                  " ===\n",
                  name, queues, gran, slot);
    res.text = buf;
    std::snprintf(buf, sizeof(buf), "%10s %10s %12s %10s %12s %10s\n",
                  "lookahead", "SRAM(KB)", "CAM(ns)", "CAM(cm2)",
                  "LL-mux(ns)", "LL(cm2)");
    res.text += buf;
    for (unsigned i = 1; i <= points; ++i) {
        const std::uint64_t la = lmax * i / points;
        if (la == 0)
            continue;
        const auto cells = radsSramCells(la, queues, gran);
        const auto cam = sizeSramBuffer(SramDesign::GlobalCam, cells,
                                        queues, queues);
        const auto ll = sizeSramBuffer(SramDesign::LinkedListTimeMux,
                                       cells, queues, queues);
        std::snprintf(buf, sizeof(buf),
                      "%10lu %10.1f %9.2f %s %10.4f %10.2f %s %8.4f\n",
                      static_cast<unsigned long>(la),
                      cells * kCellBytes / 1024.0, cam.effectiveNs,
                      cam.effectiveNs <= slot ? "ok " : "SLO",
                      cam.areaMm2 / 100.0, ll.effectiveNs,
                      ll.effectiveNs <= slot ? "ok " : "SLO",
                      ll.areaMm2 / 100.0);
        res.text += buf;
        sweep::Record rec;
        rec.set("rate", name)
            .set("queues", queues)
            .set("B", gran)
            .set("slot_ns", slot)
            .set("lookahead", la)
            .set("sram_kb", cells * kCellBytes / 1024.0)
            .set("cam_ns", cam.effectiveNs)
            .set("cam_meets_slot", cam.effectiveNs <= slot)
            .set("cam_cm2", cam.areaMm2 / 100.0)
            .set("llmux_ns", ll.effectiveNs)
            .set("llmux_meets_slot", ll.effectiveNs <= slot)
            .set("llmux_cm2", ll.areaMm2 / 100.0);
        res.records.push_back(std::move(rec));
    }
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);
    std::printf("Reproduction of Figure 8 (Section 7.2): RADS h-SRAM"
                " access time and area vs lookahead.\n"
                "'SLO' marks points missing the line-rate slot time."
                "\n");
    const std::vector<sweep::Task> tasks = {
        {"oc768",
         [](const sweep::SweepContext &) {
             return sweepRate("OC-768", 128, 8, LineRate::OC768, 12);
         }},
        {"oc3072",
         [](const sweep::SweepContext &) {
             return sweepRate("OC-3072", 512, 32, LineRate::OC3072,
                              12);
         }},
    };
    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);
    std::printf(
        "\nPaper check: at OC-768 every point must meet 12.8 ns"
        " (RADS suffices);\nat OC-3072 no point may meet 3.2 ns"
        " (motivating CFDS).\n");
    return pktbuf::bench::finish("fig8_rads_sram", rep, tasks, opt);
}
