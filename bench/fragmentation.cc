/**
 * @file
 * Section 6 experiment: DRAM fragmentation under static queue-group
 * assignment versus queue renaming.
 *
 * Traffic concentrates on few logical queues (the adversarial case
 * for a statically partitioned DRAM): without renaming a queue can
 * only use its group's 1/G share of the DRAM; with renaming it
 * spills across groups and approaches full utilization before any
 * drop.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

struct Outcome
{
    std::uint64_t resident;
    std::uint64_t drops;
    std::uint64_t renames;
    std::uint64_t arrivals;
};

Outcome
fillOneQueue(bool renaming, std::uint64_t dram_cells)
{
    BufferConfig cfg;
    cfg.params = model::BufferParams{16, 8, 2, 32}; // G = 8 groups
    cfg.dramCells = dram_cells;
    if (renaming) {
        cfg.logicalQueues = 8;
        cfg.renaming = true;
    }
    // One logical queue receives everything; no requests, so the
    // DRAM must absorb the whole backlog.
    HybridBuffer buf(cfg);
    SingleQueue wl(renaming ? 8 : 16, 3, 0, /*lead=*/1u << 30);
    SimRunner runner(buf, wl);
    const auto r = runner.run(
        static_cast<std::uint64_t>(dram_cells) * 3);
    const auto rep = buf.report();
    return {rep.dramResidentCells, r.drops, rep.renames,
            rep.arrivals};
}

sweep::TaskResult
runScheme(bool renaming, std::uint64_t dram)
{
    const auto o = fillOneQueue(renaming, dram);
    sweep::TaskResult res;
    char line[160];
    if (renaming) {
        std::snprintf(line, sizeof(line),
                      "%-22s %9lu (%2.0f%%) %10lu %10lu\n",
                      "queue renaming",
                      static_cast<unsigned long>(o.resident),
                      100.0 * o.resident / dram,
                      static_cast<unsigned long>(o.drops),
                      static_cast<unsigned long>(o.renames));
    } else {
        std::snprintf(line, sizeof(line),
                      "%-22s %9lu (%2.0f%%) %10lu %10s\n",
                      "static assignment",
                      static_cast<unsigned long>(o.resident),
                      100.0 * o.resident / dram,
                      static_cast<unsigned long>(o.drops), "-");
    }
    res.text = line;
    sweep::Record rec;
    rec.set("scheme", renaming ? "renaming" : "static")
        .set("dram_cells", dram)
        .set("resident", o.resident)
        .set("utilization", static_cast<double>(o.resident) / dram)
        .set("drops", o.drops)
        .set("renames", o.renames)
        .set("arrivals", o.arrivals);
    res.records.push_back(std::move(rec));
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);
    // Smoke mode shrinks the DRAM (and with it the fill time), not
    // the slot count: the experiment must still fill to saturation.
    const std::uint64_t dram = opt.smoke ? 256 : 1024;
    std::printf("Section 6 reproduction: DRAM utilization when one"
                " logical queue takes all traffic\n(DRAM %lu cells in"
                " 8 groups of %lu).\n\n",
                static_cast<unsigned long>(dram),
                static_cast<unsigned long>(dram / 8));
    std::printf("%-22s %12s %10s %10s\n", "scheme", "DRAM resident",
                "drops", "renames");

    const std::vector<sweep::Task> tasks = {
        {"static",
         [dram](const sweep::SweepContext &) {
             return runScheme(false, dram);
         }},
        {"renaming",
         [dram](const sweep::SweepContext &) {
             return runScheme(true, dram);
         }},
    };
    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);

    // Shape check straight from the task records (tasks[0] = static,
    // tasks[1] = renaming; aggregation is positional).
    const auto resident = [&rep](std::size_t i) -> std::uint64_t {
        if (rep.results[i].records.empty())
            return 0;
        const auto *v = rep.results[i].records[0].find("resident");
        return v ? v->asUInt() : 0;
    };
    std::printf("\nPaper check: static assignment strands the queue"
                " at ~1/G = 12.5%% of the DRAM;\nrenaming lets it"
                " occupy (nearly) the whole DRAM before dropping.\n");
    const bool shape = resident(0) <= dram / 8 &&
                       resident(1) > 5 * (dram / 8);
    std::printf("Shape %s.\n", shape ? "HOLDS" : "VIOLATED");
    const int rc =
        pktbuf::bench::finish("fragmentation", rep, tasks, opt);
    return shape ? rc : 1;
}
