/**
 * @file
 * Lookahead ablation: the simulation counterpart of Figure 8's
 * x-axis.  For a RADS buffer, sweep the lookahead depth from minimal
 * to the ECQF optimum Q(B-1)+1 and measure the head-SRAM high water
 * needed for zero misses (measurement mode; the SRAM grows as the
 * lookahead shrinks, following [13]'s trade-off).
 *
 * Short lookaheads *with the formula-sized SRAM* would miss; the
 * measured high-water marks quantify the gap that the MDQF-style
 * over-provisioning (2 + ln Q) must cover.
 */

#include <cstdio>

#include "bench_common.hh"
#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

int
main(int argc, char **argv)
{
    const auto slots = bench::scaledSlots(
        60000, bench::smokeMode(argc, argv));
    const unsigned queues = 16, B = 8;
    const auto lmax = model::ecqfLookaheadSlots(queues, B);
    std::printf("Lookahead ablation (simulated RADS): Q=%u, B=%u,"
                " adversarial round-robin.\n\n",
                queues, B);
    std::printf("%10s %12s %14s %14s\n", "lookahead", "hSRAM hw",
                "model cells", "misses");
    for (unsigned i = 2; i <= 12; i += 2) {
        const std::uint64_t la = lmax * i / 12;
        if (la == 0)
            continue;
        BufferConfig cfg;
        cfg.params = model::BufferParams{queues, B, B, 1};
        cfg.lookahead = la;
        cfg.measureOnly = true;
        HybridBuffer buf(cfg);
        RoundRobinWorstCase wl(queues, 11, 1.0, 64);
        SimRunner runner(buf, wl);
        bool missed = false;
        try {
            runner.run(slots);
        } catch (const std::exception &) {
            missed = true;
        }
        std::printf("%10lu %12ld %14lu %14s\n",
                    static_cast<unsigned long>(la),
                    buf.report().headSramHighWater,
                    static_cast<unsigned long>(
                        model::radsSramCells(la, queues, B)),
                    missed ? "MISSED" : "0");
    }
    std::printf("\nReading: the 'model cells' column is the"
                " worst-case *guarantee* requirement, which\nfalls"
                " toward Q(B-1) = %lu as the lookahead grows; the"
                " measured column is the\noccupancy this particular"
                " pattern parks (longer lookahead = earlier"
                " replenishes =\nmore parked cells, still within the"
                " guarantee).  Zero misses at every point.\n",
                static_cast<unsigned long>(
                    model::ecqfSramCells(queues, B)));
    return 0;
}
