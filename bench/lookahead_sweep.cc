/**
 * @file
 * Lookahead ablation: the simulation counterpart of Figure 8's
 * x-axis.  For a RADS buffer, sweep the lookahead depth from minimal
 * to the ECQF optimum Q(B-1)+1 and measure the head-SRAM high water
 * needed for zero misses (measurement mode; the SRAM grows as the
 * lookahead shrinks, following [13]'s trade-off).
 *
 * Short lookaheads *with the formula-sized SRAM* would miss; the
 * measured high-water marks quantify the gap that the MDQF-style
 * over-provisioning (2 + ln Q) must cover.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

sweep::TaskResult
runPoint(std::uint64_t la, std::uint64_t slots)
{
    const unsigned queues = 16, B = 8;
    BufferConfig cfg;
    cfg.params = model::BufferParams{queues, B, B, 1};
    cfg.lookahead = la;
    cfg.measureOnly = true;
    HybridBuffer buf(cfg);
    RoundRobinWorstCase wl(queues, 11, 1.0, 64);
    SimRunner runner(buf, wl);
    bool missed = false;
    try {
        runner.run(slots);
    } catch (const std::exception &) {
        missed = true;
    }
    sweep::TaskResult res;
    char line[160];
    std::snprintf(line, sizeof(line), "%10lu %12ld %14lu %14s\n",
                  static_cast<unsigned long>(la),
                  buf.report().headSramHighWater,
                  static_cast<unsigned long>(
                      model::radsSramCells(la, queues, B)),
                  missed ? "MISSED" : "0");
    res.text = line;
    sweep::Record rec;
    rec.set("lookahead", la)
        .set("queues", queues)
        .set("B", B)
        .set("slots", slots)
        .set("head_sram_hw", buf.report().headSramHighWater)
        .set("model_cells", model::radsSramCells(la, queues, B))
        .set("missed", missed);
    res.records.push_back(std::move(rec));
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);
    const auto slots = pktbuf::bench::scaledSlots(60000, opt.smoke);
    const unsigned queues = 16, B = 8;
    const auto lmax = model::ecqfLookaheadSlots(queues, B);
    std::printf("Lookahead ablation (simulated RADS): Q=%u, B=%u,"
                " adversarial round-robin.\n\n",
                queues, B);
    std::printf("%10s %12s %14s %14s\n", "lookahead", "hSRAM hw",
                "model cells", "misses");
    std::vector<sweep::Task> tasks;
    for (unsigned i = 2; i <= 12; i += 2) {
        const std::uint64_t la = lmax * i / 12;
        if (la == 0)
            continue;
        tasks.push_back(sweep::Task{
            "la" + std::to_string(la),
            [la, slots](const sweep::SweepContext &) {
                return runPoint(la, slots);
            },
        });
    }
    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);
    std::printf("\nReading: the 'model cells' column is the"
                " worst-case *guarantee* requirement, which\nfalls"
                " toward Q(B-1) = %lu as the lookahead grows; the"
                " measured column is the\noccupancy this particular"
                " pattern parks (longer lookahead = earlier"
                " replenishes =\nmore parked cells, still within the"
                " guarantee).  Zero misses at every point.\n",
                static_cast<unsigned long>(
                    model::ecqfSramCells(queues, B)));
    return pktbuf::bench::finish("lookahead_sweep", rep, tasks, opt);
}
