/**
 * @file
 * Switch scaling sweep: every cross-port traffic pattern at 1, 4, 16
 * and 64 ports, all ports golden-checked and drained.  One task per
 * (pattern, ports) configuration; within a task the ports run
 * sequentially, and --jobs shards the configurations -- so the
 * committed baseline is byte-identical for any --jobs value.
 *
 * What the scaling should show (docs/REPRODUCTION.md): aggregate
 * grants grow linearly with the port count (ports are independent
 * line cards -- the architecture scales out), while the *per-port*
 * spread (granted_min/max, delay p99) widens only for the skewed
 * patterns: hotspot pins its hot ports at the clamped maximum load,
 * incast pins the victim, uniform and permutation stay tight.
 *
 * The committed baseline bench/baselines/BENCH_switch.json is the
 * full sweep's --json output (master seed 1).
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "switch/switch_sim.hh"

using namespace pktbuf;
using namespace pktbuf::sw;

namespace
{

sweep::TaskResult
runConfig(const SwitchConfig &cfg)
{
    // Ports run inside this task (jobs=1): the bench's own --jobs
    // already shards the configurations across the pool, and nested
    // pools would oversubscribe without changing any output byte.
    const SwitchSim sim(cfg);
    const auto out = sim.run(/*jobs=*/1);
    sweep::TaskResult res;
    const auto *granted = out.report.agg("granted");
    const auto *delay = out.report.agg("mean_delay_slots");
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "%-36s %9llu %9llu %8llu %10.1f %10.1f %8.1f  %s\n",
        cfg.name().c_str(),
        static_cast<unsigned long long>(out.report.arrivals),
        static_cast<unsigned long long>(out.report.granted),
        static_cast<unsigned long long>(out.report.drops),
        granted->min, granted->max, delay->p99,
        out.passed ? "ok" : "FAIL");
    res.text = line;
    if (!out.passed)
        res.text += "  " + out.failure + "\n";
    res.records.push_back(switchRecord(cfg, out));
    res.ok = out.passed;
    if (!out.passed)
        res.error = out.failure;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);

    const unsigned port_counts[] = {1, 4, 16, 64};
    const TrafficPattern patterns[] = {
        TrafficPattern::Uniform,
        TrafficPattern::Hotspot,
        TrafficPattern::Incast,
        TrafficPattern::Permutation,
    };

    std::vector<SwitchConfig> cfgs;
    for (const auto pattern : patterns) {
        for (const auto ports : port_counts) {
            SwitchConfig cfg;
            cfg.ports = ports;
            cfg.pattern = pattern;
            cfg.slots = pktbuf::bench::scaledSlots(20000, opt.smoke);
            cfg.masterSeed = 1;
            cfgs.push_back(cfg);
        }
    }

    std::printf("Switch scaling sweep: ports x {uniform, hotspot,"
                " incast, permutation},\nall ports golden-checked"
                " and drained.\n\n");
    std::printf("%-36s %9s %9s %8s %10s %10s %8s  %s\n", "switch",
                "arrivals", "granted", "drops", "gmin", "gmax",
                "d_p99", "status");

    std::vector<sweep::Task> tasks;
    tasks.reserve(cfgs.size());
    for (const auto &cfg : cfgs) {
        tasks.push_back(sweep::Task{
            cfg.name(),
            [cfg](const sweep::SweepContext &) {
                return runConfig(cfg);
            },
        });
    }
    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);
    std::printf("\nReading: aggregate grants scale linearly with the"
                " port count (independent\nline cards); the per-port"
                " spread (gmin..gmax) widens only for hotspot and\n"
                "incast, whose hot ports run at the clamped maximum"
                " load while the rest idle\nalong at the cold"
                " share.\n");
    sweep::Record meta;
    meta.set("configs", cfgs.size());
    return pktbuf::bench::finish("switch_scale", rep, tasks, opt,
                                 std::move(meta));
}
