/**
 * @file
 * Table 2 harness: Requests Register size (Eq. 1) and the time
 * available to schedule one request, for OC-768 and OC-3072 with
 * M = 256 banks, plus the issue-queue-model feasibility verdict
 * (Section 8.1): trivial at OC-768 even for b = 1; attainable at
 * OC-3072 for b > 2, aggressive at b = 2, difficult at b = 1.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "model/dimensioning.hh"
#include "model/issue_queue.hh"

using namespace pktbuf;
using namespace pktbuf::model;

namespace
{

sweep::TaskResult
row(const char *name, unsigned queues, unsigned gran_rads, unsigned b,
    LineRate rate)
{
    sweep::TaskResult res;
    BufferParams p{queues, gran_rads, b, 256};
    if (b > gran_rads || gran_rads % b != 0)
        return res;
    const auto r = rrSize(p);
    const double budget = schedBudgetNs(p, rate);
    char buf[192];
    sweep::Record rec;
    rec.set("rate", name).set("b", b).set("rr_size", r);
    if (b == gran_rads) {
        std::snprintf(buf, sizeof(buf),
                      "%-8s b=%-3u RR=%-5lu sched: unneeded (RADS)\n",
                      name, b, static_cast<unsigned long>(r));
        res.text = buf;
        rec.set("is_rads", true);
    } else {
        const double t = rrSchedTimeNs(r);
        std::snprintf(buf, sizeof(buf),
                      "%-8s b=%-3u RR=%-5lu budget=%6.1f ns "
                      " model=%7.2f ns  area=%.4f cm2  [%s]\n",
                      name, b, static_cast<unsigned long>(r), budget,
                      t, rrSchedAreaCm2(r),
                      toString(classifySched(r, budget)).c_str());
        res.text = buf;
        rec.set("is_rads", false)
            .set("budget_ns", budget)
            .set("sched_ns", t)
            .set("sched_area_cm2", rrSchedAreaCm2(r))
            .set("verdict", toString(classifySched(r, budget)));
    }
    res.records.push_back(std::move(rec));
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);
    std::printf("Reproduction of Table 2 (Section 8.1): Requests"
                " Register size and scheduling time.\n"
                "(Anchor: Alpha 21264 20-entry issue queue, ~1 ns at"
                " 0.35 um, 0.05 cm^2 [14].)\n\n");
    std::vector<sweep::Task> tasks;
    // The blank separator between the two rate sections rides on the
    // first OC-3072 task: aggregation is in task order, so it lands
    // exactly where the old serial printf put it.
    const auto add = [&tasks](const char *name, unsigned queues,
                              unsigned gran_rads, unsigned b,
                              LineRate rate, bool sep = false) {
        tasks.push_back(sweep::Task{
            std::string(name) + "_b" + std::to_string(b),
            [=](const sweep::SweepContext &) {
                auto r = row(name, queues, gran_rads, b, rate);
                if (sep)
                    r.text.insert(0, "\n");
                return r;
            },
        });
    };
    for (unsigned b : {32u, 16u, 8u, 4u, 2u, 1u})
        add("OC-768", 128, 8, b, LineRate::OC768);
    for (unsigned b : {32u, 16u, 8u, 4u, 2u, 1u})
        add("OC-3072", 512, 32, b, LineRate::OC3072, b == 32);

    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);
    std::printf("\nPaper values (OC-3072): RR = 0, 8, 64, 256, 1024,"
                " 4096 for b = 32..1;\nsched times 51.2, 25.6, 12.8,"
                " 6.4, 3.2 ns.\n");
    return pktbuf::bench::finish("table2_request_register", rep,
                                 tasks, opt);
}
