/**
 * @file
 * Table 2 harness: Requests Register size (Eq. 1) and the time
 * available to schedule one request, for OC-768 and OC-3072 with
 * M = 256 banks, plus the issue-queue-model feasibility verdict
 * (Section 8.1): trivial at OC-768 even for b = 1; attainable at
 * OC-3072 for b > 2, aggressive at b = 2, difficult at b = 1.
 */

#include <cstdio>

#include "model/dimensioning.hh"
#include "model/issue_queue.hh"

using namespace pktbuf;
using namespace pktbuf::model;

namespace
{

void
row(const char *name, unsigned queues, unsigned gran_rads, unsigned b,
    LineRate rate)
{
    BufferParams p{queues, gran_rads, b, 256};
    if (b > gran_rads || gran_rads % b != 0)
        return;
    const auto r = rrSize(p);
    const double budget = schedBudgetNs(p, rate);
    if (b == gran_rads) {
        std::printf("%-8s b=%-3u RR=%-5lu sched: unneeded (RADS)\n",
                    name, b, static_cast<unsigned long>(r));
        return;
    }
    const double t = rrSchedTimeNs(r);
    std::printf("%-8s b=%-3u RR=%-5lu budget=%6.1f ns  model=%7.2f"
                " ns  area=%.4f cm2  [%s]\n",
                name, b, static_cast<unsigned long>(r), budget, t,
                rrSchedAreaCm2(r),
                toString(classifySched(r, budget)).c_str());
}

} // namespace

int
main()
{
    std::printf("Reproduction of Table 2 (Section 8.1): Requests"
                " Register size and scheduling time.\n"
                "(Anchor: Alpha 21264 20-entry issue queue, ~1 ns at"
                " 0.35 um, 0.05 cm^2 [14].)\n\n");
    for (unsigned b : {32u, 16u, 8u, 4u, 2u, 1u})
        row("OC-768", 128, 8, b, LineRate::OC768);
    std::printf("\n");
    for (unsigned b : {32u, 16u, 8u, 4u, 2u, 1u})
        row("OC-3072", 512, 32, b, LineRate::OC3072);
    std::printf("\nPaper values (OC-3072): RR = 0, 8, 64, 256, 1024,"
                " 4096 for b = 32..1;\nsched times 51.2, 25.6, 12.8,"
                " 6.4, 3.2 ns.\n");
    return 0;
}
