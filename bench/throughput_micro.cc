/**
 * @file
 * google-benchmark microbenchmark of whole-buffer simulation
 * throughput (slots per second) for representative RADS and CFDS
 * configurations, with and without the golden checker.
 */

#include <benchmark/benchmark.h>

#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

void
BM_RadsUniform(benchmark::State &state)
{
    const unsigned queues = static_cast<unsigned>(state.range(0));
    BufferConfig cfg;
    cfg.params = model::BufferParams{queues, 8, 8, 1};
    HybridBuffer buf(cfg);
    UniformRandom wl(queues, 11, 0.95);
    SimRunner runner(buf, wl, /*check=*/false);
    for (auto _ : state)
        runner.run(1024);
    state.SetItemsProcessed(state.iterations() * 1024);
}

void
BM_CfdsUniform(benchmark::State &state)
{
    const unsigned queues = static_cast<unsigned>(state.range(0));
    BufferConfig cfg;
    cfg.params = model::BufferParams{queues, 8, 2, 32};
    HybridBuffer buf(cfg);
    UniformRandom wl(queues, 11, 0.95);
    SimRunner runner(buf, wl, /*check=*/false);
    for (auto _ : state)
        runner.run(1024);
    state.SetItemsProcessed(state.iterations() * 1024);
}

void
BM_CfdsWorstCaseChecked(benchmark::State &state)
{
    const unsigned queues = static_cast<unsigned>(state.range(0));
    BufferConfig cfg;
    cfg.params = model::BufferParams{queues, 8, 2, 32};
    HybridBuffer buf(cfg);
    RoundRobinWorstCase wl(queues, 3, 1.0, 64);
    SimRunner runner(buf, wl, /*check=*/true);
    for (auto _ : state)
        runner.run(1024);
    state.SetItemsProcessed(state.iterations() * 1024);
}

} // namespace

BENCHMARK(BM_RadsUniform)->Arg(8)->Arg(64);
BENCHMARK(BM_CfdsUniform)->Arg(8)->Arg(64);
BENCHMARK(BM_CfdsWorstCaseChecked)->Arg(8)->Arg(64);

BENCHMARK_MAIN();
