/**
 * @file
 * Whole-buffer simulation throughput (slots per second) for
 * representative RADS and CFDS configurations, with and without the
 * golden checker -- the repo's perf baseline harness.
 *
 * Formerly a Google-Benchmark binary; now a plain harness on the
 * sweep engine so it always builds, shares the uniform
 * --smoke/--jobs/--json flags, and emits the BENCH_throughput.json
 * baseline that hot-path optimizations are judged against.
 *
 * Timing note: wall-clock numbers only make sense with --jobs 1 (the
 * default here); sharding timing runs across threads measures
 * contention, not the simulator.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

enum class Wl
{
    Uniform,
    WorstCase,
};

struct Config
{
    const char *name;
    unsigned queues;
    unsigned granRads;  // B
    unsigned gran;      // b
    unsigned banks;     // M
    Wl wl;
    bool check;
};

constexpr Config kConfigs[] = {
    {"rads_uniform_q8", 8, 8, 8, 1, Wl::Uniform, false},
    {"rads_uniform_q64", 64, 8, 8, 1, Wl::Uniform, false},
    {"cfds_uniform_q8", 8, 8, 2, 32, Wl::Uniform, false},
    {"cfds_uniform_q64", 64, 8, 2, 32, Wl::Uniform, false},
    {"cfds_worstcase_checked_q8", 8, 8, 2, 32, Wl::WorstCase, true},
    {"cfds_worstcase_checked_q64", 64, 8, 2, 32, Wl::WorstCase, true},
    {"rads_worstcase_checked_q64", 64, 8, 8, 1, Wl::WorstCase, true},
};

sweep::TaskResult
measure(const Config &c, std::uint64_t min_slots)
{
    BufferConfig cfg;
    cfg.params = model::BufferParams{c.queues, c.granRads, c.gran,
                                     c.banks};
    HybridBuffer buf(cfg);
    std::unique_ptr<Workload> wl;
    if (c.wl == Wl::Uniform)
        wl = std::make_unique<UniformRandom>(c.queues, 11, 0.95);
    else
        wl = std::make_unique<RoundRobinWorstCase>(c.queues, 3, 1.0,
                                                   64);
    SimRunner runner(buf, *wl, c.check);

    // Warm the pipeline and caches out of the measured window.
    runner.run(4096);

    constexpr std::uint64_t kChunk = 16384;
    std::uint64_t slots = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (slots < min_slots) {
        runner.run(kChunk);
        slots += kChunk;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    const auto rep = buf.report();
    const double slots_per_sec = slots / secs;

    sweep::TaskResult r;
    char buf2[192];
    std::snprintf(buf2, sizeof(buf2),
                  "%-28s Q=%-3u B=%-2u b=%-2u M=%-3u %-9s chk=%d"
                  " %10.2f Mslots/s\n",
                  c.name, c.queues, c.granRads, c.gran, c.banks,
                  c.wl == Wl::Uniform ? "uniform" : "worstcase",
                  c.check ? 1 : 0, slots_per_sec / 1e6);
    r.text = buf2;
    sweep::Record rec;
    rec.set("name", c.name)
        .set("queues", c.queues)
        .set("B", c.granRads)
        .set("b", c.gran)
        .set("banks", c.banks)
        .set("workload",
             c.wl == Wl::Uniform ? "uniform" : "worstcase")
        .set("checker", c.check)
        .set("slots", slots)
        .set("seconds", secs)
        .set("slots_per_sec", slots_per_sec)
        .set("grants", rep.grants);
    r.records.push_back(std::move(rec));
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);
    const std::uint64_t min_slots = opt.smoke ? 1u << 15 : 1u << 21;

    std::vector<sweep::Task> tasks;
    for (const auto &c : kConfigs) {
        tasks.push_back(sweep::Task{
            c.name,
            [&c, min_slots](const sweep::SweepContext &) {
                return measure(c, min_slots);
            },
        });
    }

    std::printf("Simulation throughput (steady state, %s budget;"
                " timing is wall-clock,\nrun with --jobs 1 for"
                " comparable numbers).\n\n",
                opt.smoke ? "smoke" : "full");
    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);
    sweep::Record meta;
    meta.set("min_slots", min_slots);
    return pktbuf::bench::finish("throughput_micro", rep, tasks, opt,
                                 std::move(meta));
}
