/**
 * @file
 * The timed-DRAM sweep: run every leg of the timing scenario matrix
 * (refresh storm, turnaround thrash, asymmetric bank groups, full
 * DDR) through the sweep engine, reporting per-cause DSA stalls next
 * to the usual differential columns.  All legs are golden-checked
 * and drained; any miss or undelivered cell fails the sweep.
 *
 * The committed baseline bench/baselines/BENCH_timing.json is the
 * full sweep's --json output; like every sweep artifact it is
 * byte-identical for any --jobs value (verified in CI for 1 vs 2).
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "sim/scenario.hh"
#include "sweep/scenario_sweep.hh"

using namespace pktbuf;
using namespace pktbuf::sim;

namespace
{

sweep::TaskResult
runLeg(const Scenario &s)
{
    const auto out = runScenario(s);
    sweep::TaskResult res;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-36s %9llu %9llu %7llu %8llu %8llu %8llu  %s\n",
                  s.name().c_str(),
                  static_cast<unsigned long long>(out.run.arrivals),
                  static_cast<unsigned long long>(out.verified),
                  static_cast<unsigned long long>(
                      out.report.dsaStalls),
                  static_cast<unsigned long long>(
                      out.report.dsaStallsBankBusy),
                  static_cast<unsigned long long>(
                      out.report.dsaStallsRefresh),
                  static_cast<unsigned long long>(
                      out.report.dsaStallsTurnaround),
                  out.passed ? "ok" : "FAIL");
    res.text = line;
    if (!out.passed)
        res.text += "  " + out.failure + "\n";
    // The legacy columns plus the timing model and its stall causes.
    auto rec = sweep::scenarioRecord(s, out);
    rec.set("timing", s.timingTag)
        .set("t_rc_max", s.timing.maxTRc(s.granRads))
        .set("turnaround", s.timing.turnaround)
        .set("t_refi", s.timing.tRefi)
        .set("t_rfc", s.timing.tRfc)
        .set("refresh_banks", s.timing.refreshBanks)
        .set("dsa_stalls", out.report.dsaStalls)
        .set("stall_bank_busy", out.report.dsaStallsBankBusy)
        .set("stall_refresh", out.report.dsaStallsRefresh)
        .set("stall_turnaround", out.report.dsaStallsTurnaround)
        .set("orr_hw", out.report.orrHighWater)
        .set("rr_max_skips", out.report.rrMaxSkips);
    res.records.push_back(std::move(rec));
    res.ok = out.passed;
    if (!out.passed)
        res.error = out.failure;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);
    const auto legs = opt.smoke ? timingSmokeMatrix() : timingMatrix();
    std::printf("Timed-DRAM sweep: refresh / turnaround / asymmetric"
                " bank groups, all golden-checked.\n\n");
    std::printf("%-36s %9s %9s %7s %8s %8s %8s  %s\n", "leg",
                "arrivals", "granted", "stalls", "bankbusy",
                "refresh", "turnarnd", "status");
    std::vector<sweep::Task> tasks;
    tasks.reserve(legs.size());
    for (const auto &leg : legs) {
        tasks.push_back(sweep::Task{
            leg.name(),
            [leg](const sweep::SweepContext &) {
                return runLeg(leg);
            },
        });
    }
    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);
    std::printf("\nReading: every stall names its cause -- bank-busy"
                " is the uniform model's only\nconflict; refresh and"
                " turnaround stalls exist *only* because the timed"
                " model\nrefuses those launches.  Zero misses and"
                " full delivery on every leg: the\nextended"
                " latency/RR slack absorbs what the timing policy"
                " takes away.\n");
    sweep::Record meta;
    meta.set("legs", legs.size());
    return pktbuf::bench::finish("timing_sweep", rep, tasks, opt,
                                 std::move(meta));
}
