/**
 * @file
 * Simulation validation harness: the paper's worst-case *claims*
 * checked empirically on the cycle-level simulator --
 *
 *   1. zero miss probability (Sections 3/5): every grant served;
 *   2. conflict freedom (Section 5.3): no bank re-accessed within
 *      its random access time (the model panics otherwise);
 *   3. bounded reordering: measured Requests Register occupancy and
 *      skip counts vs. Eq. (1)/(2);
 *   4. SRAM dimensioning: measured high-water marks vs. the
 *      formulas of Sections 3 and 5.4.
 *
 * Each row is one (architecture, configuration, pattern) pair run
 * for 60k slots with the golden FIFO checker enabled.  Rows are
 * independent sweep tasks, so --jobs N shards the whole table.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

std::unique_ptr<Workload>
makeWorkload(int pat, unsigned queues, std::uint64_t seed)
{
    switch (pat) {
      case 0:
        return std::make_unique<RoundRobinWorstCase>(queues, seed,
                                                     1.0, 64);
      case 1:
        return std::make_unique<UniformRandom>(queues, seed, 0.95);
      default:
        return std::make_unique<BurstyOnOff>(queues, seed, 96, 1.0);
    }
}

const char *kPatName[] = {"worst-rr", "uniform", "bursty"};

sweep::TaskResult
runOne(unsigned queues, unsigned B, unsigned b, unsigned banks,
       int pat, std::uint64_t slots)
{
    BufferConfig cfg;
    cfg.params = model::BufferParams{queues, B, b, banks};
    cfg.measureOnly = true; // record high-water marks, no caps
    HybridBuffer buf(cfg);
    auto wl = makeWorkload(pat, queues, 12345);
    SimRunner runner(buf, *wl);
    bool ok = true;
    std::string violation;
    std::uint64_t grants = 0;
    try {
        const auto r = runner.run(slots);
        grants = r.grants;
    } catch (const std::exception &e) {
        ok = false;
        violation = e.what();
    }
    const auto rep = buf.report();

    // Reference capacities an enforced buffer would use.
    BufferConfig enforced = cfg;
    enforced.measureOnly = false;
    HybridBuffer sized(enforced);

    const auto rr_ref =
        cfg.params.isRads() ? 0 : model::rrSize(cfg.params) + 4;
    const auto skip_ref =
        cfg.params.isRads() ? 0
                            : 2 * model::dsaMaxSkips(cfg.params) + 2;
    sweep::TaskResult res;
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "%-4s Q=%-3u B=%-2u b=%-2u M=%-3u %-8s grants=%-6lu"
        " miss=%s  rrHW=%ld/%lu skips=%ld/%lu"
        "  hSRAM=%ld/%lu tSRAM=%ld/%lu\n",
        cfg.params.isRads() ? "RADS" : "CFDS", queues, B, b, banks,
        kPatName[pat], static_cast<unsigned long>(grants),
        ok ? "0" : "!!", rep.rrHighWater,
        static_cast<unsigned long>(rr_ref), rep.rrMaxSkips,
        static_cast<unsigned long>(skip_ref), rep.headSramHighWater,
        static_cast<unsigned long>(sized.headSram().capacity()),
        rep.tailSramHighWater,
        static_cast<unsigned long>(sized.tailSram().capacity()));
    res.text = line;
    if (!ok)
        res.text += "  VIOLATION: " + violation + "\n";

    sweep::Record rec;
    rec.set("arch", cfg.params.isRads() ? "rads" : "cfds")
        .set("queues", queues)
        .set("B", B)
        .set("b", b)
        .set("banks", banks)
        .set("pattern", kPatName[pat])
        .set("slots", slots)
        .set("grants", grants)
        .set("miss_free", ok)
        .set("rr_hw", rep.rrHighWater)
        .set("rr_bound", rr_ref)
        .set("rr_max_skips", rep.rrMaxSkips)
        .set("skip_bound", skip_ref)
        .set("head_sram_hw", rep.headSramHighWater)
        .set("head_sram_cap", sized.headSram().capacity())
        .set("tail_sram_hw", rep.tailSramHighWater)
        .set("tail_sram_cap", sized.tailSram().capacity());
    if (!ok)
        rec.set("violation", violation);
    res.records.push_back(std::move(rec));
    res.ok = ok;
    if (!ok)
        res.error = "worst-case claim violated: " + violation;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = pktbuf::bench::parseArgs(argc, argv);
    const auto slots = pktbuf::bench::scaledSlots(60000, opt.smoke);
    std::printf("Empirical validation of the worst-case guarantees"
                " (measured/bound; miss must be 0).\n\n");
    struct Row
    {
        unsigned q, B, b, m;
    };
    const Row rows[] = {
        {8, 8, 8, 1},    // RADS
        {16, 8, 8, 1},   // RADS, more queues
        {8, 8, 4, 16},   // CFDS, B/b = 2
        {8, 8, 2, 16},   // CFDS, B/b = 4
        {8, 8, 1, 32},   // CFDS, per-cell
        {16, 8, 2, 32},  // CFDS, wider
        {16, 16, 4, 64}, // CFDS, deeper timing
    };
    std::vector<sweep::Task> tasks;
    for (int pat = 0; pat < 3; ++pat) {
        for (const auto &r : rows) {
            tasks.push_back(sweep::Task{
                std::string(kPatName[pat]) + "_q" +
                    std::to_string(r.q) + "_B" + std::to_string(r.B) +
                    "_b" + std::to_string(r.b),
                [r, pat, slots](const sweep::SweepContext &) {
                    return runOne(r.q, r.B, r.b, r.m, pat, slots);
                },
            });
        }
    }
    const auto rep = pktbuf::bench::runAndPrint(tasks, opt);
    std::printf("\nAll rows completing with miss=0 and measurements"
                " within bounds reproduce the paper's zero-miss and"
                " bounded-reordering claims.\n");
    return pktbuf::bench::finish("validation", rep, tasks, opt);
}
