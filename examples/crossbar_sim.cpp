/**
 * @file
 * CLI front end of the input-queued crossbar simulator: N input
 * ports, each one VOQ per output backed by a full hybrid SRAM/DRAM
 * buffer, coupled per slot by a matching scheduler (iSLIP, QPS or
 * random-maximal), every input golden-checked and drained.
 *
 *   crossbar_sim [--ports N] [--pattern NAME] [--scheduler NAME]
 *                [--iters N] [--window N] [--variant NAME]
 *                [--load F] [--slots N] [--seed N]
 *                [--hot-outputs K] [--hot-fraction F] [--burst N]
 *                [--victim P] [--engine reference|event] [--smoke]
 *                [--list] [--json PATH] [--csv PATH]
 *
 * The fabric is lockstep by construction (the matching couples all
 * inputs each slot), so there is no --jobs knob: one run, one
 * deterministic byte stream.  A --ports 1 run reproduces the
 * matching single-buffer scenario leg bit-for-bit regardless of the
 * scheduler (any maximal matching is work-conserving at N == 1).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "crossbar/crossbar_sim.hh"
#include "sweep/record.hh"

using namespace pktbuf;
using namespace pktbuf::xbar;

namespace
{

void
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [--ports N] [--pattern NAME] [--scheduler NAME]\n"
        "          [--iters N] [--window N] [--variant NAME]\n"
        "          [--load F] [--slots N] [--seed N]\n"
        "          [--hot-outputs K] [--hot-fraction F] [--burst N]\n"
        "          [--victim P] [--engine reference|event] [--smoke]\n"
        "          [--list] [--json PATH] [--csv PATH]\n"
        "  --ports      crossbar radix (default 4)\n"
        "  --pattern    uniform | hotspot | incast | permutation\n"
        "  --scheduler  islip | qps | random\n"
        "  --iters      iSLIP rounds per slot (default 4)\n"
        "  --window     QPS hold window in slots (default 8)\n"
        "  --variant    rads | cfds | renaming\n"
        "  --load       mean offered load per input (default 0.45)\n"
        "  --slots      driven slots (default 20000)\n"
        "  --seed       master seed; input i uses splitmix(seed, i)\n"
        "  --hot-outputs / --hot-fraction   hotspot shape\n"
        "  --victim / --burst               incast shape\n"
        "  --engine     reference (per-slot loop) | event (calendar\n"
        "               core); identical output either way\n"
        "  --smoke      reduced slots for CI\n"
        "  --list       print the resolved input plans, don't run\n"
        "  --json/--csv  write result records ('-' = stdout)\n",
        prog);
}

bool
parseVariant(const std::string &tok, CrossbarConfig &cfg)
{
    if (tok == "rads") {
        cfg.variant = sim::BufferVariant::Rads;
    } else if (tok == "cfds") {
        cfg.variant = sim::BufferVariant::Cfds;
    } else if (tok == "renaming") {
        cfg.variant = sim::BufferVariant::CfdsRenaming;
    } else {
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CrossbarConfig cfg;
    bool smoke = false;
    bool list = false;
    std::string json_path;
    std::string csv_path;
    bool have_slots = false;

    for (int i = 1; i < argc; ++i) {
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--ports")) {
            cfg.ports = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--pattern")) {
            if (!sw::parseTrafficPattern(next(), cfg.pattern)) {
                usage(argv[0]);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--scheduler")) {
            if (!parseSchedulerKind(next(), cfg.scheduler)) {
                usage(argv[0]);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--iters")) {
            cfg.islipIterations = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--window")) {
            cfg.qpsWindow = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--variant")) {
            if (!parseVariant(next(), cfg)) {
                usage(argv[0]);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--load")) {
            cfg.load = std::strtod(next(), nullptr);
        } else if (!std::strcmp(argv[i], "--slots")) {
            cfg.slots = std::strtoull(next(), nullptr, 0);
            have_slots = true;
        } else if (!std::strcmp(argv[i], "--seed")) {
            cfg.masterSeed = std::strtoull(next(), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--hot-outputs")) {
            cfg.hotOutputs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--hot-fraction")) {
            cfg.hotFraction = std::strtod(next(), nullptr);
        } else if (!std::strcmp(argv[i], "--victim")) {
            cfg.incastVictim = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--burst")) {
            cfg.incastBurst = std::strtoull(next(), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--engine")) {
            const std::string tok = next();
            if (tok == "event") {
                cfg.eventEngine = true;
            } else if (tok != "reference") {
                usage(argv[0]);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--list")) {
            list = true;
        } else if (!std::strcmp(argv[i], "--json")) {
            json_path = next();
        } else if (!std::strcmp(argv[i], "--csv")) {
            csv_path = next();
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (smoke && !have_slots)
        cfg.slots = 4000;

    // An impossible knob combination (zero ports, starving hot
    // fraction, victim out of range) is a user error, not a crash.
    std::vector<InputPlan> plans;
    try {
        plans = planCrossbar(cfg);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 2;
    }

    if (list) {
        std::printf("%s\n", cfg.describe().c_str());
        for (const auto &p : plans) {
            std::printf("  input%-3u %s\n", p.input,
                        p.scenario.describe().c_str());
        }
        return 0;
    }

    std::printf("Input-queued crossbar: %u x %u, %s pattern, %s"
                " scheduler, all inputs\ngolden-checked.\n%s\n\n",
                cfg.ports, cfg.ports,
                sw::toString(cfg.pattern).c_str(),
                toString(cfg.scheduler).c_str(),
                cfg.describe().c_str());
    std::printf("%-6s %-36s %10s %10s %10s %8s  %s\n", "input",
                "leg", "arrivals", "granted", "drained", "drops",
                "status");

    const auto out = runCrossbar(cfg);
    for (std::size_t i = 0; i < out.inputs.size(); ++i) {
        const auto &plan = out.plans[i];
        const auto &in = out.inputs[i];
        std::printf("%-6u %-36s %10llu %10llu %10llu %8llu  %s\n",
                    plan.input, plan.scenario.name().c_str(),
                    static_cast<unsigned long long>(in.run.arrivals),
                    static_cast<unsigned long long>(in.verified),
                    static_cast<unsigned long long>(in.drained),
                    static_cast<unsigned long long>(in.run.drops),
                    in.passed ? "ok" : "FAIL");
        if (!in.passed)
            std::printf("      %s\n", in.failure.c_str());
    }

    const auto &rep = out.report;
    std::printf("\naggregate: arrivals=%llu matched=%llu"
                " drained=%llu drops=%llu undelivered=%llu\n"
                "fabric: throughput=%.4f mean_match_size=%.3f"
                " mean_iterations=%.3f active_slots=%llu\n",
                static_cast<unsigned long long>(rep.arrivals),
                static_cast<unsigned long long>(rep.matchEdges),
                static_cast<unsigned long long>(rep.drained),
                static_cast<unsigned long long>(rep.drops),
                static_cast<unsigned long long>(rep.undelivered),
                rep.throughput, rep.meanMatchSize,
                rep.meanIterations,
                static_cast<unsigned long long>(rep.activeSlots));
    for (const char *name : {"granted", "mean_delay_slots"}) {
        const auto *a = rep.agg(name);
        std::printf("%-18s across inputs: min=%.2f p50=%.2f"
                    " p99=%.2f max=%.2f\n",
                    name, a->min, a->p50, a->p99, a->max);
    }
    std::printf("%u inputs, %zu failed%s\n", rep.ports,
                rep.failedInputs, smoke ? " (smoke run)" : "");

    sweep::Record extra;
    extra.set("smoke", smoke);
    emitCrossbarArtifacts(cfg, out, "crossbar_sim", extra, json_path,
                          csv_path);
    return out.passed ? 0 : 1;
}
