/**
 * @file
 * Design-space explorer: prints the full dimensioning of RADS and
 * CFDS configurations -- SRAM sizes, lookahead and latency,
 * requests-register size and feasibility, technology numbers from
 * the CACTI-like model -- the way a linecard architect would use the
 * library.
 *
 *   $ ./dimensioning_explorer [oc192|oc768|oc3072] [queues] [b] [M]
 *   $ ./dimensioning_explorer              # the paper's OC-3072 setup
 *
 * With --sweep, the explorer instead walks a (Q, b) grid of design
 * points through the parallel sweep engine and prints one summary
 * row per point:
 *
 *   $ ./dimensioning_explorer --sweep [oc...] [--jobs N] [--json P]
 *                             [--csv P]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/system_config.hh"
#include "model/sram_designs.hh"
#include "sweep/emit.hh"
#include "sweep/sweep.hh"

using namespace pktbuf;
using namespace pktbuf::core;

namespace
{

/** One (Q, b) design point of the --sweep grid, as a sweep task. */
sweep::TaskResult
sweepPoint(const SystemConfig &sys)
{
    const auto B = sys.granRads();
    const bool rads = sys.gran == B;
    model::BufferParams p{sys.queues, B, sys.gran,
                          rads ? 1u : sys.banks};
    const double slot = slotTimeNs(sys.rate);
    const auto la = model::ecqfLookaheadSlots(sys.queues, sys.gran);
    const auto lat = rads ? 0 : model::latencySlots(p);
    const auto head = model::headSramSpec(p, la);
    const std::uint64_t tail_cells =
        model::tailSramCells(sys.queues, sys.gran) + lat;
    const auto h = model::sizeSramBuffer(
        model::SramDesign::GlobalCam, head.cells, head.lists,
        sys.queues);
    const auto qmax = model::maxQueuesMeetingSlot(B, sys.gran,
                                                  rads ? 1u : sys.banks,
                                                  sys.rate);

    sweep::TaskResult res;
    char line[192];
    std::snprintf(line, sizeof(line),
                  "%-8s Q=%-4u b=%-3u %-5s delay=%8.2f us"
                  " sram=%9.1f KB access=%6.2f ns %s qmax=%u\n",
                  toString(sys.rate).c_str(), sys.queues, sys.gran,
                  rads ? "RADS" : "CFDS",
                  (la + lat) * slot / 1000.0,
                  (head.cells + tail_cells) * kCellBytes /
                      1024.0,
                  h.effectiveNs, h.effectiveNs <= slot ? "ok " : "SLO",
                  qmax);
    res.text = line;
    sweep::Record rec;
    rec.set("rate", toString(sys.rate))
        .set("queues", sys.queues)
        .set("b", sys.gran)
        .set("B", B)
        .set("banks", rads ? 1u : sys.banks)
        .set("is_rads", rads)
        .set("lookahead", la)
        .set("latency_slots", lat)
        .set("delay_us", (la + lat) * slot / 1000.0)
        .set("sram_kb",
             (head.cells + tail_cells) * kCellBytes / 1024.0)
        .set("access_ns", h.effectiveNs)
        .set("meets_slot", h.effectiveNs <= slot)
        .set("qmax", qmax);
    res.records.push_back(std::move(rec));
    return res;
}

int
runSweepMode(LineRate rate, unsigned jobs,
             const std::string &json_path, const std::string &csv_path)
{
    SystemConfig base;
    base.rate = rate;

    std::vector<sweep::Task> tasks;
    for (unsigned q : {64u, 128u, 256u, 512u, 1024u}) {
        for (unsigned b : {1u, 2u, 4u, 8u, 16u, 32u}) {
            SystemConfig sys = base;
            sys.queues = q;
            sys.gran = b;
            sys.banks = 256;
            if (b > sys.granRads() || sys.granRads() % b != 0)
                continue;
            tasks.push_back(sweep::Task{
                "q" + std::to_string(q) + "_b" + std::to_string(b),
                [sys](const sweep::SweepContext &) {
                    return sweepPoint(sys);
                },
            });
        }
    }

    std::cout << "Design-space sweep at " << toString(rate) << " ("
              << tasks.size() << " points)\n\n";
    sweep::SweepOptions so;
    so.jobs = jobs;
    const auto rep = sweep::runSweep(tasks, so);
    for (const auto &r : rep.results)
        std::cout << r.text;
    std::fprintf(stderr, "[%zu points, %u jobs, %.2fs]\n",
                 tasks.size(), rep.jobs, rep.wallSeconds);

    sweep::Record meta;
    meta.set("rate", toString(rate));
    sweep::emitArtifacts(
        rep, tasks, sweep::EmitMeta{"dimensioning_explorer", meta},
        json_path, csv_path);
    return rep.failed == 0 ? 0 : 1;
}

bool
parseRate(const char *arg, LineRate &rate)
{
    if (!std::strcmp(arg, "oc192"))
        rate = LineRate::OC192;
    else if (!std::strcmp(arg, "oc768"))
        rate = LineRate::OC768;
    else if (!std::strcmp(arg, "oc3072"))
        rate = LineRate::OC3072;
    else
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    // --sweep mode: flag-style arguments.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sweep"))
            continue;
        LineRate rate = LineRate::OC3072;
        unsigned jobs = 1;
        std::string json_path, csv_path;
        for (int j = 1; j < argc; ++j) {
            if (j == i)
                continue;
            if (!std::strcmp(argv[j], "--jobs") && j + 1 < argc) {
                jobs = static_cast<unsigned>(
                    std::strtoul(argv[++j], nullptr, 0));
            } else if (!std::strcmp(argv[j], "--json") &&
                       j + 1 < argc) {
                json_path = argv[++j];
            } else if (!std::strcmp(argv[j], "--csv") &&
                       j + 1 < argc) {
                csv_path = argv[++j];
            } else if (!parseRate(argv[j], rate)) {
                std::cerr << "usage: " << argv[0]
                          << " --sweep [oc192|oc768|oc3072]"
                             " [--jobs N] [--json PATH]"
                             " [--csv PATH]\n";
                return 1;
            }
        }
        return runSweepMode(rate, jobs, json_path, csv_path);
    }

    // Single-point mode: positional arguments, unchanged.
    SystemConfig sys;
    sys.rate = LineRate::OC3072;
    sys.queues = 512;
    sys.gran = 4;
    sys.banks = 256;

    if (argc > 1) {
        if (!parseRate(argv[1], sys.rate)) {
            std::cerr << "usage: " << argv[0]
                      << " [oc192|oc768|oc3072] [queues] [b] [M]\n"
                      << "       " << argv[0]
                      << " --sweep [oc...] [--jobs N] [--json PATH]\n";
            return 1;
        }
    }
    if (argc > 2)
        sys.queues = static_cast<unsigned>(std::atoi(argv[2]));
    if (argc > 3)
        sys.gran = static_cast<unsigned>(std::atoi(argv[3]));
    if (argc > 4)
        sys.banks = static_cast<unsigned>(std::atoi(argv[4]));

    std::cout << "Design point: " << toString(sys.rate) << ", Q="
              << sys.queues << ", b=" << sys.gran << ", M="
              << sys.banks << ", t_RC=" << sys.dramRandomAccessNs
              << " ns (B=" << sys.granRads() << " slots)\n\n";

    printDimensioningReport(std::cout, sys, BufferKind::Rads);
    std::cout << "\n";
    printDimensioningReport(std::cout, sys, BufferKind::Cfds);

    // How many queues could this CFDS organization support at most?
    const auto qmax = model::maxQueuesMeetingSlot(
        sys.granRads(), sys.gran, sys.banks, sys.rate);
    const auto qmax_rads = model::maxQueuesMeetingSlot(
        sys.granRads(), sys.granRads(), 1, sys.rate);
    std::cout << "\nmax queues meeting the slot time: CFDS " << qmax
              << " vs RADS " << qmax_rads << "\n";
    return 0;
}
