/**
 * @file
 * Design-space explorer: a small CLI that prints the full
 * dimensioning of RADS and CFDS configurations -- SRAM sizes,
 * lookahead and latency, requests-register size and feasibility,
 * technology numbers from the CACTI-like model -- the way a linecard
 * architect would use the library.
 *
 *   $ ./dimensioning_explorer [oc192|oc768|oc3072] [queues] [b] [M]
 *   $ ./dimensioning_explorer              # the paper's OC-3072 setup
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/system_config.hh"
#include "model/sram_designs.hh"

using namespace pktbuf;
using namespace pktbuf::core;

int
main(int argc, char **argv)
{
    SystemConfig sys;
    sys.rate = LineRate::OC3072;
    sys.queues = 512;
    sys.gran = 4;
    sys.banks = 256;

    if (argc > 1) {
        if (!std::strcmp(argv[1], "oc192"))
            sys.rate = LineRate::OC192;
        else if (!std::strcmp(argv[1], "oc768"))
            sys.rate = LineRate::OC768;
        else if (!std::strcmp(argv[1], "oc3072"))
            sys.rate = LineRate::OC3072;
        else {
            std::cerr << "usage: " << argv[0]
                      << " [oc192|oc768|oc3072] [queues] [b] [M]\n";
            return 1;
        }
    }
    if (argc > 2)
        sys.queues = static_cast<unsigned>(std::atoi(argv[2]));
    if (argc > 3)
        sys.gran = static_cast<unsigned>(std::atoi(argv[3]));
    if (argc > 4)
        sys.banks = static_cast<unsigned>(std::atoi(argv[4]));

    std::cout << "Design point: " << toString(sys.rate) << ", Q="
              << sys.queues << ", b=" << sys.gran << ", M="
              << sys.banks << ", t_RC=" << sys.dramRandomAccessNs
              << " ns (B=" << sys.granRads() << " slots)\n\n";

    printDimensioningReport(std::cout, sys, BufferKind::Rads);
    std::cout << "\n";
    printDimensioningReport(std::cout, sys, BufferKind::Cfds);

    // How many queues could this CFDS organization support at most?
    const auto qmax = model::maxQueuesMeetingSlot(
        sys.granRads(), sys.gran, sys.banks, sys.rate);
    const auto qmax_rads = model::maxQueuesMeetingSlot(
        sys.granRads(), sys.granRads(), 1, sys.rate);
    std::cout << "\nmax queues meeting the slot time: CFDS " << qmax
              << " vs RADS " << qmax_rads << "\n";
    return 0;
}
