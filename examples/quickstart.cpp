/**
 * @file
 * Quickstart: build an OC-3072 CFDS packet buffer through the public
 * core API, print its dimensioning report, push traffic through it
 * for a while and dump the runtime statistics.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "core/system_config.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

int
main()
{
    using namespace pktbuf;

    // 1. Describe the system: line rate, queue count, DRAM timing.
    core::SystemConfig sys;
    sys.rate = LineRate::OC768; // small structures: instant demo
    sys.queues = 32;
    sys.gran = 2;   // CFDS granularity b
    sys.banks = 64; // DRAM banks M

    // 2. Inspect the dimensioning the library derives (SRAM sizes,
    //    requests register, latency, technology feasibility).
    core::printDimensioningReport(std::cout, sys,
                                  core::BufferKind::Cfds);

    // 3. Build the buffer and drive it: one possible arrival and one
    //    arbiter request per time-slot.
    auto buffer = core::makeBuffer(sys, core::BufferKind::Cfds);
    sim::UniformRandom traffic(sys.queues, /*seed=*/2026,
                               /*load=*/0.95);
    sim::SimRunner runner(*buffer, traffic); // golden checker on

    const auto result = runner.run(200000);

    std::cout << "\nran " << result.slots << " slots: "
              << result.arrivals << " arrivals, " << result.grants
              << " grants (every grant verified in FIFO order)\n";
    std::cout << "mean delay " << result.meanDelaySlots
              << " slots, max " << result.maxDelaySlots << "\n";

    const auto rep = buffer->report();
    std::cout << "DRAM block reads " << rep.dramReads << ", writes "
              << rep.dramWrites << ", SRAM-to-SRAM bypass cells "
              << rep.bypasses << "\n";
    std::cout << "h-SRAM high water " << rep.headSramHighWater
              << " cells, t-SRAM " << rep.tailSramHighWater
              << " cells, RR high water " << rep.rrHighWater << "\n";
    std::cout << "zero misses, zero bank conflicts (either would"
                 " have aborted the run)\n";
    return 0;
}
