/**
 * @file
 * CLI front end of the scenario-matrix differential harness: run the
 * full (or --smoke) sweep of buffer variant x workload x granularity
 * x queue count, print one row per leg, and exit non-zero if any leg
 * violates the golden model.  Failures always print the seed so the
 * leg can be replayed bit-for-bit.
 *
 *   scenario_matrix [--smoke] [--list] [--filter SUBSTR]
 *                   [--seed N] [--slots N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/scenario.hh"

using namespace pktbuf;
using namespace pktbuf::sim;

namespace
{

void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [--smoke] [--list] [--filter SUBSTR]"
                 " [--seed N] [--slots N]\n"
                 "  --smoke    reduced sweep for CI (fewer legs and"
                 " slots)\n"
                 "  --list     print the legs without running them\n"
                 "  --filter   run only legs whose name contains"
                 " SUBSTR\n"
                 "  --seed     override every leg's seed with N\n"
                 "  --slots    override every leg's slot count\n",
                 prog);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool list = false;
    std::string filter;
    std::uint64_t seed_override = 0;
    bool have_seed = false;
    std::uint64_t slots_override = 0;
    bool have_slots = false;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--list")) {
            list = true;
        } else if (!std::strcmp(argv[i], "--filter") && i + 1 < argc) {
            filter = argv[++i];
        } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
            seed_override = std::strtoull(argv[++i], nullptr, 0);
            have_seed = true;
        } else if (!std::strcmp(argv[i], "--slots") && i + 1 < argc) {
            slots_override = std::strtoull(argv[++i], nullptr, 0);
            have_slots = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    auto matrix = smoke ? smokeMatrix() : defaultMatrix();
    std::vector<Scenario> selected;
    for (auto &s : matrix) {
        if (!filter.empty() &&
            s.name().find(filter) == std::string::npos) {
            continue;
        }
        if (have_seed)
            s.seed = seed_override;
        if (have_slots)
            s.slots = slots_override;
        selected.push_back(s);
    }

    if (selected.empty() && !filter.empty()) {
        // A typo'd filter silently running zero legs would read as a
        // green CI step; fail loudly instead.
        std::fprintf(stderr, "%s: --filter '%s' matches no leg\n",
                     argv[0], filter.c_str());
        return 2;
    }

    if (list) {
        for (const auto &s : selected)
            std::printf("%s\n", s.describe().c_str());
        return 0;
    }

    std::printf("%-40s %10s %10s %10s %8s %8s  %s\n", "leg",
                "arrivals", "granted", "drained", "drops", "renames",
                "status");
    unsigned failed = 0;
    for (const auto &s : selected) {
        const auto out = runScenario(s);
        std::printf("%-40s %10llu %10llu %10llu %8llu %8llu  %s\n",
                    s.name().c_str(),
                    static_cast<unsigned long long>(out.run.arrivals),
                    static_cast<unsigned long long>(out.verified),
                    static_cast<unsigned long long>(out.drained),
                    static_cast<unsigned long long>(out.run.drops),
                    static_cast<unsigned long long>(out.report.renames),
                    out.passed ? "ok" : "FAIL");
        if (!out.passed) {
            ++failed;
            std::printf("  %s\n", out.failure.c_str());
        }
    }
    std::printf("\n%zu legs, %u failed%s\n", selected.size(), failed,
                smoke ? " (smoke sweep)" : "");
    return failed == 0 ? 0 : 1;
}
