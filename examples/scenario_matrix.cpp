/**
 * @file
 * CLI front end of the scenario-matrix differential harness: run the
 * full (or --smoke) sweep of buffer variant x workload x granularity
 * x queue count through the parallel sweep engine, print one row per
 * leg, and exit non-zero if any leg violates the golden model.
 * Failures always print the seed so the leg can be replayed
 * bit-for-bit.
 *
 *   scenario_matrix [--smoke] [--timing] [--list] [--filter SUBSTR]
 *                   [--seed N] [--seed-exact N] [--slots N]
 *                   [--engine reference|event] [--jobs N]
 *                   [--json PATH] [--csv PATH]
 *
 * --engine event runs every leg on the event-calendar core; the
 * engine is a pure execution strategy (excluded from leg names and
 * records), so the output must stay byte-identical to --engine
 * reference -- which is exactly what the CI differential smoke
 * asserts with cmp.
 *
 * --timing selects the timed-DRAM adversarial matrix (refresh storm,
 * turnaround thrash, asymmetric bank groups) instead of the legacy
 * matrix, so the legacy sweep's output stays byte-identical.
 *
 * --seed N reseeds leg i with splitmix(N, i) (decorrelated sweep
 * from one number); --seed-exact N gives every selected leg exactly
 * seed N -- the replay knob: a failure log names the leg and its
 * actual seed, and `--filter LEG --seed-exact SEED` reruns that leg
 * bit-for-bit regardless of its position in the matrix.
 *
 * Output (stdout and the JSON/CSV artifacts) is byte-identical for
 * any --jobs value: legs run in parallel, but results aggregate in
 * leg order and each leg's randomness is fixed by its own seed.
 * Timing is printed to stderr only, for the same reason.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/scenario.hh"
#include "sweep/emit.hh"
#include "sweep/scenario_sweep.hh"
#include "sweep/sweep.hh"

using namespace pktbuf;
using namespace pktbuf::sim;

namespace
{

void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [--smoke] [--timing] [--list]"
                 " [--filter SUBSTR]"
                 " [--seed N] [--slots N]\n"
                 "          [--jobs N] [--json PATH] [--csv PATH]\n"
                 "  --smoke    reduced sweep for CI (fewer legs and"
                 " slots)\n"
                 "  --timing   the timed-DRAM adversarial matrix"
                 " (refresh / turnaround / asym)\n"
                 "  --list     print the legs without running them\n"
                 "  --filter   run only legs whose name contains"
                 " SUBSTR\n"
                 "  --seed     master seed: leg i runs with"
                 " splitmix(N, i)\n"
                 "  --seed-exact  give every selected leg exactly"
                 " seed N\n"
                 "             (replays a failure from its logged"
                 " seed)\n"
                 "  --slots    override every leg's slot count\n"
                 "  --engine   reference (per-slot loop) | event"
                 " (calendar core);\n"
                 "             identical output either way\n"
                 "  --jobs     worker threads (0 = all cores);"
                 " output is\n"
                 "             byte-identical for any value\n"
                 "  --json     write result records as JSON"
                 " ('-' = stdout)\n"
                 "  --csv      write result records as CSV\n",
                 prog);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool timing = false;
    bool list = false;
    std::string filter;
    std::uint64_t seed_override = 0;
    bool have_seed = false;
    std::uint64_t seed_exact = 0;
    bool have_seed_exact = false;
    std::uint64_t slots_override = 0;
    bool have_slots = false;
    bool event_engine = false;
    unsigned jobs = 1;
    std::string json_path;
    std::string csv_path;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--timing")) {
            timing = true;
        } else if (!std::strcmp(argv[i], "--list")) {
            list = true;
        } else if (!std::strcmp(argv[i], "--filter") && i + 1 < argc) {
            filter = argv[++i];
        } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
            seed_override = std::strtoull(argv[++i], nullptr, 0);
            have_seed = true;
        } else if (!std::strcmp(argv[i], "--seed-exact") &&
                   i + 1 < argc) {
            seed_exact = std::strtoull(argv[++i], nullptr, 0);
            have_seed_exact = true;
        } else if (!std::strcmp(argv[i], "--slots") && i + 1 < argc) {
            slots_override = std::strtoull(argv[++i], nullptr, 0);
            have_slots = true;
        } else if (!std::strcmp(argv[i], "--engine") && i + 1 < argc) {
            const std::string tok = argv[++i];
            if (tok == "event") {
                event_engine = true;
            } else if (tok != "reference") {
                usage(argv[0]);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc) {
            csv_path = argv[++i];
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (have_seed && have_seed_exact) {
        std::fprintf(stderr,
                     "%s: --seed and --seed-exact are exclusive\n",
                     argv[0]);
        return 2;
    }

    auto matrix = timing ? (smoke ? timingSmokeMatrix()
                                  : timingMatrix())
                         : (smoke ? smokeMatrix() : defaultMatrix());
    std::vector<Scenario> selected;
    for (auto &s : matrix) {
        if (!filter.empty() &&
            s.name().find(filter) == std::string::npos) {
            continue;
        }
        if (have_slots)
            s.slots = slots_override;
        if (have_seed_exact)
            s.seed = seed_exact;
        s.eventEngine = event_engine;
        selected.push_back(s);
    }

    if (selected.empty() && !filter.empty()) {
        // A typo'd filter silently running zero legs would read as a
        // green CI step; fail loudly instead.
        std::fprintf(stderr, "%s: --filter '%s' matches no leg\n",
                     argv[0], filter.c_str());
        return 2;
    }

    if (list) {
        for (const auto &s : selected)
            std::printf("%s\n", s.describe().c_str());
        return 0;
    }

    auto tasks = sweep::makeScenarioTasks(selected,
                                          /*deriveSeeds=*/have_seed);
    sweep::SweepOptions so;
    so.jobs = jobs;
    if (have_seed)
        so.masterSeed = seed_override;

    std::fputs(sweep::scenarioTableHeader().c_str(), stdout);
    const auto rep = sweep::runSweep(tasks, so);
    for (const auto &r : rep.results)
        std::fputs(r.text.c_str(), stdout);
    std::printf("\n%zu legs, %zu failed%s\n", selected.size(),
                rep.failed, smoke ? " (smoke sweep)" : "");
    // Timing never goes to stdout: stdout must stay byte-identical
    // across --jobs values.
    std::fprintf(stderr, "[%zu legs, %u jobs, %.2fs]\n",
                 selected.size(), rep.jobs, rep.wallSeconds);

    sweep::Record meta;
    meta.set("smoke", smoke).set("legs", selected.size());
    if (timing)
        meta.set("timing", true);
    if (have_seed)
        meta.set("master_seed", seed_override);
    if (have_seed_exact)
        meta.set("seed_exact", seed_exact);
    sweep::emitArtifacts(rep, tasks,
                         sweep::EmitMeta{"scenario_matrix", meta},
                         json_path, csv_path);
    return rep.failed == 0 ? 0 : 1;
}
