/**
 * @file
 * CLI front end of the switch-scale simulator: N independent hybrid
 * SRAM/DRAM buffer ports driven by a cross-port traffic pattern
 * (uniform / hotspot / incast / permutation), every port
 * golden-checked and drained, per-port rows plus a switch-level
 * aggregate.
 *
 *   switch_sim [--ports N] [--pattern NAME] [--variant NAME|mixed]
 *              [--queues Q] [--load F] [--slots N] [--seed N]
 *              [--hot-ports K] [--hot-fraction F] [--burst N]
 *              [--victim P] [--engine reference|event] [--smoke]
 *              [--list] [--stats] [--jobs N] [--json PATH]
 *              [--csv PATH]
 *
 * Ports shard onto the sweep engine's thread pool (--jobs), but
 * stdout and the JSON/CSV artifacts are byte-identical for any
 * --jobs value: every port's randomness is fixed by
 * deriveSeed(--seed, port) and results aggregate in port order.
 * A 1-port --pattern uniform run reproduces the matching
 * single-buffer scenario leg bit-for-bit.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "sweep/record.hh"
#include "switch/switch_sim.hh"

using namespace pktbuf;
using namespace pktbuf::sw;

namespace
{

void
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [--ports N] [--pattern NAME] [--variant NAME]\n"
        "          [--queues Q] [--load F] [--slots N] [--seed N]\n"
        "          [--hot-ports K] [--hot-fraction F] [--burst N]\n"
        "          [--victim P] [--engine reference|event] [--smoke]\n"
        "          [--list] [--stats] [--jobs N] [--json PATH]\n"
        "          [--csv PATH]\n"
        "  --ports     port count (default 4)\n"
        "  --pattern   uniform | hotspot | incast | permutation\n"
        "  --variant   rads | cfds | renaming | mixed (cycled)\n"
        "  --queues    VOQs per port (default 8)\n"
        "  --load      mean offered load per port (default 0.45)\n"
        "  --slots     driven slots per port (default 20000)\n"
        "  --seed      master seed; port p uses splitmix(seed, p)\n"
        "  --hot-ports / --hot-fraction   hotspot shape\n"
        "  --victim / --burst             incast shape\n"
        "  --engine    reference (per-slot loop) | event (calendar\n"
        "              core); identical output either way\n"
        "  --smoke     reduced slots for CI\n"
        "  --list      print the resolved port plans, don't run\n"
        "  --stats     dump the namespaced per-port stat registry\n"
        "  --jobs      worker threads (0 = all cores); output is\n"
        "              byte-identical for any value\n"
        "  --json/--csv  write result records ('-' = stdout)\n",
        prog);
}

bool
parseVariant(const std::string &tok, SwitchConfig &cfg)
{
    if (tok == "mixed") {
        cfg.mixedVariants = true;
    } else if (tok == "rads") {
        cfg.variant = sim::BufferVariant::Rads;
    } else if (tok == "cfds") {
        cfg.variant = sim::BufferVariant::Cfds;
    } else if (tok == "renaming") {
        cfg.variant = sim::BufferVariant::CfdsRenaming;
    } else {
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    SwitchConfig cfg;
    bool smoke = false;
    bool list = false;
    bool stats = false;
    unsigned jobs = 1;
    std::string json_path;
    std::string csv_path;
    bool have_slots = false;

    for (int i = 1; i < argc; ++i) {
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--ports")) {
            cfg.ports = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--pattern")) {
            if (!parseTrafficPattern(next(), cfg.pattern)) {
                usage(argv[0]);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--variant")) {
            if (!parseVariant(next(), cfg)) {
                usage(argv[0]);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--queues")) {
            cfg.queues = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--load")) {
            cfg.load = std::strtod(next(), nullptr);
        } else if (!std::strcmp(argv[i], "--slots")) {
            cfg.slots = std::strtoull(next(), nullptr, 0);
            have_slots = true;
        } else if (!std::strcmp(argv[i], "--seed")) {
            cfg.masterSeed = std::strtoull(next(), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--hot-ports")) {
            cfg.hotPorts = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--hot-fraction")) {
            cfg.hotFraction = std::strtod(next(), nullptr);
        } else if (!std::strcmp(argv[i], "--victim")) {
            cfg.incastVictim = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--burst")) {
            cfg.incastBurst = std::strtoull(next(), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--engine")) {
            const std::string tok = next();
            if (tok == "event") {
                cfg.eventEngine = true;
            } else if (tok != "reference") {
                usage(argv[0]);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--list")) {
            list = true;
        } else if (!std::strcmp(argv[i], "--stats")) {
            stats = true;
        } else if (!std::strcmp(argv[i], "--jobs")) {
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--json")) {
            json_path = next();
        } else if (!std::strcmp(argv[i], "--csv")) {
            csv_path = next();
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (smoke && !have_slots)
        cfg.slots = 4000;

    // An impossible knob combination (zero ports, starving hot
    // fraction, victim out of range) is a user error, not a crash.
    std::optional<SwitchSim> sim;
    try {
        sim.emplace(cfg);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 2;
    }

    if (list) {
        std::printf("%s\n", cfg.describe().c_str());
        for (const auto &p : sim->plans()) {
            std::printf("  port%-3u %s\n", p.port,
                        p.scenario.describe().c_str());
        }
        return 0;
    }

    std::printf("Switch-scale simulation: %u ports, %s pattern, all"
                " ports golden-checked.\n%s\n\n",
                cfg.ports, toString(cfg.pattern).c_str(),
                cfg.describe().c_str());
    std::printf("%-5s %-36s %10s %10s %10s %8s %8s  %s\n", "port",
                "leg", "arrivals", "granted", "drained", "drops",
                "renames", "status");

    const auto out = sim->run(jobs);
    for (std::size_t i = 0; i < out.ports.size(); ++i) {
        const auto &plan = out.plans[i];
        const auto &po = out.ports[i];
        std::printf("%-5u %-36s %10llu %10llu %10llu %8llu %8llu  %s\n",
                    plan.port, plan.scenario.name().c_str(),
                    static_cast<unsigned long long>(po.run.arrivals),
                    static_cast<unsigned long long>(po.verified),
                    static_cast<unsigned long long>(po.drained),
                    static_cast<unsigned long long>(po.run.drops),
                    static_cast<unsigned long long>(po.report.renames),
                    po.passed ? "ok" : "FAIL");
        if (!po.passed)
            std::printf("      %s\n", po.failure.c_str());
    }

    const auto &rep = out.report;
    std::printf("\naggregate: arrivals=%llu granted=%llu"
                " drained=%llu drops=%llu undelivered=%llu"
                " renames=%llu\n",
                static_cast<unsigned long long>(rep.arrivals),
                static_cast<unsigned long long>(rep.granted),
                static_cast<unsigned long long>(rep.drained),
                static_cast<unsigned long long>(rep.drops),
                static_cast<unsigned long long>(rep.undelivered),
                static_cast<unsigned long long>(rep.renames));
    for (const char *name : {"granted", "drops", "mean_delay_slots"}) {
        const auto *a = rep.agg(name);
        std::printf("%-18s across ports: min=%.2f p50=%.2f p99=%.2f"
                    " max=%.2f\n",
                    name, a->min, a->p50, a->p99, a->max);
    }
    std::printf("%u ports, %zu failed%s\n", rep.ports,
                rep.failedPorts, smoke ? " (smoke run)" : "");

    if (stats) {
        std::ostringstream os;
        rep.stats.dump(os);
        std::fputs(os.str().c_str(), stdout);
    }

    sweep::Record extra;
    extra.set("smoke", smoke);
    emitSwitchArtifacts(cfg, out, "switch_sim", extra, json_path,
                        csv_path);
    return out.passed ? 0 : 1;
}
