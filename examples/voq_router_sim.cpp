/**
 * @file
 * Input-queued router simulation (Figure 1): N input ports, each
 * with a CFDS VOQ buffer over N outputs x C service classes, a
 * uniform traffic matrix, and a round-robin switch-fabric scheduler
 * that computes an input/output matching every slot and requests the
 * matched head-of-line cells.
 *
 * Demonstrates the buffer's intended use as the per-linecard VOQ
 * store and reports per-class throughput and delay.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "buffer/hybrid_buffer.hh"
#include "common/random.hh"
#include "sim/golden.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;

namespace
{

constexpr unsigned kPorts = 4;
constexpr unsigned kClasses = 2;
constexpr unsigned kVoqs = kPorts * kClasses; // per input buffer

QueueId
voqOf(unsigned out, unsigned cls)
{
    return out * kClasses + cls;
}

/** Per-input bookkeeping: cells enqueued but not yet requested. */
struct InputState
{
    std::unique_ptr<HybridBuffer> buffer;
    std::vector<std::uint64_t> backlog =
        std::vector<std::uint64_t>(kVoqs, 0);
    std::vector<SeqNum> next_seq =
        std::vector<SeqNum>(kVoqs, 0);
    sim::GoldenChecker checker{kVoqs};
    unsigned rr_out = 0; // round-robin pointer over outputs
};

} // namespace

int
main()
{
    BufferConfig cfg;
    cfg.params = model::BufferParams{kVoqs, 8, 2, 16};
    std::vector<InputState> inputs(kPorts);
    for (auto &in : inputs)
        in.buffer = std::make_unique<HybridBuffer>(cfg);

    Rng rng(7);
    const double load = 0.9;
    std::uint64_t granted = 0, injected = 0;
    double delay_sum = 0;

    const std::uint64_t slots = 300000;
    for (Slot t = 0; t < slots; ++t) {
        // Switch scheduler: one round-robin matching per slot; each
        // output is granted to at most one input and vice versa.
        std::vector<bool> out_taken(kPorts, false);
        std::vector<QueueId> request(kPorts, kInvalidQueue);
        for (unsigned i = 0; i < kPorts; ++i) {
            auto &in = inputs[i];
            for (unsigned k = 0; k < kPorts; ++k) {
                const unsigned out = (in.rr_out + k) % kPorts;
                if (out_taken[out])
                    continue;
                // Strict-priority class selection within the output.
                for (unsigned c = 0; c < kClasses; ++c) {
                    const QueueId q = voqOf(out, c);
                    if (in.backlog[q] > 0) {
                        request[i] = q;
                        --in.backlog[q];
                        out_taken[out] = true;
                        in.rr_out = (out + 1) % kPorts;
                        break;
                    }
                }
                if (request[i] != kInvalidQueue)
                    break;
            }
        }

        // Per-input arrivals + buffer step.
        for (unsigned i = 0; i < kPorts; ++i) {
            auto &in = inputs[i];
            std::optional<Cell> arrival;
            if (rng.chance(load)) {
                const unsigned out =
                    static_cast<unsigned>(rng.below(kPorts));
                const unsigned cls = rng.chance(0.25) ? 0 : 1;
                const QueueId q = voqOf(out, cls);
                Cell c;
                c.queue = q;
                c.seq = in.next_seq[q]++;
                c.arrival = t;
                arrival = c;
                ++in.backlog[q];
                ++injected;
            }
            const auto grant = in.buffer->step(arrival, request[i]);
            if (grant) {
                in.checker.onGrant(grant->logicalQueue, grant->cell);
                ++granted;
                delay_sum +=
                    static_cast<double>(t - grant->cell.arrival);
            }
        }
    }

    std::printf("VOQ router: %u ports x %u classes, load %.2f, %lu"
                " slots\n",
                kPorts, kClasses, load,
                static_cast<unsigned long>(slots));
    std::printf("injected %lu cells, granted %lu (throughput %.3f"
                " of line rate per port)\n",
                static_cast<unsigned long>(injected),
                static_cast<unsigned long>(granted),
                static_cast<double>(granted) / (slots * kPorts));
    std::printf("mean cell delay %.1f slots (includes the %lu-slot"
                " grant pipeline)\n",
                delay_sum / static_cast<double>(granted),
                static_cast<unsigned long>(
                    inputs[0].buffer->pipelineDepth()));
    std::printf("every grant FIFO-verified per VOQ; no misses, no"
                " bank conflicts\n");
    return 0;
}
