/**
 * @file
 * The worst-case story of the paper in one program:
 *
 *  1. the adversarial round-robin pattern (every queue drained in
 *     lockstep) against a fully dimensioned CFDS buffer -- zero
 *     misses, by construction;
 *  2. the same request stream against a *naive* banked DRAM that
 *     issues strictly in FIFO order with no conflict-free scheduler:
 *     bank conflicts stall the pipeline and the worst-case service
 *     delay blows past what any bounded latency register could hide
 *     (i.e. cells would be lost).
 *
 * This is why the DSS exists (Sections 4-5).
 */

#include <cstdio>

#include "buffer/hybrid_buffer.hh"
#include "dram/address_map.hh"
#include "dram/bank_state.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

/**
 * Naive banked DRAM: requests launch strictly in arrival order; a
 * request to a busy bank blocks everything behind it (no wake-up /
 * select).  Returns the worst queueing delay in slots.
 */
std::uint64_t
naiveFifoWorstDelay(unsigned queues, unsigned B, unsigned b,
                    unsigned banks, std::uint64_t accesses)
{
    dram::AddressMap map(banks, B / b);
    dram::BankState state(banks, B);
    Rng rng(99);
    std::vector<std::uint64_t> ord(queues, 0);

    std::uint64_t worst = 0;
    Slot now = 0;
    std::deque<std::pair<unsigned, Slot>> fifo; // (bank, issued)
    for (std::uint64_t n = 0; n < accesses; ++n) {
        now += b; // one new request per granularity interval
        // Adversarial stream: consecutive requests alternate between
        // two queues of the same group, hammering bank pairs.
        const QueueId q = static_cast<QueueId>(
            (n % 2) * map.groups()); // same group 0
        fifo.emplace_back(map.bankOf(q, ord[q]), now);
        ++ord[q];
        // FIFO head launches only when ITS bank is free.
        while (!fifo.empty() &&
               !state.busy(fifo.front().first, now)) {
            state.startAccess(fifo.front().first, now);
            worst = std::max(worst, now - fifo.front().second);
            fifo.pop_front();
        }
    }
    // Drain what is left.
    while (!fifo.empty()) {
        if (!state.busy(fifo.front().first, now)) {
            state.startAccess(fifo.front().first, now);
            worst = std::max(worst, now - fifo.front().second);
            fifo.pop_front();
        }
        ++now;
    }
    return worst;
}

} // namespace

int
main()
{
    const unsigned queues = 16, B = 8, b = 2, banks = 32;

    std::printf("1) CFDS under the ECQF worst case (Q=%u, B=%u, b=%u,"
                " M=%u)\n",
                queues, B, b, banks);
    BufferConfig cfg;
    cfg.params = model::BufferParams{queues, B, b, banks};
    HybridBuffer buf(cfg);
    RoundRobinWorstCase wl(queues, 1, 1.0, 128);
    SimRunner runner(buf, wl);
    const auto r = runner.run(200000);
    const auto rep = buf.report();
    std::printf("   %lu grants, 0 misses, 0 bank conflicts"
                " (guaranteed by construction)\n",
                static_cast<unsigned long>(r.grants));
    std::printf("   requests register high water %ld (cap %lu),"
                " max skips %ld\n",
                rep.rrHighWater,
                static_cast<unsigned long>(
                    buf.scheduler().rr().capacity()),
                rep.rrMaxSkips);
    std::printf("   every grant exactly %lu slots after its request"
                " -- the worst-case bound IS the delay\n\n",
                static_cast<unsigned long>(buf.pipelineDepth()));

    std::printf("2) Naive FIFO banked DRAM, same bank organization,"
                " adversarial stream\n");
    const auto worst =
        naiveFifoWorstDelay(queues, B, b, banks, 20000);
    const auto budget = model::latencySlots(cfg.params);
    std::printf("   worst queueing delay %lu slots vs the %lu-slot"
                " latency budget the CFDS\n   latency register"
                " provides -- %s\n",
                static_cast<unsigned long>(worst),
                static_cast<unsigned long>(budget),
                worst > budget
                    ? "the naive design would MISS (lose cells)"
                    : "(adversary too weak; try more accesses)");
    std::printf("\nConclusion: banking alone is not enough; the"
                " issue-queue-like DSA is what makes\nthe worst case"
                " safe (Sections 4-5 of the paper).\n");
    return 0;
}
