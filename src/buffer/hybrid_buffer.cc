#include "hybrid_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pktbuf::buffer
{

namespace
{

using model::BufferParams;

unsigned
resolveBanks(const BufferConfig &cfg)
{
    // RADS is not banked: two serialized channels (read, write).
    return cfg.params.isRads() ? 1 : cfg.params.banks;
}

unsigned
resolveBanksPerGroup(const BufferConfig &cfg)
{
    return cfg.params.isRads() ? 1 : cfg.params.banksPerGroup();
}

/**
 * Resolve the DDR timing policy.  Non-uniform configs are CFDS-only:
 * RADS has no DSS to honor refresh windows or turnaround rules.
 */
std::shared_ptr<const dram::DramTiming>
resolveTiming(const BufferConfig &cfg)
{
    fatal_if(!cfg.timing.isUniform() && cfg.params.isRads(),
             "the timed DRAM model (refresh/turnaround/per-group"
             " t_RC) requires the banked CFDS organization");
    return std::make_shared<const dram::DramTiming>(
        cfg.timing, resolveBanks(cfg), resolveBanksPerGroup(cfg),
        cfg.params.granRads);
}

/** Per-bank access times for the BankState oracle; empty = uniform
 *  legacy model (exactly the old behavior). */
std::vector<Slot>
resolveBankSlots(const BufferConfig &cfg,
                 const dram::DramTiming &timing)
{
    if (cfg.params.isRads() ||
        (cfg.timing.groupTRc.empty() && cfg.timing.tRc == 0)) {
        return {};
    }
    std::vector<Slot> v(timing.banks());
    for (unsigned bank = 0; bank < timing.banks(); ++bank)
        v[bank] = timing.accessSlots(bank);
    return v;
}

/**
 * Extra grant-pipeline depth hiding the timed DRAM model's stalls.
 *
 * Eq. (3) budgets the DSS reordering delay of the *uniform* model;
 * each timed constraint can hold a read back further: a slow group's
 * bank stays busy (t_RC - B) longer per access across the B/b banks
 * a queue cycles over, a refresh blackout refuses launches for t_RFC
 * slots (and the deferred access may collide with the *next*
 * blackout before draining), and every direction switch can push a
 * launch out by the turnaround penalty.  Stall cascades amplify the
 * sum -- a deferred access keeps its bank busy later, deferring its
 * successors -- so the budget doubles it and adds one access time of
 * headroom.  Validated empirically by the timing scenario legs
 * (zero misses, golden-checked); the uniform default adds nothing.
 */
std::uint64_t
timingLatencySlack(const BufferConfig &cfg)
{
    const auto &t = cfg.timing;
    if (t.isUniform())
        return 0;
    const Slot B = cfg.params.granRads;
    const unsigned bpg = cfg.params.banksPerGroup();
    // A tRc *below* B (faster-than-B banks) needs no extra budget;
    // guard the subtraction rather than underflow it.
    const Slot max_trc = t.maxTRc(B);
    std::uint64_t slack = (max_trc > B ? max_trc - B : 0) * bpg;
    if (t.tRefi)
        slack += 2 * t.tRfc + B;
    slack += t.turnaround * bpg;
    return 2 * slack + B;
}

/**
 * Extra lookahead hiding grant concentration on few logical queues:
 * model::concentrationSlackSlots (see its header comment for the
 * bandwidth argument) applied to renaming configs.  The ECQF
 * lookahead deepens by this many slots, and the enforced h-SRAM
 * capacity grows by the same count, since each added slot can park
 * at most one replenished-not-yet-consumed cell.
 */
std::uint64_t
concentrationLookaheadSlack(const BufferConfig &cfg)
{
    if (!cfg.renaming)
        return 0;
    return model::concentrationSlackSlots(
        cfg.params, cfg.effectiveLogicalQueues());
}

std::uint64_t
resolveLookahead(const BufferConfig &cfg)
{
    if (cfg.lookahead)
        return cfg.lookahead;
    if (cfg.mma == MmaKind::Mdqf)
        return 1; // no useful lookahead: pass-through stage
    return model::ecqfLookaheadSlots(cfg.params.queues,
                                     std::max(cfg.params.gran, 1u)) +
           concentrationLookaheadSlack(cfg);
}

std::uint64_t
resolveLatency(const BufferConfig &cfg)
{
    // The grant pipeline must hide the DRAM access itself: a
    // replenish issued by the MMA at decision time delivers its
    // cells B slots later, so grants trail the lookahead exit by a
    // delivery stage.  For RADS that stage is exactly B; for CFDS,
    // Eq. (3) extends it by the worst-case DSS reordering delay.
    if (cfg.params.isRads())
        return cfg.params.granRads;
    return model::latencySlots(cfg.params) + timingLatencySlack(cfg);
}

std::uint64_t
resolveHeadCells(const BufferConfig &cfg, std::uint64_t lookahead)
{
    if (cfg.measureOnly)
        return 0;
    if (cfg.headSramCells)
        return cfg.headSramCells;
    const auto &p = cfg.params;
    std::uint64_t base;
    if (cfg.mma == MmaKind::Mdqf)
        base = model::mdqfSramCells(p.queues, p.gran);
    else
        base = model::radsSramCells(lookahead, p.queues, p.gran);
    // The paper's bound assumes every request targets DRAM-resident
    // backlog.  The functional simulator additionally supports
    // cut-through (cells requested while still in the tail SRAM),
    // served by the bypass path; measured worst-case occupancy stays
    // under twice the analytical bound (see test_properties), so the
    // *enforced* capacity doubles the base term.  The analytical
    // figures (Figs. 8/10/11) use the paper's formulas unchanged.
    return 2 * base + resolveLatency(cfg) + p.gran + 1 +
           concentrationLookaheadSlack(cfg);
}

std::uint64_t
resolveTailCells(const BufferConfig &cfg)
{
    if (cfg.measureOnly)
        return 0;
    if (cfg.tailSramCells)
        return cfg.tailSramCells;
    const auto &p = cfg.params;
    // Concentration mirrors into the write path: while a hot chain's
    // group is saturated the arriving cells park in the t-SRAM, so
    // the same slack that deepens the lookahead pads the staging
    // space (zero outside renaming L < 4).
    return model::tailSramCells(p.queues, p.gran) +
           resolveLatency(cfg) + concentrationLookaheadSlack(cfg);
}

std::uint64_t
resolveRrCapacity(const BufferConfig &cfg)
{
    if (cfg.measureOnly || cfg.params.isRads())
        return 0;
    if (cfg.rrCapacity)
        return cfg.rrCapacity + cfg.rrSlack;
    // +4: the combined register also holds the current interval's
    // incoming read and write until their launch opportunities come
    // around, and same-queue write ordering can briefly extend the
    // window (the paper's R counts steady-state residents; measured
    // worst-case excess over R across the validation sweep is 3 --
    // see DESIGN.md on the Eq. (1) reconstruction).  With a timed
    // DRAM model, requests deferred by refresh/turnaround/slow banks
    // pile up: one read and one write can arrive per granularity
    // interval of deferral, so the slack scales with the latency
    // extension.
    std::uint64_t timing_slack = 0;
    if (!cfg.timing.isUniform()) {
        const unsigned b = std::max(cfg.params.gran, 1u);
        timing_slack = 2 * (timingLatencySlack(cfg) / b + 2);
    }
    // Concentrated renaming traffic (L < 4) defers writes behind the
    // hot group's reads; each b deferred cells hold one RR entry, so
    // the concentration slack pads the register too.
    const std::uint64_t concentration_slack =
        concentrationLookaheadSlack(cfg) /
        std::max(cfg.params.gran, 1u);
    return model::rrSize(cfg.params) + 4 + timing_slack +
           concentration_slack + cfg.rrSlack;
}

std::uint64_t
resolveGroupCapacity(const BufferConfig &cfg, unsigned groups)
{
    if (cfg.dramCells == 0)
        return 0;
    std::uint64_t per_group = cfg.dramCells / groups;
    per_group -= per_group % cfg.params.gran;
    fatal_if(per_group == 0, "DRAM capacity of ", cfg.dramCells,
             " cells is too small for ", groups,
             " groups at granularity ", cfg.params.gran);
    return per_group;
}

} // namespace

HybridBuffer::HybridBuffer(const BufferConfig &cfg)
    : cfg_(cfg),
      rads_(cfg.params.isRads()),
      event_core_(cfg.eventCore),
      event_skip_(cfg.eventCore && cfg.mma == MmaKind::Ecqf),
      phys_queues_(cfg.params.queues),
      gran_(cfg.params.gran),
      gran_rads_(cfg.params.granRads),
      map_(resolveBanks(cfg), resolveBanksPerGroup(cfg)),
      timing_(resolveTiming(cfg)),
      banks_(rads_ ? 2 : cfg.params.banks, cfg.params.granRads,
             resolveBankSlots(cfg, *timing_)),
      dram_(phys_queues_, gran_, map_.groups(),
            resolveGroupCapacity(cfg, map_.groups())),
      tail_(phys_queues_, resolveTailCells(cfg)),
      head_(phys_queues_, resolveHeadCells(cfg, resolveLookahead(cfg))),
      hmma_(phys_queues_),
      mdqf_(phys_queues_),
      tmma_(phys_queues_),
      look_(resolveLookahead(cfg), PipeEntry{}),
      orr_(timing_),
      rt_(nullptr),
      next_read_issue_(phys_queues_, 0),
      next_write_issue_(phys_queues_, 0),
      replenish_seq_(phys_queues_, 0),
      pending_unlaunched_writes_(phys_queues_, 0),
      committed_(map_.groups(), 0),
      group_capacity_(resolveGroupCapacity(cfg, map_.groups()))
{
    cfg_.params.validate();
    fatal_if(cfg_.renaming && rads_,
             "queue renaming requires the banked CFDS organization");
    const unsigned logical = cfg_.effectiveLogicalQueues();
    fatal_if(logical > phys_queues_,
             "more logical queues (", logical,
             ") than physical queues (", phys_queues_, ")");
    fatal_if(cfg_.renaming && cfg_.dramCells == 0,
             "renaming is pointless with unbounded DRAM; set dramCells");

    const auto lat = resolveLatency(cfg_);
    if (lat > 0) {
        latency_ = std::make_unique<ShiftRegister<PipeEntry>>(
            lat, PipeEntry{});
    }

    const auto rr_cap = resolveRrCapacity(cfg_);
    sched_ = std::make_unique<dss::DramScheduler>(rr_cap, orr_, true,
                                                  &stats_);

    // Arm the t-SRAM eligibility bitmap at the tail-MMA threshold in
    // *both* engines: maintenance is O(1) per mutation and keeping
    // the derived state engine-agnostic means checkpoints restore
    // across engines without special cases.
    tail_.setThreshold(gran_);

    if (cfg_.renaming) {
        rt_ = std::make_unique<rename::RenamingTable>(
            logical, phys_queues_, map_.groups());
    }
}

std::uint64_t
HybridBuffer::groupFree(unsigned g) const
{
    if (group_capacity_ == 0)
        return UINT64_MAX;
    panic_if(committed_[g] > group_capacity_,
             "committed cells exceed group capacity");
    return group_capacity_ - committed_[g];
}

bool
HybridBuffer::hasRoom(unsigned g) const
{
    return groupFree(g) >= 1;
}

bool
HybridBuffer::wouldAdmit(QueueId lq) const
{
    if (rt_) {
        return rt_->canAssign(
            lq, [this](unsigned g) { return groupFree(g); });
    }
    return lq < phys_queues_ && hasRoom(groupOf(lq));
}

void
HybridBuffer::admitArrival(const Cell &cell)
{
    arrivals_.inc();
    QueueId p;
    if (rt_) {
        panic_if(!wouldAdmit(cell.queue),
                 "renamed arrival not admissible; callers must",
                 " check wouldAdmit first");
        p = rt_->assignArrival(
            cell.queue, [this](unsigned g) { return groupFree(g); });
    } else {
        p = cell.queue;
        panic_if(p >= phys_queues_, "arrival for unknown queue ", p);
        panic_if(!hasRoom(groupOf(p)),
                 "static arrival not admissible; callers must",
                 " check wouldAdmit first");
    }
    ++committed_[groupOf(p)];
    tail_.push(p, cell);
}

void
HybridBuffer::processCompletions(Slot now)
{
    // Uniform timing completes in launch (FIFO) order; heterogeneous
    // bank groups can finish a fast bank's read behind a slow one,
    // so the whole (small) deque is scanned.  The head SRAM consumes
    // blocks in replenish-sequence order per queue either way.
    for (auto it = completions_.begin(); it != completions_.end();) {
        if (it->at > now) {
            ++it;
            continue;
        }
        if (trace)
            *trace << "t" << now << " complete read q" << it->phys
                   << " seq " << it->replenishSeq << "\n";
        head_.insertBlock(it->phys, it->replenishSeq,
                          std::move(it->cells));
        it = completions_.erase(it);
    }
}

void
HybridBuffer::headMmaDecide(Slot now)
{
    // One *DRAM* replenish per granularity interval -- that is the
    // bandwidth the paper's analysis budgets.  Queues whose next
    // cells are still in the tail SRAM are served by the bypass
    // path, which is an SRAM-to-SRAM transfer and free of the DRAM
    // constraint; serving every such critical queue in the same
    // interval keeps each DRAM replenish worth a full b cells, the
    // premise of the ECQF sizing theorem.
    bool dram_issued = false;
    if (cfg_.mma == MmaKind::Ecqf) {
        const auto on_critical = [&](QueueId p) -> unsigned {
            if (trace)
                *trace << "t" << now << " hmma select q" << p
                       << "\n";
            if (dram_.hasBlock(p, next_read_issue_[p])) {
                if (dram_issued)
                    return 0;
                issueReplenish(p, now);
                dram_issued = true;
                return gran_;
            }
            return bypassReplenish(p);
        };
        if (event_core_) {
            // Event engine: the calendar already knows which queues
            // are critical and replays them in entry-stamp order,
            // which equals the scan's register-position order
            // (entries are stamped monotonically as they enter) --
            // no O(depth) walk.
            hmma_.calendarDecide(on_critical);
            return;
        }
        // Single pass: every critical queue of the interval is
        // replenished during one walk of the lookahead (the scan
        // credits each replenish into its scratch state), instead of
        // restarting an O(depth) select after every decision.
        hmma_.scan(look_, [](const PipeEntry &e) { return e.phys; },
                   on_critical);
        return;
    }
    const unsigned iter_bound = 4 * phys_queues_ + 4;
    for (unsigned iter = 0; iter < iter_bound; ++iter) {
        const QueueId p = mdqf_.select(
            gran_, [this](QueueId q) { return replenishable(q); });
        if (p == kInvalidQueue)
            break;
        if (trace)
            *trace << "t" << now << " hmma select q" << p << "\n";
        if (dram_.hasBlock(p, next_read_issue_[p])) {
            if (dram_issued)
                break;
            issueReplenish(p, now);
            dram_issued = true;
        } else {
            bypassReplenish(p);
        }
    }
}

void
HybridBuffer::issueReplenish(QueueId p, Slot now)
{
    const std::uint64_t ord = next_read_issue_[p];
    panic_if(!dram_.hasBlock(p, ord), "issueReplenish without block");
    ++next_read_issue_[p];
    if (trace)
        *trace << "t" << now << " issue read q" << p << " ord " << ord
               << " seq " << replenish_seq_[p] << "\n";
    dss::DramRequest req;
    req.kind = dss::DramRequest::Kind::Read;
    req.physQueue = p;
    req.blockOrdinal = ord;
    req.bank = rads_ ? 0 : map_.bankOf(p, ord);
    req.replenishSeq = replenish_seq_[p]++;
    req.issued = now;
    hmma_.onReplenishIssued(p, gran_);
    mdqf_.onReplenishIssued(p, gran_);
    if (rads_)
        launchRead(req, now);
    else
        sched_->push(req);
}

unsigned
HybridBuffer::bypassReplenish(QueueId p)
{
    // Squash any not-yet-launched writes of this queue: their cells
    // are the oldest of the queue and are about to be needed at the
    // head.  (Launched writes are already readable, so this loop
    // only runs when the whole DRAM tail of the queue is pending.)
    while (pending_unlaunched_writes_[p] > 0) {
        auto squashed = sched_->rr().cancel(
            [&](const dss::DramRequest &r) {
                return r.kind == dss::DramRequest::Kind::Write &&
                       r.physQueue == p;
            });
        panic_if(!squashed, "pending write of queue ", p,
                 " not found in the write RR");
        --pending_unlaunched_writes_[p];
        panic_if(next_write_issue_[p] == 0, "ordinal underflow");
        --next_write_issue_[p];
        tail_.unclaim(p, gran_);
    }
    const auto n = std::min<std::uint64_t>(gran_, tail_.unclaimed(p));
    panic_if(n == 0, "MMA selected queue ", p,
             " with nothing to replenish");
    auto cells = tail_.extractBypass(p, static_cast<unsigned>(n));
    const unsigned g = groupOf(p);
    panic_if(committed_[g] < n,
             "bypass replenish: committed accounting underflow");
    committed_[g] -= n;
    const std::uint64_t seq = replenish_seq_[p]++;
    if (trace)
        *trace << " bypass q" << p << " n " << n << " seq " << seq
               << "\n";
    head_.insertBlock(p, seq, std::move(cells));
    hmma_.onReplenishIssued(p, static_cast<unsigned>(n));
    mdqf_.onReplenishIssued(p, static_cast<unsigned>(n));
    bypass_cells_.inc(n);
    return static_cast<unsigned>(n);
}

void
HybridBuffer::tailMmaDecide(Slot now)
{
    // Event engine: the t-SRAM's eligibility bitmap knows which
    // queues meet the threshold, so the round-robin pick is a word
    // scan instead of a probe of every queue.  Same threshold, same
    // cursor update -- the oracle test holds the two paths equal.
    const QueueId p =
        event_core_
            ? tmma_.selectVia([this](QueueId from) {
                  return tail_.nextEligible(from);
              })
            : tmma_.select(
                  gran_,
                  [this](QueueId q) { return tail_.unclaimed(q); },
                  [](QueueId) { return true; });
    if (p == kInvalidQueue)
        return;
    tail_.claim(p, gran_);
    dss::DramRequest req;
    req.kind = dss::DramRequest::Kind::Write;
    req.physQueue = p;
    req.blockOrdinal = next_write_issue_[p]++;
    req.bank = rads_ ? 1 : map_.bankOf(p, req.blockOrdinal);
    req.issued = now;
    if (trace)
        *trace << "t" << now << " tmma claim q" << p << " ord "
               << req.blockOrdinal << "\n";
    if (rads_) {
        launchWrite(req, now);
    } else {
        sched_->push(req);
        ++pending_unlaunched_writes_[p];
    }
}

void
HybridBuffer::dssTick(Slot now)
{
    // The DRAM sustains twice the line rate: two block transfers
    // begin per granularity interval (one interval's worth of reads
    // plus writes), drawn oldest-ready-first from the combined RR.
    for (int opportunity = 0; opportunity < 2; ++opportunity) {
        const auto req = sched_->tryLaunch(now);
        if (!req)
            break;
        if (req->kind == dss::DramRequest::Kind::Read)
            launchRead(*req, now);
        else
            launchWrite(*req, now);
    }
}

void
HybridBuffer::launchRead(const dss::DramRequest &req, Slot now)
{
    banks_.startAccess(req.bank, now);
    const unsigned g = groupOf(req.physQueue);
    auto cells = dram_.readBlock(req.physQueue, req.blockOrdinal, g);
    panic_if(committed_[g] < gran_,
             "DRAM read launch: committed accounting underflow");
    committed_[g] -= gran_;
    // The data arrives when the bank's row cycle ends: B slots for
    // the uniform model, the group's t_RC for slow bank groups.
    const Slot done =
        now + (rads_ ? gran_rads_ : timing_->accessSlots(req.bank));
    if (trace)
        *trace << "t" << now << " launch read q" << req.physQueue
               << " ord " << req.blockOrdinal << " bank " << req.bank
               << " done@" << done << "\n";
    completions_.push_back(Completion{done, req.physQueue,
                                      req.replenishSeq,
                                      std::move(cells)});
    dram_reads_.inc();
}

void
HybridBuffer::launchWrite(const dss::DramRequest &req, Slot now)
{
    banks_.startAccess(req.bank, now);
    auto cells = tail_.extractClaimed(req.physQueue, gran_);
    if (trace)
        *trace << "t" << now << " launch write q" << req.physQueue
               << " ord " << req.blockOrdinal << " bank " << req.bank
               << "\n";
    dram_.writeBlock(req.physQueue, req.blockOrdinal, std::move(cells),
                     groupOf(req.physQueue));
    if (!rads_) {
        panic_if(pending_unlaunched_writes_[req.physQueue] == 0,
                 "write launch accounting bug");
        --pending_unlaunched_writes_[req.physQueue];
    }
    dram_writes_.inc();
}

void
HybridBuffer::recyclePhys(QueueId p)
{
    dram_.recycle(p);
    head_.recycle(p);
    tail_.recycle(p);
    panic_if(pending_unlaunched_writes_[p] != 0,
             "recycling queue ", p, " with pending writes");
    for (const auto &c : completions_)
        panic_if(c.phys == p,
                 "recycling queue ", p, " with in-flight reads");
    panic_if(hmma_.occupancy(p) != 0,
             "recycling queue ", p, " with MMA credit ",
             hmma_.occupancy(p));
    next_read_issue_[p] = 0;
    next_write_issue_[p] = 0;
    replenish_seq_[p] = 0;
}

std::optional<GrantInfo>
HybridBuffer::step(const std::optional<Cell> &arrival, QueueId request)
{
    const Slot now = now_;

    // Event-engine idle-slot skip: with no arrival, no request, no
    // in-flight reads, empty pipeline registers, an empty RR and no
    // threshold-eligible tail queue, every phase below is provably a
    // no-op (the ECQF scan sees no criticals, the tail MMA finds no
    // eligible queue, the DSA has nothing to launch, no grant is
    // due), so only the clock advances.  Gated on ECQF
    // (event_skip_): MDQF replenishes from occupancy deficit alone
    // and can legitimately act on such a slot.
    if (event_skip_ && !arrival && request == kInvalidQueue &&
        completions_.empty() && look_.occupancy() == 0 &&
        (!latency_ || latency_->occupancy() == 0) &&
        sched_->rr().empty() && tail_.eligibleCount() == 0) {
        ++now_;
        return std::nullopt;
    }

    processCompletions(now);
    if (arrival)
        admitArrival(*arrival);

    PipeEntry in{};
    if (request != kInvalidQueue) {
        in.logical = request;
        in.phys = rt_ ? rt_->translateRequest(request) : request;
        panic_if(in.phys >= phys_queues_,
                 "request for unknown queue ", request);
    }
    const PipeEntry after_look = look_.shift(in);
    // Calendar bookkeeping runs in both engines (it is cheap and
    // keeps every derived structure engine-agnostic, so checkpoints
    // restore across engines unchanged).
    if (in.phys != kInvalidQueue)
        hmma_.onRequestEntering(in.phys);
    if (after_look.phys != kInvalidQueue) {
        hmma_.onRequestLeaving(after_look.phys);
        mdqf_.onRequestLeaving(after_look.phys);
    }
    const PipeEntry ready =
        latency_ ? latency_->shift(after_look) : after_look;

    if (now % gran_ == 0) {
        // Launch before issue: "once a request has been chosen it is
        // removed from the RR ... making room for the new request
        // that will be issued by the MMA" (Section 5.3).  This keeps
        // the RR occupancy within Eq. (1).
        if (!rads_)
            dssTick(now);
        headMmaDecide(now);
        tailMmaDecide(now);
    }

    std::optional<GrantInfo> grant;
    if (ready.phys != kInvalidQueue) {
        if (trace)
            *trace << "t" << now << " grant due q" << ready.phys
                   << "\n";
        Cell cell = head_.pop(ready.phys);
        grants_.inc();
        if (rt_) {
            for (const auto rec : rt_->onGrant(ready.logical))
                recyclePhys(rec);
        }
        grant = GrantInfo{cell, ready.logical};
    }

    ++now_;
    return grant;
}

namespace
{

void
saveU64Vec(ser::Writer &w, const std::vector<std::uint64_t> &v)
{
    w.u64(v.size());
    for (const auto x : v)
        w.u64(x);
}

void
loadU64Vec(ser::Reader &r, std::vector<std::uint64_t> &v,
           const char *what)
{
    const auto n = r.u64();
    fatal_if(n != v.size(), "checkpoint: ", what, " has ", n,
             " entries, configured ", v.size());
    for (auto &x : v)
        x = r.u64();
}

void
savePipeEntry(ser::Writer &w, QueueId phys, QueueId logical)
{
    w.u32(phys);
    w.u32(logical);
}

} // namespace

void
HybridBuffer::save(ser::Writer &w) const
{
    const auto save_pipe = [](ser::Writer &ww, const PipeEntry &e) {
        savePipeEntry(ww, e.phys, e.logical);
    };
    w.tag("HBUF");
    w.u64(now_);
    banks_.save(w);
    dram_.save(w);
    tail_.save(w);
    head_.save(w);
    hmma_.save(w);
    mdqf_.save(w);
    tmma_.save(w);
    look_.save(w, save_pipe);
    w.b(latency_ != nullptr);
    if (latency_)
        latency_->save(w, save_pipe);
    orr_.save(w);
    sched_->save(w);
    w.b(rt_ != nullptr);
    if (rt_)
        rt_->save(w);
    saveU64Vec(w, next_read_issue_);
    saveU64Vec(w, next_write_issue_);
    saveU64Vec(w, replenish_seq_);
    saveU64Vec(w, pending_unlaunched_writes_);
    saveU64Vec(w, committed_);
    w.u64(completions_.size());
    for (const auto &c : completions_) {
        w.u64(c.at);
        w.u32(c.phys);
        w.u64(c.replenishSeq);
        w.u64(c.cells.size());
        for (const auto &cell : c.cells)
            cell.save(w);
    }
    stats_.save(w);
    arrivals_.save(w);
    grants_.save(w);
    bypass_cells_.save(w);
    dram_reads_.save(w);
    dram_writes_.save(w);
}

void
HybridBuffer::load(ser::Reader &r)
{
    const auto load_pipe = [](ser::Reader &rr) {
        PipeEntry e;
        e.phys = rr.u32();
        e.logical = rr.u32();
        return e;
    };
    r.tag("HBUF");
    now_ = r.u64();
    banks_.load(r);
    dram_.load(r);
    tail_.load(r);
    head_.load(r);
    hmma_.load(r);
    mdqf_.load(r);
    tmma_.load(r);
    look_.load(r, load_pipe);
    // Rebuild the ECQF event calendar from the restored lookahead
    // contents: stamps restart from zero, but only their relative
    // order matters and head-to-tail replay reproduces it exactly.
    hmma_.resetCalendar();
    look_.forEachFromHead([this](const PipeEntry &e) {
        if (e.phys != kInvalidQueue)
            hmma_.onRequestEntering(e.phys);
    });
    const bool has_latency = r.b();
    fatal_if(has_latency != (latency_ != nullptr),
             "checkpoint: latency register presence mismatch");
    if (latency_)
        latency_->load(r, load_pipe);
    orr_.load(r);
    sched_->load(r);
    const bool has_rt = r.b();
    fatal_if(has_rt != (rt_ != nullptr),
             "checkpoint: renaming table presence mismatch");
    if (rt_)
        rt_->load(r);
    loadU64Vec(r, next_read_issue_, "next_read_issue");
    loadU64Vec(r, next_write_issue_, "next_write_issue");
    loadU64Vec(r, replenish_seq_, "replenish_seq");
    loadU64Vec(r, pending_unlaunched_writes_,
               "pending_unlaunched_writes");
    loadU64Vec(r, committed_, "committed");
    completions_.clear();
    const auto nc = r.u64();
    for (std::uint64_t i = 0; i < nc; ++i) {
        Completion c;
        c.at = r.u64();
        c.phys = r.u32();
        c.replenishSeq = r.u64();
        const auto ncell = r.u64();
        c.cells.resize(ncell);
        for (auto &cell : c.cells)
            cell.load(r);
        completions_.push_back(std::move(c));
    }
    stats_.load(r);
    arrivals_.load(r);
    grants_.load(r);
    bypass_cells_.load(r);
    dram_reads_.load(r);
    dram_writes_.load(r);
}

BufferReport
HybridBuffer::report() const
{
    BufferReport r;
    r.slots = now_;
    r.arrivals = arrivals_.value();
    r.grants = grants_.value();
    r.bypasses = bypass_cells_.value();
    r.dramReads = dram_reads_.value();
    r.dramWrites = dram_writes_.value();
    r.headSramHighWater = head_.highWater();
    r.tailSramHighWater = tail_.highWater();
    r.rrHighWater = sched_->rr().highWater();
    r.rrMaxSkips = sched_->rr().maxSkips();
    r.orrHighWater = orr_.highWater();
    r.dsaStalls = sched_->stalls();
    r.dsaStallsBankBusy = sched_->stallsFor(dram::StallCause::BankBusy);
    r.dsaStallsRefresh = sched_->stallsFor(dram::StallCause::Refresh);
    r.dsaStallsTurnaround =
        sched_->stallsFor(dram::StallCause::Turnaround);
    if (rt_) {
        r.renames = rt_->renames();
        r.renameRecycles = rt_->recycles();
    }
    r.dramResidentCells = dram_.totalCells();
    return r;
}

} // namespace pktbuf::buffer
