/**
 * @file
 * The hybrid SRAM/DRAM VOQ buffer.  One class implements both
 * architectures of the paper:
 *
 *  - RADS (Section 3): b == B, a single serialized DRAM accessed
 *    once per direction every random access time; replenish requests
 *    launch the moment the MMA issues them.
 *
 *  - CFDS (Section 5): b < B, M banks in G groups with block-cyclic
 *    interleaving; requests pass through the DRAM Scheduler
 *    Subsystem (Requests Register + ORR + oldest-ready-first DSA)
 *    and grants are delayed by the latency register.  Optional queue
 *    renaming (Section 6) shares DRAM space across groups.
 *
 * The MMA subsystem is literally the same code in both modes, as the
 * paper requires (Section 5.2).
 */

#ifndef PKTBUF_BUFFER_HYBRID_BUFFER_HH
#define PKTBUF_BUFFER_HYBRID_BUFFER_HH

#include <deque>
#include <memory>
#include <ostream>
#include <optional>
#include <vector>

#include "buffer/packet_buffer.hh"
#include "common/shift_register.hh"
#include "common/stats.hh"
#include "dram/address_map.hh"
#include "dram/bank_state.hh"
#include "dram/dram_store.hh"
#include "dram/timing.hh"
#include "dss/dram_scheduler.hh"
#include "dss/ongoing_requests.hh"
#include "mma/ecqf.hh"
#include "mma/mdqf.hh"
#include "mma/tail_mma.hh"
#include "rename/renaming_table.hh"
#include "sram/head_sram.hh"
#include "sram/tail_sram.hh"

namespace pktbuf::buffer
{

/** `final` so a caller holding a concrete reference (the SimRunner
 *  hot loop) devirtualizes step()/wouldAdmit()/now() entirely. */
class HybridBuffer final : public PacketBuffer
{
  public:
    explicit HybridBuffer(const BufferConfig &cfg);

    std::optional<GrantInfo>
    step(const std::optional<Cell> &arrival, QueueId request) override;

    bool wouldAdmit(QueueId lq) const override;
    Slot now() const override { return now_; }
    BufferReport report() const override;
    const BufferConfig &config() const override { return cfg_; }

    /** Resolved lookahead depth (slots). */
    std::uint64_t lookaheadDepth() const { return look_.depth(); }
    /** Resolved latency register depth (slots, 0 for RADS). */
    std::uint64_t latencyDepth() const
    {
        return latency_ ? latency_->depth() : 0;
    }
    /** End-to-end request-to-grant pipeline depth (slots). */
    std::uint64_t
    pipelineDepth() const override
    {
        return lookaheadDepth() + latencyDepth();
    }

    /**
     * When set, internal events (MMA selections, issues, bypasses,
     * launches, completions, grants) are logged one line per event.
     * Intended for debugging and for the worked-example tests.
     */
    std::ostream *trace = nullptr;  // ser: config

    /** Introspection hooks for white-box tests. */
    const dss::DramScheduler &scheduler() const { return *sched_; }
    const dram::DramStore &dramStore() const { return dram_; }
    const sram::HeadSram &headSram() const { return head_; }
    const sram::TailSram &tailSram() const { return tail_; }
    const rename::RenamingTable *renaming() const { return rt_.get(); }
    /** The resolved DDR timing policy. */
    const dram::DramTiming &timing() const { return *timing_; }
    /** Named statistics (per-cause DSA stalls live here). */
    const StatRegistry &stats() const { return stats_; }

    /**
     * Checkpoint the full mutable state (clock, SRAM/DRAM contents,
     * MMA counters, pipeline registers, DSS, renaming, statistics).
     * Configuration is not serialized: restore requires a buffer
     * constructed from the *same* BufferConfig, and load() validates
     * the structural dimensions it can see.  Restoring a saved state
     * and stepping to slot N is bit-identical to an unbroken run.
     */
    void save(ser::Writer &w) const;
    void load(ser::Reader &r);

  private:
    /** What travels through the lookahead and latency registers. */
    struct PipeEntry
    {
        QueueId phys = kInvalidQueue;
        QueueId logical = kInvalidQueue;

        bool
        operator==(const PipeEntry &o) const
        {
            return phys == o.phys && logical == o.logical;
        }
    };

    struct Completion
    {
        Slot at;
        QueueId phys;
        std::uint64_t replenishSeq;
        std::vector<Cell> cells;
    };

    void admitArrival(const Cell &cell);
    void processCompletions(Slot now);
    void headMmaDecide(Slot now);
    void tailMmaDecide(Slot now);
    void issueReplenish(QueueId p, Slot now);
    /** @return cells moved to the head SRAM (always >= 1). */
    unsigned bypassReplenish(QueueId p);
    void dssTick(Slot now);
    void launchRead(const dss::DramRequest &req, Slot now);
    void launchWrite(const dss::DramRequest &req, Slot now);
    void recyclePhys(QueueId p);

    unsigned groupOf(QueueId p) const { return map_.groupOf(p); }
    std::uint64_t groupFree(unsigned g) const;
    bool hasRoom(unsigned g) const;

    /** ECQF-visible lookahead of a physical queue's pending reads. */
    bool
    replenishable(QueueId p) const
    {
        return dram_.hasBlock(p, next_read_issue_[p]) ||
               tail_.cellsOf(p) > 0;
    }

    BufferConfig cfg_;  // ser: config
    bool rads_;  // ser: config
    /** Event-calendar execution (BufferConfig::eventCore). */
    bool event_core_;  // ser: config
    /**
     * Idle-slot skipping is only sound when the head MMA is
     * lookahead-driven (ECQF): MDQF replenishes from occupancy
     * deficit alone and can act on slots with no pending request.
     */
    bool event_skip_;  // ser: config
    unsigned phys_queues_;  // ser: config
    unsigned gran_;       //!< b [ser: config]
    unsigned gran_rads_;  //!< B (random access time in slots) [ser: config]
    Slot now_ = 0;

    dram::AddressMap map_;  // ser: config
    /** Shared with the ORR; must be built before banks_ and orr_. */
    std::shared_ptr<const dram::DramTiming> timing_;  // ser: config
    dram::BankState banks_;
    dram::DramStore dram_;
    sram::TailSram tail_;
    sram::HeadSram head_;
    mma::EcqfMma hmma_;
    mma::MdqfMma mdqf_;
    mma::TailMma tmma_;

    ShiftRegister<PipeEntry> look_;
    std::unique_ptr<ShiftRegister<PipeEntry>> latency_;

    dss::OngoingRequests orr_;
    /** One combined RR for reads and writes, as in Figure 5. */
    std::unique_ptr<dss::DramScheduler> sched_;

    std::unique_ptr<rename::RenamingTable> rt_;

    std::vector<std::uint64_t> next_read_issue_;
    std::vector<std::uint64_t> next_write_issue_;
    std::vector<std::uint64_t> replenish_seq_;
    std::vector<std::uint64_t> pending_unlaunched_writes_;
    std::vector<std::uint64_t> committed_;
    std::uint64_t group_capacity_ = 0;  // ser: config

    std::deque<Completion> completions_;

    StatRegistry stats_;
    Counter arrivals_;
    Counter grants_;
    Counter bypass_cells_;
    Counter dram_reads_;
    Counter dram_writes_;
};

} // namespace pktbuf::buffer

#endif // PKTBUF_BUFFER_HYBRID_BUFFER_HH
