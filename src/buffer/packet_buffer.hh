/**
 * @file
 * Public interface of a VOQ packet buffer (Figure 2): one cell may
 * arrive and one arbiter request may be issued per time-slot; grants
 * emerge after the configured pipeline (lookahead, plus the latency
 * register for CFDS).  Implementations must *guarantee* zero misses:
 * a grant that cannot be served from the head SRAM is a simulator
 * panic, not a statistic.
 */

#ifndef PKTBUF_BUFFER_PACKET_BUFFER_HH
#define PKTBUF_BUFFER_PACKET_BUFFER_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hh"
#include "dram/timing.hh"
#include "model/dimensioning.hh"

namespace pktbuf::buffer
{

/** Which head MMA drives replenishment. */
enum class MmaKind
{
    Ecqf,  //!< earliest critical queue first (lookahead-driven)
    Mdqf,  //!< most deficited queue first (no lookahead; ablation)
};

/** Static configuration of a buffer instance. */
struct BufferConfig
{
    /** Q (physical), B, b, M.  b == B and banks == 1 gives RADS. */
    model::BufferParams params;

    /** Logical queues visible to the scheduler; 0 = physical count. */
    unsigned logicalQueues = 0;

    /** Enable queue renaming (Section 6); requires CFDS. */
    bool renaming = false;

    /** Head MMA algorithm. */
    MmaKind mma = MmaKind::Ecqf;

    /** Lookahead depth in slots; 0 = ECQF optimum Q(b-1)+1. */
    std::uint64_t lookahead = 0;

    /** Head SRAM capacity in cells; 0 = dimensioning formula. */
    std::uint64_t headSramCells = 0;

    /** Tail SRAM capacity in cells; 0 = dimensioning formula. */
    std::uint64_t tailSramCells = 0;

    /** Total DRAM capacity in cells; 0 = unbounded. */
    std::uint64_t dramCells = 0;

    /** Requests Register capacity; 0 = Eq. (1) formula. */
    std::uint64_t rrCapacity = 0;

    /**
     * Extra RR entries on top of the resolved capacity (formula or
     * override).  Eq. (1) sizes R for *randomized* request patterns;
     * a caller whose service process concentrates consecutive
     * requests on one queue -- the crossbar's work-conserving
     * matching draining a backlogged VOQ -- provisions the excess
     * here instead of silently weakening the overflow invariant for
     * everyone.  Ignored where the RR is unbounded (RADS,
     * measure-only).
     */
    std::uint64_t rrSlack = 0;

    /**
     * DDR timing model (dram/timing.hh).  The default (uniform)
     * config reproduces the legacy one-number model bit for bit;
     * non-uniform configs (refresh, turnaround, per-group t_RC)
     * require the banked CFDS organization and automatically extend
     * the latency register and SRAM/RR slack to keep the zero-miss
     * guarantee.
     */
    dram::TimingConfig timing;

    /**
     * Measurement mode: SRAM/RR capacities unbounded, high-water
     * marks recorded (used to validate the formulas empirically).
     */
    bool measureOnly = false;

    /**
     * Event-calendar execution engine: identical architectural
     * behavior (grants, drops, stats, checkpoints -- the
     * differential oracle in tests/test_event_core.cc enforces
     * bit-equality), computed via the MMA's event calendar and
     * quiescent idle-slot skipping instead of per-slot scans.  An
     * execution strategy, not a configuration: deliberately absent
     * from every describe()/fingerprint.
     */
    bool eventCore = false;

    unsigned effectiveLogicalQueues() const
    {
        return logicalQueues ? logicalQueues : params.queues;
    }
};

/** One granted cell and the logical queue it was requested for. */
struct GrantInfo
{
    Cell cell;
    QueueId logicalQueue = kInvalidQueue;
};

/** Aggregated observability for tests, benches and reports. */
struct BufferReport
{
    std::uint64_t slots = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t grants = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::int64_t headSramHighWater = 0;
    std::int64_t tailSramHighWater = 0;
    std::int64_t rrHighWater = 0;
    std::int64_t rrMaxSkips = 0;
    std::int64_t orrHighWater = 0;
    std::uint64_t dsaStalls = 0;
    /** dsaStalls broken down by blocking cause (timed DRAM model). */
    std::uint64_t dsaStallsBankBusy = 0;
    std::uint64_t dsaStallsRefresh = 0;
    std::uint64_t dsaStallsTurnaround = 0;
    std::uint64_t renames = 0;
    std::uint64_t renameRecycles = 0;
    std::uint64_t dramResidentCells = 0;
};

class PacketBuffer
{
  public:
    virtual ~PacketBuffer() = default;

    /**
     * Advance one time-slot.
     *
     * @param arrival  cell arriving from the line this slot (if any)
     * @param request  logical queue the arbiter requests this slot
     *                 (kInvalidQueue for none)
     * @return the grant emerging from the pipeline this slot, if any
     */
    virtual std::optional<GrantInfo>
    step(const std::optional<Cell> &arrival, QueueId request) = 0;

    /** Would an arriving cell for `lq` be admitted right now? */
    virtual bool wouldAdmit(QueueId lq) const = 0;

    /** Slots elapsed. */
    virtual Slot now() const = 0;

    /** Request-to-grant pipeline depth (lookahead + latency). */
    virtual std::uint64_t pipelineDepth() const = 0;

    virtual BufferReport report() const = 0;

    virtual const BufferConfig &config() const = 0;
};

} // namespace pktbuf::buffer

#endif // PKTBUF_BUFFER_PACKET_BUFFER_HH
