#include "logging.hh"

#include <iostream>

namespace pktbuf
{

namespace
{
bool g_verbose = true;
}

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

namespace detail
{

void
appendOne(std::ostringstream &)
{
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "panic: " << msg << " (" << file << ":" << line << ")";
    throw PanicError(os.str());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << " (" << file << ":" << line << ")";
    throw FatalError(os.str());
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    if (g_verbose)
        std::cerr << "info: " << msg << "\n";
}

} // namespace detail

} // namespace pktbuf
