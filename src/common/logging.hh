/**
 * @file
 * Error-reporting helpers in the gem5 spirit:
 *
 *  - panic():  an internal invariant of the simulator is broken (a bug
 *              in this code base).  Throws PanicError so tests can
 *              assert on violated invariants without killing the
 *              process.
 *  - fatal():  the *user's* configuration is impossible (e.g. more
 *              queues than physical queues).  Throws FatalError.
 *  - warn()/inform(): status messages on stderr; never stop anything.
 */

#ifndef PKTBUF_COMMON_LOGGING_HH
#define PKTBUF_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace pktbuf
{

/** Raised by panic(): a simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Raised by fatal(): the requested configuration is invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{

void appendOne(std::ostringstream &os);

template <typename T, typename... Rest>
void
appendOne(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendOne(os, rest...);
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    appendOne(os, args...);
    return os.str();
}

} // namespace detail

/** Enable/disable inform() output (benchmarks silence it). */
void setVerbose(bool verbose);
bool verbose();

template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, const Args &...args)
{
    detail::panicImpl(file, line, detail::format(args...));
}

template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, const Args &...args)
{
    detail::fatalImpl(file, line, detail::format(args...));
}

template <typename... Args>
void
warn(const Args &...args)
{
    detail::warnImpl(detail::format(args...));
}

template <typename... Args>
void
inform(const Args &...args)
{
    detail::informImpl(detail::format(args...));
}

#define panic(...) ::pktbuf::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::pktbuf::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            panic(__VA_ARGS__);                                             \
    } while (0)

#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            fatal(__VA_ARGS__);                                             \
    } while (0)

} // namespace pktbuf

#endif // PKTBUF_COMMON_LOGGING_HH
