/**
 * @file
 * Small deterministic PRNG (xoshiro256**) used by the workload
 * generators.  We avoid <random> engines so that traces are
 * reproducible bit-for-bit across standard library implementations.
 */

#ifndef PKTBUF_COMMON_RANDOM_HH
#define PKTBUF_COMMON_RANDOM_HH

#include <cstdint>

#include "logging.hh"
#include "serialize.hh"

namespace pktbuf
{

/**
 * xoshiro256** seeded through splitmix64.
 *
 * The seed is deliberately *not* defaulted: every randomized
 * workload, test and bench must name its seed so any failure can be
 * reproduced bit-for-bit from the log alone.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed)
    {
        // splitmix64 expansion of the seed into the four state words.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) via Lemire's method. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panic_if(bound == 0, "Rng::below(0)");
        const auto x = next();
        // 128-bit multiply-shift reduction.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(x) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        panic_if(lo > hi, "Rng::between: lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Checkpoint: the four raw state words. */
    void
    save(ser::Writer &w) const
    {
        for (const auto word : state_)
            w.u64(word);
    }

    void
    load(ser::Reader &r)
    {
        for (auto &word : state_)
            word = r.u64();
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace pktbuf

#endif // PKTBUF_COMMON_RANDOM_HH
