/**
 * @file
 * Byte-exact serialization primitives for the soak layer's
 * checkpoint/restore: a little-endian, fixed-width Writer/Reader
 * pair plus the FNV-1a fingerprint shared by the checkpoint header.
 *
 * The codec is deliberately dumb: every field is written explicitly,
 * in declaration order, with no padding, no varints and no implicit
 * defaults, so a checkpoint byte stream is a pure function of the
 * simulator state and two states serialize identically iff they are
 * identical.  Doubles travel as their IEEE-754 bit pattern
 * (bit_cast), never through text, so restore is bit-exact.
 *
 * Error model: a Reader that sees a short read, a bad section tag or
 * trailing bytes calls fatal() -- a malformed checkpoint is invalid
 * *input* (truncated file, version skew, bit rot), not a simulator
 * bug, and callers are expected to catch FatalError and reject the
 * checkpoint.
 */

#ifndef PKTBUF_COMMON_SERIALIZE_HH
#define PKTBUF_COMMON_SERIALIZE_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "logging.hh"

namespace pktbuf::ser
{

/** FNV-1a offset basis (64-bit). */
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
/** FNV-1a prime (64-bit). */
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/** Incremental FNV-1a over a byte range. */
inline std::uint64_t
fnv1a(const void *data, std::size_t n, std::uint64_t h = kFnvOffset)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

/** FNV-1a of a string (config fingerprints hash describe() text). */
inline std::uint64_t
fnv1a(std::string_view s)
{
    return fnv1a(s.data(), s.size());
}

/** Appends little-endian fixed-width fields to a byte buffer. */
class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    /** IEEE-754 bit pattern -- restore is bit-exact. */
    void
    real(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

    /** Length-prefixed byte string. */
    void
    str(std::string_view s)
    {
        u64(s.size());
        buf_.append(s.data(), s.size());
    }

    /**
     * Section tag: a 4-character marker the Reader re-validates, so
     * a producer/consumer field-order mismatch fails at the section
     * boundary with a readable name instead of decoding garbage.
     */
    void
    tag(const char (&name)[5])
    {
        buf_.append(name, 4);
    }

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/** Consumes a byte buffer written by Writer; fatal() on malformed
 *  input (short read, tag mismatch, trailing bytes). */
class Reader
{
  public:
    explicit Reader(std::string_view bytes) : buf_(bytes) {}

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(buf_[pos_++]);
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(buf_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(buf_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    bool
    b()
    {
        const auto v = u8();
        fatal_if(v > 1, "checkpoint: bool field holds ", unsigned(v));
        return v != 0;
    }

    double
    real()
    {
        return std::bit_cast<double>(u64());
    }

    std::string
    str()
    {
        const auto n = u64();
        need(n);
        std::string s(buf_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    void
    tag(const char (&name)[5])
    {
        need(4);
        fatal_if(buf_.compare(pos_, 4, name, 4) != 0,
                 "checkpoint: expected section '", name, "' at byte ",
                 pos_, ", found '", buf_.substr(pos_, 4), "'");
        pos_ += 4;
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return buf_.size() - pos_; }

    /** Assert the stream was consumed exactly. */
    void
    done() const
    {
        fatal_if(remaining() != 0, "checkpoint: ", remaining(),
                 " trailing bytes after the last section");
    }

  private:
    void
    need(std::size_t n)
    {
        fatal_if(buf_.size() - pos_ < n,
                 "checkpoint: short read at byte ", pos_, " (need ",
                 n, ", have ", buf_.size() - pos_, ")");
    }

    std::string_view buf_;
    std::size_t pos_ = 0;
};

} // namespace pktbuf::ser

#endif // PKTBUF_COMMON_SERIALIZE_HH
