/**
 * @file
 * A fixed-depth shift register: the hardware structure behind the
 * MMA lookahead (Section 3) and the CFDS latency register
 * (Section 5.4).  Values enter at the tail, advance one position per
 * shift, and emerge at the head exactly `depth` shifts later.
 */

#ifndef PKTBUF_COMMON_SHIFT_REGISTER_HH
#define PKTBUF_COMMON_SHIFT_REGISTER_HH

#include <cstddef>
#include <vector>

#include "logging.hh"
#include "serialize.hh"

namespace pktbuf
{

template <typename T>
class ShiftRegister
{
  public:
    /** @param depth number of stages; @param idle the empty value. */
    ShiftRegister(std::size_t depth, T idle)
        : idle_(idle), slots_(depth, idle)
    {
        panic_if(depth == 0, "ShiftRegister needs depth >= 1");
    }

    /** Push a value into the tail, return what falls off the head. */
    T
    shift(const T &incoming)
    {
        T out = slots_[head_];
        if (!(out == idle_))
            --live_;
        if (!(incoming == idle_))
            ++live_;
        slots_[head_] = incoming;
        head_ = (head_ + 1) % slots_.size();
        return out;
    }

    /** Value that will emerge after `ahead` more shifts (0 = next). */
    const T &
    peek(std::size_t ahead = 0) const
    {
        panic_if(ahead >= slots_.size(), "peek beyond register depth");
        return slots_[(head_ + ahead) % slots_.size()];
    }

    std::size_t depth() const { return slots_.size(); }

    /**
     * Visit every stage from head (next to emerge) to tail in two
     * linear segments -- the modulo-free fast path for the per-slot
     * ECQF scan, which walks the whole register every granularity
     * interval.
     */
    template <typename Visitor>
    void
    forEachFromHead(Visitor &&visit) const
    {
        for (std::size_t i = head_; i < slots_.size(); ++i)
            visit(slots_[i]);
        for (std::size_t i = 0; i < head_; ++i)
            visit(slots_[i]);
    }

    /** Number of non-idle entries currently held.  O(1): maintained
     *  incrementally on shift() -- the event engine polls this every
     *  slot to detect quiescence. */
    std::size_t
    occupancy() const
    {
        return live_;
    }

    /** Reset all stages to the idle value. */
    void
    clear()
    {
        for (auto &v : slots_)
            v = idle_;
        head_ = 0;
        live_ = 0;
    }

    /**
     * Checkpoint: depth, head cursor and every stage, each written
     * by the caller-supplied element serializer (the register is
     * element-type-agnostic; the owner knows the wire format).
     *
     * Rotation-normalized: stages are written head-first with a
     * zero cursor, so two registers holding the same logical
     * contents serialize identically no matter how their storage is
     * rotated.  (The event engine's idle-slot skip freezes the
     * cursor while the reference engine rotates it every slot; the
     * two must still checkpoint byte-for-byte equal.)  Behavior is
     * rotation-invariant, so loading the normalized form is
     * indistinguishable from the original.
     */
    template <typename SaveElem>
    void
    save(ser::Writer &w, SaveElem &&save_elem) const
    {
        w.u64(slots_.size());
        w.u64(0);
        for (std::size_t i = head_; i < slots_.size(); ++i)
            save_elem(w, slots_[i]);
        for (std::size_t i = 0; i < head_; ++i)
            save_elem(w, slots_[i]);
    }

    template <typename LoadElem>
    void
    load(ser::Reader &r, LoadElem &&load_elem)
    {
        const auto depth = r.u64();
        fatal_if(depth != slots_.size(),
                 "checkpoint: shift register depth ", depth,
                 " != configured ", slots_.size());
        const auto head = r.u64();
        fatal_if(head >= slots_.size(),
                 "checkpoint: shift register head out of range");
        head_ = static_cast<std::size_t>(head);
        live_ = 0;
        for (auto &v : slots_) {
            v = load_elem(r);
            if (!(v == idle_))
                ++live_;
        }
    }

  private:
    T idle_;  // ser: config
    std::vector<T> slots_;
    std::size_t head_ = 0;
    /** Count of non-idle stages; rebuilt in load(). */
    std::size_t live_ = 0;  // ser: derived
};

} // namespace pktbuf

#endif // PKTBUF_COMMON_SHIFT_REGISTER_HH
