/**
 * @file
 * A fixed-depth shift register: the hardware structure behind the
 * MMA lookahead (Section 3) and the CFDS latency register
 * (Section 5.4).  Values enter at the tail, advance one position per
 * shift, and emerge at the head exactly `depth` shifts later.
 */

#ifndef PKTBUF_COMMON_SHIFT_REGISTER_HH
#define PKTBUF_COMMON_SHIFT_REGISTER_HH

#include <cstddef>
#include <vector>

#include "logging.hh"

namespace pktbuf
{

template <typename T>
class ShiftRegister
{
  public:
    /** @param depth number of stages; @param idle the empty value. */
    ShiftRegister(std::size_t depth, T idle)
        : idle_(idle), slots_(depth, idle)
    {
        panic_if(depth == 0, "ShiftRegister needs depth >= 1");
    }

    /** Push a value into the tail, return what falls off the head. */
    T
    shift(const T &incoming)
    {
        T out = slots_[head_];
        slots_[head_] = incoming;
        head_ = (head_ + 1) % slots_.size();
        return out;
    }

    /** Value that will emerge after `ahead` more shifts (0 = next). */
    const T &
    peek(std::size_t ahead = 0) const
    {
        panic_if(ahead >= slots_.size(), "peek beyond register depth");
        return slots_[(head_ + ahead) % slots_.size()];
    }

    std::size_t depth() const { return slots_.size(); }

    /**
     * Visit every stage from head (next to emerge) to tail in two
     * linear segments -- the modulo-free fast path for the per-slot
     * ECQF scan, which walks the whole register every granularity
     * interval.
     */
    template <typename Visitor>
    void
    forEachFromHead(Visitor &&visit) const
    {
        for (std::size_t i = head_; i < slots_.size(); ++i)
            visit(slots_[i]);
        for (std::size_t i = 0; i < head_; ++i)
            visit(slots_[i]);
    }

    /** Number of non-idle entries currently held. */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (const auto &v : slots_)
            if (!(v == idle_))
                ++n;
        return n;
    }

    /** Reset all stages to the idle value. */
    void
    clear()
    {
        for (auto &v : slots_)
            v = idle_;
        head_ = 0;
    }

  private:
    T idle_;
    std::vector<T> slots_;
    std::size_t head_ = 0;
};

} // namespace pktbuf

#endif // PKTBUF_COMMON_SHIFT_REGISTER_HH
