#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "logging.hh"

namespace pktbuf
{

double
Histogram::percentile(double frac) const
{
    if (sampler_.count() == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(frac * sampler_.count());
    // Underflow samples sit below every bucket: if they alone cover
    // the requested fraction, the percentile is below zero.
    std::uint64_t seen = underflow_;
    if (seen > target)
        return 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen > target)
            return (i + 1) * width_;
    }
    return counts_.size() * width_;
}

void
Histogram::save(ser::Writer &w) const
{
    w.real(width_);
    w.u64(counts_.size());
    for (const auto c : counts_)
        w.u64(c);
    w.u64(underflow_);
    sampler_.save(w);
}

void
Histogram::load(ser::Reader &r)
{
    const double width = r.real();
    fatal_if(width != width_, "checkpoint: histogram bucket width ",
             width, " != configured ", width_);
    const auto n = r.u64();
    fatal_if(n != counts_.size(), "checkpoint: histogram has ", n,
             " buckets, configured ", counts_.size());
    for (auto &c : counts_)
        c = r.u64();
    underflow_ = r.u64();
    sampler_.load(r);
}

void
P2Quantile::init()
{
    for (int i = 0; i < 5; ++i)
        q_[i] = n_[i] = np_[i] = dn_[i] = 0.0;
}

void
P2Quantile::sample(double v)
{
    if (count_ < 5) {
        // Exact phase: keep the first five samples sorted verbatim.
        std::size_t i = count_;
        while (i > 0 && q_[i - 1] > v) {
            q_[i] = q_[i - 1];
            --i;
        }
        q_[i] = v;
        ++count_;
        if (count_ == 5) {
            const double p = prob_;
            for (int k = 0; k < 5; ++k)
                n_[k] = k;
            np_[0] = 0.0;
            np_[1] = 2.0 * p;
            np_[2] = 4.0 * p;
            np_[3] = 2.0 + 2.0 * p;
            np_[4] = 4.0;
            dn_[0] = 0.0;
            dn_[1] = p / 2.0;
            dn_[2] = p;
            dn_[3] = (1.0 + p) / 2.0;
            dn_[4] = 1.0;
        }
        return;
    }

    // Locate the cell the sample falls into, extending the extreme
    // markers when it lies outside the current span.
    int k;
    if (v < q_[0]) {
        q_[0] = v;
        k = 0;
    } else if (v >= q_[4]) {
        q_[4] = v;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && q_[k + 1] <= v)
            ++k;
    }
    ++count_;

    for (int i = k + 1; i < 5; ++i)
        n_[i] += 1.0;
    for (int i = 0; i < 5; ++i)
        np_[i] += dn_[i];

    // Nudge the three interior markers toward their desired
    // positions: parabolic (P²) interpolation when it keeps the
    // heights monotone, linear otherwise.
    for (int i = 1; i <= 3; ++i) {
        const double d = np_[i] - n_[i];
        if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
            (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
            const double s = d >= 0 ? 1.0 : -1.0;
            const double qp =
                q_[i] +
                s / (n_[i + 1] - n_[i - 1]) *
                    ((n_[i] - n_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                         (n_[i + 1] - n_[i]) +
                     (n_[i + 1] - n_[i] - s) * (q_[i] - q_[i - 1]) /
                         (n_[i] - n_[i - 1]));
            if (q_[i - 1] < qp && qp < q_[i + 1]) {
                q_[i] = qp;
            } else {
                const int j = i + static_cast<int>(s);
                q_[i] +=
                    s * (q_[j] - q_[i]) / (n_[j] - n_[i]);
            }
            // Clamp per the P² paper: a marker height may never
            // cross its neighbours, so the five heights stay
            // non-decreasing by construction (both branches above
            // already respect this; the clamp makes it an invariant
            // rather than a proof obligation on the branches).
            q_[i] = std::clamp(q_[i], q_[i - 1], q_[i + 1]);
            n_[i] += s;
        }
    }
}

double
P2Quantile::quantile() const
{
    if (count_ == 0)
        return 0.0;
    if (count_ <= 5) {
        // Exact: linear interpolation at rank p * (n - 1) over the
        // sorted sample prefix.
        const double rank = prob_ * static_cast<double>(count_ - 1);
        const auto lo = static_cast<std::size_t>(rank);
        const double frac = rank - static_cast<double>(lo);
        if (lo + 1 >= count_)
            return q_[count_ - 1];
        return q_[lo] + frac * (q_[lo + 1] - q_[lo]);
    }
    return q_[2];
}

void
P2Quantile::save(ser::Writer &w) const
{
    w.real(prob_);
    w.u64(count_);
    for (int i = 0; i < 5; ++i) {
        w.real(q_[i]);
        w.real(n_[i]);
        w.real(np_[i]);
        w.real(dn_[i]);
    }
}

void
P2Quantile::load(ser::Reader &r)
{
    prob_ = r.real();
    count_ = r.u64();
    for (int i = 0; i < 5; ++i) {
        q_[i] = r.real();
        n_[i] = r.real();
        np_[i] = r.real();
        dn_[i] = r.real();
    }
}

P2QuantileSet::P2QuantileSet(std::vector<double> probs)
    : probs_(std::move(probs))
{
    panic_if(probs_.empty(),
             "P2QuantileSet needs at least one target probability");
    for (std::size_t i = 0; i < probs_.size(); ++i) {
        panic_if(probs_[i] <= 0.0 || probs_[i] >= 1.0,
                 "P2QuantileSet target probability ", probs_[i],
                 " outside (0, 1)");
        panic_if(i > 0 && probs_[i] <= probs_[i - 1],
                 "P2QuantileSet target probabilities must be "
                 "strictly increasing");
    }
    // Marker fractions: 0, then a midpoint and the target for every
    // probability, then a midpoint to 1, then 1 -- Jain & Chlamtac's
    // extension to simultaneous quantiles (2k+3 markers).
    frac_.push_back(0.0);
    double prev = 0.0;
    for (const double p : probs_) {
        frac_.push_back((prev + p) / 2.0);
        frac_.push_back(p);
        prev = p;
    }
    frac_.push_back((prev + 1.0) / 2.0);
    frac_.push_back(1.0);
    q_.assign(markers(), 0.0);
    n_.assign(markers(), 0.0);
    np_.assign(markers(), 0.0);
}

void
P2QuantileSet::sample(double v)
{
    const std::size_t m = markers();
    if (count_ < m) {
        // Exact phase: keep the first 2k+3 samples sorted verbatim.
        std::size_t i = count_;
        while (i > 0 && q_[i - 1] > v) {
            q_[i] = q_[i - 1];
            --i;
        }
        q_[i] = v;
        ++count_;
        if (count_ == m) {
            for (std::size_t j = 0; j < m; ++j) {
                n_[j] = static_cast<double>(j);
                np_[j] = static_cast<double>(m - 1) * frac_[j];
            }
        }
        return;
    }

    // Locate the cell the sample falls into, extending the extreme
    // markers when it lies outside the current span.
    std::size_t k;
    if (v < q_[0]) {
        q_[0] = v;
        k = 0;
    } else if (v >= q_[m - 1]) {
        q_[m - 1] = v;
        k = m - 2;
    } else {
        k = 0;
        while (k < m - 2 && q_[k + 1] <= v)
            ++k;
    }
    ++count_;

    for (std::size_t i = k + 1; i < m; ++i)
        n_[i] += 1.0;
    for (std::size_t i = 0; i < m; ++i)
        np_[i] += frac_[i];

    // Nudge every interior marker toward its desired position, the
    // same parabolic-else-linear rule as P2Quantile::sample() -- the
    // shared sorted heights are what make quantile(p) monotone in p.
    for (std::size_t i = 1; i + 1 < m; ++i) {
        const double d = np_[i] - n_[i];
        if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
            (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
            const double s = d >= 0 ? 1.0 : -1.0;
            const double qp =
                q_[i] +
                s / (n_[i + 1] - n_[i - 1]) *
                    ((n_[i] - n_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                         (n_[i + 1] - n_[i]) +
                     (n_[i + 1] - n_[i] - s) * (q_[i] - q_[i - 1]) /
                         (n_[i] - n_[i - 1]));
            if (q_[i - 1] < qp && qp < q_[i + 1]) {
                q_[i] = qp;
            } else {
                const std::size_t j = s > 0 ? i + 1 : i - 1;
                q_[i] += s * (q_[j] - q_[i]) / (n_[j] - n_[i]);
            }
            q_[i] = std::clamp(q_[i], q_[i - 1], q_[i + 1]);
            n_[i] += s;
        }
    }
}

double
P2QuantileSet::quantile(double p) const
{
    std::size_t idx = markers();
    for (std::size_t i = 0; i < probs_.size(); ++i)
        if (probs_[i] == p)
            idx = 2 * i + 2;  // frac_ layout: 0, mid, p1, mid, p2...
    panic_if(idx >= markers(), "P2QuantileSet::quantile(", p,
             ") is not a construction-time target");
    if (count_ == 0)
        return 0.0;
    if (count_ <= markers()) {
        // Exact: q_ still holds the sorted sample prefix.
        const double rank = p * static_cast<double>(count_ - 1);
        const auto lo = static_cast<std::size_t>(rank);
        const double frac = rank - static_cast<double>(lo);
        if (lo + 1 >= count_)
            return q_[count_ - 1];
        return q_[lo] + frac * (q_[lo + 1] - q_[lo]);
    }
    return q_[idx];
}

void
P2QuantileSet::save(ser::Writer &w) const
{
    w.u64(probs_.size());
    for (const double p : probs_)
        w.real(p);
    w.u64(count_);
    for (std::size_t i = 0; i < markers(); ++i) {
        w.real(q_[i]);
        w.real(n_[i]);
        w.real(np_[i]);
    }
}

void
P2QuantileSet::load(ser::Reader &r)
{
    const auto k = r.u64();
    fatal_if(k != probs_.size(), "checkpoint: P2QuantileSet has ", k,
             " targets, configured ", probs_.size());
    for (auto &p : probs_)
        p = r.real();
    count_ = r.u64();
    for (std::size_t i = 0; i < markers(); ++i) {
        q_[i] = r.real();
        n_[i] = r.real();
        np_[i] = r.real();
    }
}

void
StatRegistry::dump(std::ostream &os) const
{
    os << std::left;
    for (const auto &[name, c] : counters_)
        os << std::setw(40) << name << c.value() << "\n";
    for (const auto &[name, w] : waters_)
        os << std::setw(40) << (name + ".max") << w.max() << "\n";
    for (const auto &[name, s] : samplers_) {
        os << std::setw(40) << (name + ".mean") << s.mean() << "\n";
        os << std::setw(40) << (name + ".min") << s.min() << "\n";
        os << std::setw(40) << (name + ".max") << s.max() << "\n";
        os << std::setw(40) << (name + ".count") << s.count() << "\n";
    }
    for (const auto &[name, q] : quantiles_)
        os << std::setw(40) << name << q.quantile() << "\n";
}

void
StatRegistry::save(ser::Writer &w) const
{
    w.tag("STRG");
    w.u64(counters_.size());
    for (const auto &[name, c] : counters_) {
        w.str(name);
        c.save(w);
    }
    w.u64(waters_.size());
    for (const auto &[name, hw] : waters_) {
        w.str(name);
        hw.save(w);
    }
    w.u64(samplers_.size());
    for (const auto &[name, s] : samplers_) {
        w.str(name);
        s.save(w);
    }
    w.u64(quantiles_.size());
    for (const auto &[name, q] : quantiles_) {
        w.str(name);
        q.save(w);
    }
}

void
StatRegistry::load(ser::Reader &r)
{
    // Assign into existing map nodes (inserting any missing) so
    // components' cached Counter*/Sampler* pointers stay valid.
    r.tag("STRG");
    const auto nc = r.u64();
    for (std::uint64_t i = 0; i < nc; ++i) {
        const auto name = r.str();
        counters_[name].load(r);
    }
    const auto nw = r.u64();
    for (std::uint64_t i = 0; i < nw; ++i) {
        const auto name = r.str();
        waters_[name].load(r);
    }
    const auto ns = r.u64();
    for (std::uint64_t i = 0; i < ns; ++i) {
        const auto name = r.str();
        samplers_[name].load(r);
    }
    const auto nq = r.u64();
    for (std::uint64_t i = 0; i < nq; ++i) {
        const auto name = r.str();
        quantiles_.try_emplace(name).first->second.load(r);
    }
}

} // namespace pktbuf
