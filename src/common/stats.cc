#include "stats.hh"

#include <iomanip>

namespace pktbuf
{

double
Histogram::percentile(double frac) const
{
    if (sampler_.count() == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(frac * sampler_.count());
    // Underflow samples sit below every bucket: if they alone cover
    // the requested fraction, the percentile is below zero.
    std::uint64_t seen = underflow_;
    if (seen > target)
        return 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen > target)
            return (i + 1) * width_;
    }
    return counts_.size() * width_;
}

void
StatRegistry::dump(std::ostream &os) const
{
    os << std::left;
    for (const auto &[name, c] : counters_)
        os << std::setw(40) << name << c.value() << "\n";
    for (const auto &[name, w] : waters_)
        os << std::setw(40) << (name + ".max") << w.max() << "\n";
    for (const auto &[name, s] : samplers_) {
        os << std::setw(40) << (name + ".mean") << s.mean() << "\n";
        os << std::setw(40) << (name + ".min") << s.min() << "\n";
        os << std::setw(40) << (name + ".max") << s.max() << "\n";
        os << std::setw(40) << (name + ".count") << s.count() << "\n";
    }
}

} // namespace pktbuf
