/**
 * @file
 * Lightweight statistics primitives: scalar counters, min/max/mean
 * trackers, fixed-bucket histograms and a registry that pretty-prints
 * everything a component recorded.  Modeled loosely after gem5's Stats
 * package but deliberately tiny.
 */

#ifndef PKTBUF_COMMON_STATS_HH
#define PKTBUF_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace pktbuf
{

/** A monotonically increasing scalar counter. */
class Counter
{
  public:
    void
    inc(std::uint64_t delta = 1)
    {
        value_ += delta;
    }

    std::uint64_t value() const { return value_; }

    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Tracks min / max / mean of a sampled quantity. */
class Sampler
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** High-water-mark tracker for occupancies. */
class HighWater
{
  public:
    void
    observe(std::int64_t v)
    {
        if (v > max_)
            max_ = v;
    }

    std::int64_t max() const { return max_; }

    void reset() { max_ = 0; }

  private:
    std::int64_t max_ = 0;
};

/** Fixed-width linear histogram with underflow and overflow buckets. */
class Histogram
{
  public:
    Histogram(double bucket_width = 1.0, std::size_t buckets = 64)
        : width_(bucket_width), counts_(buckets + 1, 0)
    {}

    void
    sample(double v)
    {
        sampler_.sample(v);
        // Negative samples land in a dedicated underflow bucket
        // instead of being silently clamped into bucket 0: a
        // latency-delta histogram must surface sign errors, not
        // mask them.
        if (v < 0) {
            ++underflow_;
            return;
        }
        std::size_t idx = static_cast<std::size_t>(v / width_);
        if (idx >= counts_.size() - 1)
            idx = counts_.size() - 1;
        ++counts_[idx];
    }

    const Sampler &summary() const { return sampler_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }
    /** Samples below zero (would-be-clamped sign errors). */
    std::uint64_t underflow() const { return underflow_; }
    double bucketWidth() const { return width_; }

    /** Value below which the given fraction of samples fall. */
    double percentile(double frac) const;

  private:
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    Sampler sampler_;
};

/**
 * A flat registry of named statistics for one simulation.  Components
 * hold references to entries; dump() prints "name value" lines.
 */
class StatRegistry
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }
    Sampler &sampler(const std::string &name) { return samplers_[name]; }
    HighWater &highWater(const std::string &name) { return waters_[name]; }

    void dump(std::ostream &os) const;

    std::uint64_t
    counterValue(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Sampler> samplers_;
    std::map<std::string, HighWater> waters_;
};

} // namespace pktbuf

#endif // PKTBUF_COMMON_STATS_HH
