/**
 * @file
 * Lightweight statistics primitives: scalar counters, min/max/mean
 * trackers, fixed-bucket histograms and a registry that pretty-prints
 * everything a component recorded.  Modeled loosely after gem5's Stats
 * package but deliberately tiny.
 */

#ifndef PKTBUF_COMMON_STATS_HH
#define PKTBUF_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "serialize.hh"

namespace pktbuf
{

/** A monotonically increasing scalar counter. */
class Counter
{
  public:
    void
    inc(std::uint64_t delta = 1)
    {
        value_ += delta;
    }

    std::uint64_t value() const { return value_; }

    void reset() { value_ = 0; }

    void save(ser::Writer &w) const { w.u64(value_); }
    void load(ser::Reader &r) { value_ = r.u64(); }

  private:
    std::uint64_t value_ = 0;
};

/** Tracks min / max / mean of a sampled quantity. */
class Sampler
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

    void
    save(ser::Writer &w) const
    {
        w.u64(count_);
        w.real(sum_);
        w.real(min_);
        w.real(max_);
    }

    void
    load(ser::Reader &r)
    {
        count_ = r.u64();
        sum_ = r.real();
        min_ = r.real();
        max_ = r.real();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** High-water-mark tracker for occupancies. */
class HighWater
{
  public:
    void
    observe(std::int64_t v)
    {
        if (v > max_)
            max_ = v;
    }

    std::int64_t max() const { return max_; }

    void reset() { max_ = 0; }

    void save(ser::Writer &w) const { w.i64(max_); }
    void load(ser::Reader &r) { max_ = r.i64(); }

  private:
    std::int64_t max_ = 0;
};

/** Fixed-width linear histogram with underflow and overflow buckets. */
class Histogram
{
  public:
    Histogram(double bucket_width = 1.0, std::size_t buckets = 64)
        : width_(bucket_width), counts_(buckets + 1, 0)
    {}

    void
    sample(double v)
    {
        sampler_.sample(v);
        // Negative samples land in a dedicated underflow bucket
        // instead of being silently clamped into bucket 0: a
        // latency-delta histogram must surface sign errors, not
        // mask them.
        if (v < 0) {
            ++underflow_;
            return;
        }
        std::size_t idx = static_cast<std::size_t>(v / width_);
        if (idx >= counts_.size() - 1)
            idx = counts_.size() - 1;
        ++counts_[idx];
    }

    const Sampler &summary() const { return sampler_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }
    /** Samples below zero (would-be-clamped sign errors). */
    std::uint64_t underflow() const { return underflow_; }
    double bucketWidth() const { return width_; }

    /** Value below which the given fraction of samples fall. */
    double percentile(double frac) const;

    void save(ser::Writer &w) const;
    void load(ser::Reader &r);

  private:
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    Sampler sampler_;
};

/**
 * Streaming quantile estimator (Jain & Chlamtac's P-squared
 * algorithm): tracks one quantile of an unbounded sample stream in
 * O(1) memory -- five markers whose heights approximate the
 * quantile, refined by parabolic interpolation as samples arrive.
 *
 * Accuracy: *exact* for the first five samples (they are kept sorted
 * verbatim and interpolated at rank p*(n-1)); beyond that the
 * estimate converges to the true quantile with error that shrinks as
 * the sample count grows (empirically well under 1% of the sample
 * range for smooth distributions) -- and, unlike the fixed-width
 * Histogram, it is never clamped to a bucket edge, so tail quantiles
 * (p99 at 256+ ports) keep their resolution.  Deterministic: the
 * estimate is a pure function of the sample sequence.
 *
 * The five marker heights are kept non-decreasing by construction
 * (each adjusted height is clamped between its neighbours, per the
 * P² paper), so the estimate always lies within [min, max] of the
 * stream.  Note this guards *one* estimator's internal ordering
 * only: two independent instances tracking different probabilities
 * of the same stream may still cross (p99 < p50) because their
 * marker sets drift independently -- use P2QuantileSet when several
 * quantiles of one stream must be mutually consistent.
 */
class P2Quantile
{
  public:
    explicit P2Quantile(double prob = 0.5) : prob_(prob) { init(); }

    void sample(double v);

    /** Current quantile estimate (0 before any sample). */
    double quantile() const;

    std::uint64_t count() const { return count_; }
    double prob() const { return prob_; }

    void
    reset()
    {
        count_ = 0;
        init();
    }

    void save(ser::Writer &w) const;
    void load(ser::Reader &r);

  private:
    void init();

    double prob_;
    std::uint64_t count_ = 0;
    // While count_ < 5: q_[0..count_) holds the sorted samples.
    // After: the five P² markers (heights q_, positions n_, desired
    // positions np_, increments dn_).
    double q_[5] = {};
    double n_[5] = {};
    double np_[5] = {};
    double dn_[5] = {};
};

/**
 * Joint streaming estimator for several quantiles of one stream: the
 * multi-quantile extension of the P² algorithm.  One shared,
 * always-sorted marker array of 2k+3 heights (a midpoint marker
 * before every target and one after the last) serves all k target
 * probabilities, so the estimates are mutually consistent by
 * construction: quantile(p) is non-decreasing in p, which two
 * independent P2Quantile instances cannot guarantee (their marker
 * sets drift independently and cross on adversarial streams --
 * observed at n == 7 on tri-valued inputs).
 *
 * Exact for the first 2k+3 samples (kept sorted verbatim and
 * interpolated at rank p*(n-1)); the marker approximation beyond,
 * with the same neighbour clamp as P2Quantile.  Deterministic: a
 * pure function of the sample sequence.
 */
class P2QuantileSet
{
  public:
    /** @param probs target probabilities, strictly increasing, each
     *         in (0, 1).  Fixed for the estimator's lifetime. */
    explicit P2QuantileSet(std::vector<double> probs);

    void sample(double v);

    /**
     * Estimate for one construction-time target probability (panics
     * on any other value).  Non-decreasing in `p`; 0 before any
     * sample.
     */
    double quantile(double p) const;

    std::uint64_t count() const { return count_; }

    void save(ser::Writer &w) const;
    void load(ser::Reader &r);

  private:
    std::size_t markers() const { return frac_.size(); }

    std::vector<double> probs_;
    /** Marker fractions 0, (0+p1)/2, p1, ..., (pk+1)/2, 1; also the
     *  per-sample desired-position increments (the paper's dn). */
    std::vector<double> frac_;  // ser: config
    std::uint64_t count_ = 0;
    // While count_ < markers(): q_[0..count_) holds the sorted
    // samples.  After: the marker heights q_, positions n_ and
    // desired positions np_.
    std::vector<double> q_;
    std::vector<double> n_;
    std::vector<double> np_;
};

/**
 * A flat registry of named statistics for one simulation.  Components
 * hold references to entries; dump() prints "name value" lines.
 */
class StatRegistry
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }
    Sampler &sampler(const std::string &name) { return samplers_[name]; }
    HighWater &highWater(const std::string &name) { return waters_[name]; }

    /**
     * Named streaming quantile (O(1) memory in the sample count).
     * The probability is fixed at first registration; re-requesting
     * an existing name returns the existing estimator.
     */
    P2Quantile &
    quantile(const std::string &name, double prob)
    {
        auto it = quantiles_.find(name);
        if (it == quantiles_.end())
            it = quantiles_.emplace(name, P2Quantile(prob)).first;
        return it->second;
    }

    void dump(std::ostream &os) const;

    std::uint64_t
    counterValue(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    /**
     * Checkpoint.  load() assigns into existing entries (inserting
     * missing ones) and never clears the maps: components hold
     * pointers and references to entries across save/restore, and
     * std::map nodes are stable, so those stay valid.
     */
    void save(ser::Writer &w) const;
    void load(ser::Reader &r);

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Sampler> samplers_;
    std::map<std::string, HighWater> waters_;
    std::map<std::string, P2Quantile> quantiles_;
};

} // namespace pktbuf

#endif // PKTBUF_COMMON_STATS_HH
