#include "types.hh"

#include "logging.hh"

namespace pktbuf
{

double
lineRateGbps(LineRate rate)
{
    switch (rate) {
      case LineRate::OC192:
        return 10.0;
      case LineRate::OC768:
        return 40.0;
      case LineRate::OC3072:
        return 160.0;
    }
    panic("unknown line rate in gbps()");
}

double
slotTimeNs(LineRate rate)
{
    // 64 bytes = 512 bits; slot = 512 / (rate in Gb/s) ns.
    return 512.0 / lineRateGbps(rate);
}

std::string
toString(LineRate rate)
{
    switch (rate) {
      case LineRate::OC192:
        return "OC-192";
      case LineRate::OC768:
        return "OC-768";
      case LineRate::OC3072:
        return "OC-3072";
    }
    panic("unknown line rate in name()");
}

} // namespace pktbuf
