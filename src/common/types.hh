/**
 * @file
 * Fundamental types shared by every subsystem of the packet buffer:
 * slots, queue identifiers, cells, and the line-rate constants the
 * paper's evaluation uses (OC-192 / OC-768 / OC-3072).
 */

#ifndef PKTBUF_COMMON_TYPES_HH
#define PKTBUF_COMMON_TYPES_HH

#include <cstdint>
#include <limits>
#include <string>

#include "serialize.hh"

namespace pktbuf
{

/** Discrete simulation time, measured in cell time-slots. */
using Slot = std::uint64_t;

/** Identifier of a (logical or physical) VOQ. */
using QueueId = std::uint32_t;

/** Per-queue monotonically increasing cell sequence number. */
using SeqNum = std::uint64_t;

/** Sentinel for "no queue". */
constexpr QueueId kInvalidQueue = std::numeric_limits<QueueId>::max();

/** Fixed cell size used throughout the paper (Section 2). */
constexpr unsigned kCellBytes = 64;

/**
 * A fixed-size cell: the unit packets are segmented into (Section 2).
 *
 * The functional simulator never needs the payload itself; a cell
 * carries its queue, its per-queue sequence number and the slot it
 * arrived on, which is everything the integrity checker and the delay
 * statistics require.  A payload "stamp" lets tests detect corruption
 * of identity (e.g. a cell delivered to the wrong queue).
 */
struct Cell
{
    QueueId queue = kInvalidQueue;
    SeqNum seq = 0;
    Slot arrival = 0;

    /** Deterministic identity stamp used by integrity checks. */
    std::uint64_t
    stamp() const
    {
        // A 64-bit mix of (queue, seq); splitmix-like finalizer.
        std::uint64_t z = (static_cast<std::uint64_t>(queue) << 40) ^ seq;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    bool
    valid() const
    {
        return queue != kInvalidQueue;
    }

    void
    save(ser::Writer &w) const
    {
        w.u32(queue);
        w.u64(seq);
        w.u64(arrival);
    }

    void
    load(ser::Reader &r)
    {
        queue = r.u32();
        seq = r.u64();
        arrival = r.u64();
    }
};

/** Line rates considered by the paper's evaluation (Section 7). */
enum class LineRate
{
    OC192,   //!< 10 Gb/s
    OC768,   //!< 40 Gb/s
    OC3072,  //!< 160 Gb/s
};

/** Transmission time of one 64-byte cell at the given line rate, ns. */
double slotTimeNs(LineRate rate);

/** Line rate in Gb/s. */
double lineRateGbps(LineRate rate);

/** Human-readable name ("OC-3072"). */
std::string toString(LineRate rate);

} // namespace pktbuf

#endif // PKTBUF_COMMON_TYPES_HH
