#include "system_config.hh"

#include <cmath>
#include <iomanip>

#include "buffer/hybrid_buffer.hh"
#include "common/logging.hh"
#include "model/issue_queue.hh"
#include "model/sram_designs.hh"

namespace pktbuf::core
{

std::string
toString(BufferKind k)
{
    switch (k) {
      case BufferKind::Rads:
        return "RADS";
      case BufferKind::Cfds:
        return "CFDS";
    }
    panic("unknown BufferKind");
}

unsigned
SystemConfig::granRads() const
{
    if (granRadsOverride)
        return granRadsOverride;
    // Paper defaults (Section 7): B = 8 at OC-768, B = 32 at
    // OC-3072 with 48 ns commodity DRAM.
    if (dramRandomAccessNs == 48.0) {
        switch (rate) {
          case LineRate::OC192:
            return 2;
          case LineRate::OC768:
            return 8;
          case LineRate::OC3072:
            return 32;
        }
    }
    // Otherwise: next power of two covering t_RC / slot.
    const double ratio = dramRandomAccessNs / slotNs();
    unsigned b = 1;
    while (b < ratio)
        b <<= 1;
    return b;
}

buffer::BufferConfig
makeBufferConfig(const SystemConfig &sys, BufferKind kind)
{
    buffer::BufferConfig cfg;
    const unsigned B = sys.granRads();
    if (kind == BufferKind::Rads) {
        cfg.params = model::BufferParams{sys.queues, B, B, 1};
        cfg.logicalQueues = sys.queues;
    } else {
        fatal_if(sys.gran == 0 || B % sys.gran != 0,
                 "CFDS granularity b=", sys.gran,
                 " must divide B=", B);
        unsigned phys = sys.queues;
        if (sys.renaming) {
            phys = static_cast<unsigned>(
                std::ceil(sys.queues * sys.oversubscribe));
        }
        cfg.params = model::BufferParams{phys, B, sys.gran, sys.banks};
        cfg.logicalQueues = sys.queues;
        cfg.renaming = sys.renaming;
    }
    cfg.dramCells = sys.dramCells;
    cfg.params.validate();
    return cfg;
}

std::unique_ptr<buffer::PacketBuffer>
makeBuffer(const SystemConfig &sys, BufferKind kind)
{
    return std::make_unique<buffer::HybridBuffer>(
        makeBufferConfig(sys, kind));
}

void
printDimensioningReport(std::ostream &os, const SystemConfig &sys,
                        BufferKind kind)
{
    const auto cfg = makeBufferConfig(sys, kind);
    const auto &p = cfg.params;
    const double slot = sys.slotNs();
    const auto lookahead =
        model::ecqfLookaheadSlots(p.queues, std::max(p.gran, 2u));
    const auto spec = model::headSramSpec(p, lookahead);
    const auto cam = model::sizeSramBuffer(
        model::SramDesign::GlobalCam, spec.cells, spec.lists,
        p.queues);
    const auto ll = model::sizeSramBuffer(
        model::SramDesign::LinkedListTimeMux, spec.cells, spec.lists,
        p.queues);

    os << "=== " << toString(kind) << " dimensioning @ "
       << toString(sys.rate) << " (slot " << std::fixed
       << std::setprecision(2) << slot << " ns) ===\n";
    os << "queues (physical)        : " << p.queues << "\n";
    os << "B (t_RC in slots)        : " << p.granRads << "\n";
    os << "b (transfer granularity) : " << p.gran << "\n";
    if (kind == BufferKind::Cfds) {
        os << "banks M / groups G       : " << p.banks << " / "
           << p.groups() << "\n";
        os << "requests register R      : " << model::rrSize(p)
           << "\n";
        os << "max skips d_max          : " << model::dsaMaxSkips(p)
           << "\n";
        os << "latency register (slots) : " << model::latencySlots(p)
           << "\n";
        os << "RR sched time (ns)       : "
           << model::rrSchedTimeNs(model::rrSize(p)) << " (budget "
           << model::schedBudgetNs(p, sys.rate) << ", "
           << model::toString(model::classifySched(
                  model::rrSize(p),
                  model::schedBudgetNs(p, sys.rate)))
           << ")\n";
    }
    os << "lookahead (slots)        : " << lookahead << "\n";
    os << "h-SRAM size (cells)      : " << spec.cells << " ("
       << (spec.cells * kCellBytes) / 1024 << " KiB)\n";
    os << "  global CAM             : " << cam.effectiveNs
       << " ns/slot, " << cam.areaMm2 / 100.0 << " cm^2"
       << (cam.effectiveNs <= slot ? "  [meets slot]"
                                   : "  [TOO SLOW]")
       << "\n";
    os << "  linked list (time-mux) : " << ll.effectiveNs
       << " ns/slot, " << ll.areaMm2 / 100.0 << " cm^2"
       << (ll.effectiveNs <= slot ? "  [meets slot]" : "  [TOO SLOW]")
       << "\n";
}

} // namespace pktbuf::core
