/**
 * @file
 * Top-level system description and factory: the public entry point
 * of the library.  A SystemConfig captures the link-level parameters
 * the paper's evaluation uses (line rate, queue count, DRAM timing,
 * bank count, CFDS granularity); fromSystem() derives a fully
 * dimensioned BufferConfig, and makeBuffer() instantiates the
 * simulator.
 */

#ifndef PKTBUF_CORE_SYSTEM_CONFIG_HH
#define PKTBUF_CORE_SYSTEM_CONFIG_HH

#include <memory>
#include <ostream>
#include <string>

#include "buffer/packet_buffer.hh"
#include "common/types.hh"
#include "model/dimensioning.hh"

namespace pktbuf::core
{

/** Which buffer architecture to build. */
enum class BufferKind
{
    Rads,  //!< Section 3 baseline ([13])
    Cfds,  //!< Section 5, the paper's contribution
};

std::string toString(BufferKind k);

/** Link-level description of the target system (Section 2 / 7). */
struct SystemConfig
{
    LineRate rate = LineRate::OC3072;

    /** Virtual output queues (logical). */
    unsigned queues = 512;

    /** DRAM random access time in ns (commodity DRAM, ~48 ns). */
    double dramRandomAccessNs = 48.0;

    /** CFDS granularity b in cells (ignored for RADS). */
    unsigned gran = 4;

    /** DRAM banks M (ignored for RADS). */
    unsigned banks = 256;

    /**
     * Physical-queue oversubscription factor for renaming;
     * physical = ceil(queues * oversubscribe).  1.0 disables
     * renaming headroom (renaming still legal but tight).
     */
    double oversubscribe = 1.25;

    /** Total DRAM capacity in cells (0 = unbounded). */
    std::uint64_t dramCells = 0;

    /** Enable queue renaming for CFDS (needs dramCells > 0). */
    bool renaming = false;

    /**
     * RADS granularity B in slots; 0 = paper defaults per line rate
     * (8 at OC-768, 32 at OC-3072) or the next power of two covering
     * dramRandomAccessNs / slot otherwise.
     */
    unsigned granRadsOverride = 0;

    /** B: DRAM random access time in slots. */
    unsigned granRads() const;

    /** Transmission time of one cell, ns. */
    double slotNs() const { return slotTimeNs(rate); }
};

/** Derive a dimensioned BufferConfig from the system description. */
buffer::BufferConfig makeBufferConfig(const SystemConfig &sys,
                                      BufferKind kind);

/** Build a ready-to-run buffer. */
std::unique_ptr<buffer::PacketBuffer>
makeBuffer(const SystemConfig &sys, BufferKind kind);

/** Human-readable dimensioning report (sizes, delays, feasibility). */
void printDimensioningReport(std::ostream &os, const SystemConfig &sys,
                             BufferKind kind);

} // namespace pktbuf::core

#endif // PKTBUF_CORE_SYSTEM_CONFIG_HH
