#include "crossbar_sim.hh"

#include <algorithm>
#include <exception>
#include <sstream>

#include "common/logging.hh"
#include "sweep/emit.hh"
#include "sweep/scenario_sweep.hh"
#include "sweep/sweep.hh"

namespace pktbuf::xbar
{

namespace
{

/** Salt index for the scheduler's RNG stream: far outside any
 *  realistic input index, so the scheduler's deriveSeed(master,
 *  kSchedSalt) stream never collides with an input's
 *  deriveSeed(master, input) stream. */
constexpr std::uint64_t kSchedSalt = 0x78736368ull;  // "xsch"

unsigned
resolvedHotOutputs(const CrossbarConfig &cfg)
{
    const unsigned hot = cfg.hotOutputs ? cfg.hotOutputs
                                        : std::max(1u, cfg.ports / 4);
    return std::min(hot, cfg.ports);
}

/**
 * Incast burst-length cap.  A burst's cells pile into one VOQ, and a
 * work-conserving matching then drains that backlog in *consecutive*
 * grants -- a same-queue service run the Eq. (1) Requests Register
 * sizing (derived for randomized request patterns) does not cover.
 * Capping the burst at 2B keeps the induced run within the register's
 * measured headroom; the fuzz soak is the evidence.
 */
std::uint64_t
burstCap(const CrossbarConfig &cfg)
{
    return std::min<std::uint64_t>(
        std::max<std::uint64_t>(1, cfg.incastBurst),
        2 * std::max(1u, cfg.granRads));
}

} // namespace

std::string
CrossbarConfig::name() const
{
    std::ostringstream os;
    os << "xbar_" << xbar::toString(scheduler) << "_"
       << sw::toString(pattern) << "_p" << ports << "_"
       << sim::toString(variant) << "_B" << granRads << "_b"
       << (variant == sim::BufferVariant::Rads ? granRads : gran);
    return os.str();
}

std::string
CrossbarConfig::describe() const
{
    std::ostringstream os;
    os << name() << " groups=" << groups << " load=" << load
       << " slots=" << slots << " master_seed=" << masterSeed;
    if (scheduler == SchedulerKind::Islip)
        os << " islip_iters=" << islipIterations;
    if (scheduler == SchedulerKind::Qps)
        os << " qps_window=" << qpsWindow;
    if (pattern == sw::TrafficPattern::Hotspot) {
        os << " hot_outputs=" << resolvedHotOutputs(*this)
           << " hot_fraction=" << hotFraction;
    }
    if (pattern == sw::TrafficPattern::Incast) {
        os << " victim=" << incastVictim << " burst=" << incastBurst
           << " hot_fraction=" << hotFraction;
    }
    return os.str();
}

std::vector<InputPlan>
planCrossbar(const CrossbarConfig &cfg)
{
    fatal_if(cfg.ports == 0, "crossbar needs at least one port");
    fatal_if(cfg.load <= 0.0, "crossbar load must be positive");
    fatal_if(cfg.pattern == sw::TrafficPattern::Incast &&
                 cfg.incastVictim >= cfg.ports,
             "incast victim output ", cfg.incastVictim,
             " out of range (", cfg.ports, " ports)");
    fatal_if((cfg.pattern == sw::TrafficPattern::Hotspot ||
              cfg.pattern == sw::TrafficPattern::Incast) &&
                 (cfg.hotFraction <= 0.0 || cfg.hotFraction >= 1.0),
             "hot fraction ", cfg.hotFraction,
             " outside (0, 1) starves one side of the ",
             sw::toString(cfg.pattern), " split");

    const unsigned n = cfg.ports;
    double rho = std::min(cfg.load, CrossbarConfig::kMaxInputLoad);
    // A permutation input concentrates its whole rate on one VOQ; a
    // 1x1 crossbar does so under *every* pattern.
    if (cfg.pattern == sw::TrafficPattern::Permutation || n == 1)
        rho = std::min(rho, CrossbarConfig::kMaxVoqLoad);

    // Resolve the skewed patterns' probabilities against the output
    // and per-VOQ load caps (pure arithmetic -- every input can be
    // rebuilt from its plan alone).
    const unsigned hot = resolvedHotOutputs(cfg);
    double hot_fraction = 0.0;
    if (cfg.pattern == sw::TrafficPattern::Hotspot) {
        if (hot >= n) {
            hot_fraction = 1.0;  // degenerate: every output is hot
        } else {
            // Aggregate rate on the hot side is n*rho*f spread over
            // `hot` outputs; each input's hot VOQs carry rho*f/hot.
            const double out_cap =
                CrossbarConfig::kMaxSkewedOutputLoad * hot /
                (n * rho);
            const double voq_cap =
                CrossbarConfig::kMaxVoqLoad * hot / rho;
            hot_fraction =
                std::min({cfg.hotFraction, out_cap, voq_cap});
        }
    }
    double burst_start = 0.0;
    if (cfg.pattern == sw::TrafficPattern::Incast && n > 1) {
        // Victim-directed fraction phi.  The victim output takes
        // the *bursty* aggregate cap (kMaxVoqLoad, the switch
        // layer's kMaxBurstyLoad argument), not the milder skewed
        // cap: a burst both concentrates arrivals on one VOQ and --
        // because a work-conserving matching then drains that
        // backlog at one cell per slot -- concentrates the service
        // runs on the same bank group, and the two together must
        // stay inside the Eq. (1) Requests Register sizing.
        const double phi = std::min(
            {cfg.hotFraction,
             CrossbarConfig::kMaxVoqLoad / (n * rho),
             CrossbarConfig::kMaxVoqLoad / rho});
        // Arrivals alternate renewal cycles: a victim burst of mean
        // length E = (1 + burstLen) / 2 with probability p, one
        // non-victim cell otherwise.  phi = pE / (pE + 1 - p) gives
        // p = phi / (E (1 - phi) + phi).
        const double mean_burst = (1.0 + burstCap(cfg)) / 2.0;
        burst_start = phi / (mean_burst * (1.0 - phi) + phi);
    }

    std::vector<InputPlan> plans;
    plans.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        InputPlan plan;
        plan.input = i;

        DestPlan dest;
        dest.pattern = cfg.pattern;
        dest.outputs = n;
        dest.hotOutputs = hot;
        dest.hotFraction = hot_fraction;
        dest.victim = cfg.incastVictim;
        dest.burstLen = burstCap(cfg);
        dest.burstStart = burst_start;
        // Fixed crossbar permutation: input i -> output (i + 1) % n,
        // a derangement for n > 1 so no input talks to "itself".
        dest.permTarget = static_cast<QueueId>((i + 1) % n);
        plan.dest = dest;

        sim::Scenario s;
        s.variant = cfg.variant;
        s.workload = sim::WorkloadKind::Bernoulli;  // tag overrides
        s.queues = n;  // one VOQ per output
        s.granRads = cfg.granRads;
        if (s.variant == sim::BufferVariant::Rads) {
            s.gran = cfg.granRads;
            s.groups = 1;
        } else {
            s.gran = cfg.gran;
            s.groups = cfg.groups;
        }
        if (s.variant == sim::BufferVariant::CfdsRenaming) {
            // Same shape the matrix's renaming legs use: more
            // physical than logical queues and a DRAM tight enough
            // that renaming chains actually form.
            s.physQueues = 2 * n;
            s.dramCells = 2ull * n * cfg.granRads;
        }
        s.load = rho;
        s.slots = cfg.slots;
        s.seed = sweep::deriveSeed(cfg.masterSeed, i);
        s.eventEngine = cfg.eventEngine;
        // A work-conserving matching drains a backlogged VOQ in
        // consecutive same-queue grants -- a service concentration
        // the Eq. (1) RR sizing (randomized requests) does not
        // model.  Provision the register for the worst run the plan
        // admits: a full burst-cap backlog, one DRAM access per b
        // cells on both the read and the write side.
        const unsigned b = std::max(
            1u, s.variant == sim::BufferVariant::Rads ? cfg.granRads
                                                      : cfg.gran);
        s.rrSlack = 2 * (burstCap(cfg) / b + 1);
        // Name the workload that actually runs, so failure logs and
        // --list lines describe the destination process exactly.
        switch (cfg.pattern) {
          case sw::TrafficPattern::Uniform:
            s.workloadTag = "voq_uniform";
            break;
          case sw::TrafficPattern::Hotspot:
            s.workloadTag = "voq_hot" + std::to_string(hot);
            break;
          case sw::TrafficPattern::Incast:
            s.workloadTag =
                "voq_incast" + std::to_string(cfg.incastVictim);
            break;
          case sw::TrafficPattern::Permutation:
            s.workloadTag =
                "voq_to" + std::to_string(dest.permTarget);
            break;
        }
        plan.scenario = s;
        plans.push_back(std::move(plan));
    }
    return plans;
}

CrossbarPortWorkload::CrossbarPortWorkload(const DestPlan &dest,
                                           std::uint64_t seed,
                                           double load,
                                           bool self_greedy)
    : sim::Workload(dest.outputs, seed), dest_(dest), load_(load),
      self_greedy_(self_greedy)
{
    fatal_if(self_greedy && dest.outputs != 1,
             "self-greedy crossbar workload requires exactly one "
             "output, got ", dest.outputs);
}

QueueId
CrossbarPortWorkload::arrivalQueue(Slot)
{
    // arrivalQueue runs before step() lands the arrival, so this is
    // the same start-of-slot VOQ snapshot the matching engine hands
    // its scheduler.
    if (self_greedy_)
        start_credit_ = credit(0);
    if (!rng_.chance(load_))
        return kInvalidQueue;
    const unsigned n = dest_.outputs;
    switch (dest_.pattern) {
      case sw::TrafficPattern::Uniform:
        return static_cast<QueueId>(rng_.below(n));
      case sw::TrafficPattern::Hotspot:
        if (dest_.hotOutputs >= n)
            return static_cast<QueueId>(rng_.below(n));
        if (rng_.chance(dest_.hotFraction))
            return static_cast<QueueId>(
                rng_.below(dest_.hotOutputs));
        return static_cast<QueueId>(
            dest_.hotOutputs + rng_.below(n - dest_.hotOutputs));
      case sw::TrafficPattern::Incast: {
        if (n == 1)
            return static_cast<QueueId>(dest_.victim);
        if (burst_remaining_ == 0 && rng_.chance(dest_.burstStart))
            burst_remaining_ = 1 + rng_.below(dest_.burstLen);
        if (burst_remaining_ > 0) {
            --burst_remaining_;
            return static_cast<QueueId>(dest_.victim);
        }
        // Uniform over the non-victim outputs.
        auto q = static_cast<QueueId>(rng_.below(n - 1));
        return q >= dest_.victim ? q + 1 : q;
      }
      case sw::TrafficPattern::Permutation:
        return dest_.permTarget;
    }
    panic("unknown destination pattern");
}

QueueId
CrossbarPortWorkload::requestQueue(Slot)
{
    if (self_greedy_)
        return start_credit_ > 0 ? 0 : kInvalidQueue;
    const QueueId g = grant_;
    grant_ = kInvalidQueue;
    return g;
}

void
CrossbarPortWorkload::saveExtra(ser::Writer &w) const
{
    // Checkpoints happen between slots, after requestQueue consumed
    // the grant -- a pending grant here means the engine and the
    // inputs disagree about the slot boundary.
    panic_if(grant_ != kInvalidQueue,
             "crossbar workload checkpointed with a pending grant");
    w.u64(burst_remaining_);
}

void
CrossbarPortWorkload::loadExtra(ser::Reader &r)
{
    burst_remaining_ = r.u64();
}

std::unique_ptr<CrossbarPortWorkload>
makeInputWorkload(const InputPlan &plan, bool self_greedy)
{
    return std::make_unique<CrossbarPortWorkload>(
        plan.dest, plan.scenario.seed, plan.scenario.load,
        self_greedy);
}

const sw::PortStatAgg *
CrossbarReport::agg(const std::string &name) const
{
    for (const auto &[k, v] : aggregates)
        if (k == name)
            return &v;
    return nullptr;
}

CrossbarRun::CrossbarRun(const CrossbarConfig &cfg)
    : cfg_(cfg), plans_(planCrossbar(cfg)),
      fingerprint_(ser::fnv1a(cfg.describe())),
      sched_(makeScheduler(
          cfg.scheduler, cfg.ports, cfg.islipIterations,
          cfg.qpsWindow, sweep::deriveSeed(cfg.masterSeed, kSchedSalt))),
      wl_(cfg.ports, nullptr)
{
    inputs_.reserve(cfg.ports);
    for (unsigned i = 0; i < cfg.ports; ++i) {
        // The factory runs synchronously inside the ScenarioRun
        // constructor and hands back the owning pointer; wl_ keeps
        // the derived view for grant injection.
        inputs_.push_back(std::make_unique<soak::ScenarioRun>(
            plans_[i].scenario, [this, i] {
                auto w = makeInputWorkload(plans_[i]);
                wl_[i] = w.get();
                return w;
            }));
    }
}

void
CrossbarRun::validate(Slot t, const Occupancy &occ,
                      const Matching &m) const
{
    const unsigned n = cfg_.ports;
    panic_if(m.size() != n, "scheduler ", sched_->name(),
             " returned ", m.size(), " entries for ", n,
             " inputs at slot ", t);
    std::vector<bool> taken(n, false);
    for (unsigned i = 0; i < n; ++i) {
        const QueueId j = m[i];
        if (j == kInvalidQueue)
            continue;
        panic_if(j >= n, "scheduler ", sched_->name(),
                 " matched input ", i, " to invalid output ", j,
                 " at slot ", t);
        panic_if(taken[j], "scheduler ", sched_->name(),
                 " granted output ", j, " twice at slot ", t);
        panic_if(occ.at(i, j) == 0, "scheduler ", sched_->name(),
                 " granted empty VOQ (", i, " -> ", j, ") at slot ",
                 t);
        taken[j] = true;
    }
}

void
CrossbarRun::runTo(std::uint64_t slot)
{
    fatal_if(slot < executed_,
             "crossbar run cannot run backwards to slot ", slot,
             " (already at ", executed_, ")");
    fatal_if(slot > cfg_.slots, "slot ", slot,
             " beyond the main phase (", cfg_.slots, " slots)");
    const unsigned n = cfg_.ports;
    for (std::uint64_t t = executed_; t < slot; ++t) {
        // Start-of-slot VOQ snapshot: credits are cells arrived but
        // not yet requested, exactly what the fabric may move.
        Occupancy occ(n);
        bool any = false;
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = 0; j < n; ++j) {
                const auto c = wl_[i]->credit(j);
                occ.at(i, j) = c;
                any = any || c > 0;
            }
        }
        Matching m(n, kInvalidQueue);
        unsigned iters = 0;
        if (any) {
            // An all-empty fabric slot never consults the scheduler,
            // so its RNG/pointer state stays a pure function of the
            // traffic it actually arbitrated.
            m = sched_->schedule(occ);
            validate(t, occ, m);
            iters = sched_->lastIterations();
            ++active_slots_;
            iter_sum_ += iters;
            match_edges_ += matchingSize(m);
        }
        for (unsigned i = 0; i < n; ++i)
            wl_[i]->setGrant(m[i]);
        for (unsigned i = 0; i < n; ++i)
            inputs_[i]->runTo(t + 1);
        executed_ = t + 1;
        if (any && onMatch)
            onMatch(t, occ, m, iters);
    }
}

std::string
CrossbarRun::checkpoint() const
{
    ser::Writer w;
    w.tag("XBAR");
    w.u64(executed_);
    w.u64(match_edges_);
    w.u64(active_slots_);
    w.u64(iter_sum_);
    sched_->save(w);
    w.u64(inputs_.size());
    for (const auto &in : inputs_)
        w.str(in->checkpoint());
    return soak::sealCheckpoint(w.bytes(), fingerprint_);
}

void
CrossbarRun::restore(const std::string &bytes)
{
    const std::string payload =
        soak::openCheckpoint(bytes, fingerprint_);
    ser::Reader r(payload);
    r.tag("XBAR");
    executed_ = r.u64();
    fatal_if(executed_ > cfg_.slots, "checkpoint: executed slot ",
             executed_, " beyond the main phase (", cfg_.slots, ")");
    match_edges_ = r.u64();
    active_slots_ = r.u64();
    iter_sum_ = r.u64();
    sched_->load(r);
    const auto n = r.u64();
    fatal_if(n != inputs_.size(), "checkpoint: ", n, " inputs, this "
             "crossbar has ", inputs_.size());
    for (auto &in : inputs_)
        in->restore(r.str());
    r.done();
    for (const auto &in : inputs_)
        fatal_if(in->executed() != executed_,
                 "checkpoint: input slot cursor ", in->executed(),
                 " diverges from the fabric's ", executed_);
}

namespace
{

/** One aggregated stat: its record name and per-input extractor. */
struct StatDef
{
    const char *name;
    double (*get)(const sim::ScenarioOutcome &);
};

constexpr StatDef kStatDefs[] = {
    {"arrivals",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.run.arrivals);
     }},
    {"granted",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.verified);
     }},
    {"drained",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.drained);
     }},
    {"drops",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.run.drops);
     }},
    {"undelivered",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.undelivered);
     }},
    {"mean_delay_slots",
     [](const sim::ScenarioOutcome &o) { return o.run.meanDelaySlots; }},
    {"max_delay_slots",
     [](const sim::ScenarioOutcome &o) { return o.run.maxDelaySlots; }},
    {"dram_reads",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.dramReads);
     }},
    {"dram_writes",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.dramWrites);
     }},
    {"renames",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.renames);
     }},
    {"head_sram_hw",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.headSramHighWater);
     }},
    {"tail_sram_hw",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.tailSramHighWater);
     }},
    {"rr_hw",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.rrHighWater);
     }},
};

CrossbarReport
aggregateReport(const std::vector<sim::ScenarioOutcome> &inputs,
                std::uint64_t match_edges, std::uint64_t active_slots,
                std::uint64_t iter_sum)
{
    CrossbarReport r;
    r.ports = static_cast<unsigned>(inputs.size());
    for (const auto &o : inputs) {
        if (!o.passed)
            ++r.failedInputs;
        r.arrivals += o.run.arrivals;
        r.granted += o.verified;
        r.drained += o.drained;
        r.drops += o.run.drops;
        r.undelivered += o.undelivered;
        r.dramReads += o.report.dramReads;
        r.dramWrites += o.report.dramWrites;
        r.renames += o.report.renames;
    }
    r.matchEdges = match_edges;
    r.activeSlots = active_slots;
    r.iterSum = iter_sum;
    r.throughput =
        r.arrivals
            ? static_cast<double>(match_edges) / r.arrivals
            : 0.0;
    r.meanMatchSize =
        active_slots
            ? static_cast<double>(match_edges) / active_slots
            : 0.0;
    r.meanIterations =
        active_slots ? static_cast<double>(iter_sum) / active_slots
                     : 0.0;
    for (const auto &def : kStatDefs) {
        std::vector<double> values;
        values.reserve(inputs.size());
        for (const auto &o : inputs)
            values.push_back(def.get(o));
        r.aggregates.emplace_back(def.name,
                                  sw::aggregateStat(values));
    }
    return r;
}

} // namespace

CrossbarOutcome
CrossbarRun::finish()
{
    CrossbarOutcome out;
    out.plans = plans_;
    std::string why;
    try {
        runTo(cfg_.slots);
    } catch (const std::exception &e) {
        why = std::string("exception: ") + e.what() + "; ";
    }
    out.inputs.reserve(inputs_.size());
    for (auto &in : inputs_)
        out.inputs.push_back(in->finish());
    out.report = aggregateReport(out.inputs, match_edges_,
                                 active_slots_, iter_sum_);
    out.passed = why.empty() && out.report.failedInputs == 0;
    if (!out.passed) {
        std::ostringstream os;
        os << why;
        for (std::size_t i = 0; i < out.inputs.size(); ++i) {
            if (out.inputs[i].passed)
                continue;
            if (os.tellp() > 0)
                os << " | ";
            os << "input" << plans_[i].input << ": "
               << out.inputs[i].failure;
        }
        os << " [" << cfg_.describe() << "]";
        out.failure = os.str();
    }
    return out;
}

CrossbarOutcome
runCrossbar(const CrossbarConfig &cfg)
{
    try {
        CrossbarRun run(cfg);
        return run.finish();
    } catch (const std::exception &e) {
        CrossbarOutcome out;
        out.failure = std::string("exception: ") + e.what() + "; [" +
                      cfg.describe() + "]";
        return out;
    }
}

CrossbarOutcome
runCrossbarCheckpointed(const CrossbarConfig &cfg,
                        std::uint64_t every)
{
    try {
        auto run = std::make_unique<CrossbarRun>(cfg);
        if (every > 0) {
            for (std::uint64_t at = every; at < cfg.slots;
                 at += every) {
                run->runTo(at);
                const std::string bytes = run->checkpoint();
                // Restore into entirely fresh objects: the same
                // rebuild a cross-process resume performs.
                run = std::make_unique<CrossbarRun>(cfg);
                run->restore(bytes);
            }
        }
        return run->finish();
    } catch (const std::exception &e) {
        CrossbarOutcome out;
        out.failure = std::string("exception: ") + e.what() + "; [" +
                      cfg.describe() + "]";
        return out;
    }
}

sweep::Record
inputRecord(const InputPlan &plan, const sim::ScenarioOutcome &out)
{
    auto rec = sweep::scenarioRecord(plan.scenario, out);
    rec.set("input", plan.input)
        .set("pattern", sw::toString(plan.dest.pattern));
    if (plan.dest.pattern == sw::TrafficPattern::Incast)
        rec.set("victim_output", plan.dest.victim);
    if (plan.dest.pattern == sw::TrafficPattern::Permutation)
        rec.set("target_output", plan.dest.permTarget);
    return rec;
}

sweep::Record
crossbarRecord(const CrossbarConfig &cfg, const CrossbarOutcome &out)
{
    const auto &r = out.report;
    sweep::Record rec;
    rec.set("name", cfg.name())
        .set("pattern", sw::toString(cfg.pattern))
        .set("scheduler", xbar::toString(cfg.scheduler))
        .set("islip_iters", cfg.islipIterations)
        .set("qps_window", cfg.qpsWindow)
        .set("ports", cfg.ports)
        .set("variant", sim::toString(cfg.variant))
        .set("B", cfg.granRads)
        .set("b", cfg.gran)
        .set("groups", cfg.groups)
        .set("load", cfg.load)
        .set("slots", cfg.slots)
        .set("master_seed", cfg.masterSeed)
        .set("passed", out.passed)
        .set("failed_inputs", r.failedInputs)
        .set("arrivals", r.arrivals)
        .set("granted", r.granted)
        .set("drained", r.drained)
        .set("drops", r.drops)
        .set("undelivered", r.undelivered)
        .set("dram_reads", r.dramReads)
        .set("dram_writes", r.dramWrites)
        .set("renames", r.renames)
        .set("match_edges", r.matchEdges)
        .set("active_slots", r.activeSlots)
        .set("iter_sum", r.iterSum)
        .set("throughput", r.throughput)
        .set("mean_match_size", r.meanMatchSize)
        .set("mean_iterations", r.meanIterations);
    // Full across-input spread for the headline stats.
    for (const char *name :
         {"granted", "drops", "mean_delay_slots", "max_delay_slots",
          "head_sram_hw", "rr_hw"}) {
        const sw::PortStatAgg *a = r.agg(name);
        panic_if(!a, "crossbar report: missing aggregate for ", name);
        const std::string n = name;
        rec.set(n + "_min", a->min)
            .set(n + "_max", a->max)
            .set(n + "_mean", a->mean)
            .set(n + "_p50", a->p50)
            .set(n + "_p99", a->p99);
    }
    return rec;
}

void
emitCrossbarArtifacts(const CrossbarConfig &cfg,
                      const CrossbarOutcome &out,
                      const std::string &tool,
                      sweep::Record extra_meta,
                      const std::string &json_path,
                      const std::string &csv_path)
{
    if (json_path.empty() && csv_path.empty())
        return;
    // Reconstruct the (tasks, report) pair the sweep emitters
    // expect; the task callables are never run -- only the names
    // label the rows.
    std::vector<sweep::Task> tasks;
    sweep::SweepReport rep;
    for (std::size_t i = 0; i < out.plans.size(); ++i) {
        tasks.push_back(sweep::Task{
            "input" + std::to_string(out.plans[i].input), {}});
        sweep::TaskResult tr;
        tr.records.push_back(
            inputRecord(out.plans[i], out.inputs[i]));
        tr.ok = out.inputs[i].passed;
        if (!tr.ok) {
            tr.error = out.inputs[i].failure;
            ++rep.failed;
        }
        rep.results.push_back(std::move(tr));
    }
    tasks.push_back(sweep::Task{"aggregate", {}});
    sweep::TaskResult agg;
    agg.records.push_back(crossbarRecord(cfg, out));
    agg.ok = out.passed;
    if (!out.passed) {
        agg.error = out.failure;
        // Keep the schema invariant: "failed" counts exactly the
        // rows that carry ok=false, and the aggregate row is one.
        ++rep.failed;
    }
    rep.results.push_back(std::move(agg));

    extra_meta.set("crossbar", cfg.name())
        .set("pattern", sw::toString(cfg.pattern))
        .set("scheduler", xbar::toString(cfg.scheduler))
        .set("ports", cfg.ports)
        .set("master_seed", cfg.masterSeed);
    sweep::emitArtifacts(rep, tasks,
                         sweep::EmitMeta{tool, std::move(extra_meta)},
                         json_path, csv_path);
}

} // namespace pktbuf::xbar
