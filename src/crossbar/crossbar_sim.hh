/**
 * @file
 * Input-queued crossbar: N input ports, each holding one VOQ per
 * output backed by a full hybrid SRAM/DRAM buffer, arbitrated per
 * slot by a pluggable matching scheduler (scheduler.hh).
 *
 * Unlike src/switch/ -- N *independent* ports -- the crossbar couples
 * the ports through the fabric: an input may send at most one cell
 * per slot, an output may receive at most one, and which VOQ drains
 * is decided by the matching, so the buffer's SRAM/DRAM dynamics
 * finally interact with fabric-induced contention.
 *
 * The layering deliberately adds no second simulation code path:
 * input i *is* a soak::ScenarioRun (the checkpointable
 * runScenarioWith() skeleton) whose workload's requests are the
 * matching engine's grants.  Per slot the engine snapshots every
 * input's VOQ credits into an Occupancy matrix, asks the scheduler
 * for a matching, validates it (conflict-free, backed -- panics
 * otherwise: a bad matching is a scheduler bug), injects each grant
 * into its input's workload and advances all inputs one lockstep
 * slot.  A 1x1 crossbar therefore reproduces the matching
 * single-buffer scenario leg bit-for-bit (any maximal scheduler is
 * work-conserving at N == 1), and checkpoint/restore of the whole
 * fabric -- scheduler pointers, RNG, every input's sealed envelope --
 * is bit-identical to an unbroken run.  tests/test_crossbar.cc
 * enforces both.
 *
 * Destination patterns reuse the switch layer's TrafficPattern
 * vocabulary, reinterpreted over *outputs*: uniform spreads each
 * input's arrivals over all outputs, hotspot concentrates a fraction
 * on a few hot outputs, incast aims bursts at one victim output,
 * permutation pins each input to a fixed seeded partner output.
 * Skewed patterns resolve their knobs against per-output load caps
 * (pure arithmetic, see planCrossbar) so every requested
 * configuration is admissible by construction.
 */

#ifndef PKTBUF_CROSSBAR_CROSSBAR_SIM_HH
#define PKTBUF_CROSSBAR_CROSSBAR_SIM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "crossbar/scheduler.hh"
#include "sim/scenario.hh"
#include "sim/workload.hh"
#include "soak/checkpoint.hh"
#include "sweep/record.hh"
#include "switch/switch_sim.hh"
#include "switch/traffic.hh"

namespace pktbuf::xbar
{

/** Static configuration of a whole crossbar run. */
struct CrossbarConfig
{
    /** Crossbar radix: N inputs x N outputs, one VOQ per pair. */
    unsigned ports = 4;

    /** Destination pattern, over *outputs* (see file comment). */
    sw::TrafficPattern pattern = sw::TrafficPattern::Uniform;

    SchedulerKind scheduler = SchedulerKind::Islip;
    /** iSLIP request/grant/accept rounds per slot. */
    unsigned islipIterations = 4;
    /** QPS sliding-window hold length in slots. */
    unsigned qpsWindow = 8;

    /** Buffer architecture of every input port. */
    sim::BufferVariant variant = sim::BufferVariant::Cfds;
    unsigned granRads = 8;  //!< B
    unsigned gran = 2;      //!< b (forced to B on RADS)
    unsigned groups = 4;    //!< G (forced to 1 on RADS)

    /** Mean offered load per input (arrival probability per slot). */
    double load = 0.45;

    std::uint64_t slots = 20000;

    /**
     * Every input's seed is deriveSeed(masterSeed, input); the
     * scheduler draws from deriveSeed(masterSeed, kSchedSalt), so no
     * stream depends on any other.
     */
    std::uint64_t masterSeed = 1;

    /** Hotspot: hot output count; 0 = max(1, ports/4). */
    unsigned hotOutputs = 0;
    /** Hotspot: requested fraction of arrivals on the hot side
     *  (clamped so no hot output exceeds kMaxSkewedOutputLoad). */
    double hotFraction = 0.5;

    /** Incast: victim output index (must be < ports). */
    unsigned incastVictim = 0;
    /** Incast: mean destination-burst length toward the victim. */
    std::uint64_t incastBurst = 64;

    /**
     * Run every input on the event-calendar engine instead of the
     * per-slot reference loop.  Pure execution strategy: plumbed
     * into each input's sim::Scenario::eventEngine and, like it,
     * excluded from name()/describe() so artifacts and checkpoint
     * fingerprints stay byte-identical across engines.
     */
    bool eventEngine = false;

    /** Hard cap on any input's offered load. */
    static constexpr double kMaxInputLoad = 0.9;
    /**
     * Hard cap on the aggregate load converging on one *skewed*
     * output (hotspot / incast).  An output drains at most one cell
     * per slot, but a skewed output's cells also concentrate on one
     * VOQ per input, whose bank group sustains only 1 access per b
     * slots -- the same concentration argument behind
     * sw::SwitchConfig::kMaxBurstyLoad.
     */
    static constexpr double kMaxSkewedOutputLoad = 0.75;
    /**
     * Hard cap on a permutation input's load: the whole input rate
     * lands on a single VOQ (DESIGN.md's concentration bound, the
     * renaming property envelope's 0.45).
     */
    static constexpr double kMaxVoqLoad = 0.45;

    /** Unique, file/test-name-safe identifier of the run. */
    std::string name() const;
    /** name() plus every resolved knob and -- always -- the master
     *  seed, so any failure replays from the log alone.  Also the
     *  checkpoint-fingerprint text. */
    std::string describe() const;
};

/** Resolved destination process of one input (pure data). */
struct DestPlan
{
    sw::TrafficPattern pattern = sw::TrafficPattern::Uniform;
    /** Output count (the VOQ fan-out). */
    unsigned outputs = 1;
    /** Hotspot: hot outputs are [0, hotOutputs). */
    unsigned hotOutputs = 0;
    /** Hotspot: resolved per-arrival probability of the hot side. */
    double hotFraction = 0.0;
    /** Incast: the victim output. */
    unsigned victim = 0;
    /** Incast: burst length is 1 + below(burstLen). */
    std::uint64_t burstLen = 1;
    /** Incast: per-arrival probability of starting a victim burst. */
    double burstStart = 0.0;
    /** Permutation: this input's fixed partner output. */
    QueueId permTarget = 0;
};

/**
 * Fully resolved plan of one input port: the scenario leg it runs
 * (buffer config, resolved load, derived seed, slot budget) plus its
 * destination process.  Self-contained, like sw::PortPlan -- the
 * whole crossbar is a pure function of the plan list.
 */
struct InputPlan
{
    unsigned input = 0;
    /** The leg: variant, queues (= outputs), load, seed, slots. */
    sim::Scenario scenario;
    DestPlan dest;
};

/**
 * Resolve a crossbar configuration into one plan per input: derive
 * seeds, resolve the destination pattern's probabilities against the
 * per-output load caps, shape each input's scenario leg.  fatal() on
 * impossible knobs (zero ports, victim out of range, load outside
 * (0, kMaxInputLoad]).
 */
std::vector<InputPlan> planCrossbar(const CrossbarConfig &cfg);

/**
 * Workload of one crossbar input: arrivals pick a destination VOQ by
 * the input's DestPlan (own RNG -- streams are input-local); requests
 * replay the matching engine's grant, injected via setGrant() just
 * before the slot advances.
 *
 * In self-greedy mode (valid only for 1 output) the workload instead
 * requests its single VOQ whenever the VOQ was non-empty at the
 * start of the slot -- exactly the decision any maximal 1x1 matching
 * makes -- which is how the equivalence tests build the reference
 * single-buffer leg without a crossbar engine in the loop.
 */
class CrossbarPortWorkload : public sim::Workload
{
  public:
    /**
     * @param dest resolved destination process
     * @param seed this input's RNG seed
     * @param load arrival probability per slot
     * @param self_greedy serve the single VOQ greedily instead of
     *        waiting for grants (requires dest.outputs == 1)
     */
    CrossbarPortWorkload(const DestPlan &dest, std::uint64_t seed,
                         double load, bool self_greedy = false);

    std::string name() const override { return "crossbar-voq"; }

    /** Inject this slot's grant (kInvalidQueue = unmatched). */
    void
    setGrant(QueueId out)
    {
        grant_ = out;
    }

  protected:
    QueueId arrivalQueue(Slot now) override;
    QueueId requestQueue(Slot now) override;
    void saveExtra(ser::Writer &w) const override;
    void loadExtra(ser::Reader &r) override;

  private:
    DestPlan dest_;  // ser: config
    double load_;  // ser: config
    bool self_greedy_;  // ser: config
    /** Engine-injected grant; consumed (reset) every slot. */
    QueueId grant_ = kInvalidQueue;  // ser: derived
    /** Incast: cells left in the current victim-directed burst. */
    std::uint64_t burst_remaining_ = 0;
    /**
     * Self-greedy only: the VOQ depth at the *start* of the slot
     * (sampled in arrivalQueue, before the arrival lands) -- the
     * same snapshot the matching engine hands its scheduler.
     * Transient: rewritten every slot before requestQueue reads it,
     * so it is deliberately not checkpointed.
     */
    std::uint64_t start_credit_ = 0;  // ser: derived
};

/** Instantiate the workload one input plan calls for. */
std::unique_ptr<CrossbarPortWorkload>
makeInputWorkload(const InputPlan &plan, bool self_greedy = false);

/** Crossbar-level aggregation of the per-input outcomes. */
struct CrossbarReport
{
    unsigned ports = 0;
    std::size_t failedInputs = 0;

    /** Straight sums over inputs. */
    std::uint64_t arrivals = 0;
    std::uint64_t granted = 0;  //!< golden-verified grants
    std::uint64_t drained = 0;
    std::uint64_t drops = 0;
    std::uint64_t undelivered = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t renames = 0;

    /** Fabric counters (main phase only, before the drain). */
    std::uint64_t matchEdges = 0;   //!< granted fabric transfers
    std::uint64_t activeSlots = 0;  //!< slots with any backed VOQ
    std::uint64_t iterSum = 0;      //!< scheduler iterations total

    /** matchEdges / arrivals: fraction of offered cells the fabric
     *  served within the main phase (the headline throughput). */
    double throughput = 0.0;
    /** matchEdges / activeSlots. */
    double meanMatchSize = 0.0;
    /** iterSum / activeSlots. */
    double meanIterations = 0.0;

    /** Per-stat spread across inputs (sw::aggregateStat), keyed by
     *  the scenarioRecord field names, in emission order. */
    std::vector<std::pair<std::string, sw::PortStatAgg>> aggregates;

    /** The named aggregate, or nullptr when absent. */
    const sw::PortStatAgg *agg(const std::string &name) const;
};

/** Outcome of a whole crossbar run. */
struct CrossbarOutcome
{
    /** The plans that ran, in input order. */
    std::vector<InputPlan> plans;
    /** Per-input outcomes, in input order. */
    std::vector<sim::ScenarioOutcome> inputs;
    CrossbarReport report;
    bool passed = false;
    /** Every failure's diagnosis (each names the master seed). */
    std::string failure;
};

/**
 * The crossbar engine: N lockstep ScenarioRun inputs coupled by the
 * matching scheduler.  Checkpointable at any main-phase slot.
 *
 * Usage mirrors soak::ScenarioRun:
 *   CrossbarRun a(cfg);
 *   a.runTo(k);
 *   auto bytes = a.checkpoint();
 *   CrossbarRun b(cfg);        // fresh objects, same config
 *   b.restore(bytes);
 *   auto out = b.finish();     // == runCrossbar(cfg) bit for bit
 */
class CrossbarRun
{
  public:
    /** Build every input and the scheduler; fatal() on bad knobs. */
    explicit CrossbarRun(const CrossbarConfig &cfg);

    const CrossbarConfig &config() const { return cfg_; }
    const std::vector<InputPlan> &plans() const { return plans_; }
    const Scheduler &scheduler() const { return *sched_; }

    /** Advance the main phase to absolute slot `slot` (<= slots). */
    void runTo(std::uint64_t slot);

    /** Main-phase slots executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Snapshot the fabric into a sealed soak envelope ("PKCK",
     * fingerprinted with *this* config's describe() text): slot
     * cursor, fabric counters, scheduler state, then every input's
     * own sealed ScenarioRun envelope, length-prefixed.
     */
    std::string checkpoint() const;

    /** Replace this run's state with a checkpoint's.  FatalError on
     *  corruption or a foreign configuration. */
    void restore(const std::string &bytes);

    /**
     * Run the remaining main-phase slots, then complete every input
     * through soak::ScenarioRun::finish() (golden totals, full
     * drain) and aggregate the crossbar report.
     */
    CrossbarOutcome finish();

    /**
     * Test observer: called once per *active* slot (non-empty
     * occupancy) with the start-of-slot occupancy, the validated
     * matching and the scheduler's iteration count.  Not part of the
     * checkpointed state.
     */
    std::function<void(Slot, const Occupancy &, const Matching &,
                       unsigned)>
        onMatch;

  private:
    void validate(Slot t, const Occupancy &occ,
                  const Matching &m) const;

    CrossbarConfig cfg_;
    std::vector<InputPlan> plans_;
    std::uint64_t fingerprint_;
    std::unique_ptr<Scheduler> sched_;
    std::vector<std::unique_ptr<soak::ScenarioRun>> inputs_;
    /** The inputs' workloads (owned by inputs_), for grant
     *  injection and occupancy snapshots. */
    std::vector<CrossbarPortWorkload *> wl_;
    std::uint64_t executed_ = 0;
    std::uint64_t match_edges_ = 0;
    std::uint64_t active_slots_ = 0;
    std::uint64_t iter_sum_ = 0;
};

/**
 * Run one crossbar end to end.  Never throws: panics and fatals
 * become a failed outcome whose message carries describe() (and so
 * the master seed).
 */
CrossbarOutcome runCrossbar(const CrossbarConfig &cfg);

/**
 * Run one crossbar, checkpointing every `every` main-phase slots and
 * restoring each snapshot into a completely fresh CrossbarRun before
 * continuing -- the crossbar soak self-test.  `every` == 0 (or >=
 * slots) degenerates to a plain run.  Never throws.
 */
CrossbarOutcome runCrossbarCheckpointed(const CrossbarConfig &cfg,
                                        std::uint64_t every);

/**
 * One result row per input: the scenario record of the input's leg
 * plus input index, pattern and destination role.  The 1x1
 * equivalence tests byte-compare the scenario-record prefix against
 * the matching single-buffer leg.
 */
sweep::Record inputRecord(const InputPlan &plan,
                          const sim::ScenarioOutcome &out);

/** The aggregate row: configuration echo, sums, fabric metrics and
 *  min/max/mean/p50/p99 of the headline per-input stats. */
sweep::Record crossbarRecord(const CrossbarConfig &cfg,
                             const CrossbarOutcome &out);

/**
 * Emit the sweep-schema JSON/CSV artifacts of a finished run: one
 * row per input (in input order) plus one final "aggregate" row.
 * Purely a function of the outcome.  Paths: empty = skip, "-" =
 * stdout.
 */
void emitCrossbarArtifacts(const CrossbarConfig &cfg,
                           const CrossbarOutcome &out,
                           const std::string &tool,
                           sweep::Record extra_meta,
                           const std::string &json_path,
                           const std::string &csv_path);

} // namespace pktbuf::xbar

#endif // PKTBUF_CROSSBAR_CROSSBAR_SIM_HH
