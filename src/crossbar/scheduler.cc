#include "scheduler.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace pktbuf::xbar
{

std::size_t
matchingSize(const Matching &m)
{
    std::size_t n = 0;
    for (const auto out : m)
        n += out != kInvalidQueue ? 1 : 0;
    return n;
}

bool
matchingConflictFree(const Matching &m, unsigned ports)
{
    if (m.size() != ports)
        return false;
    std::vector<bool> taken(ports, false);
    for (const auto out : m) {
        if (out == kInvalidQueue)
            continue;
        if (out >= ports || taken[out])
            return false;
        taken[out] = true;
    }
    return true;
}

bool
matchingBacked(const Matching &m, const Occupancy &occ)
{
    for (unsigned i = 0; i < occ.ports(); ++i) {
        if (m[i] != kInvalidQueue && occ.at(i, m[i]) == 0)
            return false;
    }
    return true;
}

bool
matchingMaximal(const Matching &m, const Occupancy &occ)
{
    const unsigned n = occ.ports();
    std::vector<bool> taken(n, false);
    for (const auto out : m)
        if (out != kInvalidQueue)
            taken[out] = true;
    for (unsigned i = 0; i < n; ++i) {
        if (m[i] != kInvalidQueue)
            continue;
        for (unsigned j = 0; j < n; ++j) {
            if (!taken[j] && occ.at(i, j) > 0)
                return false;  // augmenting edge (i, j) exists
        }
    }
    return true;
}

namespace
{

/** One Kuhn augmenting-path step from input `i`. */
bool
augment(const Occupancy &occ, unsigned i, std::vector<bool> &visited,
        std::vector<unsigned> &owner)
{
    const unsigned n = occ.ports();
    for (unsigned j = 0; j < n; ++j) {
        if (occ.at(i, j) == 0 || visited[j])
            continue;
        visited[j] = true;
        if (owner[j] == n || augment(occ, owner[j], visited, owner)) {
            owner[j] = i;
            return true;
        }
    }
    return false;
}

} // namespace

unsigned
maximumMatchingSize(const Occupancy &occ)
{
    const unsigned n = occ.ports();
    std::vector<unsigned> owner(n, n);  // output -> matched input
    unsigned size = 0;
    for (unsigned i = 0; i < n; ++i) {
        std::vector<bool> visited(n, false);
        if (augment(occ, i, visited, owner))
            ++size;
    }
    return size;
}

std::string
toString(SchedulerKind k)
{
    switch (k) {
      case SchedulerKind::Islip:
        return "islip";
      case SchedulerKind::Qps:
        return "qps";
      case SchedulerKind::RandomMaximal:
        return "random";
    }
    return "?";
}

bool
parseSchedulerKind(const std::string &token, SchedulerKind &out)
{
    if (token == "islip")
        out = SchedulerKind::Islip;
    else if (token == "qps")
        out = SchedulerKind::Qps;
    else if (token == "random")
        out = SchedulerKind::RandomMaximal;
    else
        return false;
    return true;
}

IslipScheduler::IslipScheduler(unsigned ports, unsigned iterations)
    : ports_(ports), iterations_(iterations), g_(ports, 0),
      a_(ports, 0)
{
    fatal_if(ports == 0, "islip: zero ports");
    fatal_if(iterations == 0, "islip: zero iterations");
}

std::string
IslipScheduler::name() const
{
    std::ostringstream os;
    os << "islip" << iterations_;
    return os.str();
}

Matching
IslipScheduler::schedule(const Occupancy &occ)
{
    const unsigned n = ports_;
    Matching match(n, kInvalidQueue);
    std::vector<bool> out_matched(n, false);
    last_iters_ = 0;
    for (unsigned it = 0; it < iterations_; ++it) {
        // Grant: each unmatched output picks the first unmatched
        // input with a backed VOQ at or after its grant pointer.
        std::vector<QueueId> grant(n, kInvalidQueue);
        for (unsigned j = 0; j < n; ++j) {
            if (out_matched[j])
                continue;
            for (unsigned k = 0; k < n; ++k) {
                const unsigned i = (g_[j] + k) % n;
                if (match[i] == kInvalidQueue && occ.at(i, j) > 0) {
                    grant[j] = i;
                    break;
                }
            }
        }
        // Accept: each unmatched input picks the first granting
        // output at or after its accept pointer.  Pointers move one
        // past the partner only on first-iteration accepts.
        bool progress = false;
        for (unsigned i = 0; i < n; ++i) {
            if (match[i] != kInvalidQueue)
                continue;
            for (unsigned k = 0; k < n; ++k) {
                const unsigned j = (a_[i] + k) % n;
                if (grant[j] != i)
                    continue;
                match[i] = j;
                out_matched[j] = true;
                progress = true;
                if (it == 0) {
                    g_[j] = (i + 1) % n;
                    a_[i] = (j + 1) % n;
                }
                break;
            }
        }
        if (!progress)
            break;
        ++last_iters_;
    }
    return match;
}

void
IslipScheduler::save(ser::Writer &w) const
{
    w.tag("ISLP");
    for (const auto p : g_)
        w.u32(p);
    for (const auto p : a_)
        w.u32(p);
}

void
IslipScheduler::load(ser::Reader &r)
{
    r.tag("ISLP");
    for (auto &p : g_)
        p = r.u32();
    for (auto &p : a_)
        p = r.u32();
    for (const auto p : g_)
        fatal_if(p >= ports_, "checkpoint: islip grant pointer ", p,
                 " out of range");
    for (const auto p : a_)
        fatal_if(p >= ports_, "checkpoint: islip accept pointer ", p,
                 " out of range");
}

QpsScheduler::QpsScheduler(unsigned ports, unsigned window,
                           std::uint64_t seed)
    : ports_(ports), window_(window), rng_(seed), held_(ports)
{
    fatal_if(ports == 0, "qps: zero ports");
    fatal_if(window == 0, "qps: zero window");
}

std::string
QpsScheduler::name() const
{
    std::ostringstream os;
    os << "qps_w" << window_;
    return os.str();
}

Matching
QpsScheduler::schedule(const Occupancy &occ)
{
    const unsigned n = ports_;
    Matching match(n, kInvalidQueue);
    std::vector<bool> out_taken(n, false);
    last_iters_ = 0;

    // Phase 1 -- sliding-window hold: keep last slot's edge while it
    // is younger than the window and its VOQ is still backed.
    bool held_any = false;
    for (unsigned i = 0; i < n; ++i) {
        auto &h = held_[i];
        if (h.out != kInvalidQueue && h.age < window_ &&
            occ.at(i, h.out) > 0 && !out_taken[h.out]) {
            match[i] = h.out;
            out_taken[h.out] = true;
            ++h.age;
            held_any = true;
        } else {
            h = Hold{};
        }
    }
    if (held_any)
        ++last_iters_;

    // Phase 2 -- queue-proportional sampling: one proposal per
    // unmatched input, drawn with probability proportional to VOQ
    // depth; each free output accepts the deepest proposal.
    std::vector<QueueId> proposal(n, kInvalidQueue);
    for (unsigned i = 0; i < n; ++i) {
        if (match[i] != kInvalidQueue)
            continue;
        const auto total = occ.rowTotal(i);
        if (total == 0)
            continue;
        auto pick = rng_.below(total);
        for (unsigned j = 0; j < n; ++j) {
            const auto c = occ.at(i, j);
            if (pick < c) {
                proposal[i] = j;
                break;
            }
            pick -= c;
        }
    }
    bool sampled_any = false;
    for (unsigned j = 0; j < n; ++j) {
        if (out_taken[j])
            continue;
        unsigned best = n;
        std::uint64_t best_depth = 0;
        for (unsigned i = 0; i < n; ++i) {
            if (proposal[i] == j && occ.at(i, j) > best_depth) {
                best = i;
                best_depth = occ.at(i, j);
            }
        }
        if (best < n) {
            match[best] = j;
            out_taken[j] = true;
            held_[best] = Hold{static_cast<QueueId>(j), 0};
            sampled_any = true;
        }
    }
    if (sampled_any)
        ++last_iters_;

    // Phase 3 -- greedy completion to a maximal matching.
    bool filled_any = false;
    for (unsigned i = 0; i < n; ++i) {
        if (match[i] != kInvalidQueue)
            continue;
        for (unsigned j = 0; j < n; ++j) {
            if (out_taken[j] || occ.at(i, j) == 0)
                continue;
            match[i] = j;
            out_taken[j] = true;
            held_[i] = Hold{static_cast<QueueId>(j), 0};
            filled_any = true;
            break;
        }
    }
    if (filled_any)
        ++last_iters_;
    return match;
}

void
QpsScheduler::save(ser::Writer &w) const
{
    w.tag("QPSS");
    rng_.save(w);
    for (const auto &h : held_) {
        w.u32(h.out);
        w.u64(h.age);
    }
}

void
QpsScheduler::load(ser::Reader &r)
{
    r.tag("QPSS");
    rng_.load(r);
    for (auto &h : held_) {
        h.out = r.u32();
        h.age = r.u64();
        fatal_if(h.out != kInvalidQueue && h.out >= ports_,
                 "checkpoint: qps held output out of range");
        fatal_if(h.out != kInvalidQueue && h.age > window_,
                 "checkpoint: qps hold age beyond window");
    }
}

RandomMaximalScheduler::RandomMaximalScheduler(unsigned ports,
                                               std::uint64_t seed)
    : ports_(ports), rng_(seed)
{
    fatal_if(ports == 0, "random scheduler: zero ports");
}

Matching
RandomMaximalScheduler::schedule(const Occupancy &occ)
{
    const unsigned n = ports_;
    Matching match(n, kInvalidQueue);
    std::vector<bool> out_taken(n, false);

    // Fresh random service order over the inputs (Fisher-Yates).
    std::vector<unsigned> order(n);
    for (unsigned i = 0; i < n; ++i)
        order[i] = i;
    for (unsigned i = n - 1; i > 0; --i) {
        const auto j = static_cast<unsigned>(rng_.below(i + 1));
        std::swap(order[i], order[j]);
    }

    for (const unsigned i : order) {
        unsigned candidates = 0;
        for (unsigned j = 0; j < n; ++j)
            candidates += (!out_taken[j] && occ.at(i, j) > 0) ? 1 : 0;
        if (candidates == 0)
            continue;
        auto pick = rng_.below(candidates);
        for (unsigned j = 0; j < n; ++j) {
            if (out_taken[j] || occ.at(i, j) == 0)
                continue;
            if (pick-- == 0) {
                match[i] = j;
                out_taken[j] = true;
                break;
            }
        }
    }
    last_iters_ = 1;
    return match;
}

void
RandomMaximalScheduler::save(ser::Writer &w) const
{
    w.tag("RMAX");
    rng_.save(w);
}

void
RandomMaximalScheduler::load(ser::Reader &r)
{
    r.tag("RMAX");
    rng_.load(r);
}

std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind k, unsigned ports,
              unsigned islip_iterations, unsigned qps_window,
              std::uint64_t seed)
{
    switch (k) {
      case SchedulerKind::Islip:
        return std::make_unique<IslipScheduler>(ports,
                                                islip_iterations);
      case SchedulerKind::Qps:
        return std::make_unique<QpsScheduler>(ports, qps_window,
                                              seed);
      case SchedulerKind::RandomMaximal:
        return std::make_unique<RandomMaximalScheduler>(ports, seed);
    }
    fatal("unknown scheduler kind");
}

} // namespace pktbuf::xbar
