/**
 * @file
 * Crossbar matching schedulers: per-slot bipartite matchings between
 * N input ports and N output ports of an input-queued switch.
 *
 * The contract every implementation must honor (and that
 * tests/test_crossbar.cc enforces slot by slot):
 *
 *  - conflict-free: at most one input matched to any output and at
 *    most one output matched to any input;
 *  - backed: an (input, output) edge may be granted only when the
 *    input's VOQ for that output is non-empty in the occupancy
 *    snapshot the scheduler was given;
 *  - deterministic: a scheduler is a pure function of its own state
 *    (pointers, RNG, held edges) and the occupancy matrix, so a
 *    checkpointed run replays bit-for-bit;
 *  - serializable: save()/load() capture the full decision state.
 *
 * Maximality is a quality property, not part of the base contract:
 * iSLIP converges to a maximal matching given enough iterations, the
 * QPS and random schedulers finish with an explicit greedy completion
 * pass.  The differential oracle test compares all of them against a
 * brute-force maximum matching (Kuhn's algorithm, maximumMatchingSize).
 */

#ifndef PKTBUF_CROSSBAR_SCHEDULER_HH
#define PKTBUF_CROSSBAR_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace pktbuf::xbar
{

/**
 * Start-of-slot VOQ occupancy snapshot: at(i, j) is the number of
 * cells waiting at input i for output j (the workload's credit).
 * Square (ports x ports); the matching engine fills it each slot.
 */
class Occupancy
{
  public:
    explicit Occupancy(unsigned ports)
        : ports_(ports),
          occ_(static_cast<std::size_t>(ports) * ports, 0)
    {}

    unsigned ports() const { return ports_; }

    std::uint64_t
    at(unsigned in, unsigned out) const
    {
        return occ_[static_cast<std::size_t>(in) * ports_ + out];
    }

    std::uint64_t &
    at(unsigned in, unsigned out)
    {
        return occ_[static_cast<std::size_t>(in) * ports_ + out];
    }

    /** Total cells waiting at one input, across all its VOQs. */
    std::uint64_t
    rowTotal(unsigned in) const
    {
        std::uint64_t t = 0;
        for (unsigned j = 0; j < ports_; ++j)
            t += at(in, j);
        return t;
    }

    /** True when no VOQ holds any cell. */
    bool
    empty() const
    {
        for (const auto c : occ_)
            if (c)
                return false;
        return true;
    }

  private:
    unsigned ports_;
    std::vector<std::uint64_t> occ_;
};

/**
 * One slot's matching: match[input] = matched output, or
 * kInvalidQueue when the input is unmatched this slot.
 */
using Matching = std::vector<QueueId>;

/** Matched edges in a matching. */
std::size_t matchingSize(const Matching &m);

/** At most one grant per input and per output, targets in range. */
bool matchingConflictFree(const Matching &m, unsigned ports);

/** Every granted edge's VOQ is non-empty in `occ`. */
bool matchingBacked(const Matching &m, const Occupancy &occ);

/**
 * No unmatched input could still be matched to a free output with a
 * non-empty VOQ -- i.e. the matching is maximal (no augmenting edge
 * exists; weaker than maximum).
 */
bool matchingMaximal(const Matching &m, const Occupancy &occ);

/**
 * Brute-force maximum bipartite matching size over the non-empty
 * VOQ edges (Kuhn's augmenting-path algorithm, O(V * E)).  The
 * differential oracle for the scheduler tests; intended for small
 * port counts, not the per-slot hot path.
 */
unsigned maximumMatchingSize(const Occupancy &occ);

/** The scheduler families the crossbar can run. */
enum class SchedulerKind
{
    Islip,          //!< iterative request/grant/accept, rotating ptrs
    Qps,            //!< sliding-window queue-proportional sampling
    RandomMaximal,  //!< seeded random maximal baseline
};

/** @return the lower-case token ("islip", "qps", "random"). */
std::string toString(SchedulerKind k);

/**
 * Parse a scheduler token.
 * @param token one of "islip", "qps", "random"
 * @param out   receives the kind on success
 * @return false when the token names no scheduler
 */
bool parseSchedulerKind(const std::string &token, SchedulerKind &out);

/** Per-slot matching engine interface (see file comment). */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Token naming the instance ("islip4", "qps_w8", "random"). */
    virtual std::string name() const = 0;

    /**
     * Compute this slot's matching from the occupancy snapshot.
     * @param occ start-of-slot VOQ depths (ports x ports)
     * @return a conflict-free matching over non-empty VOQs
     */
    virtual Matching schedule(const Occupancy &occ) = 0;

    /** Matching passes the last schedule() call used. */
    virtual unsigned lastIterations() const = 0;

    /** Checkpoint the full decision state (pointers, RNG, holds). */
    virtual void save(ser::Writer &w) const = 0;
    virtual void load(ser::Reader &r) = 0;
};

/**
 * iSLIP (McKeown): up to `iterations` request/grant/accept rounds.
 * Each unmatched output grants the first requesting input at or
 * after its grant pointer; each unmatched input accepts the first
 * granting output at or after its accept pointer.  Pointers advance
 * one past the matched partner *only* for matches made in the first
 * iteration -- the rule that desynchronizes the pointers and gives
 * iSLIP its 100% uniform-throughput behavior.  Stops early once an
 * iteration adds no edge (the matching is then maximal).
 */
class IslipScheduler : public Scheduler
{
  public:
    /**
     * @param ports crossbar radix N
     * @param iterations matching rounds per slot (>= 1); N rounds
     *        guarantee convergence to a maximal matching
     */
    IslipScheduler(unsigned ports, unsigned iterations);

    std::string name() const override;
    Matching schedule(const Occupancy &occ) override;
    unsigned lastIterations() const override { return last_iters_; }
    void save(ser::Writer &w) const override;
    void load(ser::Reader &r) override;

    /** Per-output grant pointers (exposed for the pointer tests). */
    const std::vector<unsigned> &grantPointers() const { return g_; }
    /** Per-input accept pointers (exposed for the pointer tests). */
    const std::vector<unsigned> &acceptPointers() const { return a_; }

  private:
    unsigned ports_;  // ser: config
    unsigned iterations_;  // ser: config
    unsigned last_iters_ = 0;  // ser: derived
    std::vector<unsigned> g_;  //!< grant pointer, per output
    std::vector<unsigned> a_;  //!< accept pointer, per input
};

/**
 * Sliding-window queue-proportional sampling.  Each slot:
 *
 *  1. hold: an edge accepted in an earlier slot is kept while it is
 *     younger than `window` slots and its VOQ is still backed --
 *     amortizing one good sample over several slots;
 *  2. sample: every unmatched input proposes one output drawn with
 *     probability proportional to its VOQ depths; each free output
 *     accepts the deepest proposal (ties to the lowest input);
 *  3. complete: a greedy pass matches any leftover input to its
 *     lowest free non-empty output, making the matching maximal.
 *
 * lastIterations() reports how many of the three phases added edges.
 */
class QpsScheduler : public Scheduler
{
  public:
    /**
     * @param ports crossbar radix N
     * @param window max slots an accepted edge may be held (>= 1)
     * @param seed sampling RNG seed (named per the repo seed rule)
     */
    QpsScheduler(unsigned ports, unsigned window, std::uint64_t seed);

    std::string name() const override;
    Matching schedule(const Occupancy &occ) override;
    unsigned lastIterations() const override { return last_iters_; }
    void save(ser::Writer &w) const override;
    void load(ser::Reader &r) override;

  private:
    struct Hold
    {
        QueueId out = kInvalidQueue;  //!< held output, or invalid
        std::uint64_t age = 0;        //!< slots the edge was held
    };

    unsigned ports_;  // ser: config
    std::uint64_t window_;  // ser: config
    Rng rng_;
    unsigned last_iters_ = 0;  // ser: derived
    std::vector<Hold> held_;  //!< per input
};

/**
 * Maximal-random baseline: a fresh seeded random input service order
 * each slot; every input picks uniformly among its non-empty VOQs
 * whose outputs are still free.  Maximal by construction, with no
 * state beyond the RNG -- the floor the smarter schedulers must beat.
 */
class RandomMaximalScheduler : public Scheduler
{
  public:
    RandomMaximalScheduler(unsigned ports, std::uint64_t seed);

    std::string name() const override { return "random"; }
    Matching schedule(const Occupancy &occ) override;
    unsigned lastIterations() const override { return last_iters_; }
    void save(ser::Writer &w) const override;
    void load(ser::Reader &r) override;

  private:
    unsigned ports_;  // ser: config
    Rng rng_;
    unsigned last_iters_ = 0;  // ser: derived
};

/**
 * Instantiate a scheduler.
 * @param k which family
 * @param ports crossbar radix
 * @param islip_iterations iSLIP rounds per slot (ignored otherwise)
 * @param qps_window QPS hold window in slots (ignored otherwise)
 * @param seed RNG seed for the randomized schedulers
 */
std::unique_ptr<Scheduler> makeScheduler(SchedulerKind k,
                                         unsigned ports,
                                         unsigned islip_iterations,
                                         unsigned qps_window,
                                         std::uint64_t seed);

} // namespace pktbuf::xbar

#endif // PKTBUF_CROSSBAR_SCHEDULER_HH
