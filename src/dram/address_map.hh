/**
 * @file
 * The CFDS memory-bank mapping of Figure 6: M banks are divided into
 * G groups of B/b banks.  A physical queue p lives in group
 * (p mod G) -- the group index comes from the low-order bits of the
 * queue field -- and its n-th b-cell block lives in bank
 * (n mod B/b) of that group (block-cyclic interleaving), so B/b
 * consecutive accesses to one queue touch distinct banks.
 */

#ifndef PKTBUF_DRAM_ADDRESS_MAP_HH
#define PKTBUF_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace pktbuf::dram
{

class AddressMap
{
  public:
    AddressMap(unsigned banks, unsigned banks_per_group)
        : banks_(banks), banks_per_group_(banks_per_group)
    {
        // Validate before dividing: groups_ = banks / 0 in the
        // initializer list would be UB before the panic fires.
        panic_if(banks_per_group == 0, "banks_per_group == 0");
        panic_if(banks % banks_per_group != 0,
                 "banks not a multiple of group size");
        groups_ = banks / banks_per_group;
    }

    unsigned banks() const { return banks_; }
    unsigned banksPerGroup() const { return banks_per_group_; }
    unsigned groups() const { return groups_; }

    /** Group holding physical queue p. */
    unsigned
    groupOf(QueueId p) const
    {
        return p % groups_;
    }

    /** Global bank index of block `ordinal` of physical queue p. */
    unsigned
    bankOf(QueueId p, std::uint64_t ordinal) const
    {
        return groupOf(p) * banks_per_group_ +
               static_cast<unsigned>(ordinal % banks_per_group_);
    }

  private:
    unsigned banks_;
    unsigned banks_per_group_;
    unsigned groups_ = 0;
};

} // namespace pktbuf::dram

#endif // PKTBUF_DRAM_ADDRESS_MAP_HH
