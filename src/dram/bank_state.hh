/**
 * @file
 * Bank timing state: which banks are currently within their random
 * access time.  This is the ground truth the Ongoing Requests
 * Register (ORR) summarizes in hardware; the simulator checks the
 * DSA's decisions against it and *panics on any bank conflict*,
 * turning the paper's worst-case guarantee into a testable invariant.
 */

#ifndef PKTBUF_DRAM_BANK_STATE_HH
#define PKTBUF_DRAM_BANK_STATE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pktbuf::dram
{

class BankState
{
  public:
    BankState(unsigned banks, Slot access_slots)
        : busy_until_(banks, 0), access_slots_(access_slots)
    {
        panic_if(banks == 0, "no banks");
        panic_if(access_slots == 0, "zero access time");
    }

    /**
     * Heterogeneous variant: bank `i` is busy for `per_bank[i]`
     * slots per access (per-bank-group t_RC, dram/timing.hh).
     */
    BankState(unsigned banks, Slot access_slots,
              std::vector<Slot> per_bank)
        : BankState(banks, access_slots)
    {
        if (per_bank.empty())
            return;
        panic_if(per_bank.size() != banks,
                 "per-bank access times for ", per_bank.size(),
                 " of ", banks, " banks");
        for (const Slot t : per_bank)
            panic_if(t == 0, "zero per-bank access time");
        per_bank_slots_ = std::move(per_bank);
    }

    unsigned banks() const { return static_cast<unsigned>(busy_until_.size()); }
    Slot accessSlots() const { return access_slots_; }

    /** Access time of one bank (uniform unless per-bank given). */
    Slot
    accessSlotsOf(unsigned bank) const
    {
        panic_if(bank >= busy_until_.size(), "bank ", bank,
                 " out of range in accessSlotsOf");
        return per_bank_slots_.empty() ? access_slots_
                                       : per_bank_slots_[bank];
    }

    /** Is the bank inside its random access time at `now`? */
    bool
    busy(unsigned bank, Slot now) const
    {
        panic_if(bank >= busy_until_.size(), "bank ", bank,
                 " out of range in busy()");
        return busy_until_[bank] > now;
    }

    /**
     * Begin an access at `now`; the bank is then busy for the random
     * access time.  Panics on a bank conflict -- the DSA must never
     * allow one.  Returns the completion slot.
     */
    Slot
    startAccess(unsigned bank, Slot now)
    {
        panic_if(busy(bank, now), "bank conflict: bank ", bank,
                 " accessed at slot ", now, " while busy until ",
                 busy_until_[bank]);
        busy_until_[bank] = now + accessSlotsOf(bank);
        accesses_.inc();
        return busy_until_[bank];
    }

    /** Number of banks busy at `now` (accesses in flight). */
    unsigned
    inFlight(Slot now) const
    {
        unsigned n = 0;
        for (const auto bu : busy_until_)
            if (bu > now)
                ++n;
        return n;
    }

    std::uint64_t accesses() const { return accesses_.value(); }

    /** Checkpoint: busy horizons + access counter (timings are
     *  configuration and are rebuilt, not serialized). */
    void
    save(ser::Writer &w) const
    {
        w.tag("BANK");
        w.u64(busy_until_.size());
        for (const auto bu : busy_until_)
            w.u64(bu);
        accesses_.save(w);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("BANK");
        const auto n = r.u64();
        fatal_if(n != busy_until_.size(), "checkpoint: ", n,
                 " banks, configured ", busy_until_.size());
        for (auto &bu : busy_until_)
            bu = r.u64();
        accesses_.load(r);
    }

  private:
    std::vector<Slot> busy_until_;
    Slot access_slots_;  // ser: config
    /** Non-empty = heterogeneous per-bank access times. */
    std::vector<Slot> per_bank_slots_;  // ser: config
    Counter accesses_;
};

} // namespace pktbuf::dram

#endif // PKTBUF_DRAM_BANK_STATE_HH
