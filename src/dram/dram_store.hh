/**
 * @file
 * Functional contents of the DRAM: per-physical-queue blocks of b
 * cells keyed by *block ordinal* (the same ordinal that drives the
 * block-cyclic bank mapping), with per-group occupancy accounting
 * for the renaming/fragmentation machinery (Section 6).
 *
 * Timing lives in BankState / the ORR; this class only stores data.
 * Ordinal keying lets the DSA launch same-queue accesses out of
 * order (reads are re-sequenced in the head SRAM, Section 8.2)
 * without corrupting queue contents.
 */

#ifndef PKTBUF_DRAM_DRAM_STORE_HH
#define PKTBUF_DRAM_DRAM_STORE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace pktbuf::dram
{

class DramStore
{
  public:
    /**
     * @param phys_queues number of physical queues
     * @param gran        cells per block (b)
     * @param groups      number of bank groups (1 for RADS)
     * @param group_capacity_cells per-group capacity; 0 = unbounded
     */
    DramStore(unsigned phys_queues, unsigned gran, unsigned groups,
              std::uint64_t group_capacity_cells)
        : gran_(gran), group_cells_(groups, 0),
          group_capacity_(group_capacity_cells), queues_(phys_queues)
    {
        panic_if(gran == 0, "zero granularity");
        panic_if(groups == 0, "zero groups");
    }

    unsigned gran() const { return gran_; }
    unsigned groups() const
    {
        return static_cast<unsigned>(group_cells_.size());
    }

    /** Is block `ordinal` of queue p resident? */
    bool
    hasBlock(QueueId p, std::uint64_t ordinal) const
    {
        return q(p).blocks.count(ordinal) != 0;
    }

    /** Blocks of queue p currently resident. */
    std::uint64_t
    residentBlocks(QueueId p) const
    {
        return q(p).blocks.size();
    }

    /** Store one block (exactly `gran` cells). */
    void
    writeBlock(QueueId p, std::uint64_t ordinal,
               std::vector<Cell> cells, unsigned group)
    {
        panic_if(cells.size() != gran_, "write of ", cells.size(),
                 " cells, granularity is ", gran_);
        panic_if(group >= group_cells_.size(),
                 "bad group on block write");
        auto &qq = q(p);
        panic_if(qq.blocks.count(ordinal),
                 "duplicate block ordinal ", ordinal, " on queue ", p);
        qq.blocks.emplace(ordinal, std::move(cells));
        group_cells_[group] += gran_;
        panic_if(group_capacity_ &&
                 group_cells_[group] > group_capacity_,
                 "DRAM group ", group, " overflow (",
                 group_cells_[group], " > ", group_capacity_,
                 " cells): admission control must prevent this");
    }

    /** Remove and return block `ordinal` of queue p. */
    std::vector<Cell>
    readBlock(QueueId p, std::uint64_t ordinal, unsigned group)
    {
        auto &qq = q(p);
        auto it = qq.blocks.find(ordinal);
        panic_if(it == qq.blocks.end(),
                 "read of absent block ", ordinal, " on queue ", p);
        std::vector<Cell> out = std::move(it->second);
        qq.blocks.erase(it);
        panic_if(group_cells_[group] < gran_, "group accounting bug");
        group_cells_[group] -= gran_;
        return out;
    }

    /** Cells resident in one group. */
    std::uint64_t
    groupCells(unsigned group) const
    {
        panic_if(group >= group_cells_.size(),
                 "bad group in groupCells");
        return group_cells_[group];
    }

    std::uint64_t groupCapacity() const { return group_capacity_; }

    /** Total cells resident across all groups. */
    std::uint64_t
    totalCells() const
    {
        std::uint64_t n = 0;
        for (const auto g : group_cells_)
            n += g;
        return n;
    }

    /** Reset a recycled physical queue (renaming): must be empty. */
    void
    recycle(QueueId p)
    {
        panic_if(!q(p).blocks.empty(),
                 "recycling non-empty queue ", p);
    }

    /** Checkpoint: group occupancies and every queue's blocks. */
    void
    save(ser::Writer &w) const
    {
        w.tag("DRAM");
        w.u64(group_cells_.size());
        for (const auto g : group_cells_)
            w.u64(g);
        w.u64(queues_.size());
        for (const auto &qq : queues_) {
            w.u64(qq.blocks.size());
            for (const auto &[ordinal, cells] : qq.blocks) {
                w.u64(ordinal);
                w.u64(cells.size());
                for (const auto &c : cells)
                    c.save(w);
            }
        }
    }

    void
    load(ser::Reader &r)
    {
        r.tag("DRAM");
        const auto ng = r.u64();
        fatal_if(ng != group_cells_.size(),
                 "checkpoint: DRAM store has ", ng,
                 " groups, configured ", group_cells_.size());
        for (auto &g : group_cells_)
            g = r.u64();
        const auto nq = r.u64();
        fatal_if(nq != queues_.size(), "checkpoint: DRAM has ", nq,
                 " queues, configured ", queues_.size());
        for (auto &qq : queues_) {
            qq.blocks.clear();
            const auto nb = r.u64();
            for (std::uint64_t i = 0; i < nb; ++i) {
                const auto ordinal = r.u64();
                const auto nc = r.u64();
                std::vector<Cell> cells(nc);
                for (auto &c : cells)
                    c.load(r);
                qq.blocks.emplace(ordinal, std::move(cells));
            }
        }
    }

  private:
    struct QueueData
    {
        std::map<std::uint64_t, std::vector<Cell>> blocks;
    };

    const QueueData &
    q(QueueId p) const
    {
        panic_if(p >= queues_.size(), "physical queue ", p,
                 " out of range (const accessor)");
        return queues_[p];
    }

    QueueData &
    q(QueueId p)
    {
        panic_if(p >= queues_.size(), "physical queue ", p,
                 " out of range");
        return queues_[p];
    }

    unsigned gran_;  // ser: config
    std::vector<std::uint64_t> group_cells_;
    std::uint64_t group_capacity_;  // ser: config
    std::vector<QueueData> queues_;
};

} // namespace pktbuf::dram

#endif // PKTBUF_DRAM_DRAM_STORE_HH
