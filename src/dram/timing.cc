#include "timing.hh"

#include <sstream>

#include "common/logging.hh"

namespace pktbuf::dram
{

const char *
toString(StallCause c)
{
    switch (c) {
      case StallCause::BankBusy:
        return "bank_busy";
      case StallCause::Refresh:
        return "refresh";
      case StallCause::Turnaround:
        return "turnaround";
    }
    return "?";
}

std::string
TimingConfig::describe(Slot base) const
{
    std::ostringstream os;
    if (isUniform()) {
        os << "uniform tRC=" << (tRc ? tRc : base);
        return os.str();
    }
    os << "tRC=";
    if (groupTRc.empty()) {
        os << (tRc ? tRc : base);
    } else {
        for (std::size_t g = 0; g < groupTRc.size(); ++g) {
            os << (g ? "/" : "")
               << (groupTRc[g] ? groupTRc[g] : (tRc ? tRc : base));
        }
    }
    if (turnaround)
        os << " turn=" << turnaround;
    if (tRefi)
        os << " REFI=" << tRefi << "/" << tRfc << "x" << refreshBanks;
    return os.str();
}

DramTiming::DramTiming(const TimingConfig &cfg, unsigned banks,
                       unsigned banks_per_group, Slot base_trc)
    : cfg_(cfg), banks_(banks), base_trc_(cfg.tRc ? cfg.tRc : base_trc)
{
    fatal_if(base_trc_ == 0, "zero t_RC");
    fatal_if(cfg_.tRefi != 0 && cfg_.tRfc == 0,
             "refresh enabled (t_REFI=", cfg_.tRefi,
             ") with zero t_RFC");
    fatal_if(cfg_.tRefi != 0 && cfg_.tRfc >= cfg_.tRefi,
             "t_RFC=", cfg_.tRfc, " must be < t_REFI=", cfg_.tRefi,
             ": the blackout may not cover the whole interval");
    fatal_if(cfg_.refreshBanks == 0, "refreshBanks == 0");
    fatal_if(!cfg_.isUniform() && banks == 0,
             "non-uniform timing needs the bank count");
    fatal_if(cfg_.tRefi != 0 && cfg_.refreshBanks > banks,
             "refresh window of ", cfg_.refreshBanks,
             " banks exceeds the ", banks, " banks present");
    if (!cfg_.groupTRc.empty()) {
        fatal_if(banks_per_group == 0,
                 "per-group tRC config with banks_per_group == 0");
        fatal_if(banks % banks_per_group != 0,
                 "per-group tRC config: banks not a multiple of the",
                 " group size");
        const unsigned groups = banks / banks_per_group;
        fatal_if(cfg_.groupTRc.size() != groups,
                 "groupTRc has ", cfg_.groupTRc.size(),
                 " entries for ", groups, " groups");
        bank_trc_.resize(banks);
        for (unsigned bank = 0; bank < banks; ++bank) {
            // Banks are laid out group-major (AddressMap::bankOf).
            const Slot g = cfg_.groupTRc[bank / banks_per_group];
            bank_trc_[bank] = g ? g : base_trc_;
        }
    }
    max_trc_ = base_trc_;
    for (const Slot t : bank_trc_)
        max_trc_ = t > max_trc_ ? t : max_trc_;
}

} // namespace pktbuf::dram
