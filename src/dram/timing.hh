/**
 * @file
 * Configurable DDR timing model for the banked DRAM.
 *
 * The paper's analysis (Sections 5/8) reduces DRAM timing to one
 * number: the random access time B, which the DSS honors by locking
 * a bank for B slots per access.  Real DDR parts add constraints the
 * uniform model cannot express -- periodic refresh (t_REFI / t_RFC)
 * that blacks out banks on a schedule, a read<->write data-bus
 * turnaround penalty, and heterogeneous bank groups whose row cycle
 * time t_RC differs.  `DramTiming` is the policy object that carries
 * all of them; the Ongoing Requests Register consults it instead of
 * a scalar access time, so the default (uniform) configuration
 * reproduces the legacy behavior bit for bit while non-uniform
 * configurations open a family of adversarial scenarios (refresh
 * storms, turnaround thrash, asymmetric groups).
 *
 * Modeling notes:
 *  - Refresh is a *scheduling* constraint: during each blackout the
 *    DSA refuses to launch into the refreshed bank window.  The
 *    window rotates deterministically (pure function of the slot),
 *    so simulations stay reproducible and shardable.
 *  - Turnaround is channel-level: after a launch, the earliest
 *    launch of the *opposite* direction is `turnaround` slots later.
 *  - Per-group t_RC extends both the bank lock and the read's data
 *    delivery time; groups with larger t_RC are "slow" groups.
 */

#ifndef PKTBUF_DRAM_TIMING_HH
#define PKTBUF_DRAM_TIMING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace pktbuf::dram
{

/** Why the DSA could not launch a request at a given slot. */
enum class StallCause
{
    BankBusy,    //!< target bank is inside its t_RC window
    Refresh,     //!< target bank is inside a refresh blackout
    Turnaround,  //!< read<->write switch penalty not yet elapsed
};

/** @return the lower-case stat-name token ("bank_busy", ...). */
const char *toString(StallCause c);

/** Direction of a DRAM access, for the turnaround rule. */
enum class AccessKind
{
    Read,
    Write,
};

/**
 * Static DDR timing parameters.  The default-constructed config is
 * the *uniform* model: every access locks its bank for the buffer's
 * random access time B, no refresh, no turnaround -- exactly the
 * legacy scalar behavior.
 */
struct TimingConfig
{
    /** Uniform row cycle time t_RC in slots; 0 = the buffer's B. */
    Slot tRc = 0;

    /** Per-bank-group t_RC override (index = group); empty = uniform.
     *  Entries of 0 fall back to `tRc` (or B). */
    std::vector<Slot> groupTRc;

    /** Read<->write bus turnaround penalty in slots; 0 = none. */
    Slot turnaround = 0;

    /** Refresh interval t_REFI in slots; 0 disables refresh. */
    Slot tRefi = 0;

    /** Refresh cycle time t_RFC: blackout length per interval. */
    Slot tRfc = 0;

    /** Banks locked together per blackout (the rotating window). */
    unsigned refreshBanks = 1;

    /**
     * Does this config reproduce the legacy uniform model?  Only
     * the default does: an explicit tRc counts as non-uniform even
     * if it happens to equal the buffer's B, so every override goes
     * through the CFDS-only gate and the latency/RR slack extension
     * (a tRc-only change still alters bank lock times and read
     * completion).
     */
    bool
    isUniform() const
    {
        return tRc == 0 && groupTRc.empty() && turnaround == 0 &&
               tRefi == 0;
    }

    /** Largest t_RC any bank can see under this config. */
    Slot
    maxTRc(Slot base) const
    {
        Slot m = tRc ? tRc : base;
        for (const Slot g : groupTRc)
            m = g > m ? g : m;
        return m;
    }

    /** Compact "tRC=8 turn=2 REFI=256/16x2" form for logs. */
    std::string describe(Slot base) const;
};

/**
 * The resolved, immutable timing policy: per-bank t_RC plus the
 * refresh and turnaround rules.  Shared (read-only) between the ORR,
 * the bank-state oracle and the buffer's completion scheduling.
 */
class DramTiming
{
  public:
    /**
     * @param cfg              the static parameters (validated here)
     * @param banks            total banks M (0 = unknown; only legal
     *                         for uniform configs, e.g. unit tests)
     * @param banks_per_group  B/b (used to resolve groupTRc)
     * @param base_trc         the buffer's B, the t_RC fallback
     */
    DramTiming(const TimingConfig &cfg, unsigned banks,
               unsigned banks_per_group, Slot base_trc);

    /** Row cycle time of `bank`: how long one access locks it. */
    Slot
    accessSlots(unsigned bank) const
    {
        if (bank_trc_.empty())
            return base_trc_;
        panic_if(bank >= bank_trc_.size(), "bank ", bank,
                 " out of range for ", bank_trc_.size(), " banks");
        return bank_trc_[bank];
    }

    /** Largest per-bank t_RC (for latency budgeting). */
    Slot maxAccessSlots() const { return max_trc_; }

    /** Is `bank` inside a refresh blackout at `now`? */
    bool
    inRefresh(unsigned bank, Slot now) const
    {
        if (cfg_.tRefi == 0)
            return false;
        const Slot cycle = now / cfg_.tRefi;
        if (now - cycle * cfg_.tRefi >= cfg_.tRfc)
            return false;
        // Window [cycle*W, cycle*W + W) of banks, cyclic: every bank
        // is refreshed every (M / W) intervals, deterministically.
        const unsigned start = static_cast<unsigned>(
            (cycle * cfg_.refreshBanks) % banks_);
        const unsigned off = (bank + banks_ - start) % banks_;
        return off < cfg_.refreshBanks;
    }

    Slot turnaround() const { return cfg_.turnaround; }
    bool refreshEnabled() const { return cfg_.tRefi != 0; }
    Slot baseTRc() const { return base_trc_; }
    unsigned banks() const { return banks_; }
    const TimingConfig &config() const { return cfg_; }

  private:
    TimingConfig cfg_;
    unsigned banks_;
    Slot base_trc_;
    Slot max_trc_;
    /** Resolved t_RC per bank; empty = uniform base_trc_. */
    std::vector<Slot> bank_trc_;
};

} // namespace pktbuf::dram

#endif // PKTBUF_DRAM_TIMING_HH
