/**
 * @file
 * The DRAM Scheduler Algorithm (DSA) tying one Requests Register to
 * the shared Ongoing Requests Register: every granularity interval
 * it launches the oldest request whose bank is free (Section 5.3).
 * The read path and the write path each own a scheduler; both share
 * one ORR because a bank is locked no matter which direction locked
 * it.
 *
 * With a timed DRAM policy (dram/timing.hh) a launch can be refused
 * for three distinct reasons -- bank busy, refresh blackout, or
 * read<->write turnaround -- and the scheduler accounts every failed
 * scheduling opportunity by the cause blocking its oldest pending
 * request, both in its own counters and (when provided) in a shared
 * StatRegistry under "dsa.stall.<cause>".
 */

#ifndef PKTBUF_DSS_DRAM_SCHEDULER_HH
#define PKTBUF_DSS_DRAM_SCHEDULER_HH

#include <array>
#include <optional>

#include "common/stats.hh"
#include "dss/ongoing_requests.hh"
#include "dss/request_register.hh"

namespace pktbuf::dss
{

class DramScheduler
{
  public:
    /**
     * @param rr_capacity        Requests Register capacity (0 = off)
     * @param orr                the shared bank-lock table
     * @param in_order_per_queue block younger same-queue writes
     * @param stats              optional registry receiving the
     *                           per-cause stall counters
     */
    DramScheduler(std::size_t rr_capacity, OngoingRequests &orr,
                  bool in_order_per_queue = false,
                  StatRegistry *stats = nullptr)
        : rr_(rr_capacity, in_order_per_queue), orr_(orr)
    {
        if (stats) {
            // Registry counters are stable references: resolve the
            // names once instead of paying a string build + map
            // lookup on every stalled scheduling opportunity.
            for (std::size_t c = 0; c < registry_stalls_.size(); ++c) {
                registry_stalls_[c] = &stats->counter(
                    std::string("dsa.stall.") +
                    dram::toString(static_cast<dram::StallCause>(c)));
            }
        }
    }

    /** MMA issues a new request. */
    void
    push(const DramRequest &req)
    {
        rr_.push(req);
    }

    /**
     * One scheduling opportunity: pick the oldest non-blocked
     * request and launch it (locking its bank).  Returns the
     * launched request, or nullopt if the register is empty or the
     * timing policy blocks every pending request -- in which case
     * the stall is accounted to the cause blocking the oldest one.
     */
    std::optional<DramRequest>
    tryLaunch(Slot now)
    {
        if (rr_.empty())
            return std::nullopt;
        std::optional<dram::StallCause> oldest_blocked;
        auto req = rr_.selectOldestReady(
            [&](const DramRequest &r) {
                return orr_.blockedCause(r.bank, accessKind(r), now);
            },
            &oldest_blocked);
        if (!req) {
            stalls_.inc();
            if (oldest_blocked)
                recordStall(*oldest_blocked);
            return std::nullopt;
        }
        orr_.add(req->bank, now, accessKind(*req));
        launches_.inc();
        queue_delay_.sample(static_cast<double>(now - req->issued));
        return req;
    }

    RequestRegister &rr() { return rr_; }
    const RequestRegister &rr() const { return rr_; }

    std::uint64_t launches() const { return launches_.value(); }
    std::uint64_t stalls() const { return stalls_.value(); }
    /** Stalled opportunities attributed to `cause` (the cause that
     *  blocked the oldest pending request at stall time). */
    std::uint64_t
    stallsFor(dram::StallCause cause) const
    {
        return stall_cause_[static_cast<std::size_t>(cause)].value();
    }
    /** Delay from MMA issue to DSA launch, in slots. */
    const Sampler &queueDelay() const { return queue_delay_; }

    /** Checkpoint.  The ORR reference and the pre-resolved registry
     *  counter pointers are wiring, rebuilt by the constructor; the
     *  registry counters themselves restore with the registry. */
    void
    save(ser::Writer &w) const
    {
        w.tag("DSAS");
        rr_.save(w);
        launches_.save(w);
        stalls_.save(w);
        for (const auto &c : stall_cause_)
            c.save(w);
        queue_delay_.save(w);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("DSAS");
        rr_.load(r);
        launches_.load(r);
        stalls_.load(r);
        for (auto &c : stall_cause_)
            c.load(r);
        queue_delay_.load(r);
    }

  private:
    static dram::AccessKind
    accessKind(const DramRequest &r)
    {
        return r.kind == DramRequest::Kind::Read
                   ? dram::AccessKind::Read
                   : dram::AccessKind::Write;
    }

    void
    recordStall(dram::StallCause cause)
    {
        const auto c = static_cast<std::size_t>(cause);
        stall_cause_[c].inc();
        if (registry_stalls_[c])
            registry_stalls_[c]->inc();
    }

    RequestRegister rr_;
    OngoingRequests &orr_;  // ser: config
    Counter launches_;
    Counter stalls_;
    /** Indexed by StallCause. */
    std::array<Counter, 3> stall_cause_;
    /** Pre-resolved "dsa.stall.<cause>" registry counters (null
     *  when no registry was given). */
    std::array<Counter *, 3> registry_stalls_{};  // ser: config
    Sampler queue_delay_;
};

} // namespace pktbuf::dss

#endif // PKTBUF_DSS_DRAM_SCHEDULER_HH
