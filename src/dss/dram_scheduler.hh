/**
 * @file
 * The DRAM Scheduler Algorithm (DSA) tying one Requests Register to
 * the shared Ongoing Requests Register: every granularity interval
 * it launches the oldest request whose bank is free (Section 5.3).
 * The read path and the write path each own a scheduler; both share
 * one ORR because a bank is locked no matter which direction locked
 * it.
 */

#ifndef PKTBUF_DSS_DRAM_SCHEDULER_HH
#define PKTBUF_DSS_DRAM_SCHEDULER_HH

#include <optional>

#include "common/stats.hh"
#include "dss/ongoing_requests.hh"
#include "dss/request_register.hh"

namespace pktbuf::dss
{

class DramScheduler
{
  public:
    DramScheduler(std::size_t rr_capacity, OngoingRequests &orr,
                  bool in_order_per_queue = false)
        : rr_(rr_capacity, in_order_per_queue), orr_(orr)
    {}

    /** MMA issues a new request. */
    void
    push(const DramRequest &req)
    {
        rr_.push(req);
    }

    /**
     * One scheduling opportunity: pick the oldest non-locked request
     * and launch it (locking its bank).  Returns the launched
     * request, or nullopt if the register is empty or every pending
     * request targets a locked bank.
     */
    std::optional<DramRequest>
    tryLaunch(Slot now)
    {
        if (rr_.empty())
            return std::nullopt;
        auto req = rr_.selectOldestReady(
            [&](unsigned bank) { return orr_.locked(bank, now); });
        if (!req) {
            stalls_.inc();
            return std::nullopt;
        }
        orr_.add(req->bank, now);
        launches_.inc();
        queue_delay_.sample(static_cast<double>(now - req->issued));
        return req;
    }

    RequestRegister &rr() { return rr_; }
    const RequestRegister &rr() const { return rr_; }

    std::uint64_t launches() const { return launches_.value(); }
    std::uint64_t stalls() const { return stalls_.value(); }
    /** Delay from MMA issue to DSA launch, in slots. */
    const Sampler &queueDelay() const { return queue_delay_; }

  private:
    RequestRegister rr_;
    OngoingRequests &orr_;
    Counter launches_;
    Counter stalls_;
    Sampler queue_delay_;
};

} // namespace pktbuf::dss

#endif // PKTBUF_DSS_DRAM_SCHEDULER_HH
