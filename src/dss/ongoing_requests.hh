/**
 * @file
 * The Ongoing Requests Register (ORR, Section 5.3): the identifiers
 * of the banks whose accesses are still within the DRAM random
 * access time.  A bank listed here is *locked*; the DSA never
 * launches a request to a locked bank.
 *
 * In hardware this is a short shift register of bank ids; here it is
 * the shared lock table for the read and write schedulers, pruned by
 * completion time, plus occupancy statistics so tests can check the
 * paper's ORR sizing (B/b - 1 per request stream).
 *
 * Timing is delegated to a `dram::DramTiming` policy object rather
 * than a scalar access time: besides the per-bank t_RC lock window,
 * the policy can impose refresh blackouts and a read<->write
 * turnaround penalty, each reported as a distinct `StallCause` so
 * the scheduler can account stalls by cause.  The default (uniform)
 * policy reproduces the legacy scalar behavior bit for bit.
 */

#ifndef PKTBUF_DSS_ONGOING_REQUESTS_HH
#define PKTBUF_DSS_ONGOING_REQUESTS_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/timing.hh"

namespace pktbuf::dss
{

class OngoingRequests
{
  public:
    /** Legacy uniform model: every bank locks for `access_slots`. */
    explicit OngoingRequests(Slot access_slots)
        : OngoingRequests(std::make_shared<const dram::DramTiming>(
              dram::TimingConfig{}, /*banks=*/0,
              /*banks_per_group=*/0, access_slots))
    {}

    /** Full DDR model: lock windows, refresh and turnaround come
     *  from the shared timing policy. */
    explicit OngoingRequests(
        std::shared_ptr<const dram::DramTiming> timing)
        : timing_(std::move(timing))
    {
        panic_if(!timing_, "null timing policy");
    }

    /**
     * Record a launched access: bank locked until now + t_RC(bank),
     * and -- with a turnaround penalty configured -- the opposite
     * direction blocked until now + turnaround.
     */
    void
    add(unsigned bank, Slot now,
        dram::AccessKind kind = dram::AccessKind::Read)
    {
        prune(now);
        panic_if(lockedNoPrune(bank),
                 "ORR already holds bank ", bank,
                 ": the DSA launched a conflicting access");
        panic_if(timing_->inRefresh(bank, now),
                 "DSA launched into refreshing bank ", bank,
                 " at slot ", now);
        panic_if(now < directionOk(kind),
                 "DSA launched a ",
                 kind == dram::AccessKind::Read ? "read" : "write",
                 " at slot ", now, " inside the turnaround window");
        entries_.push_back({bank, now + timing_->accessSlots(bank)});
        if (timing_->turnaround() > 0) {
            Slot &other = kind == dram::AccessKind::Read ? write_ok_
                                                         : read_ok_;
            const Slot until = now + timing_->turnaround();
            other = until > other ? until : other;
        }
        high_water_.observe(static_cast<std::int64_t>(entries_.size()));
    }

    /** Is the bank inside its t_RC lock window at `now`?  (Bank-busy
     *  only; refresh and turnaround are visible via blockedCause.) */
    bool
    locked(unsigned bank, Slot now)
    {
        prune(now);
        return lockedNoPrune(bank);
    }

    /**
     * Would a launch of `kind` to `bank` be refused at `now`, and
     * why?  Causes are checked in priority order: bank-busy (the
     * legacy constraint), then refresh, then turnaround.
     * @return the blocking cause, or nullopt if the launch is legal
     */
    std::optional<dram::StallCause>
    blockedCause(unsigned bank, dram::AccessKind kind, Slot now)
    {
        prune(now);
        if (lockedNoPrune(bank))
            return dram::StallCause::BankBusy;
        if (timing_->inRefresh(bank, now))
            return dram::StallCause::Refresh;
        if (now < directionOk(kind))
            return dram::StallCause::Turnaround;
        return std::nullopt;
    }

    /** Entries currently held (after pruning at `now`). */
    std::size_t
    size(Slot now)
    {
        prune(now);
        return entries_.size();
    }

    std::int64_t highWater() const { return high_water_.max(); }
    /** Uniform/base t_RC (the buffer's B). */
    Slot accessSlots() const { return timing_->baseTRc(); }
    const dram::DramTiming &timing() const { return *timing_; }

    /** Checkpoint: lock entries and the turnaround horizons.  The
     *  timing policy is configuration (rebuilt, not serialized). */
    void
    save(ser::Writer &w) const
    {
        w.tag("ORRG");
        w.u64(entries_.size());
        for (const auto &e : entries_) {
            w.u32(e.bank);
            w.u64(e.until);
        }
        w.u64(read_ok_);
        w.u64(write_ok_);
        high_water_.save(w);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("ORRG");
        entries_.clear();
        const auto n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            Entry e;
            e.bank = r.u32();
            e.until = r.u64();
            entries_.push_back(e);
        }
        read_ok_ = r.u64();
        write_ok_ = r.u64();
        high_water_.load(r);
    }

  private:
    struct Entry
    {
        unsigned bank;
        Slot until;
    };

    /** Earliest slot a launch of `kind` may go out (turnaround). */
    Slot
    directionOk(dram::AccessKind kind) const
    {
        return kind == dram::AccessKind::Read ? read_ok_ : write_ok_;
    }

    bool
    lockedNoPrune(unsigned bank) const
    {
        for (const auto &e : entries_)
            if (e.bank == bank)
                return true;
        return false;
    }

    void
    prune(Slot now)
    {
        // Under uniform t_RC expirations are FIFO, but heterogeneous
        // bank groups can expire a fast bank behind a slow one, so
        // the whole table is scanned (it holds at most a handful of
        // in-flight accesses).
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (it->until <= now)
                it = entries_.erase(it);
            else
                ++it;
        }
    }

    std::shared_ptr<const dram::DramTiming> timing_;  // ser: config
    std::deque<Entry> entries_;
    Slot read_ok_ = 0;   //!< earliest legal read launch (turnaround)
    Slot write_ok_ = 0;  //!< earliest legal write launch
    HighWater high_water_;
};

} // namespace pktbuf::dss

#endif // PKTBUF_DSS_ONGOING_REQUESTS_HH
