/**
 * @file
 * The Ongoing Requests Register (ORR, Section 5.3): the identifiers
 * of the banks whose accesses are still within the DRAM random
 * access time.  A bank listed here is *locked*; the DSA never
 * launches a request to a locked bank.
 *
 * In hardware this is a short shift register of bank ids; here it is
 * the shared lock table for the read and write schedulers, pruned by
 * completion time, plus occupancy statistics so tests can check the
 * paper's ORR sizing (B/b - 1 per request stream).
 */

#ifndef PKTBUF_DSS_ONGOING_REQUESTS_HH
#define PKTBUF_DSS_ONGOING_REQUESTS_HH

#include <cstdint>
#include <deque>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pktbuf::dss
{

class OngoingRequests
{
  public:
    explicit OngoingRequests(Slot access_slots)
        : access_slots_(access_slots)
    {}

    /** Record a launched access: bank locked until now + t_RC. */
    void
    add(unsigned bank, Slot now)
    {
        prune(now);
        panic_if(lockedNoPrune(bank),
                 "ORR already holds bank ", bank,
                 ": the DSA launched a conflicting access");
        entries_.push_back({bank, now + access_slots_});
        high_water_.observe(static_cast<std::int64_t>(entries_.size()));
    }

    /** Is the bank locked at `now`? */
    bool
    locked(unsigned bank, Slot now)
    {
        prune(now);
        return lockedNoPrune(bank);
    }

    /** Entries currently held (after pruning at `now`). */
    std::size_t
    size(Slot now)
    {
        prune(now);
        return entries_.size();
    }

    std::int64_t highWater() const { return high_water_.max(); }
    Slot accessSlots() const { return access_slots_; }

  private:
    struct Entry
    {
        unsigned bank;
        Slot until;
    };

    bool
    lockedNoPrune(unsigned bank) const
    {
        for (const auto &e : entries_)
            if (e.bank == bank)
                return true;
        return false;
    }

    void
    prune(Slot now)
    {
        while (!entries_.empty() && entries_.front().until <= now)
            entries_.pop_front();
    }

    Slot access_slots_;
    std::deque<Entry> entries_;
    HighWater high_water_;
};

} // namespace pktbuf::dss

#endif // PKTBUF_DSS_ONGOING_REQUESTS_HH
