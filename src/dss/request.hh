/**
 * @file
 * A DRAM transfer request as it flows through the DRAM Scheduler
 * Subsystem (Section 5.3).
 */

#ifndef PKTBUF_DSS_REQUEST_HH
#define PKTBUF_DSS_REQUEST_HH

#include <cstdint>

#include "common/types.hh"

namespace pktbuf::dss
{

struct DramRequest
{
    enum class Kind
    {
        Read,   //!< DRAM -> h-SRAM replenish
        Write,  //!< t-SRAM -> DRAM drain
    };

    Kind kind = Kind::Read;
    QueueId physQueue = kInvalidQueue;
    /** Block ordinal within the queue; drives the bank mapping. */
    std::uint64_t blockOrdinal = 0;
    /** Target bank (precomputed from the address map). */
    unsigned bank = 0;
    /** Reads: per-queue replenish sequence for in-order consume. */
    std::uint64_t replenishSeq = 0;
    /** Slot the MMA issued the request (for delay statistics). */
    Slot issued = 0;
    /** Times this request has been skipped over by the DSA. */
    unsigned skips = 0;

    void
    save(ser::Writer &w) const
    {
        w.u8(kind == Kind::Read ? 0 : 1);
        w.u32(physQueue);
        w.u64(blockOrdinal);
        w.u32(bank);
        w.u64(replenishSeq);
        w.u64(issued);
        w.u32(skips);
    }

    void
    load(ser::Reader &r)
    {
        kind = r.u8() == 0 ? Kind::Read : Kind::Write;
        physQueue = r.u32();
        blockOrdinal = r.u64();
        bank = r.u32();
        replenishSeq = r.u64();
        issued = r.u64();
        skips = r.u32();
    }
};

} // namespace pktbuf::dss

#endif // PKTBUF_DSS_REQUEST_HH
