/**
 * @file
 * The Requests Register (RR, Section 5.3 / 8.1): an age-ordered
 * window of MMA requests awaiting DRAM access, functionally
 * equivalent to an out-of-order issue queue with wake-up (bank not
 * locked) and select (oldest ready) stages plus compaction.  One
 * register holds both reads and writes (Figure 5); writes of the
 * same queue launch in order because the cells a write carries are
 * extracted from the tail SRAM FIFO at launch time.
 */

#ifndef PKTBUF_DSS_REQUEST_REGISTER_HH
#define PKTBUF_DSS_REQUEST_REGISTER_HH

#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "dram/timing.hh"
#include "dss/request.hh"

namespace pktbuf::dss
{

class RequestRegister
{
  public:
    /**
     * @param capacity maximum entries (R); 0 = unbounded.
     * @param in_order_per_queue block younger entries of a queue
     *        behind older pending ones (write path).
     */
    explicit RequestRegister(std::size_t capacity,
                             bool in_order_per_queue = false)
        : capacity_(capacity), in_order_per_queue_(in_order_per_queue)
    {}

    /** Insert a new request at the tail (youngest). */
    void
    push(const DramRequest &req)
    {
        entries_.push_back(req);
        high_water_.observe(static_cast<std::int64_t>(entries_.size()));
        panic_if(capacity_ && entries_.size() > capacity_,
                 "Requests Register overflow: ", entries_.size(),
                 " > R = ", capacity_,
                 " -- Eq. (1) sizing violated");
    }

    /**
     * Select the *oldest* request the timing policy does not block,
     * remove it (compacting the register) and return it.  Every
     * older request passed over gains one skip; max skips are
     * tracked so tests can check Eq. (2).
     *
     * @param blocked         cause blocking this request now, or
     *                        nullopt.  A template parameter (not
     *                        std::function): this probe runs for
     *                        every entry on every DSA launch
     *                        opportunity and the indirect call was
     *                        measurable in the simulator's profile.
     * @param oldest_blocked  out: the cause blocking the *oldest*
     *                        timing-blocked entry (whose delay
     *                        dominates the latency budget).  A
     *                        write-after-write ordering hold
     *                        (in_order_per_queue) is head-of-line
     *                        blocking, not a timing stall, and is
     *                        never reported here.
     */
    template <typename BlockedFn,
              std::enable_if_t<std::is_invocable_r_v<
                                   std::optional<dram::StallCause>,
                                   BlockedFn, const DramRequest &>,
                               int> = 0>
    std::optional<DramRequest>
    selectOldestReady(
        const BlockedFn &blocked,
        std::optional<dram::StallCause> *oldest_blocked = nullptr)
    {
        passed_writes_.clear();
        auto &passed_write_queues = passed_writes_;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            const bool is_write =
                entries_[i].kind == DramRequest::Kind::Write;
            const bool queue_blocked =
                in_order_per_queue_ && is_write &&
                contains(passed_write_queues, entries_[i].physQueue);
            std::optional<dram::StallCause> cause;
            if (!queue_blocked)
                cause = blocked(entries_[i]);
            if (queue_blocked || cause) {
                if (cause && oldest_blocked && !*oldest_blocked)
                    *oldest_blocked = cause;
                if (is_write)
                    passed_write_queues.push_back(
                        entries_[i].physQueue);
                continue;
            }
            DramRequest req = entries_[i];
            for (std::size_t j = 0; j < i; ++j) {
                ++entries_[j].skips;
                max_skips_.observe(entries_[j].skips);
            }
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            return req;
        }
        return std::nullopt;
    }

    /** Legacy bank-lock form: `locked(bank)` maps to BankBusy. */
    template <typename LockedFn,
              std::enable_if_t<std::is_invocable_r_v<bool, LockedFn,
                                                     unsigned>,
                               int> = 0>
    std::optional<DramRequest>
    selectOldestReady(const LockedFn &locked)
    {
        return selectOldestReady(
            [&](const DramRequest &r)
                -> std::optional<dram::StallCause> {
                if (locked(r.bank))
                    return dram::StallCause::BankBusy;
                return std::nullopt;
            });
    }

    /**
     * Squash one pending request matching `pred` (oldest first);
     * used when a pending write is cancelled in favor of an
     * SRAM-to-SRAM bypass.  Returns the squashed request.
     */
    template <typename Pred>
    std::optional<DramRequest>
    cancel(const Pred &pred)
    {
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (pred(entries_[i])) {
                DramRequest req = entries_[i];
                entries_.erase(entries_.begin() +
                               static_cast<std::ptrdiff_t>(i));
                return req;
            }
        }
        return std::nullopt;
    }

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    std::size_t capacity() const { return capacity_; }
    std::int64_t highWater() const { return high_water_.max(); }
    std::int64_t maxSkips() const { return max_skips_.max(); }

    /** Oldest-first iteration for tests and introspection. */
    const std::vector<DramRequest> &entries() const { return entries_; }

    /** Checkpoint: pending requests oldest-first + watermarks. */
    void
    save(ser::Writer &w) const
    {
        w.tag("RREG");
        w.u64(entries_.size());
        for (const auto &e : entries_)
            e.save(w);
        high_water_.save(w);
        max_skips_.save(w);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("RREG");
        entries_.clear();
        const auto n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            DramRequest req;
            req.load(r);
            entries_.push_back(req);
        }
        high_water_.load(r);
        max_skips_.load(r);
    }

  private:
    static bool
    contains(const std::vector<QueueId> &v, QueueId q)
    {
        for (const auto x : v)
            if (x == q)
                return true;
        return false;
    }

    std::size_t capacity_;  // ser: config
    bool in_order_per_queue_;  // ser: config
    /** Contiguous storage: the oldest-ready scan walks every
     *  entry on every DSA launch opportunity, and the vector's
     *  locality beat the deque's chunked layout in the profile
     *  (mid-erase compaction is small next to that). */
    std::vector<DramRequest> entries_;
    HighWater high_water_;
    HighWater max_skips_;
    /** Scratch for selectOldestReady (lives only within one call;
     *  a member so its allocation is reused across calls). */
    std::vector<QueueId> passed_writes_;  // ser: derived
};

} // namespace pktbuf::dss

#endif // PKTBUF_DSS_REQUEST_REGISTER_HH
