/**
 * @file
 * Earliest Critical Queue First (ECQF) memory-management algorithm
 * (Section 3, after [13]).
 *
 * The MMA keeps one *occupancy counter* per physical queue: +b when a
 * replenish request is issued, -1 when an arbiter request leaves the
 * lookahead register.  To select a queue it walks the lookahead from
 * head to tail, decrementing a scratch copy of the counters; the
 * first queue whose scratch counter drops below zero is *critical*
 * and is the one replenished.
 *
 * Besides the O(depth) scan the class maintains an *event-calendar*
 * view of the same decision (calendarDecide): a per-queue FIFO of
 * entry stamps of the requests currently in the lookahead plus the
 * set of queues that are critical somewhere in the register.  Both
 * views compute identical selections in identical order (the
 * differential oracle in tests/test_event_core.cc holds them to
 * that); the calendar is O(criticals * log criticals) per decision
 * instead of O(depth), which is what lets the event engine skip the
 * register walk entirely.  All calendar state is derived -- restore
 * rebuilds it from the architectural lookahead contents.
 */

#ifndef PKTBUF_MMA_ECQF_HH
#define PKTBUF_MMA_ECQF_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/shift_register.hh"
#include "common/types.hh"

namespace pktbuf::mma
{

class EcqfMma
{
  public:
    explicit EcqfMma(unsigned phys_queues)
        : occ_(phys_queues, 0), scratch_(phys_queues, 0),
          epoch_(phys_queues, 0), pend_(phys_queues),
          crit_pos_(phys_queues, kNoPos)
    {}

    /** Replenish of `gran` cells was issued for queue p. */
    void
    onReplenishIssued(QueueId p, unsigned gran)
    {
        occ(p) += gran;
        refreshCritical(p);
    }

    /**
     * An arbiter request for p entered the lookahead register (its
     * tail).  Requests enter at most one per slot, so the entry
     * stamps order the register's contents head to tail -- the
     * calendar's substitute for position.  Owners that never call
     * this simply keep the calendar empty and use scan()/select().
     */
    void
    onRequestEntering(QueueId p)
    {
        pend_[p].push(clock_++);
        refreshCritical(p);
    }

    /**
     * An arbiter request for p left the lookahead register.  With
     * full lookahead ECQF keeps counters non-negative; shorter
     * lookaheads may dip into deficit transiently (the real
     * invariant is the zero-miss check at grant time).
     */
    void
    onRequestLeaving(QueueId p)
    {
        occ(p) -= 1;
        // Tolerant pop: owners that never announced the request's
        // entry (scan()-only users, unit tests driving the counters
        // directly) keep an empty ring here.
        if (pend_[p].count > 0)
            pend_[p].pop();
        refreshCritical(p);
    }

    /**
     * Scan the lookahead and return the earliest critical queue, or
     * kInvalidQueue if no queue is critical.  `proj` maps a register
     * entry to the physical queue it requests (kInvalidQueue for an
     * idle stage).
     */
    template <typename T, typename Proj>
    QueueId
    select(const ShiftRegister<T> &lookahead, Proj proj)
    {
        QueueId found = kInvalidQueue;
        scan(lookahead, proj, [&found](QueueId p) -> unsigned {
            found = p;
            return 0; // stop at the first critical queue
        });
        return found;
    }

    /**
     * Single-pass variant of select() for callers that replenish
     * *every* critical queue of an interval (the bypass-heavy head
     * MMA decision): walk the lookahead once and invoke
     * `on_critical(p)` at each queue the moment it goes critical.
     *
     * The callback performs the replenish (which feeds back through
     * onReplenishIssued) and returns the number of cells it issued;
     * the scan credits them to the queue's scratch counter and
     * continues, so the remainder of the walk sees exactly the state
     * a fresh rescan would -- one O(depth) pass replaces the
     * O(depth) * O(selections) restart loop that dominated the
     * simulator's profile.  Returning 0 aborts the scan (e.g. the
     * interval's single DRAM replenish is already spent).
     */
    template <typename T, typename Proj, typename OnCritical>
    void
    scan(const ShiftRegister<T> &lookahead, Proj proj,
         OnCritical on_critical)
    {
        ++scan_epoch_;
        bool stop = false;
        lookahead.forEachFromHead([&](const T &entry) {
            if (stop)
                return;
            const QueueId p = proj(entry);
            if (p == kInvalidQueue)
                return;
            if (epoch_[p] != scan_epoch_) {
                epoch_[p] = scan_epoch_;
                scratch_[p] = occ_[p];
            }
            if (--scratch_[p] < 0) {
                const unsigned issued = on_critical(p);
                if (issued == 0) {
                    stop = true;
                    return;
                }
                // occ_[p] grew by `issued` via onReplenishIssued;
                // mirror it into the scratch copy so the rest of the
                // walk matches what a restarted scan would compute.
                scratch_[p] += issued;
            }
        });
    }

    /**
     * Event-calendar equivalent of scan(): visit every critical
     * queue in the order of its critical *entry's* position in the
     * lookahead, without walking the register.
     *
     * Equivalence to the scan (the oracle contract): with occupancy
     * o and credits c_1..c_j issued so far this decision, queue p's
     * scratch counter dips below zero exactly at its
     * (max(o + sum(c), last_fired + 1) + 1)-th resident entry, whose
     * entry stamp orders it against every other queue's critical
     * entry because the register is FIFO.  A callback returning 0
     * aborts the whole decision, exactly like scan() -- later
     * criticals (by position) are NOT visited, which matters because
     * the caller's DRAM budget is position-ordered.
     */
    template <typename OnCritical>
    void
    calendarDecide(OnCritical on_critical)
    {
        if (crit_.empty())
            return;
        heap_.clear();
        for (const QueueId p : crit_)
            heap_.push_back({pend_[p].at(slackOf(p)), p, slackOf(p)});
        const auto later = [](const CritEntry &a, const CritEntry &b) {
            return a.stamp > b.stamp;  // min-heap on entry stamp
        };
        std::make_heap(heap_.begin(), heap_.end(), later);
        while (!heap_.empty()) {
            std::pop_heap(heap_.begin(), heap_.end(), later);
            const CritEntry e = heap_.back();
            heap_.pop_back();
            const unsigned issued = on_critical(e.q);
            if (issued == 0)
                return;
            // The callback fed back through onReplenishIssued, so
            // occ_ and the critical set are current.  Within this
            // decision p's next critical entry sits strictly after
            // the one that just fired (the scan's scratch counter
            // never un-decrements), hence the max with idx + 1 --
            // with a deficit (occ < 0) the two differ.
            const std::size_t next =
                std::max(slackOf(e.q), e.idx + 1);
            if (pend_[e.q].count > next) {
                heap_.push_back({pend_[e.q].at(next), e.q, next});
                std::push_heap(heap_.begin(), heap_.end(), later);
            }
        }
    }

    /** Queues critical somewhere in the lookahead (calendar view). */
    std::size_t criticalCount() const { return crit_.size(); }

    /**
     * Drop the whole calendar (stamps, critical set, clock).  The
     * owner calls this after load() -- which already does it -- and
     * then replays onRequestEntering() for every resident lookahead
     * entry head to tail, rebuilding the derived view bit-exactly.
     */
    void
    resetCalendar()
    {
        for (auto &ring : pend_)
            ring.clear();
        crit_.clear();
        std::fill(crit_pos_.begin(), crit_pos_.end(), kNoPos);
        clock_ = 0;
    }

    std::int64_t occupancy(QueueId p) const { return occ_[p]; }

    /**
     * Checkpoint: only the occupancy counters are architectural.
     * Scratch counters and epochs exist solely *within* one scan()
     * call (every scan starts by bumping the epoch, which
     * invalidates all scratch state), so restore resets them.
     */
    void
    save(ser::Writer &w) const
    {
        w.tag("ECQF");
        w.u64(occ_.size());
        for (const auto o : occ_)
            w.i64(o);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("ECQF");
        const auto n = r.u64();
        fatal_if(n != occ_.size(), "checkpoint: ECQF has ", n,
                 " queues, configured ", occ_.size());
        for (auto &o : occ_)
            o = r.i64();
        std::fill(scratch_.begin(), scratch_.end(), 0);
        std::fill(epoch_.begin(), epoch_.end(), 0);
        scan_epoch_ = 0;
        resetCalendar();
    }

  private:
    /** Ring of entry stamps, oldest (closest to the head) first.
     *  Capacity is always a power of two so the index wrap is a mask,
     *  not a division -- this runs up to twice per simulated slot. */
    struct StampRing
    {
        std::vector<std::uint64_t> buf;
        std::size_t head = 0;
        std::size_t count = 0;

        std::uint64_t
        at(std::size_t i) const
        {
            return buf[(head + i) & (buf.size() - 1)];
        }

        void
        push(std::uint64_t s)
        {
            if (count == buf.size()) {
                std::vector<std::uint64_t> grown(
                    std::max<std::size_t>(8, buf.size() * 2));
                for (std::size_t i = 0; i < count; ++i)
                    grown[i] = at(i);
                buf = std::move(grown);
                head = 0;
            }
            buf[(head + count) & (buf.size() - 1)] = s;
            ++count;
        }

        void
        pop()
        {
            head = (head + 1) & (buf.size() - 1);
            --count;
        }

        void
        clear()
        {
            head = count = 0;
        }
    };

    struct CritEntry
    {
        std::uint64_t stamp;
        QueueId q;
        std::size_t idx;
    };

    std::int64_t &
    occ(QueueId p)
    {
        panic_if(p >= occ_.size(), "ECQF: queue ", p, " out of range");
        return occ_[p];
    }

    /** Resident entries of p the occupancy already covers: a fresh
     *  scan first dips below zero at entry index max(occ, 0). */
    std::size_t
    slackOf(QueueId p) const
    {
        return occ_[p] > 0 ? static_cast<std::size_t>(occ_[p]) : 0;
    }

    /** Re-derive p's membership in the critical set (O(1)). */
    void
    refreshCritical(QueueId p)
    {
        const bool critical = pend_[p].count > slackOf(p);
        const bool member = crit_pos_[p] != kNoPos;
        if (critical == member)
            return;
        if (critical) {
            crit_pos_[p] = static_cast<std::uint32_t>(crit_.size());
            crit_.push_back(p);
        } else {
            const QueueId last = crit_.back();
            crit_[crit_pos_[p]] = last;
            crit_pos_[last] = crit_pos_[p];
            crit_.pop_back();
            crit_pos_[p] = kNoPos;
        }
    }

    static constexpr std::uint32_t kNoPos = 0xffffffffu;

    std::vector<std::int64_t> occ_;
    // Scratch counters are epoch-tagged so a scan touches only the
    // queues it actually meets in the lookahead.
    std::vector<std::int64_t> scratch_;  // ser: derived
    std::vector<std::uint64_t> epoch_;  // ser: derived
    std::uint64_t scan_epoch_ = 0;  // ser: derived
    // --- Event-calendar view; rebuilt from the lookahead on load ---
    /** Entry stamps of the requests resident in the lookahead. */
    std::vector<StampRing> pend_;  // ser: derived
    /** Queues with pend_ count > slackOf() (unordered; decisions
     *  sort by stamp so membership order never matters). */
    std::vector<QueueId> crit_;  // ser: derived
    std::vector<std::uint32_t> crit_pos_;  // ser: derived
    /** Monotone entry clock; one tick per onRequestEntering(). */
    std::uint64_t clock_ = 0;  // ser: derived
    /** calendarDecide() scratch heap (kept to avoid re-allocation). */
    std::vector<CritEntry> heap_;  // ser: derived
};

} // namespace pktbuf::mma

#endif // PKTBUF_MMA_ECQF_HH
