/**
 * @file
 * Earliest Critical Queue First (ECQF) memory-management algorithm
 * (Section 3, after [13]).
 *
 * The MMA keeps one *occupancy counter* per physical queue: +b when a
 * replenish request is issued, -1 when an arbiter request leaves the
 * lookahead register.  To select a queue it walks the lookahead from
 * head to tail, decrementing a scratch copy of the counters; the
 * first queue whose scratch counter drops below zero is *critical*
 * and is the one replenished.
 */

#ifndef PKTBUF_MMA_ECQF_HH
#define PKTBUF_MMA_ECQF_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/shift_register.hh"
#include "common/types.hh"

namespace pktbuf::mma
{

class EcqfMma
{
  public:
    explicit EcqfMma(unsigned phys_queues)
        : occ_(phys_queues, 0), scratch_(phys_queues, 0),
          epoch_(phys_queues, 0)
    {}

    /** Replenish of `gran` cells was issued for queue p. */
    void
    onReplenishIssued(QueueId p, unsigned gran)
    {
        occ(p) += gran;
    }

    /**
     * An arbiter request for p left the lookahead register.  With
     * full lookahead ECQF keeps counters non-negative; shorter
     * lookaheads may dip into deficit transiently (the real
     * invariant is the zero-miss check at grant time).
     */
    void
    onRequestLeaving(QueueId p)
    {
        occ(p) -= 1;
    }

    /**
     * Scan the lookahead and return the earliest critical queue, or
     * kInvalidQueue if no queue is critical.  `proj` maps a register
     * entry to the physical queue it requests (kInvalidQueue for an
     * idle stage).
     */
    template <typename T, typename Proj>
    QueueId
    select(const ShiftRegister<T> &lookahead, Proj proj)
    {
        QueueId found = kInvalidQueue;
        scan(lookahead, proj, [&found](QueueId p) -> unsigned {
            found = p;
            return 0; // stop at the first critical queue
        });
        return found;
    }

    /**
     * Single-pass variant of select() for callers that replenish
     * *every* critical queue of an interval (the bypass-heavy head
     * MMA decision): walk the lookahead once and invoke
     * `on_critical(p)` at each queue the moment it goes critical.
     *
     * The callback performs the replenish (which feeds back through
     * onReplenishIssued) and returns the number of cells it issued;
     * the scan credits them to the queue's scratch counter and
     * continues, so the remainder of the walk sees exactly the state
     * a fresh rescan would -- one O(depth) pass replaces the
     * O(depth) * O(selections) restart loop that dominated the
     * simulator's profile.  Returning 0 aborts the scan (e.g. the
     * interval's single DRAM replenish is already spent).
     */
    template <typename T, typename Proj, typename OnCritical>
    void
    scan(const ShiftRegister<T> &lookahead, Proj proj,
         OnCritical on_critical)
    {
        ++scan_epoch_;
        bool stop = false;
        lookahead.forEachFromHead([&](const T &entry) {
            if (stop)
                return;
            const QueueId p = proj(entry);
            if (p == kInvalidQueue)
                return;
            if (epoch_[p] != scan_epoch_) {
                epoch_[p] = scan_epoch_;
                scratch_[p] = occ_[p];
            }
            if (--scratch_[p] < 0) {
                const unsigned issued = on_critical(p);
                if (issued == 0) {
                    stop = true;
                    return;
                }
                // occ_[p] grew by `issued` via onReplenishIssued;
                // mirror it into the scratch copy so the rest of the
                // walk matches what a restarted scan would compute.
                scratch_[p] += issued;
            }
        });
    }

    std::int64_t occupancy(QueueId p) const { return occ_[p]; }

    /**
     * Checkpoint: only the occupancy counters are architectural.
     * Scratch counters and epochs exist solely *within* one scan()
     * call (every scan starts by bumping the epoch, which
     * invalidates all scratch state), so restore resets them.
     */
    void
    save(ser::Writer &w) const
    {
        w.tag("ECQF");
        w.u64(occ_.size());
        for (const auto o : occ_)
            w.i64(o);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("ECQF");
        const auto n = r.u64();
        fatal_if(n != occ_.size(), "checkpoint: ECQF has ", n,
                 " queues, configured ", occ_.size());
        for (auto &o : occ_)
            o = r.i64();
        std::fill(scratch_.begin(), scratch_.end(), 0);
        std::fill(epoch_.begin(), epoch_.end(), 0);
        scan_epoch_ = 0;
    }

  private:
    std::int64_t &
    occ(QueueId p)
    {
        panic_if(p >= occ_.size(), "ECQF: queue ", p, " out of range");
        return occ_[p];
    }

    std::vector<std::int64_t> occ_;
    // Scratch counters are epoch-tagged so a scan touches only the
    // queues it actually meets in the lookahead.
    std::vector<std::int64_t> scratch_;  // ser: derived
    std::vector<std::uint64_t> epoch_;  // ser: derived
    std::uint64_t scan_epoch_ = 0;  // ser: derived
};

} // namespace pktbuf::mma

#endif // PKTBUF_MMA_ECQF_HH
