/**
 * @file
 * Most Deficited Queue First (MDQF): the no-lookahead MMA of [13],
 * kept as an ablation baseline.  With no knowledge of future
 * requests it replenishes the queue in the most danger -- the one
 * with the lowest (possibly negative) occupancy counter among queues
 * that still have backing cells -- and needs the larger
 * Q(b-1)(2 + ln Q) SRAM to guarantee zero misses.
 */

#ifndef PKTBUF_MMA_MDQF_HH
#define PKTBUF_MMA_MDQF_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace pktbuf::mma
{

class MdqfMma
{
  public:
    explicit MdqfMma(unsigned phys_queues)
        : occ_(phys_queues, 0)
    {}

    void
    onReplenishIssued(QueueId p, unsigned gran)
    {
        occ(p) += gran;
    }

    void
    onRequestLeaving(QueueId p)
    {
        occ(p) -= 1;
    }

    /**
     * Pick the queue with the minimum occupancy counter among those
     * for which `replenishable(p)` holds.  Queues whose counter is
     * already comfortable (>= gran) are not replenished.
     */
    QueueId
    select(unsigned gran,
           const std::function<bool(QueueId)> &replenishable) const
    {
        QueueId best = kInvalidQueue;
        std::int64_t best_occ = 0;
        for (QueueId p = 0; p < occ_.size(); ++p) {
            if (!replenishable(p))
                continue;
            if (occ_[p] >= static_cast<std::int64_t>(gran))
                continue;
            if (best == kInvalidQueue || occ_[p] < best_occ) {
                best = p;
                best_occ = occ_[p];
            }
        }
        return best;
    }

    std::int64_t occupancy(QueueId p) const { return occ_[p]; }

    void
    save(ser::Writer &w) const
    {
        w.tag("MDQF");
        w.u64(occ_.size());
        for (const auto o : occ_)
            w.i64(o);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("MDQF");
        const auto n = r.u64();
        fatal_if(n != occ_.size(), "checkpoint: MDQF has ", n,
                 " queues, configured ", occ_.size());
        for (auto &o : occ_)
            o = r.i64();
    }

  private:
    std::int64_t &
    occ(QueueId p)
    {
        panic_if(p >= occ_.size(), "MDQF: queue ", p, " out of range");
        return occ_[p];
    }

    std::vector<std::int64_t> occ_;
};

} // namespace pktbuf::mma

#endif // PKTBUF_MMA_MDQF_HH
