/**
 * @file
 * Threshold tail MMA (Section 3): every granularity interval,
 * transfer b cells to DRAM from any queue whose t-SRAM occupancy is
 * at least b.  A round-robin scan keeps the choice fair so no queue
 * camps in the SRAM; with this policy the t-SRAM needs Q(b-1)+1
 * cells.
 */

#ifndef PKTBUF_MMA_TAIL_MMA_HH
#define PKTBUF_MMA_TAIL_MMA_HH

#include <functional>

#include "common/logging.hh"
#include "common/types.hh"

namespace pktbuf::mma
{

class TailMma
{
  public:
    explicit TailMma(unsigned phys_queues)
        : queues_(phys_queues)
    {}

    /**
     * Pick the next queue (round-robin from the last pick) whose
     * unclaimed t-SRAM occupancy is at least `gran` and which is
     * admissible (e.g. its DRAM group has room).  Returns
     * kInvalidQueue if none qualifies.
     */
    QueueId
    select(unsigned gran,
           const std::function<std::uint64_t(QueueId)> &unclaimed,
           const std::function<bool(QueueId)> &admissible)
    {
        for (unsigned i = 0; i < queues_; ++i) {
            const QueueId p = (next_ + i) % queues_;
            if (unclaimed(p) >= gran && admissible(p)) {
                next_ = (p + 1) % queues_;
                return p;
            }
        }
        return kInvalidQueue;
    }

    /** Checkpoint: the round-robin cursor. */
    void
    save(ser::Writer &w) const
    {
        w.tag("TMMA");
        w.u32(next_);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("TMMA");
        next_ = r.u32();
        fatal_if(queues_ && next_ >= queues_,
                 "checkpoint: tail MMA cursor out of range");
    }

  private:
    unsigned queues_;  // ser: config
    QueueId next_ = 0;
};

} // namespace pktbuf::mma

#endif // PKTBUF_MMA_TAIL_MMA_HH
