/**
 * @file
 * Threshold tail MMA (Section 3): every granularity interval,
 * transfer b cells to DRAM from any queue whose t-SRAM occupancy is
 * at least b.  A round-robin scan keeps the choice fair so no queue
 * camps in the SRAM; with this policy the t-SRAM needs Q(b-1)+1
 * cells.
 */

#ifndef PKTBUF_MMA_TAIL_MMA_HH
#define PKTBUF_MMA_TAIL_MMA_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace pktbuf::mma
{

class TailMma
{
  public:
    explicit TailMma(unsigned phys_queues)
        : queues_(phys_queues)
    {}

    /**
     * Pick the next queue (round-robin from the last pick) whose
     * unclaimed t-SRAM occupancy is at least `gran` and which is
     * admissible (e.g. its DRAM group has room).  Returns
     * kInvalidQueue if none qualifies.  The predicates are template
     * parameters (not std::function) -- this runs every granularity
     * interval and the two indirect calls per probed queue dominated
     * the tail-MMA's profile.
     */
    template <typename Unclaimed, typename Admissible>
    QueueId
    select(unsigned gran, const Unclaimed &unclaimed,
           const Admissible &admissible)
    {
        for (unsigned i = 0; i < queues_; ++i) {
            const QueueId p = (next_ + i) % queues_;
            if (unclaimed(p) >= gran && admissible(p)) {
                next_ = (p + 1) % queues_;
                return p;
            }
        }
        return kInvalidQueue;
    }

    /**
     * Event-engine fast path: delegate the threshold scan to a
     * next-eligible oracle (the t-SRAM's eligibility bitmap) instead
     * of probing every queue.  `next_eligible(from)` must return the
     * first queue at or cyclically after `from` meeting the same
     * threshold select() would test, or kInvalidQueue -- given that,
     * the pick and the cursor update are identical to select() with
     * an always-true admissibility predicate.
     */
    template <typename NextEligible>
    QueueId
    selectVia(const NextEligible &next_eligible)
    {
        const QueueId p = next_eligible(next_);
        if (p != kInvalidQueue)
            next_ = (p + 1) % queues_;
        return p;
    }

    /** Checkpoint: the round-robin cursor. */
    void
    save(ser::Writer &w) const
    {
        w.tag("TMMA");
        w.u32(next_);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("TMMA");
        next_ = r.u32();
        fatal_if(queues_ && next_ >= queues_,
                 "checkpoint: tail MMA cursor out of range");
    }

  private:
    unsigned queues_;  // ser: config
    QueueId next_ = 0;
};

} // namespace pktbuf::mma

#endif // PKTBUF_MMA_TAIL_MMA_HH
