#include "cacti_lite.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pktbuf::model
{

namespace
{

double
log2d(double x)
{
    return std::log2(std::max(x, 1.0));
}

unsigned
ceilPow2(double x)
{
    unsigned p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

struct StageDelays
{
    double decode;
    double wordline;
    double bitline;
    double route;
    double areaMm2;
    unsigned rows;
    unsigned cols;
};

/**
 * Delay and area of `totalBits` of storage split into `subarrays`
 * roughly square sub-arrays.  `cellUm2`/`pitchUm` already include the
 * port multiplier.  Shared by the SRAM and the CAM data-array paths.
 */
StageDelays
organize(std::uint64_t totalBits, unsigned subarrays, double cellUm2,
         double pitchUm, double portLoad, const TechParams &tech)
{
    const double bits_per_sub =
        static_cast<double>(totalBits) / subarrays;
    const unsigned rows = ceilPow2(std::sqrt(bits_per_sub));
    const unsigned cols = ceilPow2(bits_per_sub / rows);

    StageDelays d{};
    d.rows = rows;
    d.cols = cols;
    d.decode = tech.fo4Ns * (3.0 + 0.9 * log2d(rows));
    d.wordline = tech.wireNsPerMm * (cols * pitchUm / 1000.0);
    d.bitline = tech.bitlineNsPerRow * rows * portLoad + tech.senseNs;
    d.areaMm2 = totalBits * cellUm2 / tech.areaEfficiency / 1e6 +
                subarrays * tech.subarrayOverheadMm2;
    // H-tree from the centre to the farthest sub-array and back out.
    d.route = tech.wireNsPerMm * std::sqrt(d.areaMm2) * 1.1;
    return d;
}

} // namespace

ArrayResult
sramArray(std::uint64_t entries, unsigned bitsPerEntry, unsigned ports,
          const TechParams &tech)
{
    panic_if(entries == 0 || bitsPerEntry == 0, "empty SRAM array");
    panic_if(ports == 0, "SRAM needs at least one port");

    const std::uint64_t bits = entries * bitsPerEntry;
    const double port_mult = 1.0 + tech.portAreaFactor * (ports - 1);
    const double cell = tech.sramCellUm2 * port_mult;
    const double pitch = std::sqrt(cell);

    ArrayResult best{};
    best.accessNs = 1e30;
    for (unsigned s = 1; s <= 8192; s <<= 1) {
        const auto d =
            organize(bits, s, cell, pitch, std::sqrt(port_mult), tech);
        const double t =
            d.decode + d.wordline + d.bitline + d.route + tech.outputNs;
        if (t < best.accessNs) {
            best.accessNs = t;
            best.areaMm2 = d.areaMm2;
            best.subarrays = s;
            best.rows = d.rows;
            best.cols = d.cols;
        }
        if (bits / (2ULL * s) < 64)
            break; // further splitting leaves degenerate sub-arrays
    }
    panic_if(best.accessNs >= 1e30, "SRAM sub-array search failed");
    return best;
}

ArrayResult
camArray(std::uint64_t entries, unsigned tagBits, unsigned dataBits,
         unsigned ports, const TechParams &tech)
{
    panic_if(entries == 0 || tagBits == 0, "empty CAM array");
    panic_if(ports == 0, "CAM needs at least one port");

    const double port_mult = 1.0 + tech.portAreaFactor * (ports - 1);

    // Tag plane: CAM cells, flat (matchlines do not benefit from
    // sub-banking without hierarchical match logic).
    const double tag_area =
        entries * tagBits * tech.camCellUm2 * port_mult /
        tech.areaEfficiency / 1e6;
    const double t_broadcast =
        tech.wireNsPerMm * std::sqrt(tag_area) * 1.2;
    const double t_match =
        tech.matchNsPerBit * tagBits + tech.senseNs;
    const double t_prio = tech.fo4Ns * (2.0 + 1.0 * log2d(entries));

    // Data plane: SRAM cells, wordlines driven by match results, so
    // no decoder stage; sub-array search as for plain SRAM.
    const std::uint64_t data_bits =
        entries * static_cast<std::uint64_t>(dataBits);
    const double cell = tech.sramCellUm2 * port_mult;
    const double pitch = std::sqrt(cell);

    ArrayResult best{};
    best.accessNs = 1e30;
    for (unsigned s = 1; s <= 8192; s <<= 1) {
        const auto d = organize(data_bits, s, cell, pitch,
                                std::sqrt(port_mult), tech);
        const double t = t_broadcast + t_match + t_prio + d.wordline +
                         d.bitline + d.route + tech.outputNs;
        if (t < best.accessNs) {
            best.accessNs = t;
            best.areaMm2 = d.areaMm2 + tag_area;
            best.subarrays = s;
            best.rows = d.rows;
            best.cols = d.cols;
        }
        if (data_bits / (2ULL * s) < 64)
            break; // further splitting leaves degenerate sub-arrays
    }
    panic_if(best.accessNs >= 1e30, "CAM sub-array search failed");
    return best;
}

} // namespace pktbuf::model
