/**
 * @file
 * CACTI-3-flavored analytical timing/area model for SRAM and CAM
 * arrays at a 0.13 um process.
 *
 * The paper uses CACTI 3.0 (Shivakumar & Jouppi) to size the h-SRAM
 * and t-SRAM buffers (Section 7.1).  We reimplement the part of the
 * model the evaluation depends on: a sub-array organization search
 * over a decoder / wordline / bitline / sense-amp / routing pipeline,
 * with per-port area and pitch scaling.  Constants are calibrated to
 * the anchor points reported in the paper (see DESIGN.md Section 3);
 * shapes (growth with capacity, CAM-vs-SRAM and port penalties) are
 * produced by the structural model.
 */

#ifndef PKTBUF_MODEL_CACTI_LITE_HH
#define PKTBUF_MODEL_CACTI_LITE_HH

#include <cstdint>

namespace pktbuf::model
{

/** Process / circuit constants.  Defaults model 0.13 um. */
struct TechParams
{
    double featureUm = 0.13;
    /** Fanout-of-4 inverter delay (ns); gate-dominated stages. */
    double fo4Ns = 0.036;
    /** Delay of a repeated global wire (ns per mm). */
    double wireNsPerMm = 0.33;
    /** 6T SRAM cell area (um^2). */
    double sramCellUm2 = 2.43;
    /** CAM (tag) cell area: 9T + matchline (um^2). */
    double camCellUm2 = 5.90;
    /** Bitline RC per row crossed (ns). */
    double bitlineNsPerRow = 0.0010;
    /** Matchline discharge per tag bit (ns). */
    double matchNsPerBit = 0.0012;
    /** Sense amplifier resolve time (ns). */
    double senseNs = 0.10;
    /** Output driver / latch (ns). */
    double outputNs = 0.10;
    /** Fraction of macro area that is storage cells. */
    double areaEfficiency = 0.60;
    /** Extra area per port beyond the first (fraction of cell). */
    double portAreaFactor = 0.65;
    /** Fixed overhead per sub-array (decoders, sense strips), mm^2. */
    double subarrayOverheadMm2 = 0.012;
};

/** Result of sizing one memory macro. */
struct ArrayResult
{
    double accessNs = 0.0;   //!< one read or write access
    double areaMm2 = 0.0;    //!< total macro area
    unsigned subarrays = 1;  //!< organization chosen by the search
    unsigned rows = 0;       //!< rows per sub-array
    unsigned cols = 0;       //!< columns (bits) per sub-array
};

/**
 * Size a direct-mapped SRAM of `entries` words of `bitsPerEntry`
 * bits with `ports` identical read/write ports.  Searches sub-array
 * counts (powers of two) for minimum access time.
 */
ArrayResult sramArray(std::uint64_t entries, unsigned bitsPerEntry,
                      unsigned ports, const TechParams &tech = {});

/**
 * Size a fully associative structure: `tagBits` of CAM per entry
 * driving a `dataBits` SRAM payload, `ports` ports.  Access time is
 * tag broadcast + matchline + priority encode + data array read.
 */
ArrayResult camArray(std::uint64_t entries, unsigned tagBits,
                     unsigned dataBits, unsigned ports,
                     const TechParams &tech = {});

} // namespace pktbuf::model

#endif // PKTBUF_MODEL_CACTI_LITE_HH
