#include "dimensioning.hh"

#include <cmath>

#include "common/logging.hh"

namespace pktbuf::model
{

unsigned
BufferParams::banksPerGroup() const
{
    return granRads / gran;
}

unsigned
BufferParams::groups() const
{
    return banks / banksPerGroup();
}

unsigned
BufferParams::queuesPerGroup() const
{
    const unsigned g = groups();
    return (queues + g - 1) / g;
}

void
BufferParams::validate() const
{
    fatal_if(queues == 0, "need at least one queue");
    fatal_if(gran == 0 || granRads == 0, "granularities must be positive");
    fatal_if(gran > granRads, "CFDS granularity b=", gran,
             " exceeds RADS granularity B=", granRads);
    fatal_if(granRads % gran != 0, "b=", gran, " must divide B=", granRads);
    fatal_if(banks == 0, "need at least one DRAM bank");
    fatal_if(banks % banksPerGroup() != 0,
             "banks M=", banks, " must be a multiple of B/b=",
             banksPerGroup());
}

std::uint64_t
ecqfLookaheadSlots(unsigned queues, unsigned gran)
{
    return static_cast<std::uint64_t>(queues) * (gran - 1) + 1;
}

std::uint64_t
ecqfSramCells(unsigned queues, unsigned gran)
{
    return static_cast<std::uint64_t>(queues) * (gran - 1);
}

std::uint64_t
mdqfSramCells(unsigned queues, unsigned gran)
{
    const double q = queues;
    const double cells = q * (gran - 1) * (2.0 + std::log(q));
    return static_cast<std::uint64_t>(std::ceil(cells));
}

std::uint64_t
radsSramCells(std::uint64_t lookahead, unsigned queues, unsigned gran)
{
    if (gran <= 1)
        return 0;
    const std::uint64_t lmax = ecqfLookaheadSlots(queues, gran);
    if (lookahead >= lmax)
        return ecqfSramCells(queues, gran);
    if (lookahead < 1)
        lookahead = 1;
    const double smin = static_cast<double>(ecqfSramCells(queues, gran));
    const double smax = static_cast<double>(mdqfSramCells(queues, gran));
    // Logarithmic interpolation pinned to the published endpoints:
    // steep initial benefit of lookahead, flattening towards L_max.
    const double frac = std::log(static_cast<double>(lmax) / lookahead) /
                        std::log(static_cast<double>(lmax));
    return static_cast<std::uint64_t>(
        std::ceil(smin + (smax - smin) * frac));
}

std::uint64_t
tailSramCells(unsigned queues, unsigned gran)
{
    return static_cast<std::uint64_t>(queues) * (gran - 1) + 1;
}

std::uint64_t
rrSize(const BufferParams &p)
{
    p.validate();
    const unsigned bb = p.banksPerGroup();
    if (bb <= 1) {
        // One bank per group: requests launch every b = B slots and a
        // bank is busy exactly B slots, so no request can ever find
        // its bank locked -- no reordering window is needed.
        return 0;
    }
    // 2Q because the DSS handles reads and writes to Q queues.
    const std::uint64_t qg = (2ULL * p.queues + p.groups() - 1) / p.groups();
    // Reconstructed from the paper's intuition and Table 2 (see
    // DESIGN.md): up to ~2Q/G consecutive requests can target one
    // bank, and B/b requests accumulate while one access is in
    // flight.  For B/b == 2 only the immediately preceding access can
    // lock a bank, which removes one factor.
    if (bb == 2)
        return qg * (bb - 1);
    return qg * bb;
}

std::uint64_t
dsaMaxSkips(const BufferParams &p)
{
    p.validate();
    const unsigned bb = p.banksPerGroup();
    if (bb <= 1)
        return 0;
    const std::uint64_t qg = (2ULL * p.queues + p.groups() - 1) / p.groups();
    // Eq. 2: at most ~2Q/G requests contend for one bank and each
    // occupies it for B/b issue opportunities.
    return qg * (bb - 1);
}

std::uint64_t
latencySlots(const BufferParams &p)
{
    p.validate();
    const std::uint64_t r = rrSize(p);
    const std::uint64_t skips = dsaMaxSkips(p);
    // Eq. 3: (RR traversal + skips) at one launch opportunity per b
    // slots, plus the DRAM access itself (B slots).  A request
    // issued right after this interval's launch waits a full R
    // opportunities, hence R rather than R - 1.
    return (r + skips) * p.gran + p.granRads;
}

std::uint64_t
cfdsSramCells(std::uint64_t lookahead, const BufferParams &p)
{
    // Eq. 4: MMA requirement at granularity b plus one cell per slot
    // of latency (cells parked in SRAM before the arbiter drains
    // them).
    return radsSramCells(lookahead, p.queues, p.gran) + latencySlots(p);
}

std::uint64_t
orrSize(const BufferParams &p)
{
    const unsigned bb = p.banksPerGroup();
    return bb == 0 ? 0 : bb - 1;
}

std::uint64_t
concentrationSlackSlots(const BufferParams &p,
                        unsigned logical_queues)
{
    if (logical_queues == 0 || logical_queues >= 4)
        return 0;
    if (logical_queues == 1)
        return 32ull * p.granRads;
    return 4ull * p.granRads / logical_queues;
}

double
schedBudgetNs(const BufferParams &p, LineRate rate)
{
    return p.gran * slotTimeNs(rate);
}

} // namespace pktbuf::model
