/**
 * @file
 * Closed-form dimensioning of RADS and CFDS packet buffers: SRAM
 * sizes, lookahead, Requests-Register size (Eq. 1), maximum skip
 * count (Eq. 2), latency register depth (Eq. 3) and total SRAM size
 * (Eq. 4) from the paper, plus the SRAM-size-vs-lookahead trade-off
 * of the RADS baseline ([13], Iyer/Kompella/McKeown).
 *
 * All sizes are in cells (64 bytes each) and all delays in time-slots
 * unless stated otherwise.
 */

#ifndef PKTBUF_MODEL_DIMENSIONING_HH
#define PKTBUF_MODEL_DIMENSIONING_HH

#include <cstdint>

#include "common/types.hh"

namespace pktbuf::model
{

/**
 * Static parameters of a buffer memory system.
 *
 * RADS is the special case b == B (a single logical bank accessed
 * every DRAM random-access time); CFDS uses b < B with M banks
 * organized in G = M / (B/b) groups of B/b banks.
 */
struct BufferParams
{
    unsigned queues = 512;       //!< Q: number of (physical) VOQs
    unsigned granRads = 32;      //!< B: t_RC in slots (RADS granularity)
    unsigned gran = 32;          //!< b: CFDS granularity (b divides B)
    unsigned banks = 256;        //!< M: number of DRAM banks

    /** B/b: banks per group == depth of bank interleaving. */
    unsigned banksPerGroup() const;
    /** G = M / (B/b): number of bank groups. */
    unsigned groups() const;
    /** ceil(Q / G): queues mapped to one group. */
    unsigned queuesPerGroup() const;
    /** True for the b == B degenerate (RADS) configuration. */
    bool isRads() const { return gran == granRads; }

    /** Throws FatalError unless the parameters are consistent. */
    void validate() const;
};

/**
 * Lookahead register depth that lets ECQF guarantee zero misses with
 * the minimum SRAM: Q(b-1) + 1 slots ([13], Section 3).
 */
std::uint64_t ecqfLookaheadSlots(unsigned queues, unsigned gran);

/** Head SRAM size for ECQF at full lookahead: Q(b-1) cells. */
std::uint64_t ecqfSramCells(unsigned queues, unsigned gran);

/**
 * Head SRAM size for MDQF with no lookahead:
 * Q(b-1)(2 + ln Q) cells ([13]).
 */
std::uint64_t mdqfSramCells(unsigned queues, unsigned gran);

/**
 * Head SRAM size as a function of an arbitrary lookahead L in
 * [1, ecqfLookaheadSlots]:  the published endpoints are
 * L = 1  -> Q(b-1)(2 + ln Q)   (MDQF, no useful lookahead) and
 * L = Q(b-1)+1 -> Q(b-1)       (ECQF).  Between them we use the
 * logarithmic interpolation described in DESIGN.md (Section 3).
 */
std::uint64_t radsSramCells(std::uint64_t lookahead, unsigned queues,
                            unsigned gran);

/**
 * Tail SRAM size for the threshold t-MMA: Q(b-1) + 1 cells
 * (Section 3: transfer b cells from any queue holding >= b).
 */
std::uint64_t tailSramCells(unsigned queues, unsigned gran);

/**
 * Requests Register size R guaranteeing the DSA always finds a
 * non-locked request (Eq. 1).  Matches every entry of Table 2.
 * The factor 2Q accounts for the DSS managing both reads and writes.
 */
std::uint64_t rrSize(const BufferParams &p);

/** Maximum number of times the DSA can skip one request (Eq. 2). */
std::uint64_t dsaMaxSkips(const BufferParams &p);

/**
 * Depth of the latency shift register in slots (Eq. 3): worst-case
 * RR traversal plus worst-case skip delay plus the DRAM access
 * itself.
 */
std::uint64_t latencySlots(const BufferParams &p);

/**
 * Total head-SRAM size of a CFDS configuration (Eq. 4): the MMA
 * requirement for granularity b plus the reorder/latency slack.
 */
std::uint64_t cfdsSramCells(std::uint64_t lookahead, const BufferParams &p);

/** Size of the Ongoing Requests Register: B/b - 1 entries. */
std::uint64_t orrSize(const BufferParams &p);

/**
 * Extra SRAM/lookahead slots absorbing grant concentration when
 * queue renaming runs with fewer than 4 *logical* queues (the
 * concentration bound the renaming property suites document).  The
 * whole grant stream funnels through one physical chain, and every
 * chain-element boundary restarts the replenish pipeline on a fresh
 * physical queue whose bank group also absorbs the matching writes:
 * for L in {2,3} (per-queue rate <= 1/2 line rate, so read+write
 * demand fits one group's bandwidth) the boundary transient needs
 * 4B/L slots; for L == 1 the chain's sole element is head and tail
 * at once, its group transiently serves ~2x its bandwidth until a
 * spill splits the streams, and the accumulated lag needs 32B slots
 * (validated MISS-free at 4x the property-suite horizon).  Applies
 * to the ECQF lookahead, the enforced h-SRAM capacity, and the
 * t-SRAM headroom for the mirrored write backlog; zero for L >= 4
 * or without renaming.
 */
std::uint64_t concentrationSlackSlots(const BufferParams &p,
                                      unsigned logical_queues);

/**
 * Time available to schedule one request: a new DRAM access begins
 * every b slots (Table 2, "Sched. time").
 */
double schedBudgetNs(const BufferParams &p, LineRate rate);

} // namespace pktbuf::model

#endif // PKTBUF_MODEL_DIMENSIONING_HH
