#include "issue_queue.hh"

#include <cmath>

namespace pktbuf::model
{

std::string
toString(SchedFeasibility f)
{
    switch (f) {
      case SchedFeasibility::Unneeded:
        return "unneeded";
      case SchedFeasibility::Trivial:
        return "trivial";
      case SchedFeasibility::Attainable:
        return "attainable";
      case SchedFeasibility::Aggressive:
        return "aggressive";
      case SchedFeasibility::Difficult:
        return "difficult";
    }
    return "?";
}

double
rrSchedTimeNs(std::uint64_t rr_entries, double feature_um)
{
    if (rr_entries == 0)
        return 0.0;
    // Select-tree wire delay ~ sqrt(entries); small logic term.
    // Calibrated so a 20-entry queue takes ~1 ns at 0.35 um (Alpha
    // 21264, [14]) after linear feature-size scaling.
    const double scale = feature_um / 0.13;
    const double n = static_cast<double>(rr_entries);
    return scale * (0.19 * std::sqrt(n) +
                    0.035 * std::log2(n + 1.0));
}

double
rrSchedAreaCm2(std::uint64_t rr_entries, double feature_um)
{
    // 20 entries ~ 0.05 cm^2 at 0.35 um; area scales with entries
    // and feature size squared.
    const double scale = (feature_um / 0.35) * (feature_um / 0.35);
    return 0.05 * scale * (static_cast<double>(rr_entries) / 20.0);
}

SchedFeasibility
classifySched(std::uint64_t rr_entries, double budget_ns,
              double feature_um)
{
    if (rr_entries == 0)
        return SchedFeasibility::Unneeded;
    const double t = rrSchedTimeNs(rr_entries, feature_um);
    const double ratio = t / budget_ns;
    if (ratio <= 0.30)
        return SchedFeasibility::Trivial;
    if (ratio <= 0.80)
        return SchedFeasibility::Attainable;
    if (ratio <= 1.05)
        return SchedFeasibility::Aggressive;
    return SchedFeasibility::Difficult;
}

} // namespace pktbuf::model
