/**
 * @file
 * Scheduling-time model for the Requests Register wake-up/select
 * logic (Section 8.1).  The paper anchors feasibility on the Alpha
 * 21264's 20-entry issue queue (about 1 ns at 0.35 um, 0.05 cm^2).
 * We model select time as dominated by the wire component of the
 * hierarchical selection tree, which grows with sqrt(entries)
 * (Palacharla et al.), and classify each configuration against the
 * per-request budget of b slots.
 */

#ifndef PKTBUF_MODEL_ISSUE_QUEUE_HH
#define PKTBUF_MODEL_ISSUE_QUEUE_HH

#include <cstdint>
#include <string>

namespace pktbuf::model
{

/** Feasibility classes used when reporting Table 2. */
enum class SchedFeasibility
{
    Unneeded,    //!< R == 0: no scheduler required
    Trivial,     //!< far under budget
    Attainable,  //!< comfortably under budget
    Aggressive,  //!< at the edge of the budget
    Difficult,   //!< exceeds the budget
};

std::string toString(SchedFeasibility f);

/** Wake-up + select time for an R-entry requests register (ns). */
double rrSchedTimeNs(std::uint64_t rr_entries, double feature_um = 0.13);

/** Estimated area of the RR scheduling logic (cm^2). */
double rrSchedAreaCm2(std::uint64_t rr_entries, double feature_um = 0.13);

/** Classify an RR against the per-request time budget. */
SchedFeasibility classifySched(std::uint64_t rr_entries,
                               double budget_ns,
                               double feature_um = 0.13);

} // namespace pktbuf::model

#endif // PKTBUF_MODEL_ISSUE_QUEUE_HH
