#include "sram_designs.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pktbuf::model
{

namespace
{

unsigned
bitsFor(std::uint64_t values)
{
    unsigned bits = 1;
    while ((1ULL << bits) < values)
        ++bits;
    return bits;
}

} // namespace

std::string
toString(SramDesign d)
{
    switch (d) {
      case SramDesign::GlobalCam:
        return "global CAM";
      case SramDesign::LinkedListTimeMux:
        return "unified linked list (time-mux)";
    }
    panic("unknown SramDesign");
}

SramImplMetrics
sizeSramBuffer(SramDesign design, std::uint64_t cells,
               std::uint64_t lists, unsigned queues,
               const TechParams &tech)
{
    panic_if(cells == 0, "empty SRAM buffer");
    SramImplMetrics m{};
    const unsigned cell_bits = kCellBytes * 8;

    switch (design) {
      case SramDesign::GlobalCam: {
        // Tag = queue id + relative order within the queue.  The
        // order field must distinguish all cells a queue could hold;
        // the buffer itself bounds that, so bitsFor(cells) suffices
        // (with one spare bit for wrap disambiguation).
        const unsigned tag_bits = bitsFor(queues) + bitsFor(cells) + 1;
        const auto arr = camArray(cells, tag_bits, cell_bits, 2, tech);
        m.rawAccessNs = arr.accessNs;
        // Dual ported: arbiter read and DRAM refill overlap, so the
        // per-slot service time is one access.
        m.effectiveNs = arr.accessNs;
        m.areaMm2 = arr.areaMm2;
        m.bytes = cells * (cell_bits + tag_bits) / 8;
        break;
      }
      case SramDesign::LinkedListTimeMux: {
        const unsigned ptr_bits = bitsFor(cells);
        const auto arr =
            sramArray(cells, cell_bits + ptr_bits, 1, tech);
        // Head/tail pointer table: 2 pointers per list; accessed in
        // the same time-multiplexed cycle, adds area (and a small
        // fast lookup that is never the critical path).
        const auto table =
            sramArray(std::max<std::uint64_t>(lists, 2), 2 * ptr_bits,
                      1, tech);
        m.rawAccessNs = arr.accessNs;
        // Three serialized accesses per slot: read head cell+pointer,
        // write incoming cell, update old tail's pointer field
        // (Section 7.1).
        m.effectiveNs = 3.0 * arr.accessNs;
        m.areaMm2 = arr.areaMm2 + table.areaMm2;
        m.bytes = (cells * (cell_bits + ptr_bits) +
                   lists * 2 * ptr_bits) / 8;
        break;
      }
    }
    return m;
}

SramImplMetrics
bestSramBuffer(std::uint64_t cells, std::uint64_t lists, unsigned queues,
               const TechParams &tech)
{
    const auto cam = sizeSramBuffer(SramDesign::GlobalCam, cells, lists,
                                    queues, tech);
    const auto ll = sizeSramBuffer(SramDesign::LinkedListTimeMux, cells,
                                   lists, queues, tech);
    return cam.effectiveNs < ll.effectiveNs ? cam : ll;
}

HeadSramSpec
headSramSpec(const BufferParams &p, std::uint64_t lookahead)
{
    HeadSramSpec spec{};
    if (p.isRads()) {
        spec.cells = radsSramCells(lookahead, p.queues, p.gran);
        spec.lists = p.queues;
    } else {
        spec.cells = cfdsSramCells(lookahead, p);
        // Out-of-order refills need one list per (queue, bank of the
        // group): Q * B/b lists (Section 8.2).
        spec.lists =
            static_cast<std::uint64_t>(p.queues) * p.banksPerGroup();
    }
    // Degenerate b == 1 configurations still hold in-flight cells.
    spec.cells = std::max<std::uint64_t>(spec.cells, 1);
    return spec;
}

unsigned
maxQueuesMeetingSlot(unsigned granRads, unsigned gran, unsigned banks,
                     LineRate rate, const TechParams &tech)
{
    const double slot_ns = slotTimeNs(rate);

    auto feasible = [&](unsigned q) {
        BufferParams p{q, granRads, gran, banks};
        const auto spec =
            headSramSpec(p, ecqfLookaheadSlots(q, std::max(gran, 2u)));
        const auto impl =
            bestSramBuffer(spec.cells, spec.lists, q, tech);
        return impl.effectiveNs <= slot_ns;
    };

    if (!feasible(1))
        return 0;
    unsigned lo = 1, hi = 65536;
    while (lo + 1 < hi) {
        const unsigned mid = lo + (hi - lo) / 2;
        if (feasible(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace pktbuf::model
