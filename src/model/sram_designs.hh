/**
 * @file
 * The two shared-SRAM buffer organizations the paper evaluates
 * (Section 7.1), built on top of the cacti_lite array model:
 *
 *  - "global CAM": one fully associative store, tag = (queue id,
 *    relative order).  Two ports (read + write) so the arbiter read
 *    and the DRAM refill proceed in the same slot.  Fastest, largest.
 *
 *  - "unified linked list (time-mux)": direct-mapped SRAM where each
 *    entry is {cell, next pointer}, plus a head/tail pointer table.
 *    Single port time-multiplexed over the 3 accesses a slot needs,
 *    so its *effective* per-slot time is 3x the raw access.
 *    Smallest, slowest.
 *
 * Also provides the Figure-11 solver: the maximum number of queues a
 * configuration can support while meeting the line-rate slot time.
 */

#ifndef PKTBUF_MODEL_SRAM_DESIGNS_HH
#define PKTBUF_MODEL_SRAM_DESIGNS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "model/cacti_lite.hh"
#include "model/dimensioning.hh"

namespace pktbuf::model
{

/** Which shared-SRAM organization (Section 7.1). */
enum class SramDesign
{
    GlobalCam,
    LinkedListTimeMux,
};

std::string toString(SramDesign d);

/** Metrics of one concrete SRAM buffer implementation. */
struct SramImplMetrics
{
    double rawAccessNs = 0.0;    //!< one array access
    double effectiveNs = 0.0;    //!< worst per-slot service time
    double areaMm2 = 0.0;
    std::uint64_t bytes = 0;     //!< total storage (incl. tags/ptrs)
};

/**
 * Size a buffer of `cells` cells shared by `lists` logical lists
 * (Q for RADS; Q * B/b for CFDS, Section 8.2) as one of the two
 * designs.
 */
SramImplMetrics sizeSramBuffer(SramDesign design, std::uint64_t cells,
                               std::uint64_t lists, unsigned queues,
                               const TechParams &tech = {});

/** Convenience: the faster of the two designs for given contents. */
SramImplMetrics bestSramBuffer(std::uint64_t cells, std::uint64_t lists,
                               unsigned queues,
                               const TechParams &tech = {});

/**
 * Head-SRAM contents of a configuration at a given lookahead:
 * cells and number of lists, handling both RADS (b == B) and CFDS.
 */
struct HeadSramSpec
{
    std::uint64_t cells = 0;
    std::uint64_t lists = 0;
};

HeadSramSpec headSramSpec(const BufferParams &p, std::uint64_t lookahead);

/**
 * Figure 11: the largest Q such that the head SRAM of the given
 * (B, b, M) configuration at maximum lookahead still meets the slot
 * time of `rate`, using the faster of the two SRAM designs.
 * Returns 0 if even Q = 1 fails.
 */
unsigned maxQueuesMeetingSlot(unsigned granRads, unsigned gran,
                              unsigned banks, LineRate rate,
                              const TechParams &tech = {});

} // namespace pktbuf::model

#endif // PKTBUF_MODEL_SRAM_DESIGNS_HH
