/**
 * @file
 * Queue renaming (Section 6): each *logical* queue (the name the
 * switch scheduler uses) is backed by a chain of *physical* queues
 * (the names the MMA/DSS/DRAM machinery uses), recorded in a
 * circular renaming register of (phys queue, counters) elements.
 *
 * Cells are assigned to the tail physical queue on arrival; when the
 * tail's bank group runs out of DRAM space a fresh physical queue is
 * allocated from the group with the most free space, so one logical
 * queue can occupy the whole DRAM.  Scheduler requests drain the
 * head physical queue; a fully drained element retires and its
 * physical queue returns to the free pool.
 *
 * Physical queues are oversubscribed (P >= Q logical) so every
 * active logical queue always has at least one.
 */

#ifndef PKTBUF_RENAME_RENAMING_TABLE_HH
#define PKTBUF_RENAME_RENAMING_TABLE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pktbuf::rename
{

/** Reports the free DRAM cells of a group (committed space off). */
using GroupFreeFn = std::function<std::uint64_t(unsigned)>;

class RenamingTable
{
  public:
    /**
     * @param logical_queues Q: names the scheduler uses
     * @param phys_queues    P >= Q: names the machinery uses
     * @param groups         bank groups; phys queue p belongs to
     *                       group (p mod groups)
     */
    RenamingTable(unsigned logical_queues, unsigned phys_queues,
                  unsigned groups)
        : groups_(groups), regs_(logical_queues), free_pool_(groups)
    {
        fatal_if(phys_queues < logical_queues,
                 "physical queues (", phys_queues,
                 ") must be oversubscribed beyond logical queues (",
                 logical_queues, ")");
        fatal_if(groups == 0, "no groups");
        for (QueueId p = 0; p < phys_queues; ++p)
            free_pool_[p % groups].push_back(p);
    }

    /** Side-effect-free admission check for one cell of `lq`. */
    bool
    canAssign(QueueId lq, const GroupFreeFn &group_free) const
    {
        const auto &reg = regs_[lq];
        if (!reg.elems.empty() &&
            group_free(groupOf(reg.elems.back().phys)) >= 1) {
            return true;
        }
        return pickGroup(group_free) >= 0;
    }

    /**
     * Assign an arriving cell of `lq` to a physical queue,
     * allocating a new one if the current tail's group is out of
     * DRAM space.  Panics if admission (canAssign) would have
     * failed -- callers must check first.
     */
    QueueId
    assignArrival(QueueId lq, const GroupFreeFn &group_free)
    {
        auto &reg = r(lq);
        const bool tail_ok =
            !reg.elems.empty() &&
            group_free(groupOf(reg.elems.back().phys)) >= 1;
        if (!tail_ok) {
            const int g = pickGroup(group_free);
            panic_if(g < 0, "assignArrival without admission check");
            Element e;
            e.phys = free_pool_[static_cast<unsigned>(g)].front();
            free_pool_[static_cast<unsigned>(g)].pop_front();
            reg.elems.push_back(e);
            if (reg.elems.size() > 1)
                renames_.inc();
        }
        ++reg.elems.back().assigned;
        return reg.elems.back().phys;
    }

    /** Translate one scheduler request for `lq` (FIFO order). */
    QueueId
    translateRequest(QueueId lq)
    {
        auto &reg = r(lq);
        panic_if(reg.elems.empty(),
                 "request for logical queue ", lq,
                 " with no physical queue");
        while (reg.req_idx + 1 < reg.elems.size() &&
               reg.elems[reg.req_idx].requested ==
                   reg.elems[reg.req_idx].assigned) {
            ++reg.req_idx;
        }
        auto &e = reg.elems[reg.req_idx];
        panic_if(e.requested >= e.assigned,
                 "request overruns arrivals on logical queue ", lq);
        ++e.requested;
        return e.phys;
    }

    /**
     * A cell of `lq` was granted.  Grants follow request order, so
     * the cell belongs to the first element with an outstanding
     * request (a fully drained head element can linger when it was
     * the sole element at its last grant and a successor was
     * allocated afterwards).  Returns every physical queue retired
     * by this grant, oldest first.
     */
    std::vector<QueueId>
    onGrant(QueueId lq)
    {
        auto &reg = r(lq);
        panic_if(reg.elems.empty(), "grant with no elements");
        std::size_t gi = 0;
        while (gi < reg.elems.size() &&
               reg.elems[gi].granted == reg.elems[gi].requested) {
            ++gi;
        }
        panic_if(gi == reg.elems.size(),
                 "grant without outstanding request on logical"
                 " queue ", lq);
        ++reg.elems[gi].granted;
        // Retire every head element that nothing can reference any
        // more: not the tail (no future arrivals) and every assigned
        // cell requested and granted.
        std::vector<QueueId> recycled;
        while (reg.elems.size() > 1) {
            const auto &f = reg.elems.front();
            if (f.requested != f.assigned || f.granted != f.assigned)
                break;
            recycled.push_back(f.phys);
            free_pool_[groupOf(f.phys)].push_back(f.phys);
            recycles_.inc();
            reg.elems.pop_front();
            // req_idx advances lazily at translate time; if it still
            // pointed at the retired head it now points at index 0.
            if (reg.req_idx > 0)
                --reg.req_idx;
        }
        return recycled;
    }

    /** Physical queues currently backing `lq` (register length). */
    std::size_t
    chainLength(QueueId lq) const
    {
        return regs_[lq].elems.size();
    }

    /** Current tail physical queue of `lq` (for introspection). */
    QueueId
    tailPhys(QueueId lq) const
    {
        const auto &reg = regs_[lq];
        return reg.elems.empty() ? kInvalidQueue
                                 : reg.elems.back().phys;
    }

    unsigned groupOf(QueueId p) const { return p % groups_; }

    /** Cross-group reallocations performed. */
    std::uint64_t renames() const { return renames_.value(); }
    /** Physical queues returned to the free pool. */
    std::uint64_t recycles() const { return recycles_.value(); }

    std::size_t
    freePhysCount() const
    {
        std::size_t n = 0;
        for (const auto &pool : free_pool_)
            n += pool.size();
        return n;
    }

  private:
    struct Element
    {
        QueueId phys = kInvalidQueue;
        std::uint64_t assigned = 0;   //!< cells routed here
        std::uint64_t requested = 0;  //!< scheduler requests seen
        std::uint64_t granted = 0;    //!< cells delivered
    };

    struct Register
    {
        std::deque<Element> elems;
        std::size_t req_idx = 0;
    };

    Register &
    r(QueueId lq)
    {
        panic_if(lq >= regs_.size(), "logical queue ", lq,
                 " out of range");
        return regs_[lq];
    }

    /**
     * Group with the most free DRAM space that still has a free
     * physical name and room for at least one cell, or -1.
     */
    int
    pickGroup(const GroupFreeFn &group_free) const
    {
        int best = -1;
        std::uint64_t best_free = 0;
        for (unsigned g = 0; g < groups_; ++g) {
            if (free_pool_[g].empty())
                continue;
            const auto fr = group_free(g);
            if (fr >= 1 && (best < 0 || fr > best_free)) {
                best = static_cast<int>(g);
                best_free = fr;
            }
        }
        return best;
    }

    unsigned groups_;
    std::vector<Register> regs_;
    std::vector<std::deque<QueueId>> free_pool_;
    Counter renames_;
    Counter recycles_;
};

} // namespace pktbuf::rename

#endif // PKTBUF_RENAME_RENAMING_TABLE_HH
