/**
 * @file
 * Queue renaming (Section 6): each *logical* queue (the name the
 * switch scheduler uses) is backed by a chain of *physical* queues
 * (the names the MMA/DSS/DRAM machinery uses), recorded in a
 * circular renaming register of (phys queue, counters) elements.
 *
 * Cells are assigned to the tail physical queue on arrival; when the
 * tail's bank group runs out of DRAM space a fresh physical queue is
 * allocated, so one logical queue can occupy the whole DRAM.
 * Scheduler requests drain the head physical queue; a fully drained
 * element retires and its physical queue returns to the free pool.
 *
 * Allocation is bandwidth-aware: a group's banks sustain roughly one
 * access per slot, and the only chain elements consuming that
 * bandwidth are heads (DRAM reads) and tails (DRAM writes).  Picking
 * the group with the most free *space* is actively harmful -- the
 * group a hot head is draining is exactly the one gaining free cells,
 * so tails would chase the reads into an already saturated group and
 * the combined demand (up to ~2 cells/slot for one full-rate logical
 * queue) would exceed what the group can serve, stalling replenish
 * reads until the h-SRAM misses.  Instead the allocator picks the
 * group hosting the fewest chain heads/tails, breaking ties toward
 * the most free space.  (A single *logical* queue still collides
 * with itself -- its chain's sole element is head and tail at once
 * -- which no allocation policy can split; the buffer hides that
 * phase with extra replenish lookahead instead, see
 * concentrationLookaheadSlack in hybrid_buffer.cc.)
 *
 * Physical queues are oversubscribed (P >= Q logical) so every
 * active logical queue always has at least one.
 */

#ifndef PKTBUF_RENAME_RENAMING_TABLE_HH
#define PKTBUF_RENAME_RENAMING_TABLE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pktbuf::rename
{

/** Reports the free DRAM cells of a group (committed space off). */
using GroupFreeFn = std::function<std::uint64_t(unsigned)>;

class RenamingTable
{
  public:
    /**
     * @param logical_queues Q: names the scheduler uses
     * @param phys_queues    P >= Q: names the machinery uses
     * @param groups         bank groups; phys queue p belongs to
     *                       group (p mod groups)
     */
    RenamingTable(unsigned logical_queues, unsigned phys_queues,
                  unsigned groups)
        : groups_(groups), regs_(logical_queues), free_pool_(groups)
    {
        fatal_if(phys_queues < logical_queues,
                 "physical queues (", phys_queues,
                 ") must be oversubscribed beyond logical queues (",
                 logical_queues, ")");
        fatal_if(groups == 0, "no groups");
        for (QueueId p = 0; p < phys_queues; ++p)
            free_pool_[p % groups].push_back(p);
    }

    /** Side-effect-free admission check for one cell of `lq`. */
    bool
    canAssign(QueueId lq, const GroupFreeFn &group_free) const
    {
        const auto &reg = regs_[lq];
        if (!reg.elems.empty() &&
            group_free(groupOf(reg.elems.back().phys)) >= 1) {
            return true;
        }
        return pickGroup(group_free) >= 0;
    }

    /**
     * Assign an arriving cell of `lq` to a physical queue,
     * allocating a new one if the current tail's group is out of
     * DRAM space.  Panics if admission (canAssign) would have
     * failed -- callers must check first.
     */
    QueueId
    assignArrival(QueueId lq, const GroupFreeFn &group_free)
    {
        auto &reg = r(lq);
        const bool tail_ok =
            !reg.elems.empty() &&
            group_free(groupOf(reg.elems.back().phys)) >= 1;
        if (!tail_ok) {
            const int g = pickGroup(group_free);
            panic_if(g < 0, "assignArrival without admission check");
            Element e;
            e.phys = free_pool_[static_cast<unsigned>(g)].front();
            free_pool_[static_cast<unsigned>(g)].pop_front();
            reg.elems.push_back(e);
            if (reg.elems.size() > 1)
                renames_.inc();
        }
        ++reg.elems.back().assigned;
        return reg.elems.back().phys;
    }

    /** Translate one scheduler request for `lq` (FIFO order). */
    QueueId
    translateRequest(QueueId lq)
    {
        auto &reg = r(lq);
        panic_if(reg.elems.empty(),
                 "request for logical queue ", lq,
                 " with no physical queue");
        while (reg.req_idx + 1 < reg.elems.size() &&
               reg.elems[reg.req_idx].requested ==
                   reg.elems[reg.req_idx].assigned) {
            ++reg.req_idx;
        }
        auto &e = reg.elems[reg.req_idx];
        panic_if(e.requested >= e.assigned,
                 "request overruns arrivals on logical queue ", lq);
        ++e.requested;
        return e.phys;
    }

    /**
     * A cell of `lq` was granted.  Grants follow request order, so
     * the cell belongs to the first element with an outstanding
     * request (a fully drained head element can linger when it was
     * the sole element at its last grant and a successor was
     * allocated afterwards).  Returns every physical queue retired
     * by this grant, oldest first.
     */
    std::vector<QueueId>
    onGrant(QueueId lq)
    {
        auto &reg = r(lq);
        panic_if(reg.elems.empty(), "grant with no elements");
        std::size_t gi = 0;
        while (gi < reg.elems.size() &&
               reg.elems[gi].granted == reg.elems[gi].requested) {
            ++gi;
        }
        panic_if(gi == reg.elems.size(),
                 "grant without outstanding request on logical"
                 " queue ", lq);
        ++reg.elems[gi].granted;
        // Retire every head element that nothing can reference any
        // more: not the tail (no future arrivals) and every assigned
        // cell requested and granted.
        std::vector<QueueId> recycled;
        while (reg.elems.size() > 1) {
            const auto &f = reg.elems.front();
            if (f.requested != f.assigned || f.granted != f.assigned)
                break;
            recycled.push_back(f.phys);
            free_pool_[groupOf(f.phys)].push_back(f.phys);
            recycles_.inc();
            reg.elems.pop_front();
            // req_idx advances lazily at translate time; if it still
            // pointed at the retired head it now points at index 0.
            if (reg.req_idx > 0)
                --reg.req_idx;
        }
        return recycled;
    }

    /** Physical queues currently backing `lq` (register length). */
    std::size_t
    chainLength(QueueId lq) const
    {
        return regs_[lq].elems.size();
    }

    /** Current tail physical queue of `lq` (for introspection). */
    QueueId
    tailPhys(QueueId lq) const
    {
        const auto &reg = regs_[lq];
        return reg.elems.empty() ? kInvalidQueue
                                 : reg.elems.back().phys;
    }

    unsigned groupOf(QueueId p) const { return p % groups_; }

    /** Cross-group reallocations performed. */
    std::uint64_t renames() const { return renames_.value(); }
    /** Physical queues returned to the free pool. */
    std::uint64_t recycles() const { return recycles_.value(); }

    std::size_t
    freePhysCount() const
    {
        std::size_t n = 0;
        for (const auto &pool : free_pool_)
            n += pool.size();
        return n;
    }

    /** Checkpoint: every register chain and the per-group free
     *  pools (order matters -- allocation pops the front). */
    void
    save(ser::Writer &w) const
    {
        w.tag("RNTB");
        w.u64(regs_.size());
        for (const auto &reg : regs_) {
            w.u64(reg.req_idx);
            w.u64(reg.elems.size());
            for (const auto &e : reg.elems) {
                w.u32(e.phys);
                w.u64(e.assigned);
                w.u64(e.requested);
                w.u64(e.granted);
            }
        }
        w.u64(free_pool_.size());
        for (const auto &pool : free_pool_) {
            w.u64(pool.size());
            for (const auto p : pool)
                w.u32(p);
        }
        renames_.save(w);
        recycles_.save(w);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("RNTB");
        const auto nq = r.u64();
        fatal_if(nq != regs_.size(), "checkpoint: renaming table has ",
                 nq, " logical queues, configured ", regs_.size());
        for (auto &reg : regs_) {
            reg.req_idx = r.u64();
            reg.elems.clear();
            const auto ne = r.u64();
            for (std::uint64_t i = 0; i < ne; ++i) {
                Element e;
                e.phys = r.u32();
                e.assigned = r.u64();
                e.requested = r.u64();
                e.granted = r.u64();
                reg.elems.push_back(e);
            }
        }
        const auto ng = r.u64();
        fatal_if(ng != free_pool_.size(), "checkpoint: ", ng,
                 " free pools, configured ", free_pool_.size());
        for (auto &pool : free_pool_) {
            pool.clear();
            const auto np = r.u64();
            for (std::uint64_t i = 0; i < np; ++i)
                pool.push_back(r.u32());
        }
        renames_.load(r);
        recycles_.load(r);
    }

  private:
    struct Element
    {
        QueueId phys = kInvalidQueue;
        std::uint64_t assigned = 0;   //!< cells routed here
        std::uint64_t requested = 0;  //!< scheduler requests seen
        std::uint64_t granted = 0;    //!< cells delivered
    };

    struct Register
    {
        std::deque<Element> elems;
        std::size_t req_idx = 0;
    };

    Register &
    r(QueueId lq)
    {
        panic_if(lq >= regs_.size(), "logical queue ", lq,
                 " out of range");
        return regs_[lq];
    }

    /**
     * Bank-bandwidth demand proxy per group: +1 for every register's
     * head element (replenish reads drain it) and +1 for every tail
     * element (arrival writes fill it).  A single-element chain adds
     * 2 to its group -- it carries that queue's reads and writes.
     * Dormant middle elements cost no bandwidth and are not counted.
     */
    std::vector<unsigned>
    groupLoads() const
    {
        std::vector<unsigned> load(groups_, 0);
        for (const auto &reg : regs_) {
            if (reg.elems.empty())
                continue;
            ++load[groupOf(reg.elems.front().phys)];
            ++load[groupOf(reg.elems.back().phys)];
        }
        return load;
    }

    /**
     * Allocation target: the group with a free physical name and
     * room for at least one cell that hosts the fewest active chain
     * heads/tails, ties broken toward the most free space; -1 when
     * no group qualifies.
     */
    int
    pickGroup(const GroupFreeFn &group_free) const
    {
        const auto load = groupLoads();
        int best = -1;
        unsigned best_load = 0;
        std::uint64_t best_free = 0;
        for (unsigned g = 0; g < groups_; ++g) {
            if (free_pool_[g].empty())
                continue;
            const auto fr = group_free(g);
            if (fr < 1)
                continue;
            if (best < 0 || load[g] < best_load ||
                (load[g] == best_load && fr > best_free)) {
                best = static_cast<int>(g);
                best_load = load[g];
                best_free = fr;
            }
        }
        return best;
    }

    unsigned groups_;  // ser: config
    std::vector<Register> regs_;
    std::vector<std::deque<QueueId>> free_pool_;
    Counter renames_;
    Counter recycles_;
};

} // namespace pktbuf::rename

#endif // PKTBUF_RENAME_RENAMING_TABLE_HH
