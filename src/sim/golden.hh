/**
 * @file
 * Golden reference model: an ideal per-queue FIFO against which the
 * buffer's grants are checked cell by cell (identity, order, queue).
 */

#ifndef PKTBUF_SIM_GOLDEN_HH
#define PKTBUF_SIM_GOLDEN_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace pktbuf::sim
{

class GoldenChecker
{
  public:
    explicit GoldenChecker(unsigned queues)
        : expected_(queues, 0)
    {}

    /**
     * Verify one granted cell against the ideal FIFO of the logical
     * queue the grant was issued for.  Panics on any violation.
     */
    void
    onGrant(QueueId logical_queue, const Cell &cell)
    {
        panic_if(logical_queue >= expected_.size(),
                 "grant for unknown queue ", logical_queue);
        panic_if(cell.queue != logical_queue,
                 "grant delivered cell of queue ", cell.queue,
                 " for a request of queue ", logical_queue);
        panic_if(cell.seq != expected_[logical_queue],
                 "queue ", logical_queue, ": expected seq ",
                 expected_[logical_queue], ", got ", cell.seq,
                 " (reordering or loss)");
        Cell ideal;
        ideal.queue = logical_queue;
        ideal.seq = cell.seq;
        panic_if(cell.stamp() != ideal.stamp(),
                 "identity stamp mismatch on queue ", logical_queue);
        ++expected_[logical_queue];
        ++granted_;
    }

    std::uint64_t granted() const { return granted_; }

    /** Cells granted so far on one queue. */
    std::uint64_t served(QueueId q) const { return expected_[q]; }

    /** Checkpoint: per-queue expected sequence numbers + total. */
    void
    save(ser::Writer &w) const
    {
        w.tag("GLDN");
        w.u64(expected_.size());
        for (const auto e : expected_)
            w.u64(e);
        w.u64(granted_);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("GLDN");
        const auto n = r.u64();
        fatal_if(n != expected_.size(), "checkpoint: golden checker has ",
                 n, " queues, configured ", expected_.size());
        for (auto &e : expected_)
            e = r.u64();
        granted_ = r.u64();
    }

  private:
    std::vector<SeqNum> expected_;
    std::uint64_t granted_ = 0;
};

} // namespace pktbuf::sim

#endif // PKTBUF_SIM_GOLDEN_HH
