#include "runner.hh"

#include "buffer/hybrid_buffer.hh"

namespace pktbuf::sim
{

SimRunner::SimRunner(buffer::PacketBuffer &buf, Workload &wl,
                     bool check)
    : buf_(buf), hb_(dynamic_cast<buffer::HybridBuffer *>(&buf)),
      wl_(wl), check_(check), checker_(wl.queues())
{}

template <typename Buffer>
void
SimRunner::runLoop(std::uint64_t slots, Buffer &buf)
{
    // Concrete admission probe: with Buffer = HybridBuffer (final)
    // both this call and step() devirtualize and inline.
    const auto admit = [&buf](QueueId q) { return buf.wouldAdmit(q); };
    for (std::uint64_t i = 0; i < slots; ++i) {
        const Stimulus s = wl_.step(buf.now(), admit);
        if (s.arrival)
            ++arrivals_;
        const auto grant = buf.step(s.arrival, s.request);
        if (grant) {
            if (check_)
                checker_.onGrant(grant->logicalQueue, grant->cell);
            ++grants_;
            delay_.sample(static_cast<double>(buf.now() - 1 -
                                              grant->cell.arrival));
        }
        ++slots_;
    }
}

RunResult
SimRunner::run(std::uint64_t slots)
{
    if (hb_)
        runLoop(slots, *hb_);
    else
        runLoop(slots, buf_);
    RunResult r;
    r.slots = slots_;
    r.arrivals = arrivals_;
    r.grants = grants_;
    r.drops = wl_.drops();
    r.meanDelaySlots = delay_.mean();
    r.maxDelaySlots = delay_.max();
    return r;
}

void
SimRunner::save(ser::Writer &w) const
{
    w.tag("SRUN");
    checker_.save(w);
    delay_.save(w);
    w.u64(arrivals_);
    w.u64(grants_);
    w.u64(slots_);
}

void
SimRunner::load(ser::Reader &r)
{
    r.tag("SRUN");
    checker_.load(r);
    delay_.load(r);
    arrivals_ = r.u64();
    grants_ = r.u64();
    slots_ = r.u64();
}

std::uint64_t
SimRunner::drain(std::uint64_t max_slots)
{
    std::uint64_t drained = 0;
    std::uint64_t idle = 0;
    const std::uint64_t idle_limit = buf_.pipelineDepth() + 4 *
        static_cast<std::uint64_t>(buf_.config().params.granRads) + 8;
    QueueId next = 0;
    for (std::uint64_t i = 0; i < max_slots; ++i) {
        QueueId req = kInvalidQueue;
        for (unsigned k = 0; k < wl_.queues(); ++k) {
            const QueueId q = (next + k) % wl_.queues();
            if (wl_.credit(q) > 0) {
                req = q;
                next = (q + 1) % wl_.queues();
                break;
            }
        }
        if (req != kInvalidQueue)
            wl_.consumeCredit(req);
        const auto grant = buf_.step(std::nullopt, req);
        if (grant) {
            if (check_)
                checker_.onGrant(grant->logicalQueue, grant->cell);
            ++grants_;
            ++drained;
            idle = 0;
        } else if (req == kInvalidQueue) {
            if (++idle > idle_limit)
                break;
        }
        ++slots_;
    }
    return drained;
}

} // namespace pktbuf::sim
