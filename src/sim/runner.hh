/**
 * @file
 * SimRunner: drives a PacketBuffer with a Workload for a number of
 * slots, applying ingress admission control and verifying every
 * grant against the golden FIFO model.
 */

#ifndef PKTBUF_SIM_RUNNER_HH
#define PKTBUF_SIM_RUNNER_HH

#include <cstdint>

#include "buffer/packet_buffer.hh"
#include "common/stats.hh"
#include "sim/golden.hh"
#include "sim/workload.hh"

namespace pktbuf::buffer
{
class HybridBuffer;
}

namespace pktbuf::sim
{

/** Aggregate outcome of a run. */
struct RunResult
{
    std::uint64_t slots = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t grants = 0;
    std::uint64_t drops = 0;
    double meanDelaySlots = 0.0;
    double maxDelaySlots = 0.0;
};

class SimRunner
{
  public:
    /**
     * @param check verify grants against the golden model (leave on
     *        except in throughput micro-benchmarks).
     */
    SimRunner(buffer::PacketBuffer &buf, Workload &wl,
              bool check = true);

    /**
     * Advance `slots` slots (cumulative across calls).  When the
     * buffer is the concrete HybridBuffer the loop runs through a
     * devirtualized instantiation (step, wouldAdmit and the workload
     * admission probe all inline); behavior is identical either way.
     */
    RunResult run(std::uint64_t slots);

    const GoldenChecker &checker() const { return checker_; }

    /** Drain: stop feeding arrivals, request every remaining cell
     *  round-robin until all credited cells are granted (or the slot
     *  budget runs out).  Returns grants delivered while draining. */
    std::uint64_t drain(std::uint64_t max_slots);

    /**
     * Checkpoint the runner's own accumulators (golden checker,
     * delay sampler, counters).  The buffer and workload are saved
     * separately by the soak layer; restoring pairs this state with
     * a runner constructed over the restored buffer/workload.
     */
    void save(ser::Writer &w) const;
    void load(ser::Reader &r);

  private:
    template <typename Buffer>
    void runLoop(std::uint64_t slots, Buffer &buf);

    buffer::PacketBuffer &buf_;  // ser: config
    /** Non-null when buf_ is the concrete HybridBuffer; selects the
     *  devirtualized loop instantiation. */
    buffer::HybridBuffer *hb_;  // ser: config
    Workload &wl_;  // ser: config
    bool check_;  // ser: config
    GoldenChecker checker_;
    Sampler delay_;
    std::uint64_t arrivals_ = 0;
    std::uint64_t grants_ = 0;
    std::uint64_t slots_ = 0;
};

} // namespace pktbuf::sim

#endif // PKTBUF_SIM_RUNNER_HH
