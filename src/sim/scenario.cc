#include "scenario.hh"

#include <exception>
#include <sstream>

#include "buffer/hybrid_buffer.hh"
#include "common/logging.hh"

namespace pktbuf::sim
{

std::string
toString(BufferVariant v)
{
    switch (v) {
      case BufferVariant::Rads:
        return "rads";
      case BufferVariant::Cfds:
        return "cfds";
      case BufferVariant::CfdsRenaming:
        return "renaming";
    }
    return "?";
}

std::string
toString(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::Adversarial:
        return "adversarial";
      case WorkloadKind::Bernoulli:
        return "bernoulli";
      case WorkloadKind::Bursty:
        return "bursty";
      case WorkloadKind::DrainPermutation:
        return "drainperm";
    }
    return "?";
}

std::string
Scenario::name() const
{
    std::ostringstream os;
    os << toString(variant) << "_"
       << (workloadTag.empty() ? toString(workload) : workloadTag)
       << "_q" << queues << "_B" << granRads << "_b"
       << (variant == BufferVariant::Rads ? granRads : gran);
    if (physQueues && physQueues != queues)
        os << "_p" << physQueues;
    if (!timingTag.empty())
        os << "_" << timingTag;
    return os.str();
}

std::string
Scenario::describe() const
{
    std::ostringstream os;
    os << name() << " groups=" << groups << " dram="
       << (dramCells ? std::to_string(dramCells) : "unbounded")
       << " load=" << load << " slots=" << slots << " seed=" << seed;
    if (rrSlack)
        os << " rr_slack=" << rrSlack;
    if (!timing.isUniform())
        os << " timing=[" << timing.describe(granRads) << "]";
    return os.str();
}

buffer::BufferConfig
Scenario::bufferConfig() const
{
    buffer::BufferConfig cfg;
    const unsigned phys = physQueues ? physQueues : queues;
    const unsigned b = variant == BufferVariant::Rads ? granRads : gran;
    const unsigned banks_per_group = granRads / (b ? b : 1);
    cfg.params = model::BufferParams{phys, granRads, b,
                                     groups * banks_per_group};
    cfg.dramCells = dramCells;
    cfg.rrSlack = rrSlack;
    cfg.timing = timing;
    cfg.eventCore = eventEngine;
    if (variant == BufferVariant::CfdsRenaming) {
        cfg.logicalQueues = queues;
        cfg.renaming = true;
    }
    return cfg;
}

std::unique_ptr<Workload>
makeWorkload(const Scenario &s)
{
    // Requests start only after the buffer has had a chance to fill:
    // long enough for any grid in the matrix, short enough that every
    // leg spends nearly all its slots in steady state.
    constexpr std::uint64_t kWarmup = 64;
    switch (s.workload) {
      case WorkloadKind::Adversarial:
        return std::make_unique<RoundRobinWorstCase>(
            s.queues, s.seed, s.load, kWarmup);
      case WorkloadKind::Bernoulli:
        return std::make_unique<UniformRandom>(s.queues, s.seed,
                                               s.load,
                                               s.unbiasedRequests);
      case WorkloadKind::Bursty:
        return std::make_unique<BurstyOnOff>(s.queues, s.seed,
                                             /*burst_len=*/64, s.load,
                                             s.unbiasedRequests);
      case WorkloadKind::DrainPermutation:
        return std::make_unique<PermutedDrain>(s.queues, s.seed,
                                               kWarmup, s.load);
    }
    panic("unknown workload kind");
}

ScenarioOutcome
runScenario(const Scenario &s)
{
    std::unique_ptr<Workload> wl;
    try {
        wl = makeWorkload(s);
    } catch (const std::exception &e) {
        ScenarioOutcome out;
        out.failure = std::string("exception: ") + e.what() + "; [" +
                      s.describe() + "]";
        return out;
    }
    return runScenarioWith(s, *wl);
}

void
completeScenario(const Scenario &s, buffer::HybridBuffer &buf,
                 SimRunner &runner, Workload &wl,
                 ScenarioOutcome &out, std::string &why)
{
    std::ostringstream os;

    std::uint64_t credits = 0;
    for (QueueId q = 0; q < wl.queues(); ++q)
        credits += wl.credit(q);
    // Steady-state drain delivers ~1 cell/slot; the budget leaves
    // generous slack for pipeline refill and bank conflicts.
    const std::uint64_t budget =
        8 * credits + 16 * buf.pipelineDepth() +
        64ull * s.granRads + 4096;
    out.drained = runner.drain(budget);

    out.verified = runner.checker().granted();
    out.report = buf.report();
    for (QueueId q = 0; q < wl.queues(); ++q)
        out.undelivered += wl.credit(q);

    if (out.verified != out.run.grants + out.drained) {
        os << "golden checker saw " << out.verified
           << " grants, runner counted "
           << out.run.grants + out.drained << "; ";
    }
    if (out.undelivered != 0) {
        os << out.undelivered
           << " cells arrived but were never granted; ";
    }
    if (out.verified != out.run.arrivals) {
        os << "delivered " << out.verified << " of "
           << out.run.arrivals << " admitted arrivals; ";
    }
    if (out.verified == 0)
        os << "leg delivered no cells at all; ";

    why += os.str();
}

ScenarioOutcome
runScenarioWith(const Scenario &s, Workload &wl)
{
    ScenarioOutcome out;
    std::string why;
    try {
        buffer::HybridBuffer buf(s.bufferConfig());
        SimRunner runner(buf, wl, /*check=*/true);
        out.run = runner.run(s.slots);
        completeScenario(s, buf, runner, wl, out, why);
    } catch (const std::exception &e) {
        why += std::string("exception: ") + e.what() + "; ";
    }

    out.passed = why.empty();
    if (!out.passed) {
        // Always name the scenario and seed so the leg can be
        // replayed from the log alone.
        out.failure = why + "[" + s.describe() + "]";
    }
    return out;
}

namespace
{

/** One (Q, B, b, G) point of a variant's grid. */
struct Grid
{
    unsigned queues;
    unsigned granRads;
    unsigned gran;
    unsigned groups;
};

constexpr WorkloadKind kAllWorkloads[] = {
    WorkloadKind::Adversarial,
    WorkloadKind::Bernoulli,
    WorkloadKind::Bursty,
    WorkloadKind::DrainPermutation,
};

Scenario
makeLeg(BufferVariant v, WorkloadKind w, const Grid &g,
        std::uint64_t slots)
{
    Scenario s;
    s.variant = v;
    s.workload = w;
    s.queues = g.queues;
    s.granRads = g.granRads;
    s.gran = g.gran;
    s.groups = g.groups;
    s.slots = slots;
    // Bernoulli and bursty legs back off from full load so random
    // request droughts cannot starve the drain budget.
    if (w == WorkloadKind::Bernoulli)
        s.load = 0.9;
    // Distinct deterministic seed per leg: identical runs replay
    // bit-for-bit, different legs decorrelate.
    s.seed = 1000 + 101 * static_cast<std::uint64_t>(v) +
             11 * static_cast<std::uint64_t>(w) + g.queues +
             8191ull * g.gran + 131071ull * g.granRads;
    if (v == BufferVariant::CfdsRenaming) {
        // Fewer logical than physical queues and a DRAM tight enough
        // that a group's share (dram/G) is smaller than one queue's
        // achievable backlog: renaming chains must actually form,
        // not merely be enabled (the whole point of Section 6).
        s.physQueues = g.queues;
        s.queues = g.queues / 2;
        s.dramCells = 1ull * g.queues * g.granRads;
    }
    return s;
}

std::vector<Scenario>
buildMatrix(std::uint64_t slots, bool full)
{
    // Per-variant grids: the granularity axis sweeps b (and, for
    // RADS, B itself); the queue axis sweeps Q.
    const std::vector<Grid> rads_full = {
        {4, 8, 8, 1}, {8, 8, 8, 1}, {8, 16, 16, 1}};
    const std::vector<Grid> cfds_full = {
        {4, 8, 1, 4}, {8, 8, 2, 4}, {8, 8, 4, 2}, {16, 8, 2, 8}};
    const std::vector<Grid> ren_full = {
        {8, 8, 2, 4}, {8, 8, 4, 2}, {16, 8, 2, 8}};

    const std::vector<Grid> rads_smoke = {{8, 8, 8, 1}};
    const std::vector<Grid> cfds_smoke = {{8, 8, 2, 4}};
    const std::vector<Grid> ren_smoke = {{8, 8, 2, 4}};

    std::vector<Scenario> m;
    const auto add = [&](BufferVariant v, const std::vector<Grid> &gs) {
        for (const auto w : kAllWorkloads)
            for (const auto &g : gs)
                m.push_back(makeLeg(v, w, g, slots));
    };
    add(BufferVariant::Rads, full ? rads_full : rads_smoke);
    add(BufferVariant::Cfds, full ? cfds_full : cfds_smoke);
    add(BufferVariant::CfdsRenaming, full ? ren_full : ren_smoke);
    return m;
}

/**
 * One timed-DRAM adversary family: a timing config crafted to
 * provoke one stall cause, plus the load the line can sustain once
 * that cause steals DRAM bandwidth (refresh blackouts and
 * turnaround bubbles are *lost* launch opportunities, so these legs
 * must run below full load -- full load would grow the backlog
 * without bound, exactly the capacity argument of Section 5).
 */
struct TimingFamily
{
    const char *tag;
    dram::TimingConfig timing;
    double load;
    unsigned queues;
    unsigned gran;    //!< b
    unsigned groups;  //!< G
};

std::vector<TimingFamily>
timingFamilies()
{
    std::vector<TimingFamily> fams;
    {
        // Refresh storm: every 128 slots a 16-slot blackout locks a
        // rotating 2-bank window -- 1/8 of the time, 1/8 of the
        // banks.
        dram::TimingConfig t;
        t.tRefi = 128;
        t.tRfc = 16;
        t.refreshBanks = 2;
        fams.push_back({"refresh", t, 0.8, 8, 2, 4});
    }
    {
        // Turnaround thrash: a 2-slot read<->write switch penalty on
        // a 2-group system; the combined RR alternates directions
        // every interval, so roughly half the launch opportunities
        // evaporate -- the legs run at under half load.
        dram::TimingConfig t;
        t.turnaround = 2;
        fams.push_back({"turnaround", t, 0.45, 8, 4, 2});
    }
    {
        // Asymmetric bank groups: groups 1-3 are slower than B
        // (t_RC 12/16/12 vs 8), so queues living there replenish at
        // a fraction of line rate and the DSA sees bank-busy stalls
        // the uniform model never produces.
        dram::TimingConfig t;
        t.groupTRc = {8, 12, 16, 12};
        fams.push_back({"asym", t, 0.5, 8, 2, 4});
    }
    {
        // Full DDR: all three constraints at once, the worst case
        // the latency/RR slack budget must cover.
        dram::TimingConfig t;
        t.tRefi = 128;
        t.tRfc = 16;
        t.refreshBanks = 2;
        t.turnaround = 1;
        t.groupTRc = {8, 12, 16, 12};
        fams.push_back({"ddr", t, 0.35, 8, 2, 4});
    }
    return fams;
}

std::vector<Scenario>
buildTimingMatrix(std::uint64_t slots, bool full)
{
    // Each family runs an adversarial and a randomized leg; the
    // randomized legs use the unbiased uniform request picker (the
    // legacy biased scan stays confined to the legacy legs).
    const std::vector<WorkloadKind> wls =
        full ? std::vector<WorkloadKind>{WorkloadKind::Adversarial,
                                         WorkloadKind::Bernoulli}
             : std::vector<WorkloadKind>{WorkloadKind::Bernoulli};
    std::vector<Scenario> m;
    unsigned fam_idx = 0;
    for (const auto &fam : timingFamilies()) {
        for (const auto w : wls) {
            Scenario s;
            s.variant = BufferVariant::Cfds;
            s.workload = w;
            s.queues = fam.queues;
            s.granRads = 8;
            s.gran = fam.gran;
            s.groups = fam.groups;
            s.load = fam.load;
            s.slots = slots;
            s.timing = fam.timing;
            s.timingTag = fam.tag;
            s.unbiasedRequests = true;
            s.seed = 7000 + 101 * fam_idx +
                     11 * static_cast<std::uint64_t>(w) +
                     8191ull * fam.gran;
            m.push_back(s);
        }
        ++fam_idx;
    }
    return m;
}

} // namespace

std::vector<Scenario>
defaultMatrix()
{
    return buildMatrix(/*slots=*/20000, /*full=*/true);
}

std::vector<Scenario>
smokeMatrix()
{
    return buildMatrix(/*slots=*/4000, /*full=*/false);
}

std::vector<Scenario>
timingMatrix()
{
    return buildTimingMatrix(/*slots=*/20000, /*full=*/true);
}

std::vector<Scenario>
timingSmokeMatrix()
{
    return buildTimingMatrix(/*slots=*/4000, /*full=*/false);
}

} // namespace pktbuf::sim
