/**
 * @file
 * Scenario-matrix differential harness: a table-driven sweep of
 * buffer variant (RADS / CFDS / CFDS+renaming) x workload
 * (adversarial, bernoulli, bursty, drain-order permutations) x
 * granularity b x queue count.  Every leg runs with the golden FIFO
 * checker enabled, is drained to completion, and reports a
 * self-describing pass/fail outcome that always names the seed, so
 * any failure is reproducible from the log alone.
 *
 * The matrix is the regression backbone for later scaling and
 * performance PRs: a change to any layer (MMA, DSS, DRAM, renaming)
 * must keep every leg green.  It is exposed both as a parameterized
 * gtest (tests/test_scenario_matrix.cc) and as a CLI
 * (examples/scenario_matrix.cpp) with a --smoke mode for CI.
 */

#ifndef PKTBUF_SIM_SCENARIO_HH
#define PKTBUF_SIM_SCENARIO_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "buffer/packet_buffer.hh"
#include "dram/timing.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

namespace pktbuf::buffer
{
class HybridBuffer;
} // namespace pktbuf::buffer

namespace pktbuf::sim
{

/** Which architecture of the paper a leg exercises. */
enum class BufferVariant
{
    Rads,          //!< Section 3: b == B, one serialized DRAM
    Cfds,          //!< Section 5: b < B, banked, DSS-scheduled
    CfdsRenaming,  //!< Section 6: CFDS plus queue renaming
};

/** Which traffic/drain pattern a leg exercises. */
enum class WorkloadKind
{
    Adversarial,       //!< round-robin worst case at full load
    Bernoulli,         //!< uniform random arrivals and requests
    Bursty,            //!< on/off bursts on hot queues
    DrainPermutation,  //!< whole-queue drains in seeded random order
};

/** @return the lower-case leg-name token ("rads", "cfds", ...). */
std::string toString(BufferVariant v);
/** @return the lower-case leg-name token ("adversarial", ...). */
std::string toString(WorkloadKind k);

/** One leg of the matrix. */
struct Scenario
{
    BufferVariant variant = BufferVariant::Rads;
    WorkloadKind workload = WorkloadKind::Adversarial;

    /** Logical queues the workload drives. */
    unsigned queues = 8;
    /** Physical queues; 0 = same as `queues` (renaming uses more). */
    unsigned physQueues = 0;
    unsigned granRads = 8;  //!< B (slots per random access)
    unsigned gran = 8;      //!< b; forced to B for RADS
    /** Bank groups G; total banks M = G * (B/b).  1 for RADS. */
    unsigned groups = 1;
    /** DRAM capacity in cells; 0 = unbounded.  Renaming legs bound
     *  it so chains actually form. */
    std::uint64_t dramCells = 0;
    /**
     * Extra Requests Register entries above the Eq. (1) formula
     * (buffer::BufferConfig::rrSlack).  The formula assumes
     * randomized request patterns; legs whose requests are driven by
     * a work-conserving arbiter (the crossbar layer's VOQs, drained
     * in consecutive same-queue runs) declare the service
     * concentration here.  0 -- every legacy leg -- is bit-identical
     * to before the knob existed.
     */
    std::uint64_t rrSlack = 0;
    double load = 1.0;
    std::uint64_t seed = 1;
    std::uint64_t slots = 20000;

    /** DDR timing model; the uniform default keeps every legacy leg
     *  bit-identical.  Non-uniform configs are CFDS-only. */
    dram::TimingConfig timing;
    /** Name token for a non-uniform timing family ("refresh", ...);
     *  appended to name() so timing legs stay uniquely addressable. */
    std::string timingTag;
    /**
     * Override token for name()/describe() when the leg runs a
     * caller-supplied workload (runScenarioWith) that no
     * WorkloadKind names -- e.g. the switch layer's permutation
     * stripes ("subsetrr_o3_w4").  Empty (the default) keeps
     * toString(workload), so every legacy leg name is unchanged.
     * Purely cosmetic: failure logs and --list must describe the
     * workload that actually ran, or the repo's replay-from-log
     * convention breaks.
     */
    std::string workloadTag;
    /** Drive request selection through the genuinely uniform picker
     *  (Workload::uniformRequestable) instead of the legacy biased
     *  scan; only the timing legs opt in, so legacy outputs are
     *  unchanged. */
    bool unbiasedRequests = false;
    /**
     * Execution engine (buffer::BufferConfig::eventCore): true runs
     * the event-calendar core, false the reference per-slot loop.
     * An execution strategy, not part of the experiment, so it is
     * deliberately absent from name() and describe(): sweep records
     * and checkpoint fingerprints must stay engine-agnostic -- the
     * differential oracle (tests/test_event_core.cc) and the
     * byte-identity of the committed sweep baselines depend on it.
     */
    bool eventEngine = false;

    /**
     * Unique, gtest-name-safe identifier of the leg
     * (e.g. "cfds_bursty_q8_B8_b2").
     * @return the identifier; stable across runs and platforms.
     */
    std::string name() const;
    /**
     * Human-readable one-liner for logs and failure messages.
     * @return name() plus groups/DRAM/load/slots and -- always --
     *         the seed, so the leg can be replayed from a log line.
     */
    std::string describe() const;
    /** @return the resolved buffer configuration for this leg. */
    buffer::BufferConfig bufferConfig() const;
};

/** Outcome of one leg. */
struct ScenarioOutcome
{
    RunResult run{};
    std::uint64_t drained = 0;      //!< grants during the drain phase
    std::uint64_t verified = 0;     //!< grants golden-checked
    std::uint64_t undelivered = 0;  //!< credits left after drain
    /** The buffer's own counters (renames, DRAM traffic, ...). */
    buffer::BufferReport report{};
    bool passed = false;
    /** Diagnosis on failure; includes Scenario::describe() (seed). */
    std::string failure;
};

/**
 * Instantiate the workload a scenario asks for.
 * @param s the leg; its kind, queue count, seed and load are used
 * @return a freshly seeded generator (all randomness derives from
 *         `s.seed`, so identical scenarios replay bit-for-bit)
 */
std::unique_ptr<Workload> makeWorkload(const Scenario &s);

/**
 * Run one leg end to end: build the buffer, drive it for
 * `s.slots` with the golden checker on, then drain every remaining
 * credited cell.  Never throws: panics and fatals become a failed
 * outcome whose message names the scenario and seed.
 *
 * Legs are self-contained (own buffer, workload, RNG), so any number
 * of them may run concurrently -- the sweep engine
 * (sweep/scenario_sweep.hh) relies on exactly this.
 *
 * @param s the leg to run
 * @return the outcome; `passed` is false iff any invariant broke,
 *         with `failure` carrying Scenario::describe() and the seed
 */
ScenarioOutcome runScenario(const Scenario &s);

/**
 * Run one leg against a caller-supplied workload: the same
 * build/run/drain/verify skeleton as runScenario(), but the workload
 * is injected instead of derived from `s.workload`.  The switch
 * layer (src/switch) drives every port through this entry so that a
 * port whose traffic happens to match a matrix leg (the 1-port
 * uniform switch) reproduces that leg bit-for-bit -- same code path,
 * same RNG stream, same drain budget.
 *
 * @param s  the leg; its buffer configuration, slot budget and
 *           describe() text are used (s.workload is NOT consulted)
 * @param wl the workload to drive with; must address s.queues queues
 * @return the outcome; `passed` is false iff any invariant broke
 */
ScenarioOutcome runScenarioWith(const Scenario &s, Workload &wl);

/**
 * Shared completion path for a leg whose main phase (`runner.run`)
 * has already happened: drain every remaining credited cell, verify
 * the golden totals and fill out.drained / verified / undelivered /
 * report.  Diagnostic text for any broken invariant is appended to
 * `why` (left empty iff the leg passed).  The soak layer's
 * checkpoint-segmented runs finish through this exact function so
 * their outcomes are bit-identical to an unbroken runScenarioWith().
 * May propagate exceptions (drain-phase panics); callers convert
 * them to failures the same way runScenarioWith() does.
 */
void completeScenario(const Scenario &s, buffer::HybridBuffer &buf,
                      SimRunner &runner, Workload &wl,
                      ScenarioOutcome &out, std::string &why);

/**
 * Full sweep: 3 variants x 4 workloads x several (Q, B, b) grids.
 * @return the legs in canonical order (the order of the committed
 *         BENCH_scenario_matrix.json baseline)
 */
std::vector<Scenario> defaultMatrix();

/**
 * Reduced sweep (fewer slots, one grid per cell) for CI smoke.
 * @return one leg per (variant, workload) cell
 */
std::vector<Scenario> smokeMatrix();

/**
 * The timed-DRAM adversarial sweep: refresh-storm, turnaround-thrash
 * and asymmetric-bank-group legs (plus a uniform control), each
 * golden-checked and drained like every other leg.  Kept separate
 * from defaultMatrix() so the legacy matrix output stays
 * byte-identical; run via `scenario_matrix --timing` or
 * `bench_timing_sweep`.
 * @return the legs in canonical order (the order of the committed
 *         BENCH_timing.json baseline)
 */
std::vector<Scenario> timingMatrix();

/** Reduced timing sweep (fewer slots, one leg per family) for CI. */
std::vector<Scenario> timingSmokeMatrix();

} // namespace pktbuf::sim

#endif // PKTBUF_SIM_SCENARIO_HH
