/**
 * @file
 * Workload generators: per-slot cell arrivals and per-slot arbiter
 * (switch-fabric scheduler) requests.
 *
 * A workload may request a cell of queue q at slot t only if that
 * cell has already arrived and has not been requested yet -- the
 * switch scheduler never asks for data that is not in the buffer.
 * The base class tracks per-queue "requestable" credit so concrete
 * patterns cannot violate this; the *order* in which queues are
 * drained is what distinguishes adversarial from benign patterns.
 */

#ifndef PKTBUF_SIM_WORKLOAD_HH
#define PKTBUF_SIM_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace pktbuf::sim
{

/** One slot's stimulus. */
struct Stimulus
{
    std::optional<Cell> arrival;      //!< at most one cell in
    QueueId request = kInvalidQueue;  //!< at most one request out
};

/**
 * Base workload: derived classes choose the arrival queue and the
 * request queue; this class stamps cells, enforces request validity
 * and tracks credits.
 */
class Workload
{
  public:
    Workload(unsigned queues, std::uint64_t seed)
        : queues_(queues), rng_(seed), credit_(queues, 0),
          next_seq_(queues, 0)
    {}

    virtual ~Workload() = default;

    /** Produce this slot's stimulus with every arrival admitted. */
    Stimulus
    step(Slot now)
    {
        return step(now, [](QueueId) { return true; });
    }

    /**
     * Produce this slot's stimulus.  If `admit` rejects the
     * arrival's queue, the cell is dropped *before* it exists
     * (counted in drops()) -- modeling ingress admission control /
     * loss.  The predicate is a template parameter so the per-slot
     * hot loops pay no std::function indirection.
     */
    template <typename AdmitFn>
    Stimulus
    step(Slot now, const AdmitFn &admit)
    {
        Stimulus s;
        const QueueId aq = arrivalQueue(now);
        if (aq != kInvalidQueue && !admit(aq)) {
            ++drops_;
        } else if (aq != kInvalidQueue) {
            Cell c;
            c.queue = aq;
            c.seq = next_seq_[aq]++;
            c.arrival = now;
            s.arrival = c;
            ++credit_[aq];
        }
        const QueueId rq = requestQueue(now);
        if (rq != kInvalidQueue) {
            panic_if(credit_[rq] == 0,
                     "workload requested unavailable cell, queue ", rq);
            --credit_[rq];
            s.request = rq;
        }
        return s;
    }

    unsigned queues() const { return queues_; }

    /** Cells arrived but not yet requested, per queue. */
    std::uint64_t credit(QueueId q) const { return credit_[q]; }

    /** Arrivals rejected by the admission predicate. */
    std::uint64_t drops() const { return drops_; }

    /**
     * Externally consume one credit of queue q (used by drain loops
     * that issue requests outside of step()).
     */
    void
    consumeCredit(QueueId q)
    {
        panic_if(credit_[q] == 0, "no credit on queue ", q);
        --credit_[q];
    }

    virtual std::string name() const = 0;

    /**
     * Checkpoint the generator state: RNG stream position, credits,
     * sequence stamps, drops, plus whatever cursors the concrete
     * pattern keeps (via saveExtra/loadExtra).  Restore requires a
     * workload constructed with the same parameters.
     */
    void
    save(ser::Writer &w) const
    {
        w.tag("WLOD");
        rng_.save(w);
        w.u64(credit_.size());
        for (const auto c : credit_)
            w.u64(c);
        for (const auto s : next_seq_)
            w.u64(s);
        w.u64(drops_);
        saveExtra(w);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("WLOD");
        rng_.load(r);
        const auto n = r.u64();
        fatal_if(n != credit_.size(), "checkpoint: workload has ", n,
                 " queues, configured ", credit_.size());
        for (auto &c : credit_)
            c = r.u64();
        for (auto &s : next_seq_)
            s = r.u64();
        drops_ = r.u64();
        loadExtra(r);
    }

  protected:
    /** Queue receiving a cell this slot, or kInvalidQueue. */
    virtual QueueId arrivalQueue(Slot now) = 0;
    /** Queue to request this slot (must have credit), or invalid. */
    virtual QueueId requestQueue(Slot now) = 0;

    /** Pattern-specific checkpoint state (cursors, burst windows). */
    virtual void saveExtra(ser::Writer &) const {}
    virtual void loadExtra(ser::Reader &) {}

    /** First queue with credit at or after `from`, cyclic. */
    QueueId
    nextRequestable(QueueId from) const
    {
        for (unsigned i = 0; i < queues_; ++i) {
            const QueueId q = (from + i) % queues_;
            if (credit_[q] > 0)
                return q;
        }
        return kInvalidQueue;
    }

    /**
     * Random queue with credit, or invalid if none -- the *legacy*
     * picker.  NOTE it is biased: it draws a random start and scans
     * forward cyclically, so queue q is chosen with probability
     * (1 + length of the credit-less run preceding q) / Q, not 1/Q.
     * Queues that follow long empty runs are over-selected.  The
     * path is kept because the legacy scenario legs' golden outputs
     * depend on its RNG stream; new work should use
     * uniformRequestable().
     */
    QueueId
    randomRequestable()
    {
        return nextRequestable(
            static_cast<QueueId>(rng_.below(queues_)));
    }

    /**
     * Genuinely uniform queue with credit, or invalid if none: the
     * k-th credited queue for k drawn uniformly from the credited
     * count (one RNG draw, two O(Q) scans).  Used by the timed-DRAM
     * scenario legs.
     */
    QueueId
    uniformRequestable()
    {
        unsigned credited = 0;
        for (QueueId q = 0; q < queues_; ++q)
            credited += credit_[q] > 0 ? 1 : 0;
        if (credited == 0)
            return kInvalidQueue;
        auto k = rng_.below(credited);
        for (QueueId q = 0; q < queues_; ++q) {
            if (credit_[q] > 0 && k-- == 0)
                return q;
        }
        panic("uniformRequestable scan overran the credited count");
    }

    unsigned queues_;  // ser: config
    Rng rng_;

  private:
    std::vector<std::uint64_t> credit_;
    std::vector<SeqNum> next_seq_;
    std::uint64_t drops_ = 0;
};

/**
 * The ECQF worst case (Section 3): arrivals fill queues round-robin;
 * the arbiter also drains queues round-robin, one cell per queue,
 * so all SRAM queues empty at about the same time.
 */
class RoundRobinWorstCase : public Workload
{
  public:
    RoundRobinWorstCase(unsigned queues, std::uint64_t seed,
                        double load = 1.0, std::uint64_t warmup = 0)
        : Workload(queues, seed), load_(load), warmup_(warmup)
    {}

    std::string name() const override { return "round-robin-worst"; }

  protected:
    QueueId
    arrivalQueue(Slot) override
    {
        if (load_ < 1.0 && !rng_.chance(load_))
            return kInvalidQueue;
        const QueueId q = arr_;
        arr_ = (arr_ + 1) % queues_;
        return q;
    }

    QueueId
    requestQueue(Slot now) override
    {
        if (now < warmup_)
            return kInvalidQueue;
        const QueueId q = nextRequestable(req_);
        if (q == kInvalidQueue)
            return q;
        req_ = (q + 1) % queues_;
        return q;
    }

    void
    saveExtra(ser::Writer &w) const override
    {
        w.u32(arr_);
        w.u32(req_);
    }

    void
    loadExtra(ser::Reader &r) override
    {
        arr_ = r.u32();
        req_ = r.u32();
    }

  private:
    double load_;  // ser: config
    std::uint64_t warmup_;  // ser: config
    QueueId arr_ = 0;
    QueueId req_ = 0;
};

/**
 * Uniform random arrivals and requests at a given load.
 * `unbiased_requests` selects the genuinely uniform request picker
 * (uniformRequestable); the default keeps the legacy biased scan so
 * existing legs replay bit-for-bit.
 */
class UniformRandom : public Workload
{
  public:
    UniformRandom(unsigned queues, std::uint64_t seed,
                  double load = 1.0, bool unbiased_requests = false)
        : Workload(queues, seed), load_(load),
          unbiased_(unbiased_requests)
    {}

    std::string name() const override { return "uniform-random"; }

  protected:
    QueueId
    arrivalQueue(Slot) override
    {
        if (!rng_.chance(load_))
            return kInvalidQueue;
        return static_cast<QueueId>(rng_.below(queues_));
    }

    QueueId
    requestQueue(Slot) override
    {
        if (!rng_.chance(load_))
            return kInvalidQueue;
        return unbiased_ ? uniformRequestable() : randomRequestable();
    }

  private:
    double load_;  // ser: config
    bool unbiased_;  // ser: config
};

/**
 * Bursty on/off traffic: a few "hot" queues receive long bursts; the
 * arbiter drains in random order.  Stresses the tail path and, with
 * renaming, group balancing.
 */
class BurstyOnOff : public Workload
{
  public:
    BurstyOnOff(unsigned queues, std::uint64_t seed,
                std::uint64_t burst_len = 256, double load = 1.0,
                bool unbiased_requests = false)
        : Workload(queues, seed), burst_len_(burst_len), load_(load),
          unbiased_(unbiased_requests)
    {}

    std::string name() const override { return "bursty-on-off"; }

  protected:
    QueueId
    arrivalQueue(Slot) override
    {
        if (!rng_.chance(load_))
            return kInvalidQueue;
        if (remaining_ == 0) {
            hot_ = static_cast<QueueId>(rng_.below(queues_));
            remaining_ = 1 + rng_.below(burst_len_);
        }
        --remaining_;
        return hot_;
    }

    QueueId
    requestQueue(Slot) override
    {
        if (!rng_.chance(load_))
            return kInvalidQueue;
        return unbiased_ ? uniformRequestable() : randomRequestable();
    }

    void
    saveExtra(ser::Writer &w) const override
    {
        w.u32(hot_);
        w.u64(remaining_);
    }

    void
    loadExtra(ser::Reader &r) override
    {
        hot_ = r.u32();
        remaining_ = r.u64();
    }

  private:
    std::uint64_t burst_len_;  // ser: config
    double load_;  // ser: config
    bool unbiased_;  // ser: config
    QueueId hot_ = 0;
    std::uint64_t remaining_ = 0;
};

/** All traffic on one queue: maximum pressure on a single group. */
class SingleQueue : public Workload
{
  public:
    SingleQueue(unsigned queues, std::uint64_t seed, QueueId target = 0,
                std::uint64_t lead = 0)
        : Workload(queues, seed), target_(target), lead_(lead)
    {}

    std::string name() const override { return "single-queue"; }

  protected:
    QueueId arrivalQueue(Slot) override { return target_; }

    QueueId
    requestQueue(Slot now) override
    {
        if (now < lead_ || credit(target_) == 0)
            return kInvalidQueue;
        return target_;
    }

  private:
    QueueId target_;       // ser: config
    std::uint64_t lead_;  // ser: config
};

/**
 * Arrivals round-robin over a configurable subset of queues (e.g.
 * all queues of one bank group) -- used by the fragmentation and
 * renaming experiments.
 */
class SubsetRoundRobin : public Workload
{
  public:
    /**
     * @param arrival_load probability of an arrival per slot.
     *        Boundary semantics are load-bearing for replay: at
     *        exactly 1.0 (the default) the arrival path consults the
     *        RNG *zero* times -- the `arrival_load_ < 1.0` guard
     *        short-circuits before chance() -- so legacy callers of
     *        the pre-arrival_load constructor keep bit-identical
     *        streams (their golden outputs depend on it; see
     *        tests/test_workload.cc SubsetRoundRobinArrivalLoad
     *        Boundaries).  Any value < 1.0, including 0.0, draws one
     *        Bernoulli per slot; 0.0 therefore produces no arrivals
     *        ever while still advancing the RNG.  The switch layer's
     *        permutation pattern runs its affinity stripes below
     *        full load.
     */
    SubsetRoundRobin(unsigned queues, std::uint64_t seed,
                     std::vector<QueueId> subset,
                     double request_load = 1.0,
                     double arrival_load = 1.0)
        : Workload(queues, seed), subset_(std::move(subset)),
          request_load_(request_load), arrival_load_(arrival_load)
    {
        panic_if(subset_.empty(), "empty subset");
    }

    std::string name() const override { return "subset-round-robin"; }

  protected:
    QueueId
    arrivalQueue(Slot) override
    {
        if (arrival_load_ < 1.0 && !rng_.chance(arrival_load_))
            return kInvalidQueue;
        const QueueId q = subset_[idx_];
        idx_ = (idx_ + 1) % subset_.size();
        return q;
    }

    QueueId
    requestQueue(Slot) override
    {
        if (!rng_.chance(request_load_))
            return kInvalidQueue;
        return randomRequestable();
    }

    void
    saveExtra(ser::Writer &w) const override
    {
        w.u64(idx_);
    }

    void
    loadExtra(ser::Reader &r) override
    {
        idx_ = r.u64();
        fatal_if(idx_ >= subset_.size(),
                 "checkpoint: subset cursor out of range");
    }

  private:
    std::vector<QueueId> subset_;  // ser: config
    double request_load_;  // ser: config
    double arrival_load_;  // ser: config
    std::size_t idx_ = 0;
};

/**
 * Drain-order permutation: arrivals round-robin over all queues; the
 * arbiter empties queues one at a time, whole queue by whole queue,
 * in a seeded random permutation order (a fresh permutation per
 * pass).  Whole-queue drains stress the head MMA differently from
 * cell-interleaved patterns: one queue's head SRAM empties at line
 * rate while every other queue keeps accumulating.
 */
class PermutedDrain : public Workload
{
  public:
    PermutedDrain(unsigned queues, std::uint64_t seed,
                  std::uint64_t warmup = 0, double load = 1.0)
        : Workload(queues, seed), warmup_(warmup), load_(load),
          perm_(queues)
    {
        for (unsigned i = 0; i < queues; ++i)
            perm_[i] = i;
        reshuffle();
    }

    std::string name() const override { return "permuted-drain"; }

  protected:
    QueueId
    arrivalQueue(Slot) override
    {
        if (load_ < 1.0 && !rng_.chance(load_))
            return kInvalidQueue;
        const QueueId q = arr_;
        arr_ = (arr_ + 1) % queues_;
        return q;
    }

    QueueId
    requestQueue(Slot now) override
    {
        if (now < warmup_)
            return kInvalidQueue;
        // Finish the current pass, then scan one full fresh pass.
        // The second scan covers the new permutation end to end, so
        // a credited queue can never be missed by the reshuffle
        // moving it behind the scan position.
        for (int pass = 0; pass < 2; ++pass) {
            while (pos_ < queues_) {
                const QueueId q = perm_[pos_];
                if (credit(q) > 0)
                    return q;
                ++pos_;
            }
            pos_ = 0;
            if (pass == 0)
                reshuffle();
        }
        return kInvalidQueue;
    }

    void
    saveExtra(ser::Writer &w) const override
    {
        for (const auto q : perm_)
            w.u32(q);
        w.u32(pos_);
        w.u32(arr_);
    }

    void
    loadExtra(ser::Reader &r) override
    {
        for (auto &q : perm_)
            q = r.u32();
        pos_ = r.u32();
        arr_ = r.u32();
        fatal_if(pos_ > queues_ || arr_ >= queues_,
                 "checkpoint: permuted-drain cursor out of range");
    }

  private:
    void
    reshuffle()
    {
        // Fisher-Yates with the workload's own deterministic RNG.
        for (unsigned i = queues_ - 1; i > 0; --i) {
            const auto j = static_cast<unsigned>(rng_.below(i + 1));
            std::swap(perm_[i], perm_[j]);
        }
    }

    std::uint64_t warmup_;  // ser: config
    double load_;  // ser: config
    std::vector<QueueId> perm_;
    unsigned pos_ = 0;
    QueueId arr_ = 0;
};

/** Replay of an explicit per-slot trace (used by unit tests). */
class TraceReplay : public Workload
{
  public:
    struct Entry
    {
        QueueId arrival = kInvalidQueue;
        QueueId request = kInvalidQueue;
    };

    /**
     * @param seed RNG seed; a trace replay never draws randomness,
     *        but the base class owns an RNG and the PR-1 rule is
     *        that *every* user names its seed, so callers state one
     *        explicitly instead of inheriting a silent constant.
     */
    TraceReplay(unsigned queues, std::vector<Entry> trace,
                std::uint64_t seed)
        : Workload(queues, seed), trace_(std::move(trace))
    {}

    std::string name() const override { return "trace-replay"; }

  protected:
    QueueId
    arrivalQueue(Slot now) override
    {
        return now < trace_.size() ? trace_[now].arrival
                                   : kInvalidQueue;
    }

    QueueId
    requestQueue(Slot now) override
    {
        return now < trace_.size() ? trace_[now].request
                                   : kInvalidQueue;
    }

  private:
    std::vector<Entry> trace_;  // ser: config
};

} // namespace pktbuf::sim

#endif // PKTBUF_SIM_WORKLOAD_HH
