#include "checkpoint.hh"

#include <exception>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace pktbuf::soak
{

std::string
sealCheckpoint(const std::string &payload,
               std::uint64_t config_fingerprint)
{
    ser::Writer w;
    w.tag("PKCK");
    w.u32(kCheckpointVersion);
    w.u64(config_fingerprint);
    w.str(payload);
    w.u64(ser::fnv1a(payload));
    return w.take();
}

std::string
openCheckpoint(const std::string &bytes,
               std::uint64_t config_fingerprint)
{
    ser::Reader r(bytes);
    r.tag("PKCK");
    const auto version = r.u32();
    fatal_if(version != kCheckpointVersion, "checkpoint: version ",
             version, " not supported (this build reads ",
             kCheckpointVersion, ")");
    const auto fp = r.u64();
    fatal_if(fp != config_fingerprint,
             "checkpoint: built for a different configuration "
             "(fingerprint ", fp, ", this leg is ",
             config_fingerprint, ")");
    std::string payload = r.str();
    const auto sum = r.u64();
    fatal_if(sum != ser::fnv1a(payload),
             "checkpoint: payload checksum mismatch (corrupt file?)");
    r.done();
    return payload;
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    fatal_if(!f, "cannot open ", path, " for writing");
    f.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size()));
    f.flush();
    fatal_if(!f, "short write to ", path);
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    fatal_if(!f, "cannot open ", path);
    std::ostringstream os;
    os << f.rdbuf();
    fatal_if(f.bad(), "read error on ", path);
    return os.str();
}

ScenarioRun::ScenarioRun(const sim::Scenario &s, WorkloadFactory factory)
    : s_(s), fingerprint_(ser::fnv1a(s.describe())),
      wl_(factory ? factory() : sim::makeWorkload(s)),
      buf_(std::make_unique<buffer::HybridBuffer>(s.bufferConfig())),
      runner_(std::make_unique<sim::SimRunner>(*buf_, *wl_,
                                               /*check=*/true))
{}

void
ScenarioRun::runTo(std::uint64_t slot)
{
    fatal_if(slot < executed_,
             "scenario run cannot run backwards to slot ", slot,
             " (already at ", executed_, ")");
    fatal_if(slot > s_.slots, "slot ", slot,
             " beyond the leg's main phase (", s_.slots, " slots)");
    last_ = runner_->run(slot - executed_);
    executed_ = slot;
}

std::string
ScenarioRun::checkpoint() const
{
    ser::Writer w;
    w.tag("SOAK");
    w.u64(executed_);
    buf_->save(w);
    wl_->save(w);
    runner_->save(w);
    return sealCheckpoint(w.bytes(), fingerprint_);
}

void
ScenarioRun::restore(const std::string &bytes)
{
    const std::string payload = openCheckpoint(bytes, fingerprint_);
    ser::Reader r(payload);
    r.tag("SOAK");
    executed_ = r.u64();
    fatal_if(executed_ > s_.slots, "checkpoint: executed slot count ",
             executed_, " beyond the leg's ", s_.slots, " slots");
    buf_->load(r);
    wl_->load(r);
    runner_->load(r);
    r.done();
}

sim::ScenarioOutcome
ScenarioRun::finish()
{
    sim::ScenarioOutcome out;
    std::string why;
    try {
        out.run = runner_->run(s_.slots - executed_);
        executed_ = s_.slots;
        sim::completeScenario(s_, *buf_, *runner_, *wl_, out, why);
    } catch (const std::exception &e) {
        why += std::string("exception: ") + e.what() + "; ";
    }
    out.passed = why.empty();
    if (!out.passed)
        out.failure = why + "[" + s_.describe() + "]";
    return out;
}

sim::ScenarioOutcome
runScenarioCheckpointed(const sim::Scenario &s, std::uint64_t every)
{
    try {
        auto run = std::make_unique<ScenarioRun>(s);
        if (every > 0) {
            for (std::uint64_t at = every; at < s.slots; at += every) {
                run->runTo(at);
                const std::string bytes = run->checkpoint();
                // Restore into entirely fresh objects: the same
                // rebuild a cross-process resume performs.
                run = std::make_unique<ScenarioRun>(s);
                run->restore(bytes);
            }
        }
        return run->finish();
    } catch (const std::exception &e) {
        sim::ScenarioOutcome out;
        out.failure = std::string("exception: ") + e.what() + "; [" +
                      s.describe() + "]";
        return out;
    }
}

} // namespace pktbuf::soak
