/**
 * @file
 * Soak layer: deterministic checkpoint/restore of a full simulation
 * leg, for long runs that must survive interruption and for
 * replaying failures from the slot they were saved at.
 *
 * The envelope is a versioned binary format:
 *
 *   "PKCK"            4-byte magic tag
 *   version           u32 (currently 1)
 *   config fingerprint u64 -- FNV-1a of Scenario::describe(), so a
 *                     checkpoint can only be restored into the same
 *                     leg (same grid, seed, slots, timing)
 *   payload           length-prefixed bytes (every layer's save())
 *   checksum          u64 -- FNV-1a of the payload bytes
 *
 * Any mismatch -- wrong magic, unknown version, foreign fingerprint,
 * short read, corrupt checksum, trailing bytes -- raises FatalError:
 * a malformed checkpoint is invalid input, not a simulator bug.
 *
 * The invariant the layer guarantees (and tests/test_soak.cc
 * enforces leg by leg): run-to-k + save + restore-into-fresh-objects
 * + run-to-N is bit-identical to an unbroken N-slot run -- same
 * statistics, same golden-checker totals, same emitted record bytes.
 */

#ifndef PKTBUF_SOAK_CHECKPOINT_HH
#define PKTBUF_SOAK_CHECKPOINT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/workload.hh"

namespace pktbuf::soak
{

/** Current envelope version; bumped on any layout change. */
inline constexpr std::uint32_t kCheckpointVersion = 1;

/**
 * Wrap a serialized payload in the versioned envelope.
 * @param payload the concatenated save() bytes of every layer
 * @param config_fingerprint FNV-1a of the owning leg's describe()
 * @return the envelope bytes, ready for writeFile()
 */
std::string sealCheckpoint(const std::string &payload,
                           std::uint64_t config_fingerprint);

/**
 * Validate an envelope and extract its payload.  FatalError on any
 * corruption or configuration mismatch (see file comment).
 */
std::string openCheckpoint(const std::string &bytes,
                           std::uint64_t config_fingerprint);

/** Write bytes to a file (binary, truncating); FatalError on I/O. */
void writeFile(const std::string &path, const std::string &bytes);

/** Read a whole file (binary); FatalError if unreadable. */
std::string readFile(const std::string &path);

/**
 * Builds the workload for a leg.  The default (empty) factory uses
 * sim::makeWorkload(scenario); the switch layer injects
 * makePortWorkload so port legs checkpoint through the same driver.
 */
using WorkloadFactory =
    std::function<std::unique_ptr<sim::Workload>()>;

/**
 * One checkpointable scenario leg: the buffer, workload and runner
 * of sim::runScenarioWith(), but with the main phase split so the
 * caller can stop at any slot, snapshot, and continue -- in this
 * process or another.
 *
 * Usage:
 *   ScenarioRun a(s);
 *   a.runTo(k);
 *   auto bytes = a.checkpoint();
 *   ...
 *   ScenarioRun b(s);          // fresh objects, same config
 *   b.restore(bytes);
 *   auto out = b.finish();     // == runScenario(s) bit for bit
 */
class ScenarioRun
{
  public:
    /**
     * Build the leg's buffer/workload/runner from its configuration.
     * @param s the leg; also the source of the config fingerprint
     * @param factory optional workload factory (see WorkloadFactory)
     */
    explicit ScenarioRun(const sim::Scenario &s,
                         WorkloadFactory factory = {});

    /** Advance the main phase to absolute slot `slot` (<= s.slots). */
    void runTo(std::uint64_t slot);

    /** Main-phase slots executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** Snapshot the full state into a sealed envelope. */
    std::string checkpoint() const;

    /**
     * Replace this run's state with a checkpoint's.  The envelope
     * must carry this leg's fingerprint; FatalError otherwise.
     */
    void restore(const std::string &bytes);

    /**
     * Run the remaining main-phase slots and complete the leg
     * through sim::completeScenario() -- the exact path
     * runScenarioWith() takes, so the outcome (and any record built
     * from it) is bit-identical to an unbroken run.
     */
    sim::ScenarioOutcome finish();

    const buffer::HybridBuffer &buffer() const { return *buf_; }
    const sim::Workload &workload() const { return *wl_; }

  private:
    sim::Scenario s_;
    std::uint64_t fingerprint_;
    std::unique_ptr<sim::Workload> wl_;
    std::unique_ptr<buffer::HybridBuffer> buf_;
    std::unique_ptr<sim::SimRunner> runner_;
    std::uint64_t executed_ = 0;
    sim::RunResult last_{};
};

/**
 * Run one leg end to end, checkpointing every `every` main-phase
 * slots and restoring each snapshot into a completely fresh
 * ScenarioRun before continuing -- the soak self-test.  With
 * `every` == 0 (or >= s.slots) this degenerates to a plain run.
 * Never throws; failures carry the scenario description and seed,
 * exactly like sim::runScenario().
 */
sim::ScenarioOutcome runScenarioCheckpointed(const sim::Scenario &s,
                                             std::uint64_t every);

} // namespace pktbuf::soak

#endif // PKTBUF_SOAK_CHECKPOINT_HH
