/**
 * @file
 * Functional model of the head SRAM (h-SRAM): the egress cache that
 * must always contain the cell the arbiter is about to be granted.
 *
 * CFDS refills can complete out of order (the DSA may launch a
 * younger request of the same queue first, Section 8.2), so blocks
 * are inserted keyed by the *replenish sequence number* assigned at
 * MMA issue time, and the reader always consumes the lowest
 * outstanding sequence.  A pop that does not find its cell is a
 * *miss* and panics -- the zero-miss guarantee is an invariant here,
 * not a statistic.
 */

#ifndef PKTBUF_SRAM_HEAD_SRAM_HH
#define PKTBUF_SRAM_HEAD_SRAM_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pktbuf::sram
{

class HeadSram
{
  public:
    /** @param capacity_cells 0 = unbounded (measurement mode). */
    HeadSram(unsigned phys_queues, std::uint64_t capacity_cells)
        : queues_(phys_queues), capacity_(capacity_cells)
    {}

    /**
     * Insert a replenished block.  `seq` is the per-queue replenish
     * sequence assigned when the MMA issued the request; blocks may
     * arrive out of order but are consumed in sequence.  The cell
     * vector is taken by value and moved into place: blocks flow
     * tail SRAM -> DRAM -> here without per-hop copies (this path
     * runs once per replenish and showed up in the simulator's
     * profile as deque construction churn).
     */
    void
    insertBlock(QueueId p, std::uint64_t seq, std::vector<Cell> cells)
    {
        auto &qq = q(p);
        panic_if(seq < qq.next_consume_seq,
                 "replenish seq ", seq, " for queue ", p,
                 " already consumed");
        panic_if(qq.blocks.count(seq),
                 "duplicate replenish seq ", seq, " on queue ", p);
        panic_if(cells.empty(), "empty replenish block");
        occupancy_ += cells.size();
        qq.blocks.emplace(seq, Block{std::move(cells), 0});
        high_water_.observe(static_cast<std::int64_t>(occupancy_));
        panic_if(capacity_ && occupancy_ > capacity_,
                 "h-SRAM overflow: ", occupancy_, " cells > capacity ",
                 capacity_, " -- dimensioning violated");
    }

    /**
     * Pop the next in-order cell of queue p.  Panics (a *miss*) if
     * the block holding it has not been refilled yet.
     */
    Cell
    pop(QueueId p)
    {
        auto &qq = q(p);
        auto it = qq.blocks.find(qq.next_consume_seq);
        panic_if(it == qq.blocks.end(),
                 "MISS: queue ", p, " has no cells for replenish seq ",
                 qq.next_consume_seq,
                 " in h-SRAM at grant time");
        Block &blk = it->second;
        Cell c = blk.cells[blk.consumed++];
        if (blk.consumed == blk.cells.size()) {
            qq.blocks.erase(it);
            ++qq.next_consume_seq;
        }
        panic_if(occupancy_ == 0, "h-SRAM occupancy accounting bug");
        --occupancy_;
        return c;
    }

    /** Would a pop on queue p miss right now? */
    bool
    wouldMiss(QueueId p) const
    {
        const auto &qq = q(p);
        return !qq.blocks.count(qq.next_consume_seq);
    }

    /** Physical cells of queue p currently in the SRAM. */
    std::uint64_t
    cellsOf(QueueId p) const
    {
        const auto &qq = q(p);
        std::uint64_t n = 0;
        for (const auto &[s, blk] : qq.blocks)
            n += blk.cells.size() - blk.consumed;
        return n;
    }

    std::uint64_t occupancy() const { return occupancy_; }
    std::int64_t highWater() const { return high_water_.max(); }
    std::uint64_t capacity() const { return capacity_; }

    /** Recycle a (drained) physical queue for renaming reuse. */
    void
    recycle(QueueId p)
    {
        auto &qq = q(p);
        panic_if(!qq.blocks.empty(), "recycling queue ", p,
                 " with cells still cached");
        qq.next_consume_seq = 0;
    }

    /** Checkpoint: every queue's block map and the occupancy. */
    void
    save(ser::Writer &w) const
    {
        w.tag("HSRM");
        w.u64(queues_.size());
        for (const auto &qq : queues_) {
            w.u64(qq.next_consume_seq);
            w.u64(qq.blocks.size());
            for (const auto &[seq, blk] : qq.blocks) {
                w.u64(seq);
                w.u64(blk.consumed);
                w.u64(blk.cells.size());
                for (const auto &c : blk.cells)
                    c.save(w);
            }
        }
        w.u64(occupancy_);
        high_water_.save(w);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("HSRM");
        const auto n = r.u64();
        fatal_if(n != queues_.size(), "checkpoint: h-SRAM has ", n,
                 " queues, configured ", queues_.size());
        for (auto &qq : queues_) {
            qq.next_consume_seq = r.u64();
            qq.blocks.clear();
            const auto nb = r.u64();
            for (std::uint64_t i = 0; i < nb; ++i) {
                const auto seq = r.u64();
                Block blk;
                blk.consumed = r.u64();
                const auto nc = r.u64();
                blk.cells.resize(nc);
                for (auto &c : blk.cells)
                    c.load(r);
                qq.blocks.emplace(seq, std::move(blk));
            }
        }
        occupancy_ = r.u64();
        high_water_.load(r);
    }

  private:
    /** A replenished block, consumed front to back in place. */
    struct Block
    {
        std::vector<Cell> cells;
        std::size_t consumed = 0;
    };

    struct QueueState
    {
        std::map<std::uint64_t, Block> blocks;
        std::uint64_t next_consume_seq = 0;
    };

    const QueueState &
    q(QueueId p) const
    {
        panic_if(p >= queues_.size(), "h-SRAM: queue ", p,
                 " out of range (const accessor)");
        return queues_[p];
    }

    QueueState &
    q(QueueId p)
    {
        panic_if(p >= queues_.size(), "h-SRAM: queue ", p,
                 " out of range");
        return queues_[p];
    }

    std::vector<QueueState> queues_;
    std::uint64_t capacity_;  // ser: config
    std::uint64_t occupancy_ = 0;
    HighWater high_water_;
};

} // namespace pktbuf::sram

#endif // PKTBUF_SRAM_HEAD_SRAM_HH
