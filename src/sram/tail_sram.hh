/**
 * @file
 * Functional model of the tail SRAM (t-SRAM): the ingress cache.
 * Arriving cells are appended per physical queue; the t-MMA claims
 * batches of b cells for transfer to DRAM (claimed cells wait for the
 * DSA to launch the write), and the head path may *bypass* unclaimed
 * cells directly into the h-SRAM when the queue has nothing resident
 * in DRAM.
 */

#ifndef PKTBUF_SRAM_TAIL_SRAM_HH
#define PKTBUF_SRAM_TAIL_SRAM_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pktbuf::sram
{

class TailSram
{
  public:
    /** @param capacity_cells 0 = unbounded (measurement mode). */
    TailSram(unsigned phys_queues, std::uint64_t capacity_cells)
        : queues_(phys_queues), capacity_(capacity_cells),
          elig_((phys_queues + 63) / 64, 0)
    {}

    /**
     * Arm the eligibility tracker: a queue is *eligible* while its
     * unclaimed cell count is at least `gran` (the t-MMA's write
     * threshold).  The bitmap turns the event engine's tail-MMA
     * round-robin and quiescence checks into O(1)/O(words) bit
     * scans.  0 (the default) disarms the tracker.
     */
    void
    setThreshold(unsigned gran)
    {
        threshold_ = gran;
        std::fill(elig_.begin(), elig_.end(), 0);
        eligible_ = 0;
        for (QueueId p = 0; p < queues_.size(); ++p)
            refreshEligible(p);
    }

    /** Queues currently at or above the write threshold. */
    std::size_t eligibleCount() const { return eligible_; }

    /**
     * First eligible queue at or cyclically after `from`, or
     * kInvalidQueue when none.  Requires an armed threshold.
     */
    QueueId
    nextEligible(QueueId from) const
    {
        if (eligible_ == 0)
            return kInvalidQueue;
        std::size_t w = from / 64;
        std::uint64_t word = elig_[w] & (~0ull << (from % 64));
        for (std::size_t i = 0; i <= elig_.size(); ++i) {
            if (word)
                return static_cast<QueueId>(
                    w * 64 + std::countr_zero(word));
            w = (w + 1) % elig_.size();
            word = elig_[w];
        }
        return kInvalidQueue;  // unreachable while eligible_ > 0
    }

    /** Cell arrival from the line. */
    void
    push(QueueId p, const Cell &cell)
    {
        auto &qq = q(p);
        qq.cells.push_back(cell);
        ++occupancy_;
        high_water_.observe(static_cast<std::int64_t>(occupancy_));
        panic_if(capacity_ && occupancy_ > capacity_,
                 "t-SRAM overflow: ", occupancy_, " cells > capacity ",
                 capacity_, " -- dimensioning violated");
        refreshEligible(p);
    }

    /** Cells of p not yet claimed by a pending DRAM write. */
    std::uint64_t
    unclaimed(QueueId p) const
    {
        const auto &qq = q(p);
        return qq.cells.size() - qq.claimed;
    }

    /** Total cells of p still in the t-SRAM (claimed or not). */
    std::uint64_t
    cellsOf(QueueId p) const
    {
        return q(p).cells.size();
    }

    /**
     * The t-MMA claims the oldest `gran` unclaimed cells of p for a
     * DRAM write.  They stay in the SRAM (and keep occupying space)
     * until extractClaimed() when the DSA launches the write.
     */
    void
    claim(QueueId p, unsigned gran)
    {
        auto &qq = q(p);
        panic_if(unclaimed(p) < gran, "claiming ", gran,
                 " cells of queue ", p, " with only ", unclaimed(p),
                 " unclaimed");
        qq.claimed += gran;
        refreshEligible(p);
    }

    /** Undo one pending claim (write squashed in favor of bypass). */
    void
    unclaim(QueueId p, unsigned gran)
    {
        auto &qq = q(p);
        panic_if(qq.claimed < gran, "unclaim underflow on queue ", p);
        qq.claimed -= gran;
        refreshEligible(p);
    }

    /** Remove the oldest `gran` (claimed) cells: the write launches. */
    std::vector<Cell>
    extractClaimed(QueueId p, unsigned gran)
    {
        auto &qq = q(p);
        panic_if(qq.claimed < gran, "extracting unclaimed cells");
        std::vector<Cell> out = take(qq, gran);
        qq.claimed -= gran;
        refreshEligible(p);
        return out;
    }

    /**
     * Bypass up to `max_cells` *unclaimed* oldest cells straight to
     * the head path.  Only legal when the queue has no cells in DRAM
     * and no claimed cells ahead (the caller enforces order).
     */
    std::vector<Cell>
    extractBypass(QueueId p, unsigned max_cells)
    {
        auto &qq = q(p);
        panic_if(qq.claimed != 0,
                 "bypass with ", qq.claimed,
                 " claimed cells ahead on queue ", p);
        const auto n = std::min<std::uint64_t>(max_cells,
                                               qq.cells.size());
        std::vector<Cell> out = take(qq, static_cast<unsigned>(n));
        refreshEligible(p);
        return out;
    }

    std::uint64_t occupancy() const { return occupancy_; }
    std::int64_t highWater() const { return high_water_.max(); }
    std::uint64_t capacity() const { return capacity_; }

    /** Recycle a drained physical queue (renaming reuse). */
    void
    recycle(QueueId p)
    {
        auto &qq = q(p);
        panic_if(!qq.cells.empty() || qq.claimed != 0,
                 "recycling non-empty tail queue ", p);
    }

    /** Checkpoint: every queue's cells + claim count, occupancy. */
    void
    save(ser::Writer &w) const
    {
        w.tag("TSRM");
        w.u64(queues_.size());
        for (const auto &qq : queues_) {
            w.u64(qq.claimed);
            w.u64(qq.cells.size());
            for (const auto &c : qq.cells)
                c.save(w);
        }
        w.u64(occupancy_);
        high_water_.save(w);
    }

    void
    load(ser::Reader &r)
    {
        r.tag("TSRM");
        const auto n = r.u64();
        fatal_if(n != queues_.size(), "checkpoint: t-SRAM has ", n,
                 " queues, configured ", queues_.size());
        for (auto &qq : queues_) {
            qq.claimed = r.u64();
            qq.cells.clear();
            const auto nc = r.u64();
            for (std::uint64_t i = 0; i < nc; ++i) {
                Cell c;
                c.load(r);
                qq.cells.push_back(c);
            }
        }
        occupancy_ = r.u64();
        high_water_.load(r);
        // Rebuild the derived eligibility view for the armed
        // threshold (a no-op while disarmed).
        setThreshold(threshold_);
    }

  private:
    struct QueueState
    {
        std::deque<Cell> cells;
        std::uint64_t claimed = 0;
    };

    /** Re-derive p's bit in the eligibility bitmap (O(1)). */
    void
    refreshEligible(QueueId p)
    {
        if (threshold_ == 0)
            return;
        const bool e = unclaimed(p) >= threshold_;
        std::uint64_t &word = elig_[p / 64];
        const std::uint64_t bit = 1ull << (p % 64);
        if (e == ((word & bit) != 0))
            return;
        word ^= bit;
        if (e)
            ++eligible_;
        else
            --eligible_;
    }

    std::vector<Cell>
    take(QueueState &qq, unsigned n)
    {
        std::vector<Cell> out;
        out.reserve(n);
        for (unsigned i = 0; i < n; ++i) {
            panic_if(qq.cells.empty(), "t-SRAM underflow");
            out.push_back(qq.cells.front());
            qq.cells.pop_front();
        }
        panic_if(occupancy_ < n, "t-SRAM occupancy accounting bug");
        occupancy_ -= n;
        return out;
    }

    const QueueState &
    q(QueueId p) const
    {
        panic_if(p >= queues_.size(), "t-SRAM: queue ", p,
                 " out of range (const accessor)");
        return queues_[p];
    }

    QueueState &
    q(QueueId p)
    {
        panic_if(p >= queues_.size(), "t-SRAM: queue ", p,
                 " out of range");
        return queues_[p];
    }

    std::vector<QueueState> queues_;
    std::uint64_t capacity_;  // ser: config
    std::uint64_t occupancy_ = 0;
    HighWater high_water_;
    /** Write threshold the eligibility bitmap is armed with. */
    unsigned threshold_ = 0;  // ser: config
    /** One bit per queue: unclaimed(p) >= threshold_. */
    std::vector<std::uint64_t> elig_;  // ser: derived
    std::size_t eligible_ = 0;  // ser: derived
};

} // namespace pktbuf::sram

#endif // PKTBUF_SRAM_TAIL_SRAM_HH
