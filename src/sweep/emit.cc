#include "emit.hh"

#include <cstdio>

#include "common/logging.hh"

namespace pktbuf::sweep
{

namespace
{

void
appendRow(std::string &out, const std::string &task,
          const Record &rec, const char *indent)
{
    out += indent;
    out += "{\"task\": ";
    out += Value(task).json();
    for (const auto &[k, v] : rec.fields()) {
        if (k == "task")
            continue;
        out += ", ";
        out += Value(k).json();
        out += ": ";
        out += v.json();
    }
    out += "}";
}

} // namespace

std::string
toJson(const SweepReport &rep, const std::vector<Task> &tasks,
       const EmitMeta &meta)
{
    panic_if(rep.results.size() != tasks.size(),
             "JSON emit: report/task list size mismatch");
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"pktbuf-sweep-v1\",\n";
    out += "  \"tool\": " + Value(meta.tool).json() + ",\n";
    out += "  \"meta\": {";
    bool first = true;
    for (const auto &[k, v] : meta.extra.fields()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + Value(k).json() + ": " + v.json();
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"failed\": " + std::to_string(rep.failed) + ",\n";
    out += "  \"results\": [";
    first = true;
    for (std::size_t i = 0; i < rep.results.size(); ++i) {
        const auto &r = rep.results[i];
        // A failed task's records still carry the diagnostic
        // counters its harness collected -- emit them, tagged, plus
        // the error itself (as its own row when there is no record
        // to attach it to).
        if (!r.ok && r.records.empty()) {
            Record err;
            err.set("ok", false).set("error", r.error);
            out += first ? "\n" : ",\n";
            first = false;
            appendRow(out, tasks[i].name, err, "    ");
            continue;
        }
        for (const auto &rec : r.records) {
            out += first ? "\n" : ",\n";
            first = false;
            if (r.ok) {
                appendRow(out, tasks[i].name, rec, "    ");
            } else {
                Record tagged = rec;
                tagged.set("ok", false).set("error", r.error);
                appendRow(out, tasks[i].name, tagged, "    ");
            }
        }
    }
    out += first ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::string
toCsv(const SweepReport &rep, const std::vector<Task> &tasks)
{
    panic_if(rep.results.size() != tasks.size(),
             "CSV emit: report/task list size mismatch");
    // Header: union of field names in first-seen order.  Every
    // record contributes -- including a failed task's diagnostic
    // records, which are emitted as rows below -- so columns and
    // rows always agree (no phantom always-empty columns).
    std::vector<std::string> cols;
    const auto ensure = [&](const std::string &k) {
        for (const auto &c : cols)
            if (c == k)
                return;
        cols.push_back(k);
    };
    for (const auto &r : rep.results)
        for (const auto &rec : r.records)
            for (const auto &[k, v] : rec.fields())
                if (k != "task")
                    ensure(k);

    std::string out = "task";
    for (const auto &c : cols)
        out += "," + Value(c).csv();
    out += "\n";
    for (std::size_t i = 0; i < rep.results.size(); ++i) {
        for (const auto &rec : rep.results[i].records) {
            out += Value(tasks[i].name).csv();
            for (const auto &c : cols) {
                out += ",";
                if (const Value *v = rec.find(c))
                    out += v->csv();
            }
            out += "\n";
        }
    }
    return out;
}

void
emitArtifacts(const SweepReport &rep, const std::vector<Task> &tasks,
              const EmitMeta &meta, const std::string &json_path,
              const std::string &csv_path)
{
    if (!json_path.empty())
        writeFileOrDie(json_path, toJson(rep, tasks, meta));
    if (!csv_path.empty())
        writeFileOrDie(csv_path, toCsv(rep, tasks));
}

void
writeFileOrDie(const std::string &path, const std::string &content)
{
    if (path == "-") {
        const auto n =
            std::fwrite(content.data(), 1, content.size(), stdout);
        fatal_if(n != content.size() || std::fflush(stdout) != 0,
                 "short write to stdout");
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    fatal_if(!f, "cannot open '", path, "' for writing");
    const auto n = std::fwrite(content.data(), 1, content.size(), f);
    const bool short_write = n != content.size();
    const bool close_err = std::fclose(f) != 0;
    fatal_if(short_write || close_err, "short write to '", path, "'");
}

} // namespace pktbuf::sweep
