/**
 * @file
 * Deterministic JSON and CSV emission of sweep results.
 *
 * The JSON schema ("pktbuf-sweep-v1") is the machine-readable perf
 * trajectory the repo's BENCH_*.json baselines are built from:
 *
 * @code{.json}
 * {
 *   "schema": "pktbuf-sweep-v1",
 *   "tool":   "scenario_matrix",
 *   "meta":   { ...caller-provided key/values... },
 *   "failed": 0,
 *   "results": [ {"task": "...", ...record fields...}, ... ]
 * }
 * @endcode
 *
 * Emission is purely a function of the report contents: fields keep
 * their insertion order, doubles use the shortest round-trip form,
 * and nothing run-dependent (wall time, thread count, hostnames)
 * creeps in unless the caller puts it in `meta` -- that is what makes
 * "same master seed, any --jobs, byte-identical output" testable.
 */

#ifndef PKTBUF_SWEEP_EMIT_HH
#define PKTBUF_SWEEP_EMIT_HH

#include <string>

#include "sweep/record.hh"
#include "sweep/sweep.hh"

namespace pktbuf::sweep
{

/** Caller-controlled identification of an emitted artifact. */
struct EmitMeta
{
    /** Producing harness ("scenario_matrix", "throughput_micro"). */
    std::string tool;
    /**
     * Extra metadata (configuration echo, baseline annotations).
     * Anything run-dependent placed here intentionally opts that
     * artifact out of byte-identity across runs.
     */
    Record extra;
};

/**
 * Serialize a whole report as pretty-printed deterministic JSON.
 * Each task contributes its records in order, every row tagged with
 * the task's name; failed tasks contribute one row carrying
 * "ok": false and the error string instead.
 */
std::string toJson(const SweepReport &rep,
                   const std::vector<Task> &tasks,
                   const EmitMeta &meta);

/**
 * Serialize all records as CSV: the header is the union of field
 * names in first-seen order (prefixed by "task"), missing fields are
 * empty.  Failed tasks are skipped (CSV has no error channel).
 */
std::string toCsv(const SweepReport &rep,
                  const std::vector<Task> &tasks);

/**
 * Write `content` to `path` ("-" = stdout).  Calls fatal() on any
 * I/O error: a bench that silently loses its baseline artifact would
 * read as a green CI step.
 */
void writeFileOrDie(const std::string &path,
                    const std::string &content);

/**
 * Emit the artifacts a harness was asked for: JSON to `json_path`
 * and CSV to `csv_path` (empty = skip, "-" = stdout).  The single
 * shared implementation of the "--json/--csv" contract, so the
 * schema and file handling cannot drift between the bench front end
 * and the example CLIs.
 */
void emitArtifacts(const SweepReport &rep,
                   const std::vector<Task> &tasks,
                   const EmitMeta &meta, const std::string &json_path,
                   const std::string &csv_path);

} // namespace pktbuf::sweep

#endif // PKTBUF_SWEEP_EMIT_HH
