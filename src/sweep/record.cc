#include "record.hh"

#include <charconv>
#include <cmath>

#include "common/logging.hh"

namespace pktbuf::sweep
{

namespace
{

std::string
formatReal(double d)
{
    // Shortest round-trip form, locale-independent.  Callers screen
    // out non-finite values (JSON null / empty CSV cell) before
    // calling; reaching here with one is a harness bug (to_chars
    // would happily emit "inf" and corrupt the artifact).
    panic_if(!std::isfinite(d), "non-finite value ", d,
             " in a result record");
    char buf[64];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), d);
    panic_if(res.ec != std::errc{}, "double formatting failed");
    std::string s(buf, res.ptr);
    // Make sure the token reads back as a JSON number even when the
    // value is integral (to_chars may emit "3" or "1e+20").
    if (s.find_first_of(".eE") == std::string::npos)
        s += ".0";
    return s;
}

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                constexpr char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
escapeCsv(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::uint64_t
Value::asUInt(std::uint64_t fallback) const
{
    if (kind_ == Kind::UInt)
        return uint_;
    if (kind_ == Kind::Int && int_ >= 0)
        return static_cast<std::uint64_t>(int_);
    return fallback;
}

double
Value::asReal(double fallback) const
{
    switch (kind_) {
      case Kind::Real:
        return real_;
      case Kind::Int:
        return static_cast<double>(int_);
      case Kind::UInt:
        return static_cast<double>(uint_);
      case Kind::Null:
      case Kind::Bool:
      case Kind::Str:
        return fallback;
    }
    return fallback;
}

bool
Value::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? bool_ : fallback;
}

std::string
Value::json() const
{
    switch (kind_) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return bool_ ? "true" : "false";
      case Kind::Int:
        return std::to_string(int_);
      case Kind::UInt:
        return std::to_string(uint_);
      case Kind::Real:
        // JSON has no inf/nan tokens: a non-finite measurement (an
        // empty sampler's mean, a 0/0 rate) becomes null rather than
        // corrupting the artifact or killing the whole emission.
        return std::isfinite(real_) ? formatReal(real_) : "null";
      case Kind::Str:
        return escapeJson(str_);
    }
    return "null";
}

std::string
Value::csv() const
{
    switch (kind_) {
      case Kind::Null:
        return "";
      case Kind::Str:
        return escapeCsv(str_);
      case Kind::Bool:
        return bool_ ? "true" : "false";
      case Kind::Int:
        return std::to_string(int_);
      case Kind::UInt:
        return std::to_string(uint_);
      case Kind::Real:
        // Mirror the JSON convention: a non-finite value becomes an
        // empty cell, the CSV idiom for "not available".
        return std::isfinite(real_) ? formatReal(real_) : "";
    }
    return "";
}

Record &
Record::set(std::string_view key, Value v)
{
    for (auto &[k, val] : fields_) {
        if (k == key) {
            val = std::move(v);
            return *this;
        }
    }
    fields_.emplace_back(std::string(key), std::move(v));
    return *this;
}

const Value *
Record::find(std::string_view key) const
{
    for (const auto &[k, v] : fields_)
        if (k == key)
            return &v;
    return nullptr;
}

} // namespace pktbuf::sweep
