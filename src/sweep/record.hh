/**
 * @file
 * Typed key/value result records for the sweep engine.
 *
 * Every sweep task reports its measurements as one or more Record
 * objects: ordered lists of (key, Value) pairs that the emitters in
 * emit.hh serialize to JSON and CSV.  Values are a small tagged union
 * (bool / signed / unsigned / real / string) so emission is exact and
 * deterministic -- the same run always serializes to the same bytes,
 * which is what lets the determinism tests compare aggregated output
 * across thread counts byte for byte.
 */

#ifndef PKTBUF_SWEEP_RECORD_HH
#define PKTBUF_SWEEP_RECORD_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace pktbuf::sweep
{

/**
 * One field value: a tagged union of the JSON scalar types.
 *
 * Integral types map to Int/UInt by signedness; floating-point
 * serializes via the shortest round-trip representation
 * (std::to_chars), so emission never depends on locale or stream
 * state.
 */
class Value
{
  public:
    /** Discriminator of the held alternative. */
    enum class Kind
    {
        Null,  //!< no value (missing CSV field, JSON null)
        Bool,
        Int,
        UInt,
        Real,
        Str,
    };

    // Implicit construction is the point of this type: result rows
    // assign bare literals (`row.set("load", 0.92)`) hundreds of
    // times across the emitters, hence the NOLINTs below.
    Value() = default;
    // NOLINTNEXTLINE(google-explicit-constructor)
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    // NOLINTNEXTLINE(google-explicit-constructor)
    Value(double d) : kind_(Kind::Real), real_(d) {}
    // NOLINTNEXTLINE(google-explicit-constructor)
    Value(const char *s) : kind_(Kind::Str), str_(s) {}
    // NOLINTNEXTLINE(google-explicit-constructor)
    Value(std::string s) : kind_(Kind::Str), str_(std::move(s)) {}

    /** Any non-bool integral type, mapped by signedness. */
    template <typename T,
              std::enable_if_t<std::is_integral_v<T> &&
                                   !std::is_same_v<T, bool>,
                               int> = 0>
    // NOLINTNEXTLINE(google-explicit-constructor)
    Value(T v)
    {
        if constexpr (std::is_signed_v<T>) {
            kind_ = Kind::Int;
            int_ = static_cast<std::int64_t>(v);
        } else {
            kind_ = Kind::UInt;
            uint_ = static_cast<std::uint64_t>(v);
        }
    }

    Kind kind() const { return kind_; }

    /** The value as an unsigned integer; `fallback` when not Int/UInt. */
    std::uint64_t asUInt(std::uint64_t fallback = 0) const;
    /** The value as a double; `fallback` when not numeric. */
    double asReal(double fallback = 0.0) const;
    /** The value as a bool; `fallback` when not Bool. */
    bool asBool(bool fallback = false) const;

    /** Serialize as a JSON token (strings quoted and escaped). */
    std::string json() const;

    /**
     * Serialize as a CSV field: like json() but strings are emitted
     * bare unless they need RFC-4180 quoting, and Null is empty.
     */
    std::string csv() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double real_ = 0.0;
    std::string str_;
};

/**
 * An ordered set of named fields.  Insertion order is preserved (it
 * is the JSON emission order); setting an existing key overwrites the
 * value in place so emission order never depends on update order.
 */
class Record
{
  public:
    /** Set (or overwrite) one field; returns *this for chaining. */
    Record &set(std::string_view key, Value v);

    /** The fields, in first-insertion order. */
    const std::vector<std::pair<std::string, Value>> &
    fields() const
    {
        return fields_;
    }

    /** Pointer to a field's value, or nullptr when absent. */
    const Value *find(std::string_view key) const;

  private:
    std::vector<std::pair<std::string, Value>> fields_;
};

} // namespace pktbuf::sweep

#endif // PKTBUF_SWEEP_RECORD_HH
