#include "scenario_sweep.hh"

#include <cstdio>

namespace pktbuf::sweep
{

std::string
scenarioTableHeader()
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%-40s %10s %10s %10s %8s %8s  %s\n", "leg",
                  "arrivals", "granted", "drained", "drops",
                  "renames", "status");
    return buf;
}

Record
scenarioRecord(const sim::Scenario &s, const sim::ScenarioOutcome &out)
{
    Record r;
    r.set("name", s.name())
        .set("variant", sim::toString(s.variant))
        .set("workload", sim::toString(s.workload))
        .set("queues", s.queues)
        .set("phys_queues", s.physQueues ? s.physQueues : s.queues)
        .set("B", s.granRads)
        .set("b", s.variant == sim::BufferVariant::Rads ? s.granRads
                                                        : s.gran)
        .set("groups", s.groups)
        .set("dram_cells", s.dramCells)
        .set("load", s.load)
        .set("slots", s.slots)
        .set("seed", s.seed)
        .set("passed", out.passed)
        .set("arrivals", out.run.arrivals)
        .set("granted", out.verified)
        .set("drained", out.drained)
        .set("drops", out.run.drops)
        .set("undelivered", out.undelivered)
        .set("mean_delay_slots", out.run.meanDelaySlots)
        .set("max_delay_slots", out.run.maxDelaySlots)
        .set("bypasses", out.report.bypasses)
        .set("dram_reads", out.report.dramReads)
        .set("dram_writes", out.report.dramWrites)
        .set("renames", out.report.renames)
        .set("head_sram_hw", out.report.headSramHighWater)
        .set("tail_sram_hw", out.report.tailSramHighWater)
        .set("rr_hw", out.report.rrHighWater);
    if (!out.passed)
        r.set("failure", out.failure);
    return r;
}

std::vector<Task>
makeScenarioTasks(const std::vector<sim::Scenario> &legs,
                  bool deriveSeeds)
{
    std::vector<Task> tasks;
    tasks.reserve(legs.size());
    for (const auto &leg : legs) {
        tasks.push_back(Task{
            leg.name(),
            [leg, deriveSeeds](const SweepContext &ctx) {
                sim::Scenario s = leg;
                if (deriveSeeds)
                    s.seed = ctx.seed;
                const auto out = sim::runScenario(s);
                TaskResult r;
                char buf[256];
                std::snprintf(
                    buf, sizeof(buf),
                    "%-40s %10llu %10llu %10llu %8llu %8llu  %s\n",
                    s.name().c_str(),
                    static_cast<unsigned long long>(out.run.arrivals),
                    static_cast<unsigned long long>(out.verified),
                    static_cast<unsigned long long>(out.drained),
                    static_cast<unsigned long long>(out.run.drops),
                    static_cast<unsigned long long>(
                        out.report.renames),
                    out.passed ? "ok" : "FAIL");
                r.text = buf;
                if (!out.passed)
                    r.text += "  " + out.failure + "\n";
                r.records.push_back(scenarioRecord(s, out));
                r.ok = out.passed;
                if (!out.passed)
                    r.error = out.failure;
                return r;
            },
        });
    }
    return tasks;
}

} // namespace pktbuf::sweep
