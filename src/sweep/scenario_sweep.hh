/**
 * @file
 * Bridge between the scenario matrix (src/sim/scenario.hh) and the
 * sweep engine: turns a list of Scenario legs into sweep tasks whose
 * records carry the full leg configuration and outcome, and whose
 * buffered text reproduces the classic one-row-per-leg table -- so
 * the scenario_matrix CLI and the sweep-determinism tests share one
 * code path.
 */

#ifndef PKTBUF_SWEEP_SCENARIO_SWEEP_HH
#define PKTBUF_SWEEP_SCENARIO_SWEEP_HH

#include <vector>

#include "sim/scenario.hh"
#include "sweep/sweep.hh"

namespace pktbuf::sweep
{

/**
 * Build one sweep task per scenario leg.
 *
 * Each task runs its leg through sim::runScenario (golden checker on,
 * full drain), formats the classic table row into TaskResult::text,
 * and reports one Record with the leg's configuration, counters and
 * pass/fail state.  A failed leg produces a failed TaskResult whose
 * error carries Scenario::describe() -- including the seed.
 *
 * @param legs          the legs, in the order they should aggregate
 * @param deriveSeeds   when true, each leg's seed is replaced by the
 *                      engine-provided shard seed (CLI --seed N);
 *                      when false, legs keep their built-in seeds
 * @return one task per leg, in the same order
 */
std::vector<Task> makeScenarioTasks(
    const std::vector<sim::Scenario> &legs, bool deriveSeeds);

/** The header line matching the tasks' formatted text rows. */
std::string scenarioTableHeader();

/** One record describing a leg and its outcome (shared with tests). */
Record scenarioRecord(const sim::Scenario &s,
                      const sim::ScenarioOutcome &out);

} // namespace pktbuf::sweep

#endif // PKTBUF_SWEEP_SCENARIO_SWEEP_HH
