#include "sweep.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

namespace pktbuf::sweep
{

std::uint64_t
deriveSeed(std::uint64_t master, std::uint64_t index)
{
    // splitmix64 step with the index striding the state by the
    // golden-ratio increment, exactly how splitmix64 itself walks
    // its state sequence.
    std::uint64_t z = master + (index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

TaskResult
runOne(const Task &task, const SweepContext &ctx)
{
    TaskResult r;
    try {
        r = task.run(ctx);
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    } catch (...) {
        r.ok = false;
        r.error = "unknown exception";
    }
    if (!r.ok) {
        // Always name the task and its shard seed so a failed leg
        // can be replayed from the log alone.
        r.error += " [task '" + task.name + "', shard seed " +
                   std::to_string(ctx.seed) + "]";
    }
    return r;
}

} // namespace

SweepReport
runSweep(const std::vector<Task> &tasks, const SweepOptions &opt)
{
    SweepReport rep;
    rep.results.resize(tasks.size());

    unsigned jobs = opt.jobs;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (jobs > tasks.size())
        jobs = static_cast<unsigned>(tasks.size());
    if (jobs == 0)
        jobs = 1;
    rep.jobs = jobs;

    const auto t0 = std::chrono::steady_clock::now();
    if (jobs == 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            rep.results[i] = runOne(
                tasks[i],
                SweepContext{i, deriveSeed(opt.masterSeed, i)});
        }
    } else {
        std::atomic<std::size_t> cursor{0};
        const auto worker = [&]() {
            while (true) {
                const std::size_t i =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (i >= tasks.size())
                    return;
                rep.results[i] = runOne(
                    tasks[i],
                    SweepContext{i, deriveSeed(opt.masterSeed, i)});
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    rep.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    for (const auto &r : rep.results)
        if (!r.ok)
            ++rep.failed;
    return rep;
}

} // namespace pktbuf::sweep
