/**
 * @file
 * The parallel parameter-sweep engine.
 *
 * A sweep is an ordered list of independent tasks (scenario legs,
 * bench configurations, analytical table rows).  runSweep() shards
 * them across a pool of worker threads, captures each task's result
 * records, buffered human-readable text and failure state, and
 * aggregates everything **in task order** -- so stdout and the
 * emitted JSON/CSV are byte-identical regardless of the thread count.
 *
 * Determinism contract:
 *  - tasks must not share mutable state (each leg builds its own
 *    buffer, workload and RNG);
 *  - per-task randomness derives from SweepContext::seed, a
 *    splitmix64 hash of (master seed, task index) -- see
 *    deriveSeed() -- so reseeding one task never shifts another's
 *    stream and the task count, not the schedule, fixes every seed;
 *  - tasks write text into TaskResult::text instead of stdout.
 *
 * Failure propagation: a task that throws (panic/fatal from any
 * simulator layer included) becomes a failed TaskResult whose error
 * names the task and its shard seed; the sweep runs to completion so
 * one bad leg cannot hide another, and SweepReport::failed makes the
 * whole sweep fail.
 */

#ifndef PKTBUF_SWEEP_SWEEP_HH
#define PKTBUF_SWEEP_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sweep/record.hh"

namespace pktbuf::sweep
{

/**
 * Derive the RNG seed of shard `index` from the sweep's master seed.
 *
 * splitmix64 applied to (master + golden-ratio striding by index):
 * cheap, stateless, and well decorrelated, so neighboring shards do
 * not see correlated streams even for master seeds 0 and 1.
 *
 * @param master the sweep-level seed (CLI --seed)
 * @param index  the task's position in the sweep
 * @return a 64-bit seed unique to (master, index)
 */
std::uint64_t deriveSeed(std::uint64_t master, std::uint64_t index);

/** Everything a task learns about its place in the sweep. */
struct SweepContext
{
    std::size_t index = 0;   //!< position in the task list
    std::uint64_t seed = 0;  //!< deriveSeed(master, index)
};

/** Outcome of one task. */
struct TaskResult
{
    /** Result rows (zero or more) for the JSON/CSV emitters. */
    std::vector<Record> records;
    /** Buffered human-readable output, printed in task order. */
    std::string text;
    bool ok = true;
    /** Failure diagnosis; always names the task and shard seed. */
    std::string error;
};

/** One unit of work. */
struct Task
{
    /** Stable identifier; appears in failures and JSON rows. */
    std::string name;
    /** The work itself; must only touch state it owns. */
    std::function<TaskResult(const SweepContext &)> run;
};

/** Sweep-wide knobs. */
struct SweepOptions
{
    /** Worker threads; 1 = run inline, 0 = hardware concurrency. */
    unsigned jobs = 1;
    /** Master seed that every shard seed derives from. */
    std::uint64_t masterSeed = 1;
};

/** Aggregated, task-ordered outcome of a sweep. */
struct SweepReport
{
    /** One entry per task, in task order. */
    std::vector<TaskResult> results;
    /** Number of failed tasks. */
    std::size_t failed = 0;
    /** Threads actually used. */
    unsigned jobs = 1;
    /**
     * Wall-clock of the run() phase, seconds.  Deliberately *not*
     * serialized by the emitters: timing varies run to run, and the
     * aggregated artifacts must stay byte-identical across thread
     * counts.  Print it to stderr if you want it.
     */
    double wallSeconds = 0.0;
};

/**
 * Run every task and aggregate the results in task order.
 *
 * Tasks are pulled from a shared atomic cursor, so scheduling is
 * dynamic, but aggregation is positional: results[i] always belongs
 * to tasks[i].  Exceptions (std::exception and anything else) become
 * failed results; the engine never throws for a task failure.
 *
 * @param tasks the work list; executed exactly once each
 * @param opt   thread count and master seed
 * @return per-task results, failure count and wall time
 */
SweepReport runSweep(const std::vector<Task> &tasks,
                     const SweepOptions &opt);

} // namespace pktbuf::sweep

#endif // PKTBUF_SWEEP_SWEEP_HH
