#include "switch_sim.hh"

#include <algorithm>
#include <exception>
#include <numeric>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "sim/workload.hh"
#include "sweep/emit.hh"
#include "sweep/scenario_sweep.hh"
#include "sweep/sweep.hh"

namespace pktbuf::sw
{

namespace
{

/** Salt index for the permutation pattern's port -> queue map: far
 *  outside any realistic port index, so the map's RNG stream never
 *  collides with a port's deriveSeed(master, port) stream. */
constexpr std::uint64_t kPermSalt = 0x7065726dull;  // "perm"

double
clampLoad(double v)
{
    return std::min(std::max(v, 0.0), SwitchConfig::kMaxPortLoad);
}

sim::BufferVariant
portVariant(const SwitchConfig &cfg, unsigned p)
{
    if (!cfg.mixedVariants)
        return cfg.variant;
    switch (p % 3) {
      case 0:
        return sim::BufferVariant::Cfds;
      case 1:
        return sim::BufferVariant::Rads;
      default:
        return sim::BufferVariant::CfdsRenaming;
    }
}

unsigned
resolvedHotPorts(const SwitchConfig &cfg)
{
    const unsigned hot =
        cfg.hotPorts ? cfg.hotPorts : std::max(1u, cfg.ports / 4);
    return std::min(hot, cfg.ports);
}

} // namespace

std::string
SwitchConfig::name() const
{
    std::ostringstream os;
    os << "switch_" << sw::toString(pattern) << "_p" << ports << "_"
       << (mixedVariants ? std::string("mixed")
                         : sim::toString(variant))
       << "_q" << queues << "_B" << granRads << "_b" << gran;
    return os.str();
}

std::string
SwitchConfig::describe() const
{
    std::ostringstream os;
    os << name() << " groups=" << groups << " load=" << load
       << " slots=" << slots << " master_seed=" << masterSeed;
    if (pattern == TrafficPattern::Hotspot) {
        os << " hot_ports=" << resolvedHotPorts(*this)
           << " hot_fraction=" << hotFraction;
    }
    if (pattern == TrafficPattern::Incast) {
        os << " victim=" << incastVictim << " burst=" << incastBurst
           << " hot_fraction=" << hotFraction;
    }
    if (!timing.isUniform())
        os << " timing=[" << timing.describe(granRads) << "]";
    return os.str();
}

std::vector<PortPlan>
planPorts(const SwitchConfig &cfg)
{
    fatal_if(cfg.ports == 0, "switch needs at least one port");
    fatal_if(cfg.queues == 0, "switch needs at least one queue");
    fatal_if(cfg.load <= 0.0, "switch load must be positive");
    fatal_if(cfg.pattern == TrafficPattern::Incast &&
                 cfg.incastVictim >= cfg.ports,
             "incast victim ", cfg.incastVictim, " out of range (",
             cfg.ports, " ports)");
    // A fraction at (or beyond) either extreme starves one side of
    // the split outright -- the starved ports would then fail the
    // "delivered no cells" invariant with a misleading diagnosis, so
    // reject the impossible knob up front.
    fatal_if((cfg.pattern == TrafficPattern::Hotspot ||
              cfg.pattern == TrafficPattern::Incast) &&
                 (cfg.hotFraction <= 0.0 || cfg.hotFraction >= 1.0),
             "switch hot fraction ", cfg.hotFraction,
             " outside (0, 1) starves one side of the ",
             sw::toString(cfg.pattern), " split");

    const double total = cfg.ports * cfg.load;
    const unsigned hot = resolvedHotPorts(cfg);

    // The permutation pattern's fixed port -> queue map: a seeded
    // Fisher-Yates permutation of the queue ids, drawn once for the
    // whole switch so the map -- like everything else -- is a pure
    // function of the master seed.
    std::vector<unsigned> perm(cfg.queues);
    std::iota(perm.begin(), perm.end(), 0u);
    if (cfg.pattern == TrafficPattern::Permutation) {
        Rng rng(sweep::deriveSeed(cfg.masterSeed, kPermSalt));
        for (unsigned i = cfg.queues - 1; i > 0; --i) {
            const auto j = static_cast<unsigned>(rng.below(i + 1));
            std::swap(perm[i], perm[j]);
        }
    }

    std::vector<PortPlan> plans;
    plans.reserve(cfg.ports);
    for (unsigned p = 0; p < cfg.ports; ++p) {
        PortPlan plan;
        plan.port = p;
        plan.pattern = cfg.pattern;

        sim::Scenario s;
        s.variant = portVariant(cfg, p);
        s.workload = sim::WorkloadKind::Bernoulli;
        s.queues = cfg.queues;
        s.granRads = cfg.granRads;
        if (s.variant == sim::BufferVariant::Rads) {
            s.gran = cfg.granRads;
            s.groups = 1;
        } else {
            s.gran = cfg.gran;
            s.groups = cfg.groups;
        }
        if (s.variant == sim::BufferVariant::CfdsRenaming) {
            // Same shape the matrix's renaming legs use: fewer
            // logical than physical queues and a DRAM tight enough
            // that renaming chains actually form.
            s.physQueues = cfg.queues;
            s.queues = std::max(1u, cfg.queues / 2);
            s.dramCells = 1ull * cfg.queues * cfg.granRads;
        }
        // Non-uniform DDR timing requires the banked CFDS
        // organization; RADS and renaming ports keep the uniform
        // model.
        if (s.variant == sim::BufferVariant::Cfds)
            s.timing = cfg.timing;
        s.slots = cfg.slots;
        s.seed = sweep::deriveSeed(cfg.masterSeed, p);
        s.eventEngine = cfg.eventEngine;

        double L = cfg.load;
        switch (cfg.pattern) {
          case TrafficPattern::Uniform:
          case TrafficPattern::Permutation:
            break;
          case TrafficPattern::Hotspot:
            // k hot ports absorb hotFraction of the switch's total
            // arrivals; with every port hot the split degenerates to
            // uniform.
            if (hot < cfg.ports) {
                L = p < hot
                        ? total * cfg.hotFraction / hot
                        : total * (1.0 - cfg.hotFraction) /
                              (cfg.ports - hot);
            }
            break;
          case TrafficPattern::Incast: {
            // The victim absorbs the convergent bursts, capped at
            // the bursty concentration bound; the remaining ports
            // stay at no more than half the victim's load, so the
            // victim is unambiguously the hot port.
            const double victim = std::min(
                std::max(cfg.load, total * cfg.hotFraction),
                SwitchConfig::kMaxBurstyLoad);
            if (p == cfg.incastVictim) {
                L = victim;
                plan.victim = true;
                plan.burstLen = cfg.incastBurst;
                s.workload = sim::WorkloadKind::Bursty;
            } else {
                L = std::min((total - victim) / (cfg.ports - 1),
                             victim / 2.0);
            }
            break;
          }
        }
        s.load = clampLoad(L);

        if (cfg.pattern == TrafficPattern::Permutation) {
            // Affinity stripe: half the port's (logical) VOQs,
            // starting at the seeded offset.  Consecutive queue ids
            // span the bank groups (block-cyclic interleaving), so a
            // stripe never concentrates on one group.
            const unsigned lq = s.queues;
            const unsigned stripe = std::max(1u, lq / 2);
            const unsigned offset = perm[p % perm.size()] % lq;
            for (unsigned j = 0; j < stripe; ++j)
                plan.affinity.push_back((offset + j) % lq);
            // Name the workload that actually runs: the stripe is
            // fully determined by (offset, width), so a failure log
            // or --list line reconstructs it exactly.
            s.workloadTag = "subsetrr_o" + std::to_string(offset) +
                            "_w" + std::to_string(stripe);
        }

        plan.scenario = s;
        plans.push_back(std::move(plan));
    }
    return plans;
}

std::unique_ptr<sim::Workload>
makePortWorkload(const PortPlan &plan)
{
    const auto &s = plan.scenario;
    switch (plan.pattern) {
      case TrafficPattern::Uniform:
      case TrafficPattern::Hotspot:
        // Exactly the matrix legs' factory: a 1-port uniform switch
        // replays the matching single-buffer leg bit-for-bit.
        return sim::makeWorkload(s);
      case TrafficPattern::Incast:
        if (plan.victim) {
            return std::make_unique<sim::BurstyOnOff>(
                s.queues, s.seed, plan.burstLen, s.load,
                s.unbiasedRequests);
        }
        return sim::makeWorkload(s);
      case TrafficPattern::Permutation:
        return std::make_unique<sim::SubsetRoundRobin>(
            s.queues, s.seed, plan.affinity,
            /*request_load=*/s.load, /*arrival_load=*/s.load);
    }
    panic("unknown traffic pattern");
}

sim::ScenarioOutcome
runPort(const PortPlan &plan)
{
    std::unique_ptr<sim::Workload> wl;
    try {
        wl = makePortWorkload(plan);
    } catch (const std::exception &e) {
        sim::ScenarioOutcome out;
        out.failure = std::string("exception: ") + e.what() + "; [" +
                      plan.scenario.describe() + "]";
        return out;
    }
    return sim::runScenarioWith(plan.scenario, *wl);
}

PortStatAgg
aggregateStat(const std::vector<double> &per_port)
{
    PortStatAgg a;
    if (per_port.empty())
        return a;
    Sampler s;
    for (const double v : per_port) {
        a.sum += v;
        s.sample(v);
    }
    a.min = s.min();
    a.max = s.max();
    a.mean = s.mean();
    // Percentiles via the joint streaming P^2 estimator: exact
    // (linear interpolation at rank p*(n-1)) for up to seven ports,
    // marker approximation beyond -- no bucket width to misjudge and
    // no bucket-upper-bound bias, unlike the fixed-width Histogram
    // this replaced.  One shared sorted marker array serves both
    // targets, so p99 >= p50 holds by construction (two independent
    // P2Quantile instances crossed on adversarial inputs and needed
    // a flooring band-aid here).
    P2QuantileSet pq({0.50, 0.99});
    for (const double v : per_port)
        pq.sample(v);
    a.p50 = pq.quantile(0.50);
    a.p99 = pq.quantile(0.99);
    return a;
}

const PortStatAgg *
SwitchReport::agg(const std::string &name) const
{
    for (const auto &[k, v] : aggregates)
        if (k == name)
            return &v;
    return nullptr;
}

namespace
{

/** One aggregated stat: its record name and per-port extractor. */
struct StatDef
{
    const char *name;
    double (*get)(const sim::ScenarioOutcome &);
};

constexpr StatDef kStatDefs[] = {
    {"arrivals",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.run.arrivals);
     }},
    {"granted",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.verified);
     }},
    {"drained",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.drained);
     }},
    {"drops",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.run.drops);
     }},
    {"undelivered",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.undelivered);
     }},
    {"mean_delay_slots",
     [](const sim::ScenarioOutcome &o) { return o.run.meanDelaySlots; }},
    {"max_delay_slots",
     [](const sim::ScenarioOutcome &o) { return o.run.maxDelaySlots; }},
    {"dram_reads",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.dramReads);
     }},
    {"dram_writes",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.dramWrites);
     }},
    {"renames",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.renames);
     }},
    {"head_sram_hw",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.headSramHighWater);
     }},
    {"tail_sram_hw",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.tailSramHighWater);
     }},
    {"rr_hw",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.rrHighWater);
     }},
    {"dsa_stalls",
     [](const sim::ScenarioOutcome &o) {
         return static_cast<double>(o.report.dsaStalls);
     }},
};

SwitchReport
aggregateReport(const std::vector<PortPlan> &plans,
                const std::vector<sim::ScenarioOutcome> &ports)
{
    SwitchReport r;
    r.ports = static_cast<unsigned>(ports.size());
    for (std::size_t i = 0; i < ports.size(); ++i) {
        const auto &o = ports[i];
        if (!o.passed)
            ++r.failedPorts;
        r.arrivals += o.run.arrivals;
        r.granted += o.verified;
        r.drained += o.drained;
        r.drops += o.run.drops;
        r.undelivered += o.undelivered;
        r.dramReads += o.report.dramReads;
        r.dramWrites += o.report.dramWrites;
        r.renames += o.report.renames;
        r.dsaStalls += o.report.dsaStalls;

        // Namespaced per-port stats: "port<i>.<stat>".
        const std::string pre =
            "port" + std::to_string(plans[i].port) + ".";
        r.stats.counter(pre + "arrivals").inc(o.run.arrivals);
        r.stats.counter(pre + "granted").inc(o.verified);
        r.stats.counter(pre + "drained").inc(o.drained);
        r.stats.counter(pre + "drops").inc(o.run.drops);
        r.stats.counter(pre + "dram_reads").inc(o.report.dramReads);
        r.stats.counter(pre + "dram_writes").inc(o.report.dramWrites);
        r.stats.counter(pre + "renames").inc(o.report.renames);
        r.stats.counter(pre + "dsa_stalls").inc(o.report.dsaStalls);
        r.stats.highWater(pre + "head_sram")
            .observe(o.report.headSramHighWater);
        r.stats.highWater(pre + "tail_sram")
            .observe(o.report.tailSramHighWater);
        r.stats.highWater(pre + "rr").observe(o.report.rrHighWater);
    }

    for (const auto &def : kStatDefs) {
        std::vector<double> values;
        values.reserve(ports.size());
        auto &sampler =
            r.stats.sampler(std::string("across_ports.") + def.name);
        for (const auto &o : ports) {
            const double v = def.get(o);
            values.push_back(v);
            sampler.sample(v);
        }
        r.aggregates.emplace_back(def.name, aggregateStat(values));
    }
    return r;
}

} // namespace

SwitchOutcome
runPlans(const std::vector<PortPlan> &plans, unsigned jobs)
{
    SwitchOutcome out;
    out.plans = plans;
    out.ports.resize(plans.size());

    // One sweep task per port.  Each task writes only its own slot
    // of out.ports, and runSweep joins its workers before
    // returning, so the writes are race-free and ordered-by-port by
    // construction.
    std::vector<sweep::Task> tasks;
    tasks.reserve(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
        tasks.push_back(sweep::Task{
            "port" + std::to_string(plans[i].port) + "/" +
                plans[i].scenario.name(),
            [&out, &plans, i](const sweep::SweepContext &) {
                out.ports[i] = runPort(plans[i]);
                sweep::TaskResult r;
                r.ok = out.ports[i].passed;
                if (!r.ok)
                    r.error = out.ports[i].failure;
                return r;
            },
        });
    }
    sweep::SweepOptions so;
    so.jobs = jobs;
    sweep::runSweep(tasks, so);

    out.report = aggregateReport(plans, out.ports);
    out.passed = out.report.failedPorts == 0;
    if (!out.passed) {
        std::ostringstream os;
        for (std::size_t i = 0; i < out.ports.size(); ++i) {
            if (out.ports[i].passed)
                continue;
            if (os.tellp() > 0)
                os << " | ";
            os << "port" << plans[i].port << ": "
               << out.ports[i].failure;
        }
        out.failure = os.str();
    }
    return out;
}

sweep::Record
portRecord(const PortPlan &plan, const sim::ScenarioOutcome &out)
{
    auto rec = sweep::scenarioRecord(plan.scenario, out);
    rec.set("port", plan.port)
        .set("pattern", sw::toString(plan.pattern));
    if (plan.pattern == TrafficPattern::Permutation) {
        std::string aff;
        for (const auto q : plan.affinity)
            aff += (aff.empty() ? "q" : "+q") + std::to_string(q);
        // Overwrite in place: Record::set keeps the field position,
        // so the emission order stays that of scenarioRecord.
        rec.set("workload", "subset-rr").set("affinity", aff);
    }
    if (plan.victim)
        rec.set("victim", true).set("burst_len", plan.burstLen);
    return rec;
}

sweep::Record
switchRecord(const SwitchConfig &cfg, const SwitchOutcome &out)
{
    const auto &r = out.report;
    sweep::Record rec;
    rec.set("name", cfg.name())
        .set("pattern", sw::toString(cfg.pattern))
        .set("ports", cfg.ports)
        .set("variant", cfg.mixedVariants
                            ? std::string("mixed")
                            : sim::toString(cfg.variant))
        .set("queues", cfg.queues)
        .set("B", cfg.granRads)
        .set("b", cfg.gran)
        .set("groups", cfg.groups)
        .set("load", cfg.load)
        .set("slots", cfg.slots)
        .set("master_seed", cfg.masterSeed)
        .set("passed", out.passed)
        .set("failed_ports", r.failedPorts)
        .set("arrivals", r.arrivals)
        .set("granted", r.granted)
        .set("drained", r.drained)
        .set("drops", r.drops)
        .set("undelivered", r.undelivered)
        .set("dram_reads", r.dramReads)
        .set("dram_writes", r.dramWrites)
        .set("renames", r.renames)
        .set("dsa_stalls", r.dsaStalls);
    // Full across-port spread for the headline stats.
    for (const char *name :
         {"granted", "drops", "mean_delay_slots", "max_delay_slots",
          "head_sram_hw", "rr_hw", "dsa_stalls"}) {
        const PortStatAgg *a = r.agg(name);
        panic_if(!a, "switch report: missing aggregate for ", name);
        const std::string n = name;
        rec.set(n + "_min", a->min)
            .set(n + "_max", a->max)
            .set(n + "_mean", a->mean)
            .set(n + "_p50", a->p50)
            .set(n + "_p99", a->p99);
    }
    return rec;
}

void
emitSwitchArtifacts(const SwitchConfig &cfg, const SwitchOutcome &out,
                    const std::string &tool, sweep::Record extra_meta,
                    const std::string &json_path,
                    const std::string &csv_path)
{
    if (json_path.empty() && csv_path.empty())
        return;
    // Reconstruct the (tasks, report) pair the sweep emitters
    // expect; the task callables are never run -- only the names
    // label the rows.
    std::vector<sweep::Task> tasks;
    sweep::SweepReport rep;
    for (std::size_t i = 0; i < out.plans.size(); ++i) {
        tasks.push_back(sweep::Task{
            "port" + std::to_string(out.plans[i].port), {}});
        sweep::TaskResult tr;
        tr.records.push_back(portRecord(out.plans[i], out.ports[i]));
        tr.ok = out.ports[i].passed;
        if (!tr.ok) {
            tr.error = out.ports[i].failure;
            ++rep.failed;
        }
        rep.results.push_back(std::move(tr));
    }
    tasks.push_back(sweep::Task{"aggregate", {}});
    sweep::TaskResult agg;
    agg.records.push_back(switchRecord(cfg, out));
    agg.ok = out.passed;
    if (!out.passed) {
        agg.error = out.failure;
        // Keep the schema invariant: "failed" counts exactly the
        // rows that carry ok=false, and the aggregate row is one.
        ++rep.failed;
    }
    rep.results.push_back(std::move(agg));

    extra_meta.set("switch", cfg.name())
        .set("pattern", sw::toString(cfg.pattern))
        .set("ports", cfg.ports)
        .set("master_seed", cfg.masterSeed);
    sweep::emitArtifacts(rep, tasks,
                         sweep::EmitMeta{tool, std::move(extra_meta)},
                         json_path, csv_path);
}

} // namespace pktbuf::sw
