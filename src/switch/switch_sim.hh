/**
 * @file
 * Switch-scale simulation: N independent hybrid SRAM/DRAM packet
 * buffers ("ports", one per line card) driven by a cross-port
 * traffic pattern and aggregated into one switch-level report.
 *
 * Each port is a full scenario leg: its own HybridBuffer (mixed
 * RADS / CFDS / CFDS+renaming and per-port DDR timing allowed), its
 * own workload, its own RNG seeded with deriveSeed(masterSeed, port)
 * -- so no port's stream depends on any other port, on the port
 * count, or on the execution schedule.  Ports are driven
 * slot-lockstep: every port advances the same logical slot clock
 * over the same `slots` budget, and because ports share no mutable
 * state, executing them concurrently on the sweep engine's thread
 * pool (runSweep, PR-2) is *exactly* equivalent to interleaving them
 * slot by slot.  Results aggregate in port order, so stdout and the
 * JSON/CSV artifacts are byte-identical for any --jobs value.
 *
 * The load-bearing invariant: a 1-port switch under the uniform
 * pattern builds the very Scenario a single-buffer matrix leg would
 * build and runs it through the same runScenarioWith() skeleton, so
 * its per-port outcome reproduces that leg bit-for-bit.  The switch
 * layer adds traffic *shape*, never a second simulation code path.
 */

#ifndef PKTBUF_SWITCH_SWITCH_SIM_HH
#define PKTBUF_SWITCH_SWITCH_SIM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "sim/scenario.hh"
#include "sweep/record.hh"
#include "switch/traffic.hh"

namespace pktbuf::sw
{

/** Static configuration of a whole switch run. */
struct SwitchConfig
{
    /** Number of ports (independent buffer instances). */
    unsigned ports = 4;

    TrafficPattern pattern = TrafficPattern::Uniform;

    /** Buffer architecture of every port... */
    sim::BufferVariant variant = sim::BufferVariant::Cfds;
    /** ...unless mixed: port p cycles CFDS / RADS / CFDS+renaming. */
    bool mixedVariants = false;

    /** Per-port leg shape (same meaning as sim::Scenario). */
    unsigned queues = 8;
    unsigned granRads = 8;  //!< B
    unsigned gran = 2;      //!< b (forced to B on RADS ports)
    unsigned groups = 4;    //!< G (forced to 1 on RADS ports)

    /**
     * Mean offered load per port; the switch's aggregate offered
     * load is ports * load, which the pattern redistributes (hot
     * ports above `load`, cold ports below).  Resolved per-port
     * loads are clamped to kMaxPortLoad.
     */
    double load = 0.45;

    std::uint64_t slots = 20000;

    /** Every port's seed is deriveSeed(masterSeed, port). */
    std::uint64_t masterSeed = 1;

    /** Hotspot: hot port count; 0 = max(1, ports/4). */
    unsigned hotPorts = 0;
    /** Hotspot/incast: fraction of total arrivals on the hot side. */
    double hotFraction = 0.5;

    /** Incast: the victim port index (must be < ports). */
    unsigned incastVictim = 0;
    /** Incast: mean burst length on the victim port. */
    std::uint64_t incastBurst = 64;

    /**
     * DDR timing applied to CFDS ports (non-uniform timing requires
     * the banked organization; RADS and renaming ports keep the
     * uniform model).  Remember timed-DRAM configs steal launch
     * opportunities: pick `load` the line can still sustain.
     */
    dram::TimingConfig timing;

    /**
     * Run every port on the event-calendar engine instead of the
     * per-slot reference loop.  Pure execution strategy: plumbed
     * into each port's sim::Scenario::eventEngine and, like it,
     * excluded from name()/describe() so artifacts and checkpoint
     * fingerprints stay byte-identical across engines.
     */
    bool eventEngine = false;

    /** Hard cap on any resolved per-port load. */
    static constexpr double kMaxPortLoad = 0.9;

    /**
     * Hard cap on a *bursty* port's load (the incast victim).  A
     * burst concentrates the port's whole arrival rate on one VOQ,
     * whose bank group sustains only 1 access per b slots shared
     * between reads and writes -- concentrated loads above ~0.5
     * violate the Eq. (1) RR sizing assumptions (DESIGN.md's
     * concentration argument; the renaming property tests run their
     * bursts at the same 0.45 for the same reason).
     */
    static constexpr double kMaxBurstyLoad = 0.45;

    /** Unique, file/test-name-safe identifier of the run. */
    std::string name() const;
    /** name() plus loads, slots and the master seed (replayable). */
    std::string describe() const;
};

/**
 * Fully resolved plan of one port: the scenario leg it runs (buffer
 * config, resolved load, derived seed, slot budget) plus the
 * cross-port traffic role the pattern assigned to it.  A plan is
 * self-contained -- runPort(plan) rebuilds the port bit-for-bit with
 * no access to the SwitchConfig or to any other port.
 */
struct PortPlan
{
    unsigned port = 0;
    TrafficPattern pattern = TrafficPattern::Uniform;

    /** The leg: variant, queues, granularity, load, seed, slots. */
    sim::Scenario scenario;

    /** Incast: this port is the burst-convergence victim. */
    bool victim = false;
    /** Incast victim's mean burst length. */
    std::uint64_t burstLen = 64;

    /** Permutation: the VOQ affinity stripe arrivals cycle over
     *  (empty for every other pattern). */
    std::vector<QueueId> affinity;
};

/**
 * Resolve a switch configuration into one plan per port: derive the
 * per-port seed, redistribute the aggregate load according to the
 * pattern, assign variants (fixed or cycled) and, for the
 * permutation pattern, build the seeded port -> queue-stripe map.
 *
 * @param cfg the switch configuration; fatal() on impossible knobs
 *            (zero ports, incast victim out of range)
 * @return plans in port order
 */
std::vector<PortPlan> planPorts(const SwitchConfig &cfg);

/**
 * Instantiate the workload a plan calls for.  Uniform/hotspot ports
 * and incast non-victims delegate to sim::makeWorkload (identical
 * streams to the matrix legs); incast victims run BurstyOnOff with
 * the plan's burst length; permutation ports run SubsetRoundRobin
 * over their affinity stripe.
 */
std::unique_ptr<sim::Workload> makePortWorkload(const PortPlan &plan);

/**
 * Run one port end to end (golden checker on, full drain) through
 * the same runScenarioWith() skeleton the matrix legs use.  Never
 * throws; failures carry the scenario description and seed.
 */
sim::ScenarioOutcome runPort(const PortPlan &plan);

/** sum / min / max / mean / p50 / p99 of one stat across ports. */
struct PortStatAgg
{
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;  //!< via P2QuantileSet({0.5, 0.99})
    double p99 = 0.0;  //!< same estimator; >= p50 by construction
};

/**
 * Aggregate one per-port stat vector.  Percentiles come from one
 * joint streaming P^2 estimator (P2QuantileSet, common/stats.hh):
 * exact linear interpolation at rank p*(n-1) for up to seven ports,
 * the shared 7-marker approximation beyond, always within
 * [min, max] and with p99 >= p50 guaranteed by the shared sorted
 * marker array.  Deterministic for a given input order, O(1) memory
 * in the port count.
 */
PortStatAgg aggregateStat(const std::vector<double> &per_port);

/** Switch-level aggregation of the per-port reports. */
struct SwitchReport
{
    unsigned ports = 0;
    std::size_t failedPorts = 0;

    /** Straight sums over ports. */
    std::uint64_t arrivals = 0;
    std::uint64_t granted = 0;  //!< golden-verified grants
    std::uint64_t drained = 0;
    std::uint64_t drops = 0;
    std::uint64_t undelivered = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t renames = 0;
    std::uint64_t dsaStalls = 0;

    /**
     * Per-stat aggregates across ports, in a fixed canonical order
     * (the JSON emission order).  Keys are the scenarioRecord field
     * names ("granted", "drops", "mean_delay_slots", ...).
     */
    std::vector<std::pair<std::string, PortStatAgg>> aggregates;

    /**
     * Every port's counters and high-water marks, namespaced
     * "port<i>.<stat>" ("port3.granted", "port0.head_sram.max"),
     * plus "across_ports.<stat>" samplers -- dump()able like any
     * component registry.
     */
    StatRegistry stats;

    /** The named aggregate, or nullptr when absent. */
    const PortStatAgg *agg(const std::string &name) const;
};

/** Outcome of a whole switch run. */
struct SwitchOutcome
{
    /** The plans that ran, in port order. */
    std::vector<PortPlan> plans;
    /** Per-port outcomes, in port order. */
    std::vector<sim::ScenarioOutcome> ports;
    SwitchReport report;
    bool passed = false;
    /** Every failed port's diagnosis (each names its seed). */
    std::string failure;
};

/**
 * Run a list of port plans: shard the ports onto the sweep engine's
 * thread pool (`jobs` workers; 1 = inline, 0 = hardware concurrency)
 * and aggregate the outcomes in port order.  Because every plan is
 * self-contained, the result -- including every byte of the derived
 * artifacts -- is independent of `jobs` and of the plans' positions
 * in the list.
 */
SwitchOutcome runPlans(const std::vector<PortPlan> &plans,
                       unsigned jobs);

/**
 * The switch simulator: resolves the configuration into port plans
 * once, then runs them on demand.
 */
class SwitchSim
{
  public:
    explicit SwitchSim(const SwitchConfig &cfg)
        : cfg_(cfg), plans_(planPorts(cfg))
    {}

    const SwitchConfig &config() const { return cfg_; }
    const std::vector<PortPlan> &plans() const { return plans_; }

    /** Run all ports (golden-checked, drained); see runPlans(). */
    SwitchOutcome
    run(unsigned jobs = 1) const
    {
        return runPlans(plans_, jobs);
    }

  private:
    SwitchConfig cfg_;
    std::vector<PortPlan> plans_;
};

/**
 * One result row per port: the scenario record of the port's leg
 * plus the port index, pattern and (for permutation) the affinity
 * stripe.  Field order is stable; the 1-port equivalence tests
 * byte-compare the scenario-record prefix against the matching
 * single-buffer leg.
 */
sweep::Record portRecord(const PortPlan &plan,
                         const sim::ScenarioOutcome &out);

/** The aggregate row: switch configuration echo, sums, and
 *  min/max/mean/p50/p99 for the headline stats. */
sweep::Record switchRecord(const SwitchConfig &cfg,
                           const SwitchOutcome &out);

/**
 * Emit the sweep-schema JSON/CSV artifacts of a finished run: one
 * row per port (in port order) plus one final "aggregate" row.
 * Purely a function of the outcome, hence byte-identical for any
 * --jobs value.  Paths: empty = skip, "-" = stdout.
 */
void emitSwitchArtifacts(const SwitchConfig &cfg,
                         const SwitchOutcome &out,
                         const std::string &tool,
                         sweep::Record extra_meta,
                         const std::string &json_path,
                         const std::string &csv_path);

} // namespace pktbuf::sw

#endif // PKTBUF_SWITCH_SWITCH_SIM_HH
