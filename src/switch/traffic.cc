#include "traffic.hh"

namespace pktbuf::sw
{

std::string
toString(TrafficPattern p)
{
    switch (p) {
      case TrafficPattern::Uniform:
        return "uniform";
      case TrafficPattern::Hotspot:
        return "hotspot";
      case TrafficPattern::Incast:
        return "incast";
      case TrafficPattern::Permutation:
        return "permutation";
    }
    return "?";
}

bool
parseTrafficPattern(const std::string &token, TrafficPattern &out)
{
    if (token == "uniform") {
        out = TrafficPattern::Uniform;
    } else if (token == "hotspot") {
        out = TrafficPattern::Hotspot;
    } else if (token == "incast") {
        out = TrafficPattern::Incast;
    } else if (token == "permutation") {
        out = TrafficPattern::Permutation;
    } else {
        return false;
    }
    return true;
}

} // namespace pktbuf::sw
