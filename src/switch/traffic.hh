/**
 * @file
 * Cross-port traffic patterns for the switch layer (src/switch).
 *
 * A pattern decides how the switch's aggregate offered load is split
 * across N ports and which per-port arrival process each port runs:
 *
 *  - uniform:     every port offers the same Bernoulli load;
 *  - hotspot:     k "hot" ports absorb a configurable fraction of
 *                 the switch's total arrivals, the rest share the
 *                 remainder (output-hotspot congestion);
 *  - incast:      long on/off bursts converge on one victim port
 *                 while the other ports stay lightly loaded (the
 *                 classic datacenter incast shape);
 *  - permutation: each port's arrivals round-robin over a fixed
 *                 affinity stripe of its VOQs, the stripe offset
 *                 drawn from a seeded permutation (a fixed
 *                 crossbar-permutation's port -> queue map).
 *
 * Pattern resolution is pure arithmetic on (pattern, port, ports,
 * load, master seed): no global state, so any port's workload can be
 * rebuilt in isolation -- the property behind the switch layer's
 * port-order-independence guarantee.
 */

#ifndef PKTBUF_SWITCH_TRAFFIC_HH
#define PKTBUF_SWITCH_TRAFFIC_HH

#include <string>

namespace pktbuf::sw
{

/** How the switch's aggregate traffic is spread over the ports. */
enum class TrafficPattern
{
    Uniform,      //!< same Bernoulli load on every port
    Hotspot,      //!< k hot ports take hotFraction of all arrivals
    Incast,       //!< bursts converge on one victim port
    Permutation,  //!< fixed port -> queue-stripe affinity map
};

/** @return the lower-case token ("uniform", "hotspot", ...). */
std::string toString(TrafficPattern p);

/**
 * Parse a pattern token.
 * @param token one of "uniform", "hotspot", "incast", "permutation"
 * @param out   receives the pattern on success
 * @return false when the token names no pattern
 */
bool parseTrafficPattern(const std::string &token, TrafficPattern &out);

} // namespace pktbuf::sw

#endif // PKTBUF_SWITCH_TRAFFIC_HH
