/**
 * @file
 * Shared helpers for the seeded fuzz-smoke tests: the PKTBUF_FUZZ_*
 * environment knobs, parsed in one place so the fuzz suites cannot
 * drift apart.
 */

#ifndef PKTBUF_TESTS_FUZZ_ENV_HH
#define PKTBUF_TESTS_FUZZ_ENV_HH

#include <cstdint>
#include <cstdlib>

namespace pktbuf::testutil
{

/** Unsigned env knob with a fallback (the fuzz controls). */
inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? std::strtoull(v, nullptr, 0) : fallback;
}

} // namespace pktbuf::testutil

#endif // PKTBUF_TESTS_FUZZ_ENV_HH
