/**
 * @file
 * Property tests of the Figure-6 block-cyclic bank mapping: queue to
 * group assignment, conflict-freedom of consecutive blocks within a
 * group, and stability of the mapping.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "dram/address_map.hh"

using namespace pktbuf;
using namespace pktbuf::dram;

TEST(AddressMap, GroupArithmetic)
{
    AddressMap m(256, 8);
    EXPECT_EQ(m.banks(), 256u);
    EXPECT_EQ(m.banksPerGroup(), 8u);
    EXPECT_EQ(m.groups(), 32u);
}

TEST(AddressMap, RejectsNonDividingGroups)
{
    EXPECT_THROW(AddressMap(100, 8), PanicError);
    EXPECT_THROW(AddressMap(16, 0), PanicError);
}

TEST(AddressMap, QueueStaysInItsGroup)
{
    AddressMap m(64, 4);
    for (QueueId p = 0; p < 200; ++p) {
        const unsigned g = m.groupOf(p);
        EXPECT_EQ(g, p % 16);
        for (std::uint64_t ord = 0; ord < 40; ++ord) {
            const unsigned bank = m.bankOf(p, ord);
            EXPECT_GE(bank, g * 4);
            EXPECT_LT(bank, (g + 1) * 4);
        }
    }
}

TEST(AddressMap, ConsecutiveBlocksHitDistinctBanks)
{
    // The core conflict-freedom property: B/b consecutive blocks of
    // one queue never share a bank.
    AddressMap m(64, 8);
    for (QueueId p = 0; p < 32; ++p) {
        for (std::uint64_t start = 0; start < 24; ++start) {
            std::set<unsigned> banks;
            for (std::uint64_t k = 0; k < 8; ++k)
                banks.insert(m.bankOf(p, start + k));
            EXPECT_EQ(banks.size(), 8u)
                << "queue " << p << " window at " << start;
        }
    }
}

TEST(AddressMap, BlockCyclicPeriod)
{
    AddressMap m(32, 4);
    for (QueueId p = 0; p < 8; ++p) {
        for (std::uint64_t ord = 0; ord < 64; ++ord) {
            EXPECT_EQ(m.bankOf(p, ord), m.bankOf(p, ord + 4));
        }
    }
}

TEST(AddressMap, SingleBankDegenerate)
{
    // RADS view: one bank, one group.
    AddressMap m(1, 1);
    EXPECT_EQ(m.groups(), 1u);
    EXPECT_EQ(m.groupOf(17), 0u);
    EXPECT_EQ(m.bankOf(17, 12345), 0u);
}

TEST(AddressMap, QueuesOfDifferentGroupsNeverShareBanks)
{
    AddressMap m(64, 8);
    for (QueueId a = 0; a < 16; ++a) {
        for (QueueId b = 0; b < 16; ++b) {
            if (m.groupOf(a) == m.groupOf(b))
                continue;
            for (std::uint64_t i = 0; i < 16; ++i) {
                for (std::uint64_t j = 0; j < 16; ++j) {
                    EXPECT_NE(m.bankOf(a, i), m.bankOf(b, j));
                }
            }
        }
    }
}
