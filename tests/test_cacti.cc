/**
 * @file
 * Tests of the cacti_lite technology model and the two SRAM buffer
 * designs of Section 7.1: monotonicity in capacity, port penalties,
 * the CAM-vs-linked-list ordering the paper relies on, and the
 * calibration anchors reported in the evaluation.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "model/cacti_lite.hh"
#include "model/sram_designs.hh"

using namespace pktbuf;
using namespace pktbuf::model;

TEST(CactiLite, DelayGrowsWithCapacity)
{
    double prev = 0.0;
    for (std::uint64_t kb = 16; kb <= 8192; kb *= 2) {
        const auto r = sramArray(kb * 1024 / 8, 64, 1);
        EXPECT_GT(r.accessNs, prev) << kb << " KiB";
        prev = r.accessNs;
    }
}

TEST(CactiLite, AreaGrowsLinearlyWithCapacity)
{
    const auto a = sramArray(1 << 14, 64, 1);
    const auto b = sramArray(1 << 17, 64, 1);
    EXPECT_NEAR(b.areaMm2 / a.areaMm2, 8.0, 2.5);
}

TEST(CactiLite, ExtraPortsCostAreaAndTime)
{
    const auto one = sramArray(1 << 15, 64, 1);
    const auto two = sramArray(1 << 15, 64, 2);
    EXPECT_GT(two.areaMm2, one.areaMm2 * 1.3);
    EXPECT_GT(two.accessNs, one.accessNs);
}

TEST(CactiLite, CamSlowerAndBiggerThanSramSameCapacity)
{
    const std::uint64_t entries = 1 << 13;
    const auto ram = sramArray(entries, 512, 1);
    const auto cam = camArray(entries, 24, 512, 1);
    EXPECT_GT(cam.accessNs, ram.accessNs);
    EXPECT_GT(cam.areaMm2, ram.areaMm2);
}

TEST(CactiLite, RejectsDegenerateArrays)
{
    EXPECT_THROW(sramArray(0, 64, 1), PanicError);
    EXPECT_THROW(sramArray(64, 0, 1), PanicError);
    EXPECT_THROW(sramArray(64, 64, 0), PanicError);
    EXPECT_THROW(camArray(0, 16, 64, 1), PanicError);
}

TEST(SramDesigns, CamIsFasterPerSlotButBigger)
{
    // The paper's trade-off: global CAM = shortest effective access
    // (dual-ported, no time multiplexing); unified linked list =
    // smallest area but 3 serialized accesses per slot.
    for (std::uint64_t cells : {1024ull, 8192ull, 65536ull}) {
        const auto cam = sizeSramBuffer(SramDesign::GlobalCam, cells,
                                        128, 128);
        const auto ll = sizeSramBuffer(SramDesign::LinkedListTimeMux,
                                       cells, 128, 128);
        EXPECT_LT(cam.effectiveNs, ll.effectiveNs) << cells;
        EXPECT_GT(cam.areaMm2, ll.areaMm2) << cells;
        EXPECT_DOUBLE_EQ(ll.effectiveNs, 3.0 * ll.rawAccessNs);
        EXPECT_DOUBLE_EQ(cam.effectiveNs, cam.rawAccessNs);
    }
}

TEST(SramDesigns, Oc768RadsMeetsSlotTime)
{
    // Section 7.2: at OC-768 both designs are far quicker than the
    // 12.8 ns slot, even at the shortest lookahead (300 KB).
    const std::uint64_t cells = 300 * 1024 / 64;
    const auto cam = sizeSramBuffer(SramDesign::GlobalCam, cells, 128,
                                    128);
    const auto ll = sizeSramBuffer(SramDesign::LinkedListTimeMux,
                                   cells, 128, 128);
    EXPECT_LT(cam.effectiveNs, 12.8);
    EXPECT_LT(ll.effectiveNs, 12.8);
    // ... and the small-area design costs ~0.1 cm^2.
    EXPECT_LT(ll.areaMm2 / 100.0, 0.25);
}

TEST(SramDesigns, Oc3072RadsFailsSlotTime)
{
    // Section 7.2: no RADS implementation meets 3.2 ns, even at the
    // longest lookahead (1.0 MB h-SRAM).
    const std::uint64_t cells = ecqfSramCells(512, 32);
    const auto best = bestSramBuffer(cells, 512, 512);
    EXPECT_GT(best.effectiveNs, 3.2);
}

TEST(SramDesigns, Oc3072CfdsMeetsSlotTime)
{
    // Section 8.3: a CFDS system with b = 4 meets 3.2 ns.
    BufferParams p{512, 32, 4, 256};
    const auto spec =
        headSramSpec(p, ecqfLookaheadSlots(p.queues, p.gran));
    const auto best =
        bestSramBuffer(spec.cells, spec.lists, p.queues);
    EXPECT_LE(best.effectiveNs, 3.2)
        << "CFDS b=4 h-SRAM of " << spec.cells << " cells measures "
        << best.effectiveNs << " ns";
}

TEST(SramDesigns, HeadSramSpecListsScaleWithBanking)
{
    // Section 8.2: the CFDS linked-list design needs Q * B/b lists.
    BufferParams p{512, 32, 4, 256};
    const auto spec = headSramSpec(p, 100);
    EXPECT_EQ(spec.lists, 512u * 8);
    BufferParams rads{512, 32, 32, 1};
    EXPECT_EQ(headSramSpec(rads, 100).lists, 512u);
}

TEST(SramDesigns, MaxQueuesCfdsBeatsRads)
{
    // Figure 11: CFDS supports several times more queues at OC-3072.
    const unsigned rads =
        maxQueuesMeetingSlot(32, 32, 1, LineRate::OC3072);
    const unsigned cfds4 =
        maxQueuesMeetingSlot(32, 4, 256, LineRate::OC3072);
    EXPECT_GT(cfds4, 3 * rads);
    EXPECT_GT(cfds4, 500u);
}

TEST(SramDesigns, MaxQueuesHasInteriorOptimum)
{
    // Figure 11 / Section 8.3: there is an optimal b strictly inside
    // (1, B): too-small b pays reordering SRAM, too-large b pays
    // granularity SRAM.
    unsigned best_b = 0, best_q = 0;
    unsigned q1 = 0, q32 = 0;
    for (unsigned b : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const unsigned mq = maxQueuesMeetingSlot(
            32, b, b == 32 ? 1 : 256, LineRate::OC3072);
        if (b == 1)
            q1 = mq;
        if (b == 32)
            q32 = mq;
        if (mq > best_q) {
            best_q = mq;
            best_b = b;
        }
    }
    EXPECT_GT(best_b, 1u);
    EXPECT_LT(best_b, 32u);
    EXPECT_GT(best_q, q1);
    EXPECT_GT(best_q, q32);
}
