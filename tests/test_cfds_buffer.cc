/**
 * @file
 * End-to-end tests of the CFDS buffer (Section 5): zero miss under
 * the adversarial pattern with the granularity reduced below the
 * DRAM random access time, conflict-freedom (bank-state oracle
 * panics), Eq. (1)/(2) bounds on the Requests Register, and the
 * latency-register grant timing.
 */

#include <gtest/gtest.h>

#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

BufferConfig
cfdsConfig(unsigned queues, unsigned B, unsigned b, unsigned banks)
{
    BufferConfig cfg;
    cfg.params = model::BufferParams{queues, B, b, banks};
    return cfg;
}

} // namespace

TEST(CfdsBuffer, ConstructionResolvesLatencyAndRr)
{
    const auto cfg = cfdsConfig(8, 8, 2, 16);
    HybridBuffer buf(cfg);
    EXPECT_EQ(buf.lookaheadDepth(),
              model::ecqfLookaheadSlots(8, 2));
    EXPECT_EQ(buf.latencyDepth(), model::latencySlots(cfg.params));
    // +4: implementation slack over Eq. (1) for the combined
    // register (see DESIGN.md).
    EXPECT_EQ(buf.scheduler().rr().capacity(),
              model::rrSize(cfg.params) + 4);
}

TEST(CfdsBuffer, WorstCaseRoundRobinZeroMiss)
{
    HybridBuffer buf(cfdsConfig(8, 8, 2, 16));
    RoundRobinWorstCase wl(8, 1, 1.0, 128);
    SimRunner runner(buf, wl);
    const auto r = runner.run(60000);
    EXPECT_GT(r.grants, 50000u);
}

TEST(CfdsBuffer, UniformRandomZeroMiss)
{
    HybridBuffer buf(cfdsConfig(8, 8, 4, 8));
    UniformRandom wl(8, 5, 0.95);
    SimRunner runner(buf, wl);
    const auto r = runner.run(60000);
    EXPECT_GT(r.grants, 30000u);
}

TEST(CfdsBuffer, BurstyZeroMiss)
{
    HybridBuffer buf(cfdsConfig(8, 8, 2, 32));
    BurstyOnOff wl(8, 7, 64, 1.0);
    SimRunner runner(buf, wl);
    const auto r = runner.run(60000);
    EXPECT_GT(r.grants, 20000u);
}

TEST(CfdsBuffer, GranularityOneWorks)
{
    // b = 1: per-cell transfers, the most aggressive banking.
    HybridBuffer buf(cfdsConfig(4, 8, 1, 16));
    RoundRobinWorstCase wl(4, 9, 1.0, 64);
    SimRunner runner(buf, wl);
    const auto r = runner.run(30000);
    EXPECT_GT(r.grants, 25000u);
}

TEST(CfdsBuffer, RequestsRegisterStaysWithinEq1)
{
    const auto cfg = cfdsConfig(8, 8, 2, 16);
    HybridBuffer buf(cfg);
    RoundRobinWorstCase wl(8, 3, 1.0, 64);
    SimRunner runner(buf, wl);
    runner.run(60000);
    const auto rep = buf.report();
    const auto r_bound =
        static_cast<std::int64_t>(model::rrSize(cfg.params)) + 4;
    EXPECT_LE(rep.rrHighWater, r_bound);
    // Eq. (2) analogue for the combined register: skips bounded by
    // 2 * d_max + 2 (two launch opportunities per interval).
    const auto d_bound =
        2 * static_cast<std::int64_t>(
                model::dsaMaxSkips(cfg.params)) + 2;
    EXPECT_LE(rep.rrMaxSkips, d_bound);
}

TEST(CfdsBuffer, OrrNeverExceedsInFlightWindow)
{
    const auto cfg = cfdsConfig(8, 8, 2, 16);
    HybridBuffer buf(cfg);
    UniformRandom wl(8, 11, 1.0);
    SimRunner runner(buf, wl);
    runner.run(40000);
    // Reads and writes share the ORR: at most 2 launches per b
    // slots, each locking a bank for B slots -> 2 * B/b entries.
    const std::int64_t bound =
        2 * static_cast<std::int64_t>(cfg.params.banksPerGroup());
    EXPECT_LE(buf.report().orrHighWater, bound);
}

TEST(CfdsBuffer, GrantTimingIsLookaheadPlusLatency)
{
    const auto cfg = cfdsConfig(4, 4, 2, 8);
    HybridBuffer buf(cfg);
    const auto depth = buf.pipelineDepth();
    EXPECT_EQ(depth, buf.lookaheadDepth() + buf.latencyDepth());
    for (int i = 0; i < 64; ++i) {
        Cell c;
        c.queue = 1;
        c.seq = static_cast<SeqNum>(i);
        buf.step(c, kInvalidQueue);
    }
    const Slot issued = buf.now();
    auto g = buf.step(std::nullopt, 1);
    std::uint64_t waited = 0;
    while (!g && waited < depth + 4) {
        g = buf.step(std::nullopt, kInvalidQueue);
        ++waited;
    }
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(buf.now() - issued, depth + 1);
    EXPECT_EQ(g->cell.seq, 0u);
}

TEST(CfdsBuffer, SmallerSramThanRads)
{
    // The headline claim: CFDS shrinks the SRAM.  Compare the
    // enforced capacities of equivalent configurations.
    HybridBuffer rads(cfdsConfig(512, 32, 32, 1));
    HybridBuffer cfds(cfdsConfig(512, 32, 4, 256));
    EXPECT_LT(cfds.headSram().capacity(), rads.headSram().capacity());
    EXPECT_LT(cfds.tailSram().capacity(), rads.tailSram().capacity());
}

TEST(CfdsBuffer, DramReadsAndWritesAreBlockSized)
{
    HybridBuffer buf(cfdsConfig(4, 8, 2, 8));
    UniformRandom wl(4, 13, 1.0);
    SimRunner runner(buf, wl);
    const auto res = runner.run(30000);
    const auto rep = buf.report();
    // Conservation: granted cells = bypassed + read-from-DRAM cells
    // still excludes cells parked in h-SRAM; check weak bounds.
    EXPECT_LE(rep.dramReads, rep.dramWrites);
    EXPECT_GE(rep.bypasses + rep.dramReads * 2, res.grants -
              buf.headSram().occupancy());
}

TEST(CfdsBuffer, SurvivesLongMixedSoak)
{
    // Longer soak mixing bursts and randomness across phases.
    HybridBuffer buf(cfdsConfig(8, 8, 4, 16));
    BurstyOnOff bursty(8, 17, 128, 1.0);
    UniformRandom uniform(8, 18, 0.9);
    SimRunner r1(buf, bursty);
    r1.run(40000);
    // NOTE: a second runner would reuse queue seq numbers; keep one
    // workload per buffer.  Drain instead.
    r1.drain(200000);
    std::uint64_t left = 0;
    for (QueueId q = 0; q < 8; ++q)
        left += bursty.credit(q);
    EXPECT_EQ(left, 0u);
    (void)uniform;
}

TEST(CfdsBuffer, RenamingRequiresCfdsAndDram)
{
    BufferConfig cfg = cfdsConfig(8, 8, 8, 1);
    cfg.renaming = true;
    cfg.dramCells = 4096;
    EXPECT_THROW(HybridBuffer{cfg}, FatalError);

    BufferConfig cfg2 = cfdsConfig(8, 8, 2, 16);
    cfg2.renaming = true;
    EXPECT_THROW(HybridBuffer{cfg2}, FatalError); // no dramCells
}
