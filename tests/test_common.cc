/**
 * @file
 * Unit tests for the common substrate: types, logging, RNG,
 * statistics, shift register.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/shift_register.hh"
#include "common/stats.hh"
#include "common/types.hh"

using namespace pktbuf;

TEST(Types, SlotTimes)
{
    EXPECT_DOUBLE_EQ(slotTimeNs(LineRate::OC3072), 3.2);
    EXPECT_DOUBLE_EQ(slotTimeNs(LineRate::OC768), 12.8);
    EXPECT_DOUBLE_EQ(slotTimeNs(LineRate::OC192), 51.2);
}

TEST(Types, LineRateNames)
{
    EXPECT_EQ(toString(LineRate::OC3072), "OC-3072");
    EXPECT_EQ(toString(LineRate::OC768), "OC-768");
}

TEST(Types, CellStampDetectsIdentity)
{
    Cell a{1, 5, 0};
    Cell b{1, 5, 99}; // arrival slot does not affect identity
    Cell c{2, 5, 0};
    Cell d{1, 6, 0};
    EXPECT_EQ(a.stamp(), b.stamp());
    EXPECT_NE(a.stamp(), c.stamp());
    EXPECT_NE(a.stamp(), d.stamp());
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
    EXPECT_THROW(fatal("bad config"), FatalError);
    try {
        panic("value=", 7);
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value=7"),
                  std::string::npos);
    }
}

TEST(Logging, PanicIfConditions)
{
    EXPECT_NO_THROW(panic_if(false, "never"));
    EXPECT_THROW(panic_if(true, "always"), PanicError);
    EXPECT_NO_THROW(fatal_if(false, "never"));
    EXPECT_THROW(fatal_if(true, "always"), FatalError);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform)
{
    Rng r(7);
    std::vector<int> hist(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const auto v = r.below(10);
        ASSERT_LT(v, 10u);
        ++hist[static_cast<int>(v)];
    }
    for (const int h : hist) {
        EXPECT_GT(h, n / 10 - n / 50);
        EXPECT_LT(h, n / 10 + n / 50);
    }
}

TEST(Rng, BetweenInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.between(3, 5));
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_TRUE(seen.count(3) && seen.count(4) && seen.count(5));
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Stats, CounterAndSampler)
{
    Counter c;
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);

    Sampler s;
    EXPECT_EQ(s.mean(), 0.0);
    s.sample(1.0);
    s.sample(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_EQ(s.count(), 2u);
}

TEST(Stats, HighWaterTracksMaximum)
{
    HighWater h;
    h.observe(3);
    h.observe(1);
    h.observe(7);
    h.observe(2);
    EXPECT_EQ(h.max(), 7);
}

TEST(Stats, HistogramPercentile)
{
    Histogram h(1.0, 16);
    for (int i = 0; i < 100; ++i)
        h.sample(i % 10);
    EXPECT_NEAR(h.percentile(0.5), 5.0, 1.1);
    EXPECT_NEAR(h.percentile(0.99), 10.0, 1.1);
}

TEST(Stats, HistogramUnderflowBucketCatchesNegatives)
{
    // A negative sample must not be clamped into bucket 0 -- a
    // latency-delta histogram would silently mask sign errors.
    Histogram h(1.0, 8);
    h.sample(-3.0);
    h.sample(-0.5);
    h.sample(0.0);
    h.sample(2.5);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.buckets()[0], 1u);  // only the genuine 0.0 sample
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.summary().count(), 4u);
    EXPECT_DOUBLE_EQ(h.summary().min(), -3.0);
}

TEST(Stats, HistogramPercentileAccountsForUnderflow)
{
    Histogram h(1.0, 8);
    for (int i = 0; i < 9; ++i)
        h.sample(-1.0);
    h.sample(5.0);
    // 90% of the mass is below zero; the 50th percentile must not
    // report a bucket value as if the negatives were in bucket 0.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_GT(h.percentile(0.95), 5.0);
}

TEST(ShiftRegister, FifoWithExactDepth)
{
    ShiftRegister<int> sr(3, -1);
    EXPECT_EQ(sr.shift(1), -1);
    EXPECT_EQ(sr.shift(2), -1);
    EXPECT_EQ(sr.shift(3), -1);
    EXPECT_EQ(sr.shift(4), 1);
    EXPECT_EQ(sr.shift(5), 2);
}

TEST(ShiftRegister, PeekSeesInOrder)
{
    ShiftRegister<int> sr(4, 0);
    sr.shift(10);
    sr.shift(20);
    // peek(0) is the value emerging next.
    EXPECT_EQ(sr.peek(0), 0);
    EXPECT_EQ(sr.peek(2), 10);
    EXPECT_EQ(sr.peek(3), 20);
}

TEST(ShiftRegister, OccupancyAndClear)
{
    ShiftRegister<int> sr(4, 0);
    sr.shift(1);
    sr.shift(2);
    EXPECT_EQ(sr.occupancy(), 2u);
    sr.clear();
    EXPECT_EQ(sr.occupancy(), 0u);
}

TEST(ShiftRegister, DepthOneIsOneSlotDelay)
{
    ShiftRegister<int> sr(1, -1);
    EXPECT_EQ(sr.shift(5), -1);
    EXPECT_EQ(sr.shift(6), 5);
}

TEST(ShiftRegister, PeekBeyondDepthPanics)
{
    ShiftRegister<int> sr(2, 0);
    EXPECT_THROW(sr.peek(2), PanicError);
}
