/**
 * @file
 * Tests of the public core API: SystemConfig derivation (paper
 * defaults), the factory, and a short end-to-end run through the
 * facade with both architectures.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "core/system_config.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::core;

TEST(Core, PaperDefaultGranularities)
{
    SystemConfig sys;
    sys.rate = LineRate::OC3072;
    EXPECT_EQ(sys.granRads(), 32u);
    sys.rate = LineRate::OC768;
    EXPECT_EQ(sys.granRads(), 8u);
    sys.rate = LineRate::OC192;
    EXPECT_EQ(sys.granRads(), 2u);
}

TEST(Core, NonDefaultDramTimingRoundsUp)
{
    SystemConfig sys;
    sys.rate = LineRate::OC3072; // 3.2 ns slot
    sys.dramRandomAccessNs = 20.0;
    EXPECT_EQ(sys.granRads(), 8u); // 20/3.2 = 6.25 -> 8
}

TEST(Core, RadsConfigShape)
{
    SystemConfig sys;
    sys.queues = 64;
    const auto cfg = makeBufferConfig(sys, BufferKind::Rads);
    EXPECT_TRUE(cfg.params.isRads());
    EXPECT_EQ(cfg.params.queues, 64u);
    EXPECT_EQ(cfg.params.banks, 1u);
}

TEST(Core, CfdsConfigShape)
{
    SystemConfig sys;
    sys.queues = 64;
    sys.gran = 4;
    sys.banks = 64;
    const auto cfg = makeBufferConfig(sys, BufferKind::Cfds);
    EXPECT_FALSE(cfg.params.isRads());
    EXPECT_EQ(cfg.params.gran, 4u);
    EXPECT_EQ(cfg.params.groups(), 8u);
}

TEST(Core, CfdsRenamingOversubscribes)
{
    SystemConfig sys;
    sys.queues = 64;
    sys.gran = 2;
    sys.banks = 64;
    sys.renaming = true;
    sys.oversubscribe = 1.25;
    sys.dramCells = 1 << 16;
    const auto cfg = makeBufferConfig(sys, BufferKind::Cfds);
    EXPECT_EQ(cfg.params.queues, 80u);
    EXPECT_EQ(cfg.logicalQueues, 64u);
    EXPECT_TRUE(cfg.renaming);
}

TEST(Core, InvalidGranularityRejected)
{
    SystemConfig sys;
    sys.gran = 5; // does not divide 32
    EXPECT_THROW(makeBufferConfig(sys, BufferKind::Cfds), FatalError);
}

TEST(Core, FactoryBuildsWorkingBuffers)
{
    SystemConfig sys;
    sys.rate = LineRate::OC768; // B = 8: small structures
    sys.queues = 8;
    sys.gran = 2;
    sys.banks = 16;
    for (const auto kind : {BufferKind::Rads, BufferKind::Cfds}) {
        auto buf = makeBuffer(sys, kind);
        sim::UniformRandom wl(8, 3, 0.9);
        sim::SimRunner runner(*buf, wl);
        const auto r = runner.run(20000);
        EXPECT_GT(r.grants, 10000u) << toString(kind);
    }
}

TEST(Core, DimensioningReportMentionsKeyFields)
{
    SystemConfig sys;
    sys.queues = 64;
    sys.gran = 4;
    sys.banks = 64;
    std::ostringstream os;
    printDimensioningReport(os, sys, BufferKind::Cfds);
    const auto text = os.str();
    EXPECT_NE(text.find("CFDS"), std::string::npos);
    EXPECT_NE(text.find("requests register"), std::string::npos);
    EXPECT_NE(text.find("h-SRAM"), std::string::npos);
    EXPECT_NE(text.find("global CAM"), std::string::npos);
}

TEST(Core, KindNames)
{
    EXPECT_EQ(toString(BufferKind::Rads), "RADS");
    EXPECT_EQ(toString(BufferKind::Cfds), "CFDS");
}
