/**
 * @file
 * Tests of the crossbar layer (src/crossbar): per-slot matching
 * invariants for every scheduler x pattern combination, iSLIP's
 * pointer accept rule, a differential oracle against brute-force
 * maximum matchings, the 1x1 == single-buffer byte equivalence, the
 * 16-port uniform throughput floor, checkpoint/restore bit identity
 * and the seeded crossbar fuzz smoke.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "crossbar/crossbar_sim.hh"
#include "crossbar/scheduler.hh"
#include "fuzz_env.hh"
#include "sweep/scenario_sweep.hh"
#include "sweep/sweep.hh"

using namespace pktbuf;
using namespace pktbuf::xbar;

namespace
{

/** Serialize a record to one JSON-ish line for byte comparison. */
std::string
recordJson(const sweep::Record &rec)
{
    std::string out = "{";
    for (const auto &[k, v] : rec.fields()) {
        if (out.size() > 1)
            out += ", ";
        out += sweep::Value(k).json() + ": " + v.json();
    }
    return out + "}";
}

/** Concatenated per-input + aggregate rows: the artifact payload. */
std::string
outcomeJson(const CrossbarConfig &cfg, const CrossbarOutcome &out)
{
    std::string all;
    for (std::size_t i = 0; i < out.inputs.size(); ++i)
        all += recordJson(inputRecord(out.plans[i], out.inputs[i]))
               + "\n";
    all += recordJson(crossbarRecord(cfg, out)) + "\n";
    return all;
}

CrossbarConfig
baseConfig(unsigned ports, sw::TrafficPattern pattern,
           std::uint64_t slots = 2000)
{
    CrossbarConfig cfg;
    cfg.ports = ports;
    cfg.pattern = pattern;
    cfg.slots = slots;
    cfg.masterSeed = 11;
    return cfg;
}

const SchedulerKind kAllKinds[] = {SchedulerKind::Islip,
                                   SchedulerKind::Qps,
                                   SchedulerKind::RandomMaximal};

const sw::TrafficPattern kAllPatterns[] = {
    sw::TrafficPattern::Uniform, sw::TrafficPattern::Hotspot,
    sw::TrafficPattern::Incast, sw::TrafficPattern::Permutation};

/** Build an occupancy from a row-major depth matrix. */
Occupancy
makeOcc(unsigned ports,
        const std::vector<std::vector<std::uint64_t>> &rows)
{
    Occupancy occ(ports);
    for (unsigned i = 0; i < ports; ++i)
        for (unsigned j = 0; j < ports; ++j)
            occ.at(i, j) = rows[i][j];
    return occ;
}

/** A random sparse occupancy for the scheduler replay tests. */
Occupancy
randomOcc(unsigned ports, Rng &rng)
{
    Occupancy occ(ports);
    for (unsigned i = 0; i < ports; ++i)
        for (unsigned j = 0; j < ports; ++j)
            if (rng.chance(0.4))
                occ.at(i, j) = 1 + rng.below(5);
    return occ;
}

} // namespace

TEST(CrossbarScheduler, KindTokensRoundTrip)
{
    for (const auto k : kAllKinds) {
        SchedulerKind back = SchedulerKind::RandomMaximal;
        ASSERT_TRUE(parseSchedulerKind(toString(k), back))
            << toString(k);
        EXPECT_EQ(back, k);
    }
    SchedulerKind out;
    EXPECT_FALSE(parseSchedulerKind("islip4", out));
    EXPECT_FALSE(parseSchedulerKind("", out));
    EXPECT_EQ(makeScheduler(SchedulerKind::Islip, 4, 2, 8, 1)->name(),
              "islip2");
    EXPECT_EQ(makeScheduler(SchedulerKind::Qps, 4, 2, 8, 1)->name(),
              "qps_w8");
    EXPECT_EQ(makeScheduler(SchedulerKind::RandomMaximal, 4, 2, 8, 1)
                  ->name(),
              "random");
}

TEST(CrossbarScheduler, ValidatorsJudgeHandMatchings)
{
    const auto occ = makeOcc(3, {{1, 0, 0},   //
                                 {0, 2, 0},   //
                                 {0, 3, 1}});

    // input0 -> out0, input1 -> out1, input2 unmatched: conflict-free
    // and backed, and maximal (input2's only free backed VOQ is out2,
    // which is free -- so NOT maximal; out2 backed by occ(2,2)=1).
    Matching m = {0, 1, kInvalidQueue};
    EXPECT_EQ(matchingSize(m), 2u);
    EXPECT_TRUE(matchingConflictFree(m, 3));
    EXPECT_TRUE(matchingBacked(m, occ));
    EXPECT_FALSE(matchingMaximal(m, occ));

    m = {0, 1, 2};
    EXPECT_TRUE(matchingConflictFree(m, 3));
    EXPECT_TRUE(matchingBacked(m, occ));
    EXPECT_TRUE(matchingMaximal(m, occ));

    // Duplicate output and out-of-range target are conflicts.
    EXPECT_FALSE(matchingConflictFree({1, 1, kInvalidQueue}, 3));
    EXPECT_FALSE(matchingConflictFree({3, kInvalidQueue,
                                       kInvalidQueue}, 3));
    // Granting an empty VOQ is unbacked.
    EXPECT_FALSE(matchingBacked({1, kInvalidQueue, kInvalidQueue},
                                occ));

    // The empty matching over an empty fabric is trivially maximal.
    const Occupancy empty(3);
    EXPECT_TRUE(matchingMaximal(
        {kInvalidQueue, kInvalidQueue, kInvalidQueue}, empty));
    EXPECT_EQ(maximumMatchingSize(empty), 0u);

    // Kuhn's oracle finds the augmenting path a greedy pass misses:
    // input0 can reach both outputs, input1 only output0, so the
    // maximum is 2 even though greedy (input0 -> out0 first) gets 1.
    const auto aug = makeOcc(2, {{4, 1},  //
                                 {2, 0}});
    EXPECT_EQ(maximumMatchingSize(aug), 2u);
    EXPECT_EQ(maximumMatchingSize(occ), 3u);
}

TEST(CrossbarScheduler, IslipPointersFollowTheAcceptRule)
{
    IslipScheduler s(4, /*iterations=*/1);
    ASSERT_EQ(s.grantPointers(), std::vector<unsigned>(4, 0));
    ASSERT_EQ(s.acceptPointers(), std::vector<unsigned>(4, 0));

    // input0 requests {out0, out1}, input1 requests {out0}.  Both
    // outputs grant input0 (pointers at 0); input0 accepts out0.
    // Only the *accepted* pair's pointers advance: g[0] -> 1,
    // a[0] -> 1.  out1's unaccepted grant must NOT move g[1] -- the
    // rule that prevents pointer synchronization.
    auto occ = makeOcc(4, {{2, 1, 0, 0},
                           {3, 0, 0, 0},
                           {0, 0, 0, 0},
                           {0, 0, 0, 0}});
    Matching m = s.schedule(occ);
    EXPECT_EQ(m, (Matching{0, kInvalidQueue, kInvalidQueue,
                           kInvalidQueue}));
    EXPECT_EQ(s.grantPointers(), (std::vector<unsigned>{1, 0, 0, 0}));
    EXPECT_EQ(s.acceptPointers(), (std::vector<unsigned>{1, 0, 0, 0}));

    // Same contenders again: out0's pointer now favors input1, so
    // the grant rotates -- input0 starves this slot, input1 serves.
    occ = makeOcc(4, {{2, 0, 0, 0},
                      {3, 0, 0, 0},
                      {0, 0, 0, 0},
                      {0, 0, 0, 0}});
    m = s.schedule(occ);
    EXPECT_EQ(m, (Matching{kInvalidQueue, 0, kInvalidQueue,
                           kInvalidQueue}));
    EXPECT_EQ(s.grantPointers(), (std::vector<unsigned>{2, 0, 0, 0}));
    EXPECT_EQ(s.acceptPointers(), (std::vector<unsigned>{1, 1, 0, 0}));
}

TEST(CrossbarScheduler, IslipLaterIterationsLeavePointersAlone)
{
    IslipScheduler s(4, /*iterations=*/2);

    // Iteration 0 matches (input0, out0); iteration 1 then matches
    // (input1, out1).  The second-iteration match must not advance
    // g[1] or a[1] -- only first-iteration accepts move pointers.
    const auto occ = makeOcc(4, {{2, 1, 0, 0},
                                 {0, 3, 0, 0},
                                 {0, 0, 0, 0},
                                 {0, 0, 0, 0}});
    const Matching m = s.schedule(occ);
    EXPECT_EQ(m, (Matching{0, 1, kInvalidQueue, kInvalidQueue}));
    EXPECT_EQ(s.lastIterations(), 2u);
    EXPECT_EQ(s.grantPointers(), (std::vector<unsigned>{1, 0, 0, 0}));
    EXPECT_EQ(s.acceptPointers(), (std::vector<unsigned>{1, 0, 0, 0}));
}

TEST(CrossbarScheduler, SaveLoadReplaysEverySchedulerBitForBit)
{
    constexpr unsigned kPorts = 5;
    for (const auto kind : kAllKinds) {
        SCOPED_TRACE(toString(kind));
        auto live = makeScheduler(kind, kPorts, 3, 4, 77);
        auto shadow = makeScheduler(kind, kPorts, 3, 4, 77);
        Rng traffic(91);
        for (unsigned t = 0; t < 40; ++t) {
            const auto occ = randomOcc(kPorts, traffic);
            ASSERT_EQ(live->schedule(occ), shadow->schedule(occ));
        }
        // Round-trip `live` into a fresh, differently seeded
        // instance; it must continue exactly like the shadow.
        ser::Writer w;
        live->save(w);
        auto restored = makeScheduler(kind, kPorts, 3, 4, 12345);
        ser::Reader r(w.bytes());
        restored->load(r);
        r.done();
        for (unsigned t = 0; t < 40; ++t) {
            const auto occ = randomOcc(kPorts, traffic);
            ASSERT_EQ(restored->schedule(occ), shadow->schedule(occ));
        }
    }
}

TEST(CrossbarPlan, ImpossibleKnobsAreFatal)
{
    CrossbarConfig cfg = baseConfig(0, sw::TrafficPattern::Uniform);
    EXPECT_THROW(planCrossbar(cfg), FatalError);
    cfg = baseConfig(4, sw::TrafficPattern::Incast);
    cfg.incastVictim = 4;  // out of range
    EXPECT_THROW(planCrossbar(cfg), FatalError);
    cfg = baseConfig(4, sw::TrafficPattern::Uniform);
    cfg.load = 0.0;
    EXPECT_THROW(planCrossbar(cfg), FatalError);
    cfg = baseConfig(4, sw::TrafficPattern::Hotspot);
    cfg.hotFraction = 1.5;
    EXPECT_THROW(planCrossbar(cfg), FatalError);
    cfg.hotFraction = 0.0;
    EXPECT_THROW(planCrossbar(cfg), FatalError);
    cfg = baseConfig(4, sw::TrafficPattern::Incast);
    cfg.hotFraction = 1.0;
    EXPECT_THROW(planCrossbar(cfg), FatalError);
}

TEST(CrossbarPlan, LoadsResolveWithinAdmissibleCaps)
{
    // Permutation concentrates each input's whole rate on one VOQ,
    // so the per-VOQ bound clamps the input load.
    CrossbarConfig cfg =
        baseConfig(8, sw::TrafficPattern::Permutation);
    cfg.load = 0.9;
    auto plans = planCrossbar(cfg);
    ASSERT_EQ(plans.size(), 8u);
    for (const auto &p : plans) {
        EXPECT_DOUBLE_EQ(p.scenario.load,
                         CrossbarConfig::kMaxVoqLoad);
        EXPECT_EQ(p.dest.permTarget, (p.input + 1) % 8);
        EXPECT_EQ(p.scenario.seed,
                  sweep::deriveSeed(cfg.masterSeed, p.input));
    }

    // A 1x1 crossbar is the same concentration regardless of pattern.
    cfg = baseConfig(1, sw::TrafficPattern::Uniform);
    cfg.load = 0.9;
    plans = planCrossbar(cfg);
    EXPECT_DOUBLE_EQ(plans[0].scenario.load,
                     CrossbarConfig::kMaxVoqLoad);

    // Hotspot: the hot side's fraction is clamped so no hot output
    // sees more than kMaxSkewedOutputLoad in aggregate.
    cfg = baseConfig(8, sw::TrafficPattern::Hotspot);
    cfg.load = 0.9;
    cfg.hotFraction = 0.9;
    plans = planCrossbar(cfg);
    const auto &d = plans[0].dest;
    ASSERT_EQ(d.hotOutputs, 2u);  // default max(1, ports / 4)
    const double per_hot_output =
        8 * plans[0].scenario.load * d.hotFraction / d.hotOutputs;
    EXPECT_LE(per_hot_output,
              CrossbarConfig::kMaxSkewedOutputLoad + 1e-9);

    // Incast: the burst-start probability is a real probability and
    // the implied victim fraction respects the same output cap.
    cfg = baseConfig(6, sw::TrafficPattern::Incast);
    cfg.load = 0.9;
    cfg.hotFraction = 0.9;
    cfg.incastVictim = 3;
    plans = planCrossbar(cfg);
    EXPECT_GT(plans[0].dest.burstStart, 0.0);
    EXPECT_LT(plans[0].dest.burstStart, 1.0);
    EXPECT_EQ(plans[0].dest.victim, 3u);
}

TEST(CrossbarRun, InvariantsHoldForEverySchedulerAndPattern)
{
    for (const auto kind : kAllKinds) {
        for (const auto pattern : kAllPatterns) {
            SCOPED_TRACE(toString(kind) + std::string("/")
                         + sw::toString(pattern));
            CrossbarConfig cfg = baseConfig(4, pattern, 1500);
            cfg.scheduler = kind;
            cfg.islipIterations = 4;  // N rounds => maximal
            CrossbarRun run(cfg);
            std::uint64_t checked = 0;
            run.onMatch = [&](Slot, const Occupancy &occ,
                              const Matching &m, unsigned iters) {
                ++checked;
                ASSERT_TRUE(matchingConflictFree(m, cfg.ports));
                ASSERT_TRUE(matchingBacked(m, occ));
                ASSERT_TRUE(matchingMaximal(m, occ));
                ASSERT_GE(iters, 1u);
            };
            const auto out = run.finish();
            EXPECT_TRUE(out.passed) << out.failure;
            EXPECT_GT(checked, 0u);
            EXPECT_EQ(out.report.activeSlots, checked);
        }
    }
}

TEST(CrossbarRun, OracleBoundsEverySlotAndIslipNearsMaximum)
{
    // Differential oracle, ports 2..6: every scheduler's per-slot
    // matching is maximal and never exceeds the brute-force maximum;
    // iSLIP with N iterations additionally serves >= 98% of what a
    // maximum-matching fabric could have, cumulatively.
    for (unsigned ports = 2; ports <= 6; ++ports) {
        for (const auto kind : kAllKinds) {
            SCOPED_TRACE(toString(kind) + std::string(" ports=")
                         + std::to_string(ports));
            CrossbarConfig cfg =
                baseConfig(ports, sw::TrafficPattern::Uniform, 3000);
            cfg.scheduler = kind;
            cfg.islipIterations = ports;
            cfg.load = 0.6;
            CrossbarRun run(cfg);
            std::uint64_t matched = 0, maximum = 0;
            run.onMatch = [&](Slot, const Occupancy &occ,
                              const Matching &m, unsigned) {
                const auto size = matchingSize(m);
                const auto best = maximumMatchingSize(occ);
                ASSERT_TRUE(matchingMaximal(m, occ));
                ASSERT_LE(size, best);
                matched += size;
                maximum += best;
            };
            const auto out = run.finish();
            ASSERT_TRUE(out.passed) << out.failure;
            ASSERT_GT(maximum, 0u);
            const double ratio =
                static_cast<double>(matched)
                / static_cast<double>(maximum);
            // A maximal matching is at least half a maximum one
            // slot by slot; in practice every scheduler here sits
            // far above the theory floor.
            EXPECT_GE(ratio, 0.5);
            if (kind == SchedulerKind::Islip) {
                // iSLIP tracks the per-slot maximum closely (a
                // maximal matching misses the odd augmenting path)
                // and, the property that matters, serves >= 98% of
                // the offered cells within the main phase.
                EXPECT_GE(ratio, 0.9);
                EXPECT_GE(out.report.throughput, 0.98)
                    << "matched " << out.report.matchEdges << " of "
                    << out.report.arrivals;
            }
        }
    }
}

TEST(CrossbarEquivalence, OnePortReproducesSingleBufferLeg)
{
    // The load-bearing layering invariant: a 1x1 crossbar *is* the
    // matching single-buffer scenario leg.  Any maximal scheduler is
    // work-conserving at N == 1, which is exactly what the
    // self-greedy reference workload plays back through the plain
    // runScenarioWith() skeleton -- so the serialized scenario
    // records must agree byte for byte, for every scheduler.
    for (const auto kind : kAllKinds) {
        SCOPED_TRACE(toString(kind));
        CrossbarConfig cfg =
            baseConfig(1, sw::TrafficPattern::Uniform, 4000);
        cfg.scheduler = kind;
        cfg.masterSeed = 23;
        const auto out = runCrossbar(cfg);
        ASSERT_TRUE(out.passed) << out.failure;
        ASSERT_EQ(out.inputs.size(), 1u);

        const auto plans = planCrossbar(cfg);
        auto ref = makeInputWorkload(plans[0], /*self_greedy=*/true);
        const auto leg =
            sim::runScenarioWith(plans[0].scenario, *ref);
        EXPECT_TRUE(leg.passed) << leg.failure;
        EXPECT_EQ(
            recordJson(sweep::scenarioRecord(plans[0].scenario,
                                             out.inputs[0])),
            recordJson(sweep::scenarioRecord(plans[0].scenario,
                                             leg)));
    }
}

TEST(CrossbarRun, SixteenPortUniformIslipSustainsThroughput)
{
    // The acceptance bar: 16 ports, uniform admissible load, iSLIP
    // with 4 iterations serves >= 95% of offered cells in-phase.
    CrossbarConfig cfg =
        baseConfig(16, sw::TrafficPattern::Uniform, 6000);
    cfg.scheduler = SchedulerKind::Islip;
    cfg.islipIterations = 4;
    cfg.load = 0.6;
    const auto out = runCrossbar(cfg);
    ASSERT_TRUE(out.passed) << out.failure;
    EXPECT_GT(out.report.arrivals, 0u);
    EXPECT_GE(out.report.throughput, 0.95)
        << "matched " << out.report.matchEdges << " of "
        << out.report.arrivals;
    EXPECT_EQ(out.report.drops, 0u);
}

TEST(CrossbarRun, RepeatRunsAreByteIdentical)
{
    CrossbarConfig cfg =
        baseConfig(4, sw::TrafficPattern::Hotspot, 2000);
    cfg.scheduler = SchedulerKind::Qps;
    EXPECT_EQ(outcomeJson(cfg, runCrossbar(cfg)),
              outcomeJson(cfg, runCrossbar(cfg)));
}

TEST(CrossbarCheckpoint, RestoreIsBitIdenticalForEveryScheduler)
{
    // Checkpoint every 700 slots (deliberately not a divisor of the
    // budget), restore into a completely fresh fabric each time, and
    // demand the artifact bytes of the stitched run match a plain
    // one.  Incast exercises the burst-machine serialization.
    for (const auto kind : kAllKinds) {
        for (const auto pattern : {sw::TrafficPattern::Uniform,
                                   sw::TrafficPattern::Incast}) {
            SCOPED_TRACE(toString(kind) + std::string("/")
                         + sw::toString(pattern));
            CrossbarConfig cfg = baseConfig(4, pattern, 3000);
            cfg.scheduler = kind;
            const auto plain = runCrossbar(cfg);
            ASSERT_TRUE(plain.passed) << plain.failure;
            const auto stitched = runCrossbarCheckpointed(cfg, 700);
            ASSERT_TRUE(stitched.passed) << stitched.failure;
            EXPECT_EQ(outcomeJson(cfg, plain),
                      outcomeJson(cfg, stitched));
        }
    }
}

TEST(CrossbarCheckpoint, ForeignOrCorruptEnvelopesAreFatal)
{
    CrossbarConfig cfg =
        baseConfig(3, sw::TrafficPattern::Uniform, 1000);
    CrossbarRun a(cfg);
    a.runTo(400);
    const auto bytes = a.checkpoint();

    // A different master seed is a different fingerprint text.
    CrossbarConfig other = cfg;
    other.masterSeed = 999;
    CrossbarRun b(other);
    EXPECT_THROW(b.restore(bytes), FatalError);

    // So is a different scheduler.
    other = cfg;
    other.scheduler = SchedulerKind::Qps;
    CrossbarRun c(other);
    EXPECT_THROW(c.restore(bytes), FatalError);

    // Flipping a payload byte breaks the envelope checksum.
    auto corrupt = bytes;
    corrupt[corrupt.size() / 2] ^= 0x40;
    CrossbarRun d(cfg);
    EXPECT_THROW(d.restore(corrupt), FatalError);

    // The pristine envelope still restores and completes cleanly.
    CrossbarRun e(cfg);
    e.restore(bytes);
    EXPECT_EQ(e.executed(), 400u);
    const auto out = e.finish();
    EXPECT_TRUE(out.passed) << out.failure;
}

TEST(CrossbarFuzz, CrossbarFuzzSmoke)
{
    // Seeded fuzz: random radix, pattern, scheduler, buffer variant,
    // load and checkpoint cadence; every leg must pass its golden
    // checks and survive checkpoint/restore byte-identically.
    // PKTBUF_FUZZ_SEED / PKTBUF_FUZZ_ITERS widen the net (the fuzz
    // CTest entry and the nightly soak both do).
    const auto seed = testutil::envU64("PKTBUF_FUZZ_SEED", 1);
    const auto iters = testutil::envU64("PKTBUF_FUZZ_ITERS", 3);
    const sim::BufferVariant variants[] = {
        sim::BufferVariant::Rads, sim::BufferVariant::Cfds,
        sim::BufferVariant::CfdsRenaming};

    for (std::uint64_t it = 0; it < iters; ++it) {
        Rng rng(sweep::deriveSeed(seed, it));
        CrossbarConfig cfg;
        cfg.ports = 1 + static_cast<unsigned>(rng.below(6));
        cfg.pattern = kAllPatterns[rng.below(4)];
        cfg.scheduler = kAllKinds[rng.below(3)];
        cfg.islipIterations = 1 + static_cast<unsigned>(rng.below(4));
        cfg.qpsWindow = 1 + static_cast<unsigned>(rng.below(12));
        cfg.variant = variants[rng.below(3)];
        cfg.load = 0.2 + 0.05 * static_cast<double>(rng.below(9));
        cfg.slots = 600 + rng.below(1201);
        cfg.masterSeed = 1 + rng.below(1u << 30);
        cfg.incastVictim =
            static_cast<unsigned>(rng.below(cfg.ports));
        const auto every = 1 + cfg.slots / (2 + rng.below(6));

        SCOPED_TRACE("leg " + std::to_string(it) + ": "
                     + cfg.describe() + " every="
                     + std::to_string(every));
        const auto plain = runCrossbar(cfg);
        ASSERT_TRUE(plain.passed) << plain.failure;
        const auto stitched = runCrossbarCheckpointed(cfg, every);
        ASSERT_TRUE(stitched.passed) << stitched.failure;
        ASSERT_EQ(outcomeJson(cfg, plain),
                  outcomeJson(cfg, stitched));
    }
}
