/**
 * @file
 * Unit tests for the closed-form dimensioning (Section 3 / 5 / 8):
 * exact reproduction of Table 2, endpoint checks of the RADS SRAM
 * trade-off, and sanity of the latency/ORR formulas.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "model/dimensioning.hh"
#include "model/issue_queue.hh"

using namespace pktbuf;
using namespace pktbuf::model;

namespace
{

BufferParams
oc3072(unsigned b)
{
    return BufferParams{512, 32, b, 256};
}

BufferParams
oc768(unsigned b)
{
    return BufferParams{128, 8, b, 256};
}

} // namespace

TEST(Dimensioning, Table2Oc3072RrSizes)
{
    // Paper Table 2, OC-3072 row: b = 32,16,8,4,2,1.
    EXPECT_EQ(rrSize(oc3072(32)), 0u);
    EXPECT_EQ(rrSize(oc3072(16)), 8u);
    EXPECT_EQ(rrSize(oc3072(8)), 64u);
    EXPECT_EQ(rrSize(oc3072(4)), 256u);
    EXPECT_EQ(rrSize(oc3072(2)), 1024u);
    EXPECT_EQ(rrSize(oc3072(1)), 4096u);
}

TEST(Dimensioning, Table2Oc768RrSizes)
{
    // Paper Table 2, OC-768 row: b = 8,4,2,1.
    EXPECT_EQ(rrSize(oc768(8)), 0u);
    EXPECT_EQ(rrSize(oc768(4)), 2u);
    EXPECT_EQ(rrSize(oc768(2)), 16u);
    EXPECT_EQ(rrSize(oc768(1)), 64u);
}

TEST(Dimensioning, Table2SchedBudgets)
{
    // "Sched. time" rows: b * slot time.
    EXPECT_DOUBLE_EQ(schedBudgetNs(oc3072(16), LineRate::OC3072),
                     51.2);
    EXPECT_DOUBLE_EQ(schedBudgetNs(oc3072(8), LineRate::OC3072),
                     25.6);
    EXPECT_DOUBLE_EQ(schedBudgetNs(oc3072(4), LineRate::OC3072),
                     12.8);
    EXPECT_DOUBLE_EQ(schedBudgetNs(oc3072(2), LineRate::OC3072), 6.4);
    EXPECT_DOUBLE_EQ(schedBudgetNs(oc3072(1), LineRate::OC3072), 3.2);
    EXPECT_DOUBLE_EQ(schedBudgetNs(oc768(4), LineRate::OC768), 51.2);
    EXPECT_DOUBLE_EQ(schedBudgetNs(oc768(2), LineRate::OC768), 25.6);
    EXPECT_DOUBLE_EQ(schedBudgetNs(oc768(1), LineRate::OC768), 12.8);
}

TEST(Dimensioning, SchedFeasibilityMatchesPaperNarrative)
{
    // Section 8.1: OC-768 "fairly trivial" even at b = 1.
    EXPECT_EQ(classifySched(rrSize(oc768(1)),
                            schedBudgetNs(oc768(1), LineRate::OC768)),
              SchedFeasibility::Trivial);
    // OC-3072: attainable for b > 2 ...
    EXPECT_LE(rrSchedTimeNs(rrSize(oc3072(4))),
              schedBudgetNs(oc3072(4), LineRate::OC3072));
    // ... possible-yet-aggressive for b = 2 ...
    const auto f2 = classifySched(
        rrSize(oc3072(2)), schedBudgetNs(oc3072(2), LineRate::OC3072));
    EXPECT_TRUE(f2 == SchedFeasibility::Aggressive ||
                f2 == SchedFeasibility::Attainable);
    // ... and of difficult viability for b = 1.
    EXPECT_EQ(classifySched(rrSize(oc3072(1)),
                            schedBudgetNs(oc3072(1),
                                          LineRate::OC3072)),
              SchedFeasibility::Difficult);
}

TEST(Dimensioning, EcqfEndpoints)
{
    // [13]: lookahead Q(b-1)+1, SRAM Q(b-1).
    EXPECT_EQ(ecqfLookaheadSlots(512, 32), 512u * 31 + 1);
    EXPECT_EQ(ecqfSramCells(512, 32), 512u * 31);
    EXPECT_EQ(ecqfSramCells(128, 8), 128u * 7);
    // OC-3072 minimum h-SRAM ~ 1.0 MB (Section 7.2).
    const double mb =
        ecqfSramCells(512, 32) * 64.0 / (1024 * 1024);
    EXPECT_NEAR(mb, 1.0, 0.05);
}

TEST(Dimensioning, MdqfLargerThanEcqf)
{
    for (unsigned q : {16u, 128u, 512u}) {
        for (unsigned b : {2u, 8u, 32u}) {
            EXPECT_GT(mdqfSramCells(q, b), ecqfSramCells(q, b))
                << "Q=" << q << " b=" << b;
        }
    }
}

TEST(Dimensioning, RadsSramInterpolationEndpointsAndMonotonicity)
{
    const unsigned q = 512, b = 32;
    const auto lmax = ecqfLookaheadSlots(q, b);
    EXPECT_EQ(radsSramCells(lmax, q, b), ecqfSramCells(q, b));
    EXPECT_EQ(radsSramCells(lmax + 1000, q, b), ecqfSramCells(q, b));
    EXPECT_EQ(radsSramCells(1, q, b), mdqfSramCells(q, b));
    std::uint64_t prev = radsSramCells(1, q, b);
    for (std::uint64_t l = 2; l <= lmax; l = l * 2) {
        const auto s = radsSramCells(l, q, b);
        EXPECT_LE(s, prev) << "lookahead " << l;
        prev = s;
    }
}

TEST(Dimensioning, GranularityOneNeedsNoHeadSram)
{
    EXPECT_EQ(ecqfSramCells(512, 1), 0u);
    EXPECT_EQ(radsSramCells(1, 512, 1), 0u);
}

TEST(Dimensioning, OrrSizeIsBanksPerGroupMinusOne)
{
    EXPECT_EQ(orrSize(oc3072(32)), 0u);
    EXPECT_EQ(orrSize(oc3072(4)), 7u);
    EXPECT_EQ(orrSize(oc3072(1)), 31u);
}

TEST(Dimensioning, LatencyGrowsAsGranularityShrinks)
{
    std::uint64_t prev = 0;
    for (unsigned b : {32u, 16u, 8u, 4u, 2u, 1u}) {
        const auto lat = latencySlots(oc3072(b));
        if (b != 32) {
            EXPECT_GT(lat, prev) << "b=" << b;
        }
        prev = lat;
    }
    // RADS (b == B): only the DRAM access itself.
    EXPECT_EQ(latencySlots(oc3072(32)), 32u);
}

TEST(Dimensioning, CfdsSramSmallerThanRadsForModerateB)
{
    // The whole point (Section 8.3): at the optimal b the total
    // SRAM shrinks by roughly an order of magnitude.
    const auto p4 = oc3072(4);
    const auto rads_cells =
        radsSramCells(ecqfLookaheadSlots(512, 32), 512, 32);
    const auto cfds_cells =
        cfdsSramCells(ecqfLookaheadSlots(512, 4), p4);
    EXPECT_LT(cfds_cells * 2, rads_cells);
}

TEST(Dimensioning, GroupArithmetic)
{
    const auto p = oc3072(4);
    EXPECT_EQ(p.banksPerGroup(), 8u);
    EXPECT_EQ(p.groups(), 32u);
    EXPECT_EQ(p.queuesPerGroup(), 16u);
    EXPECT_FALSE(p.isRads());
    EXPECT_TRUE(oc3072(32).isRads());
}

TEST(Dimensioning, ValidationRejectsBadConfigs)
{
    auto check = [](unsigned q, unsigned B, unsigned b, unsigned m) {
        BufferParams p{q, B, b, m};
        p.validate();
    };
    EXPECT_THROW(check(512, 32, 3, 256), FatalError);
    EXPECT_THROW(check(512, 32, 64, 256), FatalError);
    EXPECT_THROW(check(0, 32, 4, 256), FatalError);
    EXPECT_THROW(check(512, 32, 4, 0), FatalError);
    // M must be a multiple of B/b.
    EXPECT_THROW(check(512, 32, 4, 100), FatalError);
    EXPECT_NO_THROW(check(512, 32, 4, 256));
}

TEST(Dimensioning, TailSramFormula)
{
    EXPECT_EQ(tailSramCells(128, 8), 128u * 7 + 1);
    EXPECT_EQ(tailSramCells(512, 1), 1u);
}
