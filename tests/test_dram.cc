/**
 * @file
 * Unit tests for the DRAM substrate: bank timing (conflict panics),
 * ordinal-keyed block storage, and group occupancy accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dram/bank_state.hh"
#include "dram/dram_store.hh"

using namespace pktbuf;
using namespace pktbuf::dram;

namespace
{

std::vector<Cell>
block(QueueId q, SeqNum first, unsigned n)
{
    std::vector<Cell> cells;
    for (unsigned i = 0; i < n; ++i)
        cells.push_back(Cell{q, first + i, 0});
    return cells;
}

} // namespace

TEST(BankState, BusyWindowIsExactlyAccessTime)
{
    BankState b(4, 10);
    EXPECT_FALSE(b.busy(0, 0));
    EXPECT_EQ(b.startAccess(0, 5), 15u);
    EXPECT_TRUE(b.busy(0, 5));
    EXPECT_TRUE(b.busy(0, 14));
    EXPECT_FALSE(b.busy(0, 15));
    EXPECT_FALSE(b.busy(1, 5));
}

TEST(BankState, ConflictPanics)
{
    BankState b(2, 8);
    b.startAccess(1, 0);
    EXPECT_THROW(b.startAccess(1, 3), PanicError);
    EXPECT_NO_THROW(b.startAccess(0, 3));
    EXPECT_NO_THROW(b.startAccess(1, 8));
}

TEST(BankState, InFlightCount)
{
    BankState b(8, 16);
    b.startAccess(0, 0);
    b.startAccess(3, 4);
    EXPECT_EQ(b.inFlight(5), 2u);
    EXPECT_EQ(b.inFlight(16), 1u); // bank 0 done
    EXPECT_EQ(b.inFlight(20), 0u);
    EXPECT_EQ(b.accesses(), 2u);
}

TEST(BankState, RejectsBadArguments)
{
    EXPECT_THROW(BankState(0, 4), PanicError);
    EXPECT_THROW(BankState(4, 0), PanicError);
    BankState b(2, 4);
    EXPECT_THROW(b.busy(5, 0), PanicError);
}

TEST(DramStore, WriteReadRoundTrip)
{
    DramStore d(4, 4, 2, 0);
    d.writeBlock(0, 0, block(0, 0, 4), 0);
    d.writeBlock(0, 1, block(0, 4, 4), 0);
    EXPECT_TRUE(d.hasBlock(0, 0));
    EXPECT_TRUE(d.hasBlock(0, 1));
    EXPECT_FALSE(d.hasBlock(0, 2));
    EXPECT_EQ(d.residentBlocks(0), 2u);

    const auto cells = d.readBlock(0, 0, 0);
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].seq, 0u);
    EXPECT_EQ(cells[3].seq, 3u);
    EXPECT_FALSE(d.hasBlock(0, 0));
    EXPECT_EQ(d.residentBlocks(0), 1u);
}

TEST(DramStore, OutOfOrderOrdinalsSupported)
{
    // The DSA may launch block k+1's write before block k's.
    DramStore d(2, 2, 1, 0);
    d.writeBlock(1, 5, block(1, 10, 2), 0);
    d.writeBlock(1, 4, block(1, 8, 2), 0);
    EXPECT_EQ(d.readBlock(1, 4, 0)[0].seq, 8u);
    EXPECT_EQ(d.readBlock(1, 5, 0)[0].seq, 10u);
}

TEST(DramStore, WrongSizeBlockPanics)
{
    DramStore d(2, 4, 1, 0);
    EXPECT_THROW(d.writeBlock(0, 0, block(0, 0, 3), 0), PanicError);
}

TEST(DramStore, DuplicateOrdinalPanics)
{
    DramStore d(2, 2, 1, 0);
    d.writeBlock(0, 7, block(0, 0, 2), 0);
    EXPECT_THROW(d.writeBlock(0, 7, block(0, 2, 2), 0), PanicError);
}

TEST(DramStore, AbsentBlockReadPanics)
{
    DramStore d(2, 2, 1, 0);
    EXPECT_THROW(d.readBlock(0, 0, 0), PanicError);
}

TEST(DramStore, GroupAccounting)
{
    DramStore d(4, 2, 2, 8);
    d.writeBlock(0, 0, block(0, 0, 2), 0); // group 0
    d.writeBlock(1, 0, block(1, 0, 2), 1); // group 1
    d.writeBlock(2, 0, block(2, 0, 2), 0);
    EXPECT_EQ(d.groupCells(0), 4u);
    EXPECT_EQ(d.groupCells(1), 2u);
    EXPECT_EQ(d.totalCells(), 6u);
    d.readBlock(0, 0, 0);
    EXPECT_EQ(d.groupCells(0), 2u);
}

TEST(DramStore, GroupOverflowPanics)
{
    DramStore d(4, 2, 1, 4);
    d.writeBlock(0, 0, block(0, 0, 2), 0);
    d.writeBlock(0, 1, block(0, 2, 2), 0);
    EXPECT_THROW(d.writeBlock(0, 2, block(0, 4, 2), 0), PanicError);
}

TEST(DramStore, RecycleRequiresEmpty)
{
    DramStore d(2, 2, 1, 0);
    d.writeBlock(0, 0, block(0, 0, 2), 0);
    EXPECT_THROW(d.recycle(0), PanicError);
    d.readBlock(0, 0, 0);
    EXPECT_NO_THROW(d.recycle(0));
}
