/**
 * @file
 * Unit tests for the DRAM substrate: bank timing (conflict panics),
 * ordinal-keyed block storage, and group occupancy accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dram/bank_state.hh"
#include "dram/dram_store.hh"
#include "dram/timing.hh"

using namespace pktbuf;
using namespace pktbuf::dram;

namespace
{

std::vector<Cell>
block(QueueId q, SeqNum first, unsigned n)
{
    std::vector<Cell> cells;
    for (unsigned i = 0; i < n; ++i)
        cells.push_back(Cell{q, first + i, 0});
    return cells;
}

} // namespace

TEST(BankState, BusyWindowIsExactlyAccessTime)
{
    BankState b(4, 10);
    EXPECT_FALSE(b.busy(0, 0));
    EXPECT_EQ(b.startAccess(0, 5), 15u);
    EXPECT_TRUE(b.busy(0, 5));
    EXPECT_TRUE(b.busy(0, 14));
    EXPECT_FALSE(b.busy(0, 15));
    EXPECT_FALSE(b.busy(1, 5));
}

TEST(BankState, ConflictPanics)
{
    BankState b(2, 8);
    b.startAccess(1, 0);
    EXPECT_THROW(b.startAccess(1, 3), PanicError);
    EXPECT_NO_THROW(b.startAccess(0, 3));
    EXPECT_NO_THROW(b.startAccess(1, 8));
}

TEST(BankState, InFlightCount)
{
    BankState b(8, 16);
    b.startAccess(0, 0);
    b.startAccess(3, 4);
    EXPECT_EQ(b.inFlight(5), 2u);
    EXPECT_EQ(b.inFlight(16), 1u); // bank 0 done
    EXPECT_EQ(b.inFlight(20), 0u);
    EXPECT_EQ(b.accesses(), 2u);
}

TEST(BankState, RejectsBadArguments)
{
    EXPECT_THROW(BankState(0, 4), PanicError);
    EXPECT_THROW(BankState(4, 0), PanicError);
    BankState b(2, 4);
    EXPECT_THROW(b.busy(5, 0), PanicError);
}

TEST(DramStore, WriteReadRoundTrip)
{
    DramStore d(4, 4, 2, 0);
    d.writeBlock(0, 0, block(0, 0, 4), 0);
    d.writeBlock(0, 1, block(0, 4, 4), 0);
    EXPECT_TRUE(d.hasBlock(0, 0));
    EXPECT_TRUE(d.hasBlock(0, 1));
    EXPECT_FALSE(d.hasBlock(0, 2));
    EXPECT_EQ(d.residentBlocks(0), 2u);

    const auto cells = d.readBlock(0, 0, 0);
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].seq, 0u);
    EXPECT_EQ(cells[3].seq, 3u);
    EXPECT_FALSE(d.hasBlock(0, 0));
    EXPECT_EQ(d.residentBlocks(0), 1u);
}

TEST(DramStore, OutOfOrderOrdinalsSupported)
{
    // The DSA may launch block k+1's write before block k's.
    DramStore d(2, 2, 1, 0);
    d.writeBlock(1, 5, block(1, 10, 2), 0);
    d.writeBlock(1, 4, block(1, 8, 2), 0);
    EXPECT_EQ(d.readBlock(1, 4, 0)[0].seq, 8u);
    EXPECT_EQ(d.readBlock(1, 5, 0)[0].seq, 10u);
}

TEST(DramStore, WrongSizeBlockPanics)
{
    DramStore d(2, 4, 1, 0);
    EXPECT_THROW(d.writeBlock(0, 0, block(0, 0, 3), 0), PanicError);
}

TEST(DramStore, DuplicateOrdinalPanics)
{
    DramStore d(2, 2, 1, 0);
    d.writeBlock(0, 7, block(0, 0, 2), 0);
    EXPECT_THROW(d.writeBlock(0, 7, block(0, 2, 2), 0), PanicError);
}

TEST(DramStore, AbsentBlockReadPanics)
{
    DramStore d(2, 2, 1, 0);
    EXPECT_THROW(d.readBlock(0, 0, 0), PanicError);
}

TEST(DramStore, GroupAccounting)
{
    DramStore d(4, 2, 2, 8);
    d.writeBlock(0, 0, block(0, 0, 2), 0); // group 0
    d.writeBlock(1, 0, block(1, 0, 2), 1); // group 1
    d.writeBlock(2, 0, block(2, 0, 2), 0);
    EXPECT_EQ(d.groupCells(0), 4u);
    EXPECT_EQ(d.groupCells(1), 2u);
    EXPECT_EQ(d.totalCells(), 6u);
    d.readBlock(0, 0, 0);
    EXPECT_EQ(d.groupCells(0), 2u);
}

TEST(DramStore, GroupOverflowPanics)
{
    DramStore d(4, 2, 1, 4);
    d.writeBlock(0, 0, block(0, 0, 2), 0);
    d.writeBlock(0, 1, block(0, 2, 2), 0);
    EXPECT_THROW(d.writeBlock(0, 2, block(0, 4, 2), 0), PanicError);
}

TEST(DramStore, RecycleRequiresEmpty)
{
    DramStore d(2, 2, 1, 0);
    d.writeBlock(0, 0, block(0, 0, 2), 0);
    EXPECT_THROW(d.recycle(0), PanicError);
    d.readBlock(0, 0, 0);
    EXPECT_NO_THROW(d.recycle(0));
}

// ----------------------------------------------------- DramTiming

TEST(DramTiming, UniformDefaultMatchesLegacyScalar)
{
    const TimingConfig cfg;
    EXPECT_TRUE(cfg.isUniform());
    DramTiming t(cfg, 8, 4, 8);
    for (unsigned bank = 0; bank < 8; ++bank)
        EXPECT_EQ(t.accessSlots(bank), 8u);
    EXPECT_EQ(t.maxAccessSlots(), 8u);
    EXPECT_FALSE(t.refreshEnabled());
    EXPECT_EQ(t.turnaround(), 0u);
    for (Slot now = 0; now < 100; ++now)
        EXPECT_FALSE(t.inRefresh(now % 8, now));
}

TEST(DramTiming, PerGroupTrcResolvesGroupMajor)
{
    TimingConfig cfg;
    cfg.groupTRc = {8, 16};
    EXPECT_FALSE(cfg.isUniform());
    DramTiming t(cfg, 4, 2, 8);
    // AddressMap lays banks out group-major: banks 0-1 = group 0.
    EXPECT_EQ(t.accessSlots(0), 8u);
    EXPECT_EQ(t.accessSlots(1), 8u);
    EXPECT_EQ(t.accessSlots(2), 16u);
    EXPECT_EQ(t.accessSlots(3), 16u);
    EXPECT_EQ(t.maxAccessSlots(), 16u);
    EXPECT_EQ(cfg.maxTRc(8), 16u);
}

TEST(DramTiming, RefreshWindowRotatesDeterministically)
{
    TimingConfig cfg;
    cfg.tRefi = 32;
    cfg.tRfc = 8;
    cfg.refreshBanks = 2;
    DramTiming t(cfg, 4, 2, 8);
    // Interval 0: banks 0-1 blacked out during [0, 8).
    EXPECT_TRUE(t.inRefresh(0, 0));
    EXPECT_TRUE(t.inRefresh(1, 7));
    EXPECT_FALSE(t.inRefresh(2, 0));
    EXPECT_FALSE(t.inRefresh(0, 8));  // blackout over
    // Interval 1 (slots 32..): the window rotates to banks 2-3.
    EXPECT_TRUE(t.inRefresh(2, 32));
    EXPECT_TRUE(t.inRefresh(3, 39));
    EXPECT_FALSE(t.inRefresh(0, 32));
    EXPECT_FALSE(t.inRefresh(2, 40));
    // Interval 2 wraps back to banks 0-1.
    EXPECT_TRUE(t.inRefresh(0, 64));
    EXPECT_FALSE(t.inRefresh(2, 64));
}

TEST(DramTiming, InvalidConfigsAreFatal)
{
    TimingConfig bad_rfc;
    bad_rfc.tRefi = 32;  // refresh on, but t_RFC unset
    EXPECT_THROW(DramTiming(bad_rfc, 4, 2, 8), FatalError);

    TimingConfig rfc_too_long;
    rfc_too_long.tRefi = 32;
    rfc_too_long.tRfc = 32;  // blackout covers the whole interval
    EXPECT_THROW(DramTiming(rfc_too_long, 4, 2, 8), FatalError);

    TimingConfig wrong_groups;
    wrong_groups.groupTRc = {8, 16, 24};  // 3 entries, 2 groups
    EXPECT_THROW(DramTiming(wrong_groups, 4, 2, 8), FatalError);

    TimingConfig window_too_wide;
    window_too_wide.tRefi = 32;
    window_too_wide.tRfc = 8;
    window_too_wide.refreshBanks = 8;  // only 4 banks exist
    EXPECT_THROW(DramTiming(window_too_wide, 4, 2, 8), FatalError);

    TimingConfig no_banks;
    no_banks.turnaround = 2;  // non-uniform needs a bank count
    EXPECT_THROW(DramTiming(no_banks, 0, 0, 8), FatalError);
}

TEST(DramTiming, DescribeNamesEveryKnob)
{
    TimingConfig cfg;
    cfg.groupTRc = {8, 16};
    cfg.turnaround = 2;
    cfg.tRefi = 128;
    cfg.tRfc = 16;
    cfg.refreshBanks = 2;
    const auto d = cfg.describe(8);
    EXPECT_NE(d.find("tRC=8/16"), std::string::npos) << d;
    EXPECT_NE(d.find("turn=2"), std::string::npos) << d;
    EXPECT_NE(d.find("REFI=128/16x2"), std::string::npos) << d;
    EXPECT_EQ(TimingConfig{}.describe(8), "uniform tRC=8");
}

TEST(BankState, PerBankAccessTimes)
{
    BankState s(2, 8, {8, 16});
    EXPECT_EQ(s.accessSlotsOf(0), 8u);
    EXPECT_EQ(s.accessSlotsOf(1), 16u);
    s.startAccess(0, 0);
    s.startAccess(1, 0);
    EXPECT_FALSE(s.busy(0, 8));
    EXPECT_TRUE(s.busy(1, 8));   // slow bank still inside t_RC
    EXPECT_FALSE(s.busy(1, 16));
    // Re-access inside the longer window is still a conflict.
    EXPECT_THROW(s.startAccess(1, 12), PanicError);
    EXPECT_THROW(BankState(2, 8, {8}), PanicError);  // size mismatch
}

TEST(DramTiming, ExplicitTrcIsNotUniform)
{
    // An explicit tRc -- even one equal to B -- must count as
    // non-uniform so it passes through the CFDS-only gate and the
    // latency/RR slack extension (it changes bank lock times and
    // read completion regardless).
    TimingConfig cfg;
    cfg.tRc = 16;
    EXPECT_FALSE(cfg.isUniform());
    DramTiming t(cfg, 4, 2, 8);
    EXPECT_EQ(t.accessSlots(3), 16u);
    EXPECT_EQ(t.maxAccessSlots(), 16u);
    TimingConfig same_as_base;
    same_as_base.tRc = 8;
    EXPECT_FALSE(same_as_base.isUniform());
}

TEST(DramTiming, OutOfRangeBankPanics)
{
    TimingConfig cfg;
    cfg.groupTRc = {8, 16};
    DramTiming t(cfg, 4, 2, 8);
    EXPECT_THROW(t.accessSlots(4), PanicError);
}
