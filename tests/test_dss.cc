/**
 * @file
 * Unit tests of the DRAM Scheduler Subsystem: RR age order, skip
 * accounting (Eq. 2's measured counterpart), per-queue write order,
 * cancellation, ORR locking, and the full DSA conflict-freedom loop
 * against a bank-state oracle.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "dram/address_map.hh"
#include "dram/bank_state.hh"
#include "dss/dram_scheduler.hh"

using namespace pktbuf;
using namespace pktbuf::dss;

namespace
{

DramRequest
makeRead(QueueId q, std::uint64_t ord, unsigned bank, Slot issued = 0)
{
    DramRequest r;
    r.kind = DramRequest::Kind::Read;
    r.physQueue = q;
    r.blockOrdinal = ord;
    r.bank = bank;
    r.issued = issued;
    return r;
}

DramRequest
makeWrite(QueueId q, std::uint64_t ord, unsigned bank, Slot issued = 0)
{
    auto r = makeRead(q, ord, bank, issued);
    r.kind = DramRequest::Kind::Write;
    return r;
}

} // namespace

TEST(RequestRegister, OldestReadyFirst)
{
    RequestRegister rr(8);
    rr.push(makeRead(0, 0, 5));
    rr.push(makeRead(1, 0, 6));
    rr.push(makeRead(2, 0, 7));
    auto sel = rr.selectOldestReady([](unsigned) { return false; });
    ASSERT_TRUE(sel);
    EXPECT_EQ(sel->physQueue, 0u);
    EXPECT_EQ(rr.size(), 2u);
}

TEST(RequestRegister, SkipsLockedBanksAndCountsSkips)
{
    RequestRegister rr(8);
    rr.push(makeRead(0, 0, 5));
    rr.push(makeRead(1, 0, 6));
    auto sel = rr.selectOldestReady(
        [](unsigned bank) { return bank == 5; });
    ASSERT_TRUE(sel);
    EXPECT_EQ(sel->physQueue, 1u);
    EXPECT_EQ(rr.maxSkips(), 1);
    // The skipped entry keeps its age: next call picks it.
    sel = rr.selectOldestReady([](unsigned) { return false; });
    ASSERT_TRUE(sel);
    EXPECT_EQ(sel->physQueue, 0u);
}

TEST(RequestRegister, AllLockedReturnsNothing)
{
    RequestRegister rr(4);
    rr.push(makeRead(0, 0, 1));
    rr.push(makeRead(1, 0, 2));
    EXPECT_FALSE(rr.selectOldestReady([](unsigned) { return true; }));
    EXPECT_EQ(rr.size(), 2u);
}

TEST(RequestRegister, CapacityOverflowPanics)
{
    RequestRegister rr(2);
    rr.push(makeRead(0, 0, 0));
    rr.push(makeRead(1, 0, 1));
    EXPECT_THROW(rr.push(makeRead(2, 0, 2)), PanicError);
}

TEST(RequestRegister, UnboundedWhenCapacityZero)
{
    RequestRegister rr(0);
    for (unsigned i = 0; i < 100; ++i)
        rr.push(makeRead(i, 0, i % 7));
    EXPECT_EQ(rr.size(), 100u);
    EXPECT_EQ(rr.highWater(), 100);
}

TEST(RequestRegister, PerQueueOrderEnforcedForWrites)
{
    RequestRegister rr(8, /*in_order_per_queue=*/true);
    rr.push(makeWrite(3, 0, 1)); // bank 1 locked
    rr.push(makeWrite(3, 1, 2)); // same queue, free bank
    rr.push(makeWrite(4, 0, 3)); // other queue, free bank
    auto sel = rr.selectOldestReady(
        [](unsigned bank) { return bank == 1; });
    // Queue 3's younger write must NOT overtake its older one, but
    // queue 4 may proceed.
    ASSERT_TRUE(sel);
    EXPECT_EQ(sel->physQueue, 4u);
}

TEST(RequestRegister, CancelRemovesOldestMatch)
{
    RequestRegister rr(8);
    rr.push(makeWrite(5, 0, 1));
    rr.push(makeWrite(6, 0, 2));
    rr.push(makeWrite(5, 1, 3));
    auto c = rr.cancel([](const DramRequest &r) {
        return r.physQueue == 5;
    });
    ASSERT_TRUE(c);
    EXPECT_EQ(c->blockOrdinal, 0u);
    EXPECT_EQ(rr.size(), 2u);
    c = rr.cancel([](const DramRequest &r) {
        return r.physQueue == 5;
    });
    ASSERT_TRUE(c);
    EXPECT_EQ(c->blockOrdinal, 1u);
    EXPECT_FALSE(rr.cancel([](const DramRequest &r) {
        return r.physQueue == 5;
    }));
}

TEST(OngoingRequests, LockWindowMatchesAccessTime)
{
    OngoingRequests orr(8);
    orr.add(3, 10);
    EXPECT_TRUE(orr.locked(3, 10));
    EXPECT_TRUE(orr.locked(3, 17));
    EXPECT_FALSE(orr.locked(3, 18));
    EXPECT_FALSE(orr.locked(4, 12));
}

TEST(OngoingRequests, DoubleLockPanics)
{
    OngoingRequests orr(8);
    orr.add(1, 0);
    EXPECT_THROW(orr.add(1, 4), PanicError);
    EXPECT_NO_THROW(orr.add(1, 8));
}

TEST(OngoingRequests, SizeTracksInFlight)
{
    OngoingRequests orr(4);
    orr.add(0, 0);
    orr.add(1, 1);
    orr.add(2, 2);
    EXPECT_EQ(orr.size(2), 3u);
    EXPECT_EQ(orr.size(4), 2u); // bank 0 done at slot 4
    EXPECT_EQ(orr.highWater(), 3);
}

TEST(DramScheduler, LaunchLocksBank)
{
    OngoingRequests orr(8);
    DramScheduler sched(16, orr);
    sched.push(makeRead(0, 0, 3, 0));
    sched.push(makeRead(1, 0, 3, 0)); // same bank
    auto first = sched.tryLaunch(0);
    ASSERT_TRUE(first);
    EXPECT_EQ(first->physQueue, 0u);
    // Second request to the same bank must wait out the access.
    EXPECT_FALSE(sched.tryLaunch(2));
    EXPECT_EQ(sched.stalls(), 1u);
    auto second = sched.tryLaunch(8);
    ASSERT_TRUE(second);
    EXPECT_EQ(second->physQueue, 1u);
    EXPECT_EQ(sched.launches(), 2u);
}

TEST(DramScheduler, QueueDelayStatistics)
{
    OngoingRequests orr(4);
    DramScheduler sched(16, orr);
    sched.push(makeRead(0, 0, 0, 0));
    sched.tryLaunch(6);
    EXPECT_DOUBLE_EQ(sched.queueDelay().mean(), 6.0);
}

TEST(DramScheduler, RandomizedConflictFreedomAgainstOracle)
{
    // Property: whatever request stream arrives, every launch the
    // DSA makes is conflict-free per the BankState oracle, and
    // block-cyclic requests of one queue never stall the scheduler
    // for more than B/b consecutive opportunities.
    const unsigned banks = 16, bpg = 4, B = 8, b = 2;
    dram::AddressMap map(banks, bpg);
    dram::BankState oracle(banks, B);
    OngoingRequests orr(B);
    DramScheduler sched(0, orr);
    Rng rng(77);
    std::vector<std::uint64_t> ord(8, 0);

    Slot now = 0;
    for (int step = 0; step < 4000; ++step) {
        now += b;
        if (rng.chance(0.8)) {
            const QueueId q = static_cast<QueueId>(rng.below(8));
            sched.push(makeRead(q, ord[q], map.bankOf(q, ord[q]), now));
            ++ord[q];
        }
        if (auto r = sched.tryLaunch(now)) {
            // Panics on conflict; the test fails via the exception.
            oracle.startAccess(r->bank, now);
        }
    }
    EXPECT_GT(sched.launches(), 1000u);
}
