/**
 * @file
 * Unit tests of the DRAM Scheduler Subsystem: RR age order, skip
 * accounting (Eq. 2's measured counterpart), per-queue write order,
 * cancellation, ORR locking, and the full DSA conflict-freedom loop
 * against a bank-state oracle.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "common/random.hh"
#include "dram/address_map.hh"
#include "dram/bank_state.hh"
#include "dram/timing.hh"
#include "dss/dram_scheduler.hh"

using namespace pktbuf;
using namespace pktbuf::dss;

namespace
{

DramRequest
makeRead(QueueId q, std::uint64_t ord, unsigned bank, Slot issued = 0)
{
    DramRequest r;
    r.kind = DramRequest::Kind::Read;
    r.physQueue = q;
    r.blockOrdinal = ord;
    r.bank = bank;
    r.issued = issued;
    return r;
}

DramRequest
makeWrite(QueueId q, std::uint64_t ord, unsigned bank, Slot issued = 0)
{
    auto r = makeRead(q, ord, bank, issued);
    r.kind = DramRequest::Kind::Write;
    return r;
}

} // namespace

TEST(RequestRegister, OldestReadyFirst)
{
    RequestRegister rr(8);
    rr.push(makeRead(0, 0, 5));
    rr.push(makeRead(1, 0, 6));
    rr.push(makeRead(2, 0, 7));
    auto sel = rr.selectOldestReady([](unsigned) { return false; });
    ASSERT_TRUE(sel);
    EXPECT_EQ(sel->physQueue, 0u);
    EXPECT_EQ(rr.size(), 2u);
}

TEST(RequestRegister, SkipsLockedBanksAndCountsSkips)
{
    RequestRegister rr(8);
    rr.push(makeRead(0, 0, 5));
    rr.push(makeRead(1, 0, 6));
    auto sel = rr.selectOldestReady(
        [](unsigned bank) { return bank == 5; });
    ASSERT_TRUE(sel);
    EXPECT_EQ(sel->physQueue, 1u);
    EXPECT_EQ(rr.maxSkips(), 1);
    // The skipped entry keeps its age: next call picks it.
    sel = rr.selectOldestReady([](unsigned) { return false; });
    ASSERT_TRUE(sel);
    EXPECT_EQ(sel->physQueue, 0u);
}

TEST(RequestRegister, AllLockedReturnsNothing)
{
    RequestRegister rr(4);
    rr.push(makeRead(0, 0, 1));
    rr.push(makeRead(1, 0, 2));
    EXPECT_FALSE(rr.selectOldestReady([](unsigned) { return true; }));
    EXPECT_EQ(rr.size(), 2u);
}

TEST(RequestRegister, CapacityOverflowPanics)
{
    RequestRegister rr(2);
    rr.push(makeRead(0, 0, 0));
    rr.push(makeRead(1, 0, 1));
    EXPECT_THROW(rr.push(makeRead(2, 0, 2)), PanicError);
}

TEST(RequestRegister, UnboundedWhenCapacityZero)
{
    RequestRegister rr(0);
    for (unsigned i = 0; i < 100; ++i)
        rr.push(makeRead(i, 0, i % 7));
    EXPECT_EQ(rr.size(), 100u);
    EXPECT_EQ(rr.highWater(), 100);
}

TEST(RequestRegister, PerQueueOrderEnforcedForWrites)
{
    RequestRegister rr(8, /*in_order_per_queue=*/true);
    rr.push(makeWrite(3, 0, 1)); // bank 1 locked
    rr.push(makeWrite(3, 1, 2)); // same queue, free bank
    rr.push(makeWrite(4, 0, 3)); // other queue, free bank
    auto sel = rr.selectOldestReady(
        [](unsigned bank) { return bank == 1; });
    // Queue 3's younger write must NOT overtake its older one, but
    // queue 4 may proceed.
    ASSERT_TRUE(sel);
    EXPECT_EQ(sel->physQueue, 4u);
}

TEST(RequestRegister, CancelRemovesOldestMatch)
{
    RequestRegister rr(8);
    rr.push(makeWrite(5, 0, 1));
    rr.push(makeWrite(6, 0, 2));
    rr.push(makeWrite(5, 1, 3));
    auto c = rr.cancel([](const DramRequest &r) {
        return r.physQueue == 5;
    });
    ASSERT_TRUE(c);
    EXPECT_EQ(c->blockOrdinal, 0u);
    EXPECT_EQ(rr.size(), 2u);
    c = rr.cancel([](const DramRequest &r) {
        return r.physQueue == 5;
    });
    ASSERT_TRUE(c);
    EXPECT_EQ(c->blockOrdinal, 1u);
    EXPECT_FALSE(rr.cancel([](const DramRequest &r) {
        return r.physQueue == 5;
    }));
}

TEST(OngoingRequests, LockWindowMatchesAccessTime)
{
    OngoingRequests orr(8);
    orr.add(3, 10);
    EXPECT_TRUE(orr.locked(3, 10));
    EXPECT_TRUE(orr.locked(3, 17));
    EXPECT_FALSE(orr.locked(3, 18));
    EXPECT_FALSE(orr.locked(4, 12));
}

TEST(OngoingRequests, DoubleLockPanics)
{
    OngoingRequests orr(8);
    orr.add(1, 0);
    EXPECT_THROW(orr.add(1, 4), PanicError);
    EXPECT_NO_THROW(orr.add(1, 8));
}

TEST(OngoingRequests, SizeTracksInFlight)
{
    OngoingRequests orr(4);
    orr.add(0, 0);
    orr.add(1, 1);
    orr.add(2, 2);
    EXPECT_EQ(orr.size(2), 3u);
    EXPECT_EQ(orr.size(4), 2u); // bank 0 done at slot 4
    EXPECT_EQ(orr.highWater(), 3);
}

TEST(DramScheduler, LaunchLocksBank)
{
    OngoingRequests orr(8);
    DramScheduler sched(16, orr);
    sched.push(makeRead(0, 0, 3, 0));
    sched.push(makeRead(1, 0, 3, 0)); // same bank
    auto first = sched.tryLaunch(0);
    ASSERT_TRUE(first);
    EXPECT_EQ(first->physQueue, 0u);
    // Second request to the same bank must wait out the access.
    EXPECT_FALSE(sched.tryLaunch(2));
    EXPECT_EQ(sched.stalls(), 1u);
    auto second = sched.tryLaunch(8);
    ASSERT_TRUE(second);
    EXPECT_EQ(second->physQueue, 1u);
    EXPECT_EQ(sched.launches(), 2u);
}

TEST(DramScheduler, QueueDelayStatistics)
{
    OngoingRequests orr(4);
    DramScheduler sched(16, orr);
    sched.push(makeRead(0, 0, 0, 0));
    sched.tryLaunch(6);
    EXPECT_DOUBLE_EQ(sched.queueDelay().mean(), 6.0);
}

TEST(OngoingRequests, LockExpiryBoundaryIsExclusive)
{
    // The lock window is [now, now + t_RC): an entry with
    // until <= now is pruned, so the bank frees on exactly the slot
    // the access completes, never one early or late.
    OngoingRequests orr(8);
    orr.add(5, 100);
    EXPECT_EQ(orr.size(100), 1u);
    EXPECT_TRUE(orr.locked(5, 107));   // until = 108 > 107
    EXPECT_EQ(orr.size(107), 1u);
    EXPECT_FALSE(orr.locked(5, 108));  // until = 108 <= 108
    EXPECT_EQ(orr.size(108), 0u);
}

TEST(OngoingRequests, SharedBetweenReadAndWriteSchedulers)
{
    // The read path and the write path each own a scheduler; a bank
    // is locked no matter which direction locked it, because both
    // share one ORR.
    OngoingRequests orr(8);
    DramScheduler reads(16, orr);
    DramScheduler writes(16, orr, /*in_order_per_queue=*/true);

    writes.push(makeWrite(0, 0, 3, 0));
    reads.push(makeRead(1, 0, 3, 0));  // same bank as the write
    ASSERT_TRUE(writes.tryLaunch(0));
    // The write's lock must stall the *read* scheduler too.
    EXPECT_FALSE(reads.tryLaunch(2));
    EXPECT_EQ(reads.stalls(), 1u);
    EXPECT_EQ(reads.stallsFor(dram::StallCause::BankBusy), 1u);
    // ...until the write's access time elapses.
    auto r = reads.tryLaunch(8);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->physQueue, 1u);
    // And the read's fresh lock now stalls the write scheduler.
    writes.push(makeWrite(2, 0, 3, 8));
    EXPECT_FALSE(writes.tryLaunch(10));
    EXPECT_EQ(writes.stallsFor(dram::StallCause::BankBusy), 1u);
    EXPECT_EQ(orr.highWater(), 1);
}

namespace
{

std::shared_ptr<const pktbuf::dram::DramTiming>
makeTiming(const pktbuf::dram::TimingConfig &cfg, unsigned banks,
           unsigned banks_per_group, pktbuf::Slot base)
{
    return std::make_shared<const pktbuf::dram::DramTiming>(
        cfg, banks, banks_per_group, base);
}

} // namespace

TEST(DramScheduler, RefreshStallsAreAccountedByCause)
{
    // Banks 0-1 are blacked out during [0, 8) of every 64-slot
    // refresh interval (window 2, rotating).
    dram::TimingConfig cfg;
    cfg.tRefi = 64;
    cfg.tRfc = 8;
    cfg.refreshBanks = 2;
    OngoingRequests orr(makeTiming(cfg, 4, 2, 8));
    StatRegistry stats;
    DramScheduler sched(16, orr, false, &stats);

    sched.push(makeRead(0, 0, /*bank=*/0, 0));
    EXPECT_FALSE(sched.tryLaunch(0));  // bank 0 refreshing
    EXPECT_EQ(sched.stallsFor(dram::StallCause::Refresh), 1u);
    EXPECT_EQ(sched.stallsFor(dram::StallCause::BankBusy), 0u);
    EXPECT_EQ(stats.counterValue("dsa.stall.refresh"), 1u);
    // A request to a bank outside the window launches immediately.
    sched.push(makeRead(1, 0, /*bank=*/2, 0));
    auto r = sched.tryLaunch(0);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->bank, 2u);
    // Once the blackout ends, the deferred request goes out.
    r = sched.tryLaunch(8);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->bank, 0u);
}

TEST(DramScheduler, TurnaroundStallsAreAccountedByCause)
{
    dram::TimingConfig cfg;
    cfg.turnaround = 4;
    OngoingRequests orr(makeTiming(cfg, 4, 2, 8));
    StatRegistry stats;
    DramScheduler sched(16, orr, false, &stats);

    sched.push(makeRead(0, 0, 0, 0));
    sched.push(makeWrite(1, 0, 1, 0));
    ASSERT_TRUE(sched.tryLaunch(0));  // read launches
    // The write must wait out the bus turnaround, not a bank lock.
    EXPECT_FALSE(sched.tryLaunch(2));
    EXPECT_EQ(sched.stallsFor(dram::StallCause::Turnaround), 1u);
    EXPECT_EQ(sched.stallsFor(dram::StallCause::BankBusy), 0u);
    EXPECT_EQ(stats.counterValue("dsa.stall.turnaround"), 1u);
    auto w = sched.tryLaunch(4);
    ASSERT_TRUE(w);
    EXPECT_EQ(w->kind, DramRequest::Kind::Write);
}

TEST(DramScheduler, PerGroupTrcExtendsTheLockWindow)
{
    // Group 0 (banks 0-1) runs at t_RC 8, group 1 (banks 2-3) at 16.
    dram::TimingConfig cfg;
    cfg.groupTRc = {8, 16};
    OngoingRequests orr(makeTiming(cfg, 4, 2, 8));
    DramScheduler sched(16, orr);

    ASSERT_TRUE((sched.push(makeRead(0, 0, 0, 0)),
                 sched.tryLaunch(0)));
    ASSERT_TRUE((sched.push(makeRead(1, 0, 2, 0)),
                 sched.tryLaunch(0)));
    // Fast bank frees at 8; slow bank stays locked until 16 -- and
    // the ORR prunes the fast entry even though the slow one is
    // older in the table.
    sched.push(makeRead(0, 1, 0, 8));
    sched.push(makeRead(1, 1, 2, 8));
    auto r = sched.tryLaunch(8);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->bank, 0u);
    EXPECT_FALSE(sched.tryLaunch(10));  // bank 2 still busy
    EXPECT_EQ(sched.stallsFor(dram::StallCause::BankBusy), 1u);
    ASSERT_TRUE(sched.tryLaunch(16));
}

TEST(DramScheduler, RandomizedConflictFreedomAgainstOracle)
{
    // Property: whatever request stream arrives, every launch the
    // DSA makes is conflict-free per the BankState oracle, and
    // block-cyclic requests of one queue never stall the scheduler
    // for more than B/b consecutive opportunities.
    const unsigned banks = 16, bpg = 4, B = 8, b = 2;
    dram::AddressMap map(banks, bpg);
    dram::BankState oracle(banks, B);
    OngoingRequests orr(B);
    DramScheduler sched(0, orr);
    Rng rng(77);
    std::vector<std::uint64_t> ord(8, 0);

    Slot now = 0;
    for (int step = 0; step < 4000; ++step) {
        now += b;
        if (rng.chance(0.8)) {
            const QueueId q = static_cast<QueueId>(rng.below(8));
            sched.push(makeRead(q, ord[q], map.bankOf(q, ord[q]), now));
            ++ord[q];
        }
        if (auto r = sched.tryLaunch(now)) {
            // Panics on conflict; the test fails via the exception.
            oracle.startAccess(r->bank, now);
        }
    }
    EXPECT_GT(sched.launches(), 1000u);
}
