/**
 * @file
 * Differential oracle for the event-calendar execution engine: the
 * event core (BufferConfig::eventCore) must be *bit-identical* to
 * the reference per-slot loop -- same grants, drops, golden-checker
 * totals, serialized record bytes and checkpoint bytes -- on every
 * scenario-matrix leg, every timing leg, and a seeded fuzz sweep of
 * random legs crossed with random checkpoint cadences.  Also hosts
 * the stats-correctness regression tests that rode along with the
 * engine PR (zero-grant delay statistics, sweep wall-clock).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "buffer/hybrid_buffer.hh"
#include "common/random.hh"
#include "fuzz_env.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/workload.hh"
#include "soak/checkpoint.hh"
#include "sweep/emit.hh"
#include "sweep/scenario_sweep.hh"
#include "sweep/sweep.hh"

using namespace pktbuf;

namespace
{

/** Serialized record bytes of a leg's outcome -- the exact fields
 *  the sweep artifacts are built from. */
std::string
recordBytes(const sim::Scenario &s, const sim::ScenarioOutcome &o)
{
    std::string out;
    const auto rec = sweep::scenarioRecord(s, o);
    for (const auto &[k, v] : rec.fields())
        out += k + "=" + v.json() + ";";
    return out;
}

/** The same leg with the event engine switched on. */
sim::Scenario
eventTwin(sim::Scenario s)
{
    s.eventEngine = true;
    return s;
}

/**
 * Assert two outcomes are bit-identical: every counter, every
 * double (exact -- both engines must perform the same arithmetic in
 * the same order), and the serialized record bytes.
 */
void
expectIdenticalOutcomes(const sim::Scenario &ref_leg,
                        const sim::ScenarioOutcome &ref,
                        const sim::Scenario &evt_leg,
                        const sim::ScenarioOutcome &evt)
{
    EXPECT_EQ(ref.passed, evt.passed)
        << "ref: " << ref.failure << " evt: " << evt.failure;
    EXPECT_EQ(ref.run.slots, evt.run.slots);
    EXPECT_EQ(ref.run.arrivals, evt.run.arrivals);
    EXPECT_EQ(ref.run.grants, evt.run.grants);
    EXPECT_EQ(ref.run.drops, evt.run.drops);
    EXPECT_EQ(ref.run.meanDelaySlots, evt.run.meanDelaySlots);
    EXPECT_EQ(ref.run.maxDelaySlots, evt.run.maxDelaySlots);
    EXPECT_EQ(ref.drained, evt.drained);
    EXPECT_EQ(ref.verified, evt.verified);
    EXPECT_EQ(ref.undelivered, evt.undelivered);
    EXPECT_EQ(recordBytes(ref_leg, ref), recordBytes(evt_leg, evt));
}

/** Run one leg under both engines and compare everything. */
void
differentialLeg(const sim::Scenario &s)
{
    SCOPED_TRACE(s.describe());
    const auto ref = sim::runScenario(s);
    const sim::Scenario evt_leg = eventTwin(s);
    const auto evt = sim::runScenario(evt_leg);
    expectIdenticalOutcomes(s, ref, evt_leg, evt);
}

// ------------------------------------------------- full-matrix oracle

TEST(EventCoreOracle, DefaultMatrixBitIdentical)
{
    for (const auto &s : sim::defaultMatrix())
        differentialLeg(s);
}

TEST(EventCoreOracle, TimingMatrixBitIdentical)
{
    for (const auto &s : sim::timingMatrix())
        differentialLeg(s);
}

// --------------------------------------------- emitted-artifact bytes

TEST(EventCoreOracle, SweepArtifactsByteIdentical)
{
    // The sweep JSON/CSV the BENCH baselines are built from must not
    // change with the engine: run the smoke matrix through the sweep
    // machinery once per engine and compare the emitted bytes.
    const auto emit = [](bool event_engine) {
        auto legs = sim::smokeMatrix();
        for (auto &s : legs)
            s.eventEngine = event_engine;
        const auto tasks =
            sweep::makeScenarioTasks(legs, /*deriveSeeds=*/false);
        sweep::SweepOptions opt;
        opt.jobs = 1;
        const auto rep = sweep::runSweep(tasks, opt);
        EXPECT_EQ(rep.failed, 0u);
        sweep::EmitMeta meta;
        meta.tool = "event_core_oracle";
        return sweep::toJson(rep, tasks, meta) + "\n" +
               sweep::toCsv(rep, tasks);
    };
    EXPECT_EQ(emit(false), emit(true));
}

// --------------------------------------------------- checkpoint bytes

/** Representative legs across the architecture space. */
std::vector<sim::Scenario>
checkpointLegs()
{
    std::vector<sim::Scenario> picked;
    for (const auto &s : sim::defaultMatrix()) {
        const auto n = s.name();
        if (n == "rads_adversarial_q8_B8_b8" ||
            n == "cfds_bursty_q8_B8_b2" ||
            n == "cfds_bernoulli_q16_B8_b2" ||
            n == "renaming_drainperm_q8_B8_b2_p16") {
            picked.push_back(s);
        }
    }
    for (const auto &s : sim::timingMatrix()) {
        if (s.name() == "cfds_bernoulli_q8_B8_b2_refresh")
            picked.push_back(s);
    }
    EXPECT_EQ(picked.size(), 5u);
    return picked;
}

TEST(EventCoreOracle, CheckpointBytesEngineAgnostic)
{
    // Both engines paused at the same slot must serialize the *same
    // bytes*: every derived structure the event core adds is either
    // unserialized or rebuilt, and the shift registers normalize
    // their rotation.  This is what makes checkpoints portable
    // across engines.
    for (const auto &s : checkpointLegs()) {
        SCOPED_TRACE(s.describe());
        soak::ScenarioRun ref(s);
        soak::ScenarioRun evt(eventTwin(s));
        for (const unsigned pct : {25u, 50u, 75u}) {
            SCOPED_TRACE("at " + std::to_string(pct) + "%");
            ref.runTo(s.slots * pct / 100);
            evt.runTo(s.slots * pct / 100);
            EXPECT_EQ(ref.checkpoint(), evt.checkpoint());
        }
    }
}

TEST(EventCoreOracle, CrossEngineRestore)
{
    // A checkpoint written by one engine restores into the other and
    // finishes bit-identically to an unbroken reference run.
    for (const auto &s : checkpointLegs()) {
        SCOPED_TRACE(s.describe());
        const auto plain = sim::runScenario(s);
        const auto expect = recordBytes(s, plain);

        soak::ScenarioRun ref(s);
        ref.runTo(s.slots / 2);
        const auto ref_bytes = ref.checkpoint();
        const sim::Scenario evt_leg = eventTwin(s);
        soak::ScenarioRun evt(evt_leg);
        evt.restore(ref_bytes);
        const auto via_event = evt.finish();
        EXPECT_EQ(via_event.passed, plain.passed)
            << via_event.failure;
        EXPECT_EQ(recordBytes(evt_leg, via_event), expect);

        soak::ScenarioRun evt2(evt_leg);
        evt2.runTo(s.slots / 2);
        soak::ScenarioRun ref2(s);
        ref2.restore(evt2.checkpoint());
        const auto via_ref = ref2.finish();
        EXPECT_EQ(via_ref.passed, plain.passed) << via_ref.failure;
        EXPECT_EQ(recordBytes(s, via_ref), expect);
    }
}

// --------------------------------------------------------- fuzz smoke

/**
 * Seeded differential fuzz: random matrix legs (fresh seeds, random
 * slot budgets) run under the event engine through the
 * checkpoint-every-M soak driver and compared to the unbroken
 * reference run.  PKTBUF_FUZZ_ITERS scales the iteration count (the
 * nightly workflow runs this at 100x); failures print the leg
 * description, seed and cadence for replay.
 */
TEST(EventCoreFuzzSmoke, RandomLegsMatchReference)
{
    const std::uint64_t master =
        testutil::envU64("PKTBUF_FUZZ_SEED", 1);
    const std::uint64_t iters =
        testutil::envU64("PKTBUF_FUZZ_ITERS", 3);
    const auto matrix = sim::defaultMatrix();
    Rng rng(master);
    for (std::uint64_t it = 0; it < iters; ++it) {
        sim::Scenario s = matrix[rng.below(matrix.size())];
        s.seed = rng.next();  // fresh seed: a genuinely new leg
        s.slots = 2000 + rng.below(4000);
        const std::uint64_t every = 1 + s.slots / (2 + rng.below(6));
        std::ostringstream desc;
        desc << "fuzz iter " << it << ": " << s.describe()
             << " every=" << every << " (PKTBUF_FUZZ_SEED=" << master
             << ")";
        SCOPED_TRACE(desc.str());
        const auto ref = sim::runScenario(s);
        const sim::Scenario evt_leg = eventTwin(s);
        const auto evt =
            soak::runScenarioCheckpointed(evt_leg, every);
        expectIdenticalOutcomes(s, ref, evt_leg, evt);
    }
}

// ----------------------------------- bugfix: zero-grant delay stats

/**
 * Regression (stats-correctness sweep): a run that grants nothing
 * must report meanDelaySlots / maxDelaySlots of exactly 0.0 -- never
 * NaN or -inf from an empty sampler -- through both SimRunner::run
 * and the drain path.
 */
TEST(RunnerStats, ZeroGrantRunReportsZeroDelays)
{
    sim::Scenario s;
    s.variant = sim::BufferVariant::Cfds;
    s.queues = 8;
    s.granRads = 8;
    s.gran = 2;
    s.groups = 4;
    buffer::HybridBuffer buf(s.bufferConfig());
    // Zero load: no arrivals, no requests, hence no grants ever.
    sim::UniformRandom wl(s.queues, /*seed=*/42, /*load=*/0.0);
    sim::SimRunner runner(buf, wl, /*check=*/true);

    const auto after_run = runner.run(500);
    EXPECT_EQ(after_run.grants, 0u);
    EXPECT_EQ(after_run.meanDelaySlots, 0.0);
    EXPECT_EQ(after_run.maxDelaySlots, 0.0);
    EXPECT_TRUE(std::isfinite(after_run.meanDelaySlots));
    EXPECT_TRUE(std::isfinite(after_run.maxDelaySlots));

    EXPECT_EQ(runner.drain(1000), 0u);
    const auto after_drain = runner.run(0);
    EXPECT_EQ(after_drain.grants, 0u);
    EXPECT_EQ(after_drain.meanDelaySlots, 0.0);
    EXPECT_EQ(after_drain.maxDelaySlots, 0.0);
}

// ------------------------------------- bugfix: sweep wall-clock

/**
 * Regression (stats-correctness sweep): SweepReport::wallSeconds is
 * one wall interval for the whole sweep and is excluded from the
 * emitted artifacts -- so two runs of the same sweep at different
 * thread counts agree on *everything else*, byte for byte.
 */
TEST(SweepStats, OnlyWallSecondsMayDifferAcrossJobCounts)
{
    auto legs = sim::smokeMatrix();
    legs.resize(8);  // enough tasks to occupy 8 workers
    const auto tasks =
        sweep::makeScenarioTasks(legs, /*deriveSeeds=*/false);
    sweep::SweepOptions opt1;
    opt1.jobs = 1;
    sweep::SweepOptions opt8;
    opt8.jobs = 8;
    const auto rep1 = sweep::runSweep(tasks, opt1);
    const auto rep8 = sweep::runSweep(tasks, opt8);

    EXPECT_EQ(rep1.failed, rep8.failed);
    ASSERT_EQ(rep1.results.size(), rep8.results.size());
    for (std::size_t i = 0; i < rep1.results.size(); ++i) {
        SCOPED_TRACE("task " + std::to_string(i));
        EXPECT_EQ(rep1.results[i].ok, rep8.results[i].ok);
        EXPECT_EQ(rep1.results[i].text, rep8.results[i].text);
        EXPECT_EQ(rep1.results[i].error, rep8.results[i].error);
    }
    EXPECT_GE(rep1.wallSeconds, 0.0);
    EXPECT_GE(rep8.wallSeconds, 0.0);
    // The artifacts are purely a function of the results: byte
    // identity across job counts, wallSeconds notwithstanding.
    sweep::EmitMeta meta;
    meta.tool = "wall_seconds_regression";
    EXPECT_EQ(sweep::toJson(rep1, tasks, meta),
              sweep::toJson(rep8, tasks, meta));
    EXPECT_EQ(sweep::toCsv(rep1, tasks),
              sweep::toCsv(rep8, tasks));
}

} // namespace
