/**
 * @file
 * White-box tests of HybridBuffer internals: the bypass/cancel
 * protocol, out-of-order refill, recycling invariants, admission
 * semantics, trace output, measurement mode and timing exactness
 * across granularities.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

BufferConfig
config(unsigned queues, unsigned B, unsigned b, unsigned banks)
{
    BufferConfig cfg;
    cfg.params = model::BufferParams{queues, B, b, banks};
    return cfg;
}

Cell
cell(QueueId q, SeqNum s)
{
    Cell c;
    c.queue = q;
    c.seq = s;
    return c;
}

/** Push n cells of queue q, one per slot. */
void
fill(HybridBuffer &buf, QueueId q, unsigned n, SeqNum first = 0)
{
    for (unsigned i = 0; i < n; ++i)
        buf.step(cell(q, first + i), kInvalidQueue);
}

/** Step idle slots. */
void
idle(HybridBuffer &buf, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        buf.step(std::nullopt, kInvalidQueue);
}

} // namespace

TEST(Whitebox, CutThroughSingleCell)
{
    // One cell arrives and is requested immediately: it must flow
    // through the bypass (it can never have reached DRAM).
    HybridBuffer buf(config(4, 4, 2, 8));
    buf.step(cell(2, 0), kInvalidQueue);
    auto g = buf.step(std::nullopt, 2);
    std::uint64_t waited = 0;
    while (!g && waited < buf.pipelineDepth() + 4) {
        g = buf.step(std::nullopt, kInvalidQueue);
        ++waited;
    }
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->cell.queue, 2u);
    const auto rep = buf.report();
    EXPECT_EQ(rep.bypasses, 1u);
    EXPECT_EQ(rep.dramReads, 0u);
}

TEST(Whitebox, WriteCancelledInFavorOfBypass)
{
    // Fill exactly one block's worth so the t-MMA claims a write,
    // then request the cells before the write can matter.  The
    // pending write must be squashed, not raced.
    HybridBuffer buf(config(2, 8, 4, 4));
    fill(buf, 0, 4);
    // Let the t-MMA claim (runs on b-boundaries).
    idle(buf, 8);
    // Now demand all 4 cells.
    std::uint64_t got = 0;
    for (int i = 0; i < 4; ++i) {
        if (buf.step(std::nullopt, 0))
            ++got;
    }
    for (std::uint64_t i = 0; i < buf.pipelineDepth() + 8; ++i) {
        if (buf.step(std::nullopt, kInvalidQueue))
            ++got;
    }
    EXPECT_EQ(got, 4u);
    const auto rep = buf.report();
    // Either the write launched and a DRAM read served the cells, or
    // it was cancelled and they bypassed; both are legal, but no
    // cell may be duplicated or lost (golden-free scenario, count
    // conservation checks it).
    EXPECT_EQ(rep.grants, 4u);
    EXPECT_EQ(rep.arrivals, 4u);
}

TEST(Whitebox, DramRoundTripForDeepQueue)
{
    // A deep backlog must flow through DRAM (not just bypass).
    HybridBuffer buf(config(2, 8, 2, 8));
    fill(buf, 1, 64);
    idle(buf, 128); // t-MMA drains to DRAM
    EXPECT_GT(buf.report().dramWrites, 0u);
    EXPECT_GT(buf.dramStore().totalCells(), 0u);
    // Drain all of it.
    std::uint64_t got = 0;
    for (unsigned i = 0; i < 64; ++i)
        if (buf.step(std::nullopt, 1))
            ++got;
    for (std::uint64_t i = 0; i < buf.pipelineDepth() + 64; ++i)
        if (buf.step(std::nullopt, kInvalidQueue))
            ++got;
    EXPECT_EQ(got, 64u);
    EXPECT_GT(buf.report().dramReads, 0u);
    EXPECT_EQ(buf.dramStore().totalCells(), 0u);
}

TEST(Whitebox, GrantsAreInFifoOrderPerQueueAcrossPaths)
{
    // Mix bypass and DRAM paths on the same queue; sequence numbers
    // must stay dense.  Load 0.35 keeps one queue's read+write
    // demand (2 * 0.35 cells/slot) under its group's 1-cell/slot
    // bandwidth (see DESIGN.md section 7.4).
    HybridBuffer buf(config(2, 8, 2, 8));
    GoldenChecker checker(2);
    SeqNum next = 0;
    Rng rng(5);
    std::uint64_t outstanding = 0, granted = 0;
    for (Slot t = 0; t < 30000; ++t) {
        std::optional<Cell> arr;
        if (rng.chance(0.35))
            arr = cell(0, next++);
        QueueId req = kInvalidQueue;
        if (outstanding + granted < next && rng.chance(0.35)) {
            req = 0;
            ++outstanding;
        }
        const auto g = buf.step(arr, req);
        if (g) {
            checker.onGrant(g->logicalQueue, g->cell);
            --outstanding;
            ++granted;
        }
    }
    EXPECT_GT(granted, 7000u);
}

TEST(Whitebox, TraceProducesEvents)
{
    HybridBuffer buf(config(2, 4, 2, 4));
    std::ostringstream os;
    buf.trace = &os;
    fill(buf, 0, 8);
    buf.step(std::nullopt, 0); // a request makes the h-MMA fire
    idle(buf, 16);
    buf.trace = nullptr;
    const auto text = os.str();
    EXPECT_NE(text.find("tmma claim"), std::string::npos);
    EXPECT_NE(text.find("hmma select"), std::string::npos)
        << "trace: " << text;
    EXPECT_NE(text.find("grant due"), std::string::npos);
}

TEST(Whitebox, WouldAdmitReflectsDramSpace)
{
    BufferConfig cfg = config(2, 4, 2, 4);
    cfg.dramCells = 8; // 2 groups... groups = 4/2 = 2 -> 4 cells each
    HybridBuffer buf(cfg);
    EXPECT_TRUE(buf.wouldAdmit(0));
    // Queue 0 lives in group 0 (4-cell share): committed counts
    // arrivals immediately.
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(buf.wouldAdmit(0)) << i;
        buf.step(cell(0, static_cast<SeqNum>(i)), kInvalidQueue);
    }
    EXPECT_FALSE(buf.wouldAdmit(0));
    // The other group's queue is unaffected.
    EXPECT_TRUE(buf.wouldAdmit(1));
    // Draining the queue frees the committed space again.
    std::uint64_t got = 0;
    for (unsigned i = 0; i < 4; ++i)
        if (buf.step(std::nullopt, 0))
            ++got;
    for (std::uint64_t i = 0; i < buf.pipelineDepth() + 32; ++i)
        if (buf.step(std::nullopt, kInvalidQueue))
            ++got;
    EXPECT_EQ(got, 4u);
    EXPECT_TRUE(buf.wouldAdmit(0));
}

TEST(Whitebox, MeasureModeRecordsButNeverPanics)
{
    BufferConfig cfg = config(4, 8, 2, 16);
    cfg.measureOnly = true;
    HybridBuffer buf(cfg);
    EXPECT_EQ(buf.headSram().capacity(), 0u);
    EXPECT_EQ(buf.tailSram().capacity(), 0u);
    EXPECT_EQ(buf.scheduler().rr().capacity(), 0u);
    UniformRandom wl(4, 17, 1.0);
    SimRunner runner(buf, wl);
    runner.run(20000);
    EXPECT_GT(buf.report().headSramHighWater, 0);
}

TEST(Whitebox, ExplicitSramOverridesRespected)
{
    BufferConfig cfg = config(4, 8, 2, 16);
    cfg.headSramCells = 5000;
    cfg.tailSramCells = 6000;
    cfg.rrCapacity = 77;
    HybridBuffer buf(cfg);
    EXPECT_EQ(buf.headSram().capacity(), 5000u);
    EXPECT_EQ(buf.tailSram().capacity(), 6000u);
    EXPECT_EQ(buf.scheduler().rr().capacity(), 77u);
}

TEST(Whitebox, GranularityOneTimingExact)
{
    HybridBuffer buf(config(2, 4, 1, 8));
    // b = 1: lookahead collapses to 1 slot; latency register covers
    // the reordering window.
    EXPECT_EQ(buf.lookaheadDepth(), 1u);
    EXPECT_GE(buf.latencyDepth(), 4u); // at least the DRAM access
    fill(buf, 0, 8);
    idle(buf, 16);
    const Slot issued = buf.now();
    auto g = buf.step(std::nullopt, 0);
    std::uint64_t waited = 0;
    while (!g && waited < buf.pipelineDepth() + 4) {
        g = buf.step(std::nullopt, kInvalidQueue);
        ++waited;
    }
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(buf.now() - issued, buf.pipelineDepth() + 1);
}

TEST(Whitebox, BackToBackFullRateOneQueueRads)
{
    // RADS happily serves one queue at full line rate (its single
    // "channel" per direction is dimensioned for it).
    HybridBuffer buf(config(2, 4, 4, 1));
    GoldenChecker checker(2);
    SeqNum next = 0;
    std::uint64_t granted = 0;
    for (Slot t = 0; t < 10000; ++t) {
        const auto g =
            buf.step(cell(0, next), next >= 64 ? 0 : kInvalidQueue);
        ++next;
        if (g) {
            checker.onGrant(0, g->cell);
            ++granted;
        }
    }
    EXPECT_GT(granted, 9000u);
}

TEST(Whitebox, EcqfIdlesWhenNothingCritical)
{
    // No requests => no replenishes beyond tail-side writes.
    HybridBuffer buf(config(4, 8, 2, 16));
    fill(buf, 0, 32);
    idle(buf, 256);
    EXPECT_EQ(buf.report().dramReads, 0u);
    EXPECT_EQ(buf.report().bypasses, 0u);
    EXPECT_GT(buf.report().dramWrites, 0u);
}

TEST(Whitebox, ReportSlotsAdvance)
{
    HybridBuffer buf(config(2, 4, 2, 4));
    idle(buf, 123);
    EXPECT_EQ(buf.report().slots, 123u);
    EXPECT_EQ(buf.now(), 123u);
}

TEST(Whitebox, InvalidRequestQueuePanics)
{
    HybridBuffer buf(config(2, 4, 2, 4));
    EXPECT_THROW(buf.step(std::nullopt, 7), PanicError);
}

TEST(Whitebox, InvalidArrivalQueuePanics)
{
    HybridBuffer buf(config(2, 4, 2, 4));
    EXPECT_THROW(buf.step(cell(9, 0), kInvalidQueue), PanicError);
}

TEST(Whitebox, MdqfUsesNoLookahead)
{
    BufferConfig cfg = config(4, 4, 2, 8);
    cfg.mma = MmaKind::Mdqf;
    HybridBuffer buf(cfg);
    EXPECT_EQ(buf.lookaheadDepth(), 1u);
    // MDQF proactively replenishes queues with backing cells even
    // without any pending request.
    fill(buf, 0, 16);
    idle(buf, 64);
    EXPECT_GT(buf.report().bypasses + buf.report().dramReads * 2, 0u);
}

TEST(Whitebox, MdqfSramLargerThanEcqf)
{
    BufferConfig e = config(16, 8, 8, 1);
    BufferConfig m = e;
    m.mma = MmaKind::Mdqf;
    HybridBuffer ecqf(e), mdqf(m);
    EXPECT_GT(mdqf.headSram().capacity(), ecqf.headSram().capacity());
}
