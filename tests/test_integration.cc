/**
 * @file
 * Integration tests across modules: the input-queued router of
 * Figure 1 (multiple buffers + a matching scheduler), long soaks
 * through phase changes, and a cross-architecture differential test
 * (RADS and CFDS fed the identical stimulus must grant the identical
 * cell sequence per queue).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "buffer/hybrid_buffer.hh"
#include "common/random.hh"
#include "sim/golden.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

BufferConfig
config(unsigned queues, unsigned B, unsigned b, unsigned banks)
{
    BufferConfig cfg;
    cfg.params = model::BufferParams{queues, B, b, banks};
    return cfg;
}

} // namespace

TEST(Integration, VoqRouterFourPorts)
{
    // 4 input ports, each with a VOQ buffer over 4 outputs; a
    // round-robin matching grants one (input, output) pair per
    // output per slot.
    constexpr unsigned kPorts = 4;
    struct Input
    {
        std::unique_ptr<HybridBuffer> buffer;
        std::vector<std::uint64_t> backlog =
            std::vector<std::uint64_t>(kPorts, 0);
        std::vector<SeqNum> seq = std::vector<SeqNum>(kPorts, 0);
        GoldenChecker checker{kPorts};
        unsigned rr = 0;
    };
    std::vector<Input> inputs(kPorts);
    for (auto &in : inputs)
        in.buffer = std::make_unique<HybridBuffer>(
            config(kPorts, 8, 2, 16));

    Rng rng(11);
    std::uint64_t granted = 0, injected = 0;
    for (Slot t = 0; t < 100000; ++t) {
        std::vector<bool> out_taken(kPorts, false);
        for (unsigned i = 0; i < kPorts; ++i) {
            auto &in = inputs[i];
            QueueId req = kInvalidQueue;
            for (unsigned k = 0; k < kPorts; ++k) {
                const unsigned out = (in.rr + k) % kPorts;
                if (!out_taken[out] && in.backlog[out] > 0) {
                    req = out;
                    --in.backlog[out];
                    out_taken[out] = true;
                    in.rr = (out + 1) % kPorts;
                    break;
                }
            }
            std::optional<Cell> arr;
            if (rng.chance(0.85)) {
                const auto out =
                    static_cast<QueueId>(rng.below(kPorts));
                Cell c;
                c.queue = out;
                c.seq = in.seq[out]++;
                c.arrival = t;
                arr = c;
                ++in.backlog[out];
                ++injected;
            }
            const auto g = in.buffer->step(arr, req);
            if (g) {
                in.checker.onGrant(g->logicalQueue, g->cell);
                ++granted;
            }
        }
    }
    // ~85% load, minus pipeline fill: throughput must track load.
    EXPECT_GT(granted, injected * 9 / 10);
}

TEST(Integration, RadsAndCfdsGrantIdenticalSequences)
{
    // Same workload stream into both architectures: the *contents*
    // of the grant stream per queue must be identical (the pipeline
    // depths differ, so compare per-queue cell orders, which the
    // golden checkers already pin; here we compare totals after
    // drain).
    const unsigned queues = 8;
    HybridBuffer rads(config(queues, 8, 8, 1));
    HybridBuffer cfds(config(queues, 8, 2, 16));
    UniformRandom wl_a(queues, 777, 0.9);
    UniformRandom wl_b(queues, 777, 0.9); // identical stream
    SimRunner run_a(rads, wl_a);
    SimRunner run_b(cfds, wl_b);
    const auto ra = run_a.run(50000);
    const auto rb = run_b.run(50000);
    EXPECT_EQ(ra.arrivals, rb.arrivals);
    run_a.drain(200000);
    run_b.drain(200000);
    for (QueueId q = 0; q < queues; ++q) {
        EXPECT_EQ(run_a.checker().served(q),
                  run_b.checker().served(q))
            << "queue " << q;
    }
}

TEST(Integration, PhaseChangeSoak)
{
    // Bursty phase, then near-silence, then uniform saturation: no
    // state corruption across phases (golden-checked).
    const unsigned queues = 8;
    HybridBuffer buf(config(queues, 8, 4, 16));
    GoldenChecker checker(queues);
    std::vector<SeqNum> seq(queues, 0);
    std::vector<std::uint64_t> credit(queues, 0);
    Rng rng(3);
    std::uint64_t granted = 0;

    auto stepOnce = [&](double arrival_p, double request_p,
                        QueueId hot) {
        std::optional<Cell> arr;
        if (rng.chance(arrival_p)) {
            const QueueId q =
                hot != kInvalidQueue
                    ? hot
                    : static_cast<QueueId>(rng.below(queues));
            Cell c;
            c.queue = q;
            c.seq = seq[q]++;
            arr = c;
            ++credit[q];
        }
        QueueId req = kInvalidQueue;
        if (rng.chance(request_p)) {
            for (unsigned k = 0; k < queues; ++k) {
                const auto q =
                    static_cast<QueueId>(rng.below(queues));
                if (credit[q] > 0) {
                    req = q;
                    --credit[q];
                    break;
                }
            }
        }
        if (const auto g = buf.step(arr, req)) {
            checker.onGrant(g->logicalQueue, g->cell);
            ++granted;
        }
    };

    for (int i = 0; i < 20000; ++i)
        stepOnce(0.4, 0.9, 2); // hot queue 2 at feasible load
    for (int i = 0; i < 20000; ++i)
        stepOnce(0.02, 0.9, kInvalidQueue); // near idle, drain
    for (int i = 0; i < 20000; ++i)
        stepOnce(0.95, 0.95, kInvalidQueue); // saturation
    EXPECT_GT(granted, 20000u);
}

TEST(Integration, ManyShortLivedQueues)
{
    // Queues activate, carry a handful of cells, and go quiet --
    // stresses per-queue state reset-free reuse (non-renaming).
    const unsigned queues = 32;
    HybridBuffer buf(config(queues, 8, 2, 32));
    GoldenChecker checker(queues);
    std::vector<SeqNum> seq(queues, 0);
    Rng rng(9);
    std::uint64_t granted = 0;
    QueueId active = 0;
    unsigned remaining = 0;
    std::deque<QueueId> pending;
    for (Slot t = 0; t < 120000; ++t) {
        std::optional<Cell> arr;
        if (remaining == 0) {
            active = static_cast<QueueId>(rng.below(queues));
            remaining = 1 + static_cast<unsigned>(rng.below(6));
        }
        if (rng.chance(0.8)) {
            Cell c;
            c.queue = active;
            c.seq = seq[active]++;
            arr = c;
            pending.push_back(active);
            --remaining;
        }
        QueueId req = kInvalidQueue;
        if (!pending.empty() && rng.chance(0.85)) {
            req = pending.front();
            pending.pop_front();
        }
        if (const auto g = buf.step(arr, req)) {
            checker.onGrant(g->logicalQueue, g->cell);
            ++granted;
        }
    }
    EXPECT_GT(granted, 70000u);
}

TEST(Integration, RenamingRouterWithTinyDram)
{
    // Renaming under a realistic mixed load with a DRAM small enough
    // that chains and recycles happen continuously.
    BufferConfig cfg = config(12, 8, 2, 16);
    cfg.logicalQueues = 6;
    cfg.renaming = true;
    cfg.dramCells = 256;
    // Concentrated bursts exceed the spread-traffic RR sizing; see
    // DESIGN.md section 7.4.
    cfg.rrCapacity = 2 * model::rrSize(cfg.params) + 16;
    HybridBuffer buf(cfg);
    BurstyOnOff wl(6, 31, 128, 0.9);
    SimRunner runner(buf, wl);
    const auto r = runner.run(120000);
    EXPECT_GT(r.grants, 60000u);
    runner.drain(400000);
    EXPECT_EQ(buf.report().dramResidentCells, 0u);
}
