/**
 * @file
 * Direct unit tests for src/common/logging.{hh,cc}: the exception
 * payloads of panic()/fatal() (message, variadic formatting and the
 * file:line suffix a replay depends on), the warn()/inform() stderr
 * channels, and the global verbosity gate.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"

using namespace pktbuf;

namespace
{

TEST(LoggingFormat, PanicCarriesMessageFileAndLine)
{
    try {
        panic("invariant ", 3, " broke on queue ", 7);
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("panic: invariant 3 broke on queue 7"),
                  std::string::npos)
            << what;
        // The throw site is named so a log line alone locates it.
        EXPECT_NE(what.find("test_logging.cc"), std::string::npos)
            << what;
        EXPECT_NE(what.find(":"), std::string::npos);
    }
}

TEST(LoggingFormat, FatalCarriesMessageFileAndLine)
{
    try {
        fatal("config wants ", 9, " queues");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("fatal: config wants 9 queues"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("test_logging.cc"), std::string::npos)
            << what;
    }
}

TEST(LoggingFormat, PanicIsLogicErrorFatalIsRuntimeError)
{
    // The distinction is load-bearing: panic = simulator bug,
    // fatal = impossible user configuration.  Handlers that catch
    // one must not accidentally swallow the other.
    EXPECT_THROW(panic("x"), std::logic_error);
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(LoggingFormat, ZeroArgumentFormatting)
{
    // The variadic recursion's base case: no formatting arguments.
    try {
        panic("bare");
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("panic: bare"),
                  std::string::npos);
    }
}

TEST(LoggingChannels, WarnAlwaysWritesToStderr)
{
    testing::internal::CaptureStderr();
    warn("queue ", 3, " overcommitted");
    const auto text = testing::internal::GetCapturedStderr();
    EXPECT_EQ(text, "warn: queue 3 overcommitted\n");
}

TEST(LoggingChannels, InformRespectsVerbosityGate)
{
    ASSERT_TRUE(verbose());  // the default

    testing::internal::CaptureStderr();
    inform("sweep has ", 40, " legs");
    EXPECT_EQ(testing::internal::GetCapturedStderr(),
              "info: sweep has 40 legs\n");

    setVerbose(false);
    EXPECT_FALSE(verbose());
    testing::internal::CaptureStderr();
    inform("silenced");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    // warn() is *not* gated: it must survive benchmark silencing.
    testing::internal::CaptureStderr();
    warn("still audible");
    EXPECT_EQ(testing::internal::GetCapturedStderr(),
              "warn: still audible\n");

    setVerbose(true);
    EXPECT_TRUE(verbose());
}

TEST(LoggingConditions, ConditionMacrosEvaluateOnce)
{
    // A side-effecting condition must run exactly once whether or
    // not it fires (the macros wrap it in a single if).
    int calls = 0;
    const auto bump = [&calls]() { return ++calls < 0; };
    EXPECT_NO_THROW(panic_if(bump(), "never"));
    EXPECT_EQ(calls, 1);
    EXPECT_NO_THROW(fatal_if(bump(), "never"));
    EXPECT_EQ(calls, 2);
}

} // namespace
