/**
 * @file
 * Unit tests of the MMA subsystem, including the paper's Figure-3
 * worked example for ECQF, criticality invariants, MDQF selection,
 * and the threshold tail MMA.
 */

#include <gtest/gtest.h>

#include "common/shift_register.hh"
#include "mma/ecqf.hh"
#include "mma/mdqf.hh"
#include "mma/tail_mma.hh"

using namespace pktbuf;
using namespace pktbuf::mma;

namespace
{

ShiftRegister<QueueId>
lookaheadOf(std::size_t depth, const std::vector<QueueId> &content)
{
    ShiftRegister<QueueId> sr(depth, kInvalidQueue);
    for (const auto q : content)
        sr.shift(q);
    for (std::size_t i = content.size(); i < depth; ++i)
        sr.shift(kInvalidQueue);
    return sr;
}

QueueId
ident(QueueId q)
{
    return q;
}

} // namespace

TEST(Ecqf, PaperFigure3Example)
{
    // Section 3 example: Q = 4, b = 3, lookahead holds (head first)
    // requests [3, 3, 1, 1, 1]; queues 1 and 3 have 2 cells each.
    // The MMA must select queue 1 (critical at the 5th slot); if it
    // selected queue 3, queue 1 would miss after 5 slots.
    EcqfMma mma(5);
    mma.onReplenishIssued(1, 2);
    mma.onReplenishIssued(3, 2);
    auto look = lookaheadOf(6, {3, 3, 1, 1, 1});
    EXPECT_EQ(mma.select(look, ident), 1u);
}

TEST(Ecqf, NoCriticalQueueReturnsInvalid)
{
    EcqfMma mma(4);
    mma.onReplenishIssued(0, 3);
    mma.onReplenishIssued(1, 3);
    auto look = lookaheadOf(6, {0, 1, 0, 1});
    EXPECT_EQ(mma.select(look, ident), kInvalidQueue);
}

TEST(Ecqf, EarliestCriticalWinsOverDeeperDeficit)
{
    // Queue 2 is critical at position 1; queue 0 is critical later
    // even though its deficit is larger.
    EcqfMma mma(3);
    mma.onReplenishIssued(0, 1);
    auto look = lookaheadOf(8, {2, 2, 0, 0, 0, 0});
    EXPECT_EQ(mma.select(look, ident), 2u);
}

TEST(Ecqf, CountersFollowIssueAndLeave)
{
    EcqfMma mma(2);
    mma.onReplenishIssued(0, 4);
    EXPECT_EQ(mma.occupancy(0), 4);
    mma.onRequestLeaving(0);
    mma.onRequestLeaving(0);
    EXPECT_EQ(mma.occupancy(0), 2);
    EXPECT_EQ(mma.occupancy(1), 0);
}

TEST(Ecqf, ScanDoesNotMutateCounters)
{
    EcqfMma mma(2);
    mma.onReplenishIssued(0, 1);
    auto look = lookaheadOf(4, {0, 0});
    EXPECT_EQ(mma.select(look, ident), 0u);
    // Selection must not have consumed the real counter.
    EXPECT_EQ(mma.occupancy(0), 1);
    // Re-running the identical scan yields the identical answer.
    EXPECT_EQ(mma.select(look, ident), 0u);
}

TEST(Ecqf, IdleSlotsAreSkipped)
{
    EcqfMma mma(2);
    ShiftRegister<QueueId> look(6, kInvalidQueue);
    look.shift(kInvalidQueue);
    look.shift(1);
    look.shift(kInvalidQueue);
    look.shift(1);
    for (int i = 0; i < 2; ++i)
        look.shift(kInvalidQueue);
    // Queue 1 has no credit: second request makes it critical; the
    // first already does.
    EXPECT_EQ(mma.select(look, ident), 1u);
}

TEST(Mdqf, PicksDeepestDeficit)
{
    MdqfMma mma(3);
    mma.onRequestLeaving(0); // occ -1
    mma.onRequestLeaving(2);
    mma.onRequestLeaving(2); // occ -2
    const auto pick = mma.select(
        4, [](QueueId) { return true; });
    EXPECT_EQ(pick, 2u);
}

TEST(Mdqf, SkipsUnreplenishableAndComfortable)
{
    MdqfMma mma(3);
    mma.onRequestLeaving(0);
    mma.onRequestLeaving(0);
    mma.onReplenishIssued(1, 8); // comfortable
    mma.onRequestLeaving(2);
    // Queue 0 has the deepest deficit but nothing to transfer.
    const auto pick = mma.select(
        4, [](QueueId q) { return q != 0; });
    EXPECT_EQ(pick, 2u);
}

TEST(Mdqf, NoCandidatesReturnsInvalid)
{
    MdqfMma mma(2);
    mma.onReplenishIssued(0, 4);
    mma.onReplenishIssued(1, 4);
    EXPECT_EQ(mma.select(4, [](QueueId) { return true; }),
              kInvalidQueue);
}

// ---------------------------------------------------------------
// ECQF vs MDQF: the value (and the blind spot) of lookahead.
// ---------------------------------------------------------------

TEST(EcqfVsMdqf, LookaheadOverridesDeficitDepth)
{
    // Queue 0 carries the deeper deficit, but the lookahead shows
    // queue 1 running dry first.  Feeding both MMAs identical
    // issue/leave histories, ECQF replenishes queue 1 while the
    // lookahead-blind MDQF goes for queue 0.
    EcqfMma ecqf(3);
    MdqfMma mdqf(3);
    for (int i = 0; i < 3; ++i) {
        ecqf.onRequestLeaving(0);
        mdqf.onRequestLeaving(0);
    }
    ecqf.onReplenishIssued(1, 1);
    mdqf.onReplenishIssued(1, 1);

    auto look = lookaheadOf(8, {1, 1, 0, 0, 0, 0});
    const auto ecqf_pick = ecqf.select(look, ident);
    const auto mdqf_pick =
        mdqf.select(4, [](QueueId) { return true; });
    EXPECT_EQ(ecqf_pick, 1u);
    EXPECT_EQ(mdqf_pick, 0u);
    EXPECT_NE(ecqf_pick, mdqf_pick);
}

TEST(EcqfVsMdqf, AgreeWhenLookaheadConfirmsTheDeficit)
{
    // When the imminent requests target the most-deficited queue,
    // lookahead adds nothing: both algorithms choose the same queue.
    EcqfMma ecqf(3);
    MdqfMma mdqf(3);
    for (int i = 0; i < 2; ++i) {
        ecqf.onRequestLeaving(2);
        mdqf.onRequestLeaving(2);
    }
    auto look = lookaheadOf(6, {2, 2, 1, 1});
    EXPECT_EQ(ecqf.select(look, ident), 2u);
    EXPECT_EQ(mdqf.select(4, [](QueueId) { return true; }), 2u);
}

TEST(EcqfVsMdqf, RequestOrderMattersOnlyToEcqf)
{
    // Same multiset of future requests, two different orders: ECQF's
    // pick follows whichever queue empties first, MDQF's cannot (its
    // counters are order-independent).
    EcqfMma ecqf(2);
    MdqfMma mdqf(2);
    ecqf.onReplenishIssued(0, 1);
    ecqf.onReplenishIssued(1, 1);
    mdqf.onReplenishIssued(0, 1);
    mdqf.onReplenishIssued(1, 1);

    auto zero_first = lookaheadOf(8, {0, 0, 1, 1});
    auto one_first = lookaheadOf(8, {1, 1, 0, 0});
    EXPECT_EQ(ecqf.select(zero_first, ident), 0u);
    EXPECT_EQ(ecqf.select(one_first, ident), 1u);
    // MDQF has no future-order input at all: with the occupancy tie
    // at +1 its pick is pinned to the first queue, whichever order
    // the upcoming requests would arrive in.
    EXPECT_EQ(mdqf.select(4, [](QueueId) { return true; }), 0u);
}

TEST(EcqfVsMdqf, EmptyLookaheadGivesEcqfNothingToActOn)
{
    // With no requests visible, ECQF has no critical queue; MDQF
    // still replenishes the deficited one.  This is exactly why MDQF
    // needs the larger Q(b-1)(2 + ln Q) SRAM and ECQF does not.
    EcqfMma ecqf(2);
    MdqfMma mdqf(2);
    ecqf.onRequestLeaving(1);
    mdqf.onRequestLeaving(1);
    ShiftRegister<QueueId> empty(6, kInvalidQueue);
    EXPECT_EQ(ecqf.select(empty, ident), kInvalidQueue);
    EXPECT_EQ(mdqf.select(4, [](QueueId) { return true; }), 1u);
}

TEST(TailMma, ThresholdAndRoundRobinFairness)
{
    TailMma mma(4);
    std::vector<std::uint64_t> occ{5, 5, 2, 5};
    auto unclaimed = [&](QueueId q) { return occ[q]; };
    auto yes = [](QueueId) { return true; };
    // gran 4: queue 2 (occ 2) is below threshold.
    EXPECT_EQ(mma.select(4, unclaimed, yes), 0u);
    EXPECT_EQ(mma.select(4, unclaimed, yes), 1u);
    EXPECT_EQ(mma.select(4, unclaimed, yes), 3u);
    EXPECT_EQ(mma.select(4, unclaimed, yes), 0u); // wraps
}

TEST(TailMma, AdmissibilityFilter)
{
    TailMma mma(2);
    std::vector<std::uint64_t> occ{8, 8};
    const auto pick = mma.select(
        4, [&](QueueId q) { return occ[q]; },
        [](QueueId q) { return q == 1; });
    EXPECT_EQ(pick, 1u);
}

TEST(TailMma, NothingAboveThreshold)
{
    TailMma mma(3);
    const auto pick = mma.select(
        4, [](QueueId) { return 3u; },
        [](QueueId) { return true; });
    EXPECT_EQ(pick, kInvalidQueue);
}
