/**
 * @file
 * Parameterized property sweeps over the analytical models:
 * monotonicity and consistency of the dimensioning formulas across
 * the whole (Q, B, b, M) design space, issue-queue model anchors,
 * and cacti_lite structural properties.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "model/cacti_lite.hh"
#include "model/dimensioning.hh"
#include "model/issue_queue.hh"
#include "model/sram_designs.hh"

using namespace pktbuf;
using namespace pktbuf::model;

namespace
{

using DimPoint = std::tuple<unsigned, unsigned, unsigned>; // Q, B, b

class DimensioningSweep : public ::testing::TestWithParam<DimPoint>
{
  protected:
    BufferParams
    params() const
    {
        const auto [q, B, b] = GetParam();
        return BufferParams{q, B, b, 256};
    }

    bool
    valid() const
    {
        const auto [q, B, b] = GetParam();
        return b <= B && B % b == 0 && 256 % (B / b) == 0;
    }
};

std::string
dimName(const ::testing::TestParamInfo<DimPoint> &info)
{
    return "Q" + std::to_string(std::get<0>(info.param)) + "_B" +
           std::to_string(std::get<1>(info.param)) + "_b" +
           std::to_string(std::get<2>(info.param));
}

} // namespace

TEST_P(DimensioningSweep, FormulasAreConsistent)
{
    if (!valid())
        GTEST_SKIP();
    const auto p = params();
    const auto [q, B, b] = GetParam();

    // Lookahead and SRAM endpoints.
    EXPECT_EQ(ecqfLookaheadSlots(q, b),
              static_cast<std::uint64_t>(q) * (b - 1) + 1);
    EXPECT_EQ(ecqfSramCells(q, b) + q * 0,
              static_cast<std::uint64_t>(q) * (b - 1));
    if (b > 1) {
        EXPECT_GT(mdqfSramCells(q, b), ecqfSramCells(q, b));
    }

    // CFDS sizing: latency covers at least the DRAM access; the
    // total SRAM grows with the reorder window.
    EXPECT_GE(latencySlots(p), static_cast<std::uint64_t>(B));
    EXPECT_GE(cfdsSramCells(ecqfLookaheadSlots(q, b), p),
              ecqfSramCells(q, b));

    // RR and skip bounds vanish exactly when banking is trivial.
    if (p.banksPerGroup() <= 1) {
        EXPECT_EQ(rrSize(p), 0u);
        EXPECT_EQ(dsaMaxSkips(p), 0u);
    } else {
        EXPECT_GT(rrSize(p), 0u);
        EXPECT_GT(dsaMaxSkips(p), 0u);
        EXPECT_GE(rrSize(p), dsaMaxSkips(p) / p.banksPerGroup());
    }

    // ORR always B/b - 1.
    EXPECT_EQ(orrSize(p), p.banksPerGroup() - 1);
}

TEST_P(DimensioningSweep, SramShrinksWithGranularity)
{
    if (!valid())
        GTEST_SKIP();
    const auto [q, B, b] = GetParam();
    if (b >= B)
        GTEST_SKIP();
    // The CFDS *MMA-side* SRAM need is strictly below the RADS one.
    EXPECT_LT(ecqfSramCells(q, b), ecqfSramCells(q, B));
    // And the lookahead (hence the delay floor) shrinks too.
    EXPECT_LT(ecqfLookaheadSlots(q, b), ecqfLookaheadSlots(q, B));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DimensioningSweep,
    ::testing::Combine(::testing::Values(8u, 64u, 512u, 1024u),
                       ::testing::Values(8u, 16u, 32u),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u)),
    dimName);

TEST(IssueQueueModel, Alpha21264Anchor)
{
    // The model is deliberately conservative: the select tree is
    // treated as wire-limited, so a 20-entry queue costs ~1 ns even
    // at 0.13 um (the 21264 managed that at 0.35 um [14]).  The
    // area anchor scales with feature size squared.
    EXPECT_NEAR(rrSchedTimeNs(20, 0.13), 1.0, 0.3);
    EXPECT_GE(rrSchedTimeNs(20, 0.35), rrSchedTimeNs(20, 0.13));
    EXPECT_NEAR(rrSchedAreaCm2(20, 0.35), 0.05, 0.01);
}

TEST(IssueQueueModel, MonotoneInSize)
{
    double prev = 0.0;
    for (std::uint64_t n : {8u, 32u, 128u, 512u, 2048u}) {
        const double t = rrSchedTimeNs(n);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(IssueQueueModel, FeasibilityOrdering)
{
    // With a fixed budget, larger registers can only get worse.
    const double budget = 6.4;
    int prev = -1;
    for (std::uint64_t n : {8u, 64u, 512u, 4096u}) {
        const int f = static_cast<int>(classifySched(n, budget));
        EXPECT_GE(f, prev);
        prev = f;
    }
}

TEST(CactiStructure, SubArrayingHelpsLargeArrays)
{
    // The organization search must choose more than one sub-array
    // for megabyte-class memories.
    const auto big = sramArray(1 << 17, 512, 1);
    EXPECT_GT(big.subarrays, 1u);
}

TEST(CactiStructure, WiderEntriesCostWordline)
{
    const auto narrow = sramArray(1 << 12, 64, 1);
    const auto wide = sramArray(1 << 12, 1024, 1);
    EXPECT_GT(wide.areaMm2, narrow.areaMm2 * 8);
    EXPECT_GT(wide.accessNs, narrow.accessNs);
}

TEST(CactiStructure, TechnologyScalingKnobs)
{
    TechParams slow;
    slow.wireNsPerMm *= 2.0;
    const auto base = sramArray(1 << 15, 512, 1);
    const auto slower = sramArray(1 << 15, 512, 1, slow);
    EXPECT_GT(slower.accessNs, base.accessNs);
    // The organization search may split differently, but storage
    // area is technology-bound, not wire-bound.
    EXPECT_NEAR(slower.areaMm2 / base.areaMm2, 1.0, 0.15);

    TechParams dense;
    dense.sramCellUm2 /= 2.0;
    const auto denser = sramArray(1 << 15, 512, 1, dense);
    EXPECT_LT(denser.areaMm2, base.areaMm2);
}

TEST(SramDesignsExtra, BytesAccountTagsAndPointers)
{
    const auto cam =
        sizeSramBuffer(SramDesign::GlobalCam, 1024, 64, 64);
    const auto ll =
        sizeSramBuffer(SramDesign::LinkedListTimeMux, 1024, 64, 64);
    // Both carry overhead beyond the raw 64 KiB of cells.
    EXPECT_GT(cam.bytes, 1024u * 64);
    EXPECT_GT(ll.bytes, 1024u * 64);
    // CAM tags cost more than linked-list pointers at this size.
    EXPECT_GT(cam.bytes, ll.bytes - 64 * 2);
}

TEST(SramDesignsExtra, BestPicksTheFasterDesign)
{
    for (std::uint64_t cells : {512ull, 4096ull, 32768ull}) {
        const auto best = bestSramBuffer(cells, 64, 64);
        const auto cam =
            sizeSramBuffer(SramDesign::GlobalCam, cells, 64, 64);
        const auto ll = sizeSramBuffer(SramDesign::LinkedListTimeMux,
                                       cells, 64, 64);
        EXPECT_DOUBLE_EQ(best.effectiveNs,
                         std::min(cam.effectiveNs, ll.effectiveNs));
    }
}

TEST(SramDesignsExtra, MaxQueuesMonotoneInSlotTime)
{
    // A slower line (longer slot) can never support fewer queues.
    const auto oc3072 =
        maxQueuesMeetingSlot(32, 4, 256, LineRate::OC3072);
    const auto oc768 =
        maxQueuesMeetingSlot(32, 4, 256, LineRate::OC768);
    EXPECT_GE(oc768, oc3072);
}

TEST(SramDesignsExtra, HeadSramSpecNeverEmpty)
{
    // Even the degenerate b = 1 configuration reserves space for
    // in-flight cells.
    BufferParams p{64, 32, 1, 256};
    const auto spec = headSramSpec(p, 1);
    EXPECT_GE(spec.cells, 1u);
    EXPECT_EQ(spec.lists, 64u * 32);
}
