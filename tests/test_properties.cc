/**
 * @file
 * Parameterized property sweeps across (Q, B, b, M, pattern, seed):
 * the paper's three worst-case guarantees -- zero miss, bank
 * conflict freedom and bounded reordering -- plus FIFO integrity,
 * checked over the whole configuration grid.  Panics inside the
 * buffer fail the test; the golden checker validates every cell.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>

#include "buffer/hybrid_buffer.hh"
#include "common/random.hh"
#include "fuzz_env.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

enum class Pattern
{
    RoundRobin,
    Uniform,
    Bursty,
    Subset,
};

std::string
patternName(Pattern p)
{
    switch (p) {
      case Pattern::RoundRobin:
        return "rr";
      case Pattern::Uniform:
        return "uni";
      case Pattern::Bursty:
        return "burst";
      case Pattern::Subset:
        return "subset";
    }
    return "?";
}

std::unique_ptr<Workload>
makeWorkload(Pattern p, unsigned queues, std::uint64_t seed)
{
    switch (p) {
      case Pattern::RoundRobin:
        return std::make_unique<RoundRobinWorstCase>(queues, seed, 1.0,
                                                     64);
      case Pattern::Uniform:
        return std::make_unique<UniformRandom>(queues, seed, 0.95);
      case Pattern::Bursty:
        return std::make_unique<BurstyOnOff>(queues, seed, 96, 1.0);
      case Pattern::Subset: {
        // Consecutive ids span bank groups (group = q mod G).
        std::vector<QueueId> subset;
        for (QueueId q = 0; q < (queues + 1) / 2; ++q)
            subset.push_back(q);
        return std::make_unique<SubsetRoundRobin>(queues, seed,
                                                  subset, 0.9);
      }
    }
    return nullptr;
}

// (queues, B, b, banks, pattern, seed)
using Config =
    std::tuple<unsigned, unsigned, unsigned, unsigned, Pattern, int>;

class BufferProperty : public ::testing::TestWithParam<Config>
{
};

} // namespace

TEST_P(BufferProperty, GuaranteesHoldEndToEnd)
{
    const auto [queues, B, b, banks, pattern, seed] = GetParam();
    if (b > B || B % b != 0 || banks % (B / b) != 0)
        GTEST_SKIP() << "inconsistent grid point";
    // Group-bandwidth feasibility: a group sustains one access per b
    // slots; the line needs two (read + write) spread over the
    // groups, so tiny group counts are oversubscribed by design
    // (DESIGN.md section 6 discusses this; the renaming tests cover
    // the concentrated-traffic case).
    if (b != B && banks / (B / b) < 3)
        GTEST_SKIP() << "group bandwidth oversubscribed by design";
    BufferConfig cfg;
    cfg.params = model::BufferParams{queues, B, b, banks};
    HybridBuffer buf(cfg);
    auto wl = makeWorkload(pattern, queues, seed);
    SimRunner runner(buf, *wl);

    // 1+2: zero miss and conflict freedom: panics would throw.
    const auto r = runner.run(30000);
    EXPECT_GT(r.grants, 1000u);

    // 3: bounded reordering (Eq. 1 / Eq. 2) -- the RR capacity is
    // enforced by panic; the skip count is checked against the
    // combined-register bound (two launch opportunities per interval
    // can each pass a waiting request, see DESIGN.md).
    if (!cfg.params.isRads()) {
        const auto rep = buf.report();
        EXPECT_LE(rep.rrMaxSkips,
                  2 * static_cast<std::int64_t>(
                          model::dsaMaxSkips(cfg.params)) + 2);
    }

    // 4: full drain preserves FIFO to the last cell.
    runner.drain(300000);
    std::uint64_t left = 0;
    for (QueueId q = 0; q < queues; ++q)
        left += wl->credit(q);
    EXPECT_EQ(left, 0u);
}

namespace
{

std::string
configName(const ::testing::TestParamInfo<Config> &info)
{
    const auto q = std::get<0>(info.param);
    const auto B = std::get<1>(info.param);
    const auto b = std::get<2>(info.param);
    const auto m = std::get<3>(info.param);
    const auto pat = std::get<4>(info.param);
    const auto seed = std::get<5>(info.param);
    return "Q" + std::to_string(q) + "_B" + std::to_string(B) +
           "_b" + std::to_string(b) + "_M" + std::to_string(m) +
           "_" + patternName(pat) + "_s" + std::to_string(seed);
}

} // namespace

/**
 * Seeded fuzz smoke: draw random grid points *within the feasible
 * envelope the parameterized grids establish* (G >= 3 for CFDS, Q >=
 * 8 for CFDS concentration, divisibility constraints) and re-check
 * the end-to-end guarantees on each.  PKTBUF_FUZZ_ITERS scales the
 * iteration count (default 3: a fast smoke inside the normal run;
 * CTest registers a longer pass under the `fuzz` label with a fixed
 * PKTBUF_FUZZ_SEED).  Every assertion is wrapped in a SCOPED_TRACE
 * naming the master seed, the iteration and the leg seed, so any
 * failure is replayable from the log alone.
 */
TEST(BufferFuzzSmoke, RandomGridPointsHoldGuarantees)
{
    const std::uint64_t master =
        testutil::envU64("PKTBUF_FUZZ_SEED", 1);
    const std::uint64_t iters =
        testutil::envU64("PKTBUF_FUZZ_ITERS", 3);
    Rng rng(master);
    for (std::uint64_t it = 0; it < iters; ++it) {
        const bool rads = rng.below(2) == 0;
        unsigned B, b, banks, queues;
        Pattern pattern;
        if (rads) {
            B = 4u << rng.below(3);  // 4, 8, 16
            b = B;
            banks = 1;
            queues = 2 + static_cast<unsigned>(rng.below(15));
            pattern = static_cast<Pattern>(rng.below(3));
        } else {
            B = 8;
            const unsigned bs[] = {1, 2, 4};
            b = bs[rng.below(3)];
            // G >= 3: below that, group bandwidth is oversubscribed
            // by design (see the grid skip above).
            const unsigned groups =
                3 + static_cast<unsigned>(rng.below(6));
            banks = groups * (B / b);
            queues = 8 + static_cast<unsigned>(rng.below(9));
            pattern = static_cast<Pattern>(rng.below(4));
        }
        const std::uint64_t seed = rng.next();

        std::ostringstream desc;
        desc << "fuzz iter " << it << ": Q=" << queues << " B=" << B
             << " b=" << b << " M=" << banks << " pattern="
             << patternName(pattern) << " leg_seed=" << seed
             << " (PKTBUF_FUZZ_SEED=" << master
             << " PKTBUF_FUZZ_ITERS=" << iters << ")";
        SCOPED_TRACE(desc.str());

        BufferConfig cfg;
        cfg.params = model::BufferParams{queues, B, b, banks};
        try {
            HybridBuffer buf(cfg);
            auto wl = makeWorkload(pattern, queues, seed);
            SimRunner runner(buf, *wl);
            const auto r = runner.run(8000);
            EXPECT_GT(r.grants, 100u);
            runner.drain(100000);
            std::uint64_t left = 0;
            for (QueueId q = 0; q < queues; ++q)
                left += wl->credit(q);
            EXPECT_EQ(left, 0u);
        } catch (const std::exception &e) {
            // Panics inside the buffer are invariant violations; the
            // trace above names every seed needed to replay this leg.
            FAIL() << "buffer panicked: " << e.what();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    RadsGrid, BufferProperty,
    ::testing::Combine(::testing::Values(2u, 5u, 8u),
                       ::testing::Values(4u, 8u),
                       ::testing::Values(4u, 8u),  // filtered below
                       ::testing::Values(1u),
                       ::testing::Values(Pattern::RoundRobin,
                                         Pattern::Uniform,
                                         Pattern::Bursty),
                       ::testing::Values(1, 2)),
    configName);

INSTANTIATE_TEST_SUITE_P(
    CfdsGrid, BufferProperty,
    // Q >= 8: smaller queue counts concentrate the full line rate on
    // one or two bank groups, exceeding the 1-access-per-b-slots
    // bandwidth a group provides (the paper's configurations always
    // spread load; concentration is the renaming scenario, tested in
    // test_renaming_buffer).
    ::testing::Combine(::testing::Values(8u, 16u),
                       ::testing::Values(8u),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(16u, 32u),
                       ::testing::Values(Pattern::RoundRobin,
                                         Pattern::Uniform,
                                         Pattern::Bursty,
                                         Pattern::Subset),
                       ::testing::Values(1, 7)),
    configName);

TEST_P(BufferProperty, SramHighWaterWithinEnforcedCapacity)
{
    const auto [queues, B, b, banks, pattern, seed] = GetParam();
    if (b > B || B % b != 0 || banks % (B / b) != 0)
        GTEST_SKIP() << "inconsistent grid point";
    // Group-bandwidth feasibility: a group sustains one access per b
    // slots; the line needs two (read + write) spread over the
    // groups, so tiny group counts are oversubscribed by design
    // (DESIGN.md section 6 discusses this; the renaming tests cover
    // the concentrated-traffic case).
    if (b != B && banks / (B / b) < 3)
        GTEST_SKIP() << "group bandwidth oversubscribed by design";
    BufferConfig cfg;
    cfg.params = model::BufferParams{queues, B, b, banks};
    cfg.measureOnly = true;
    HybridBuffer buf(cfg);
    auto wl = makeWorkload(pattern, queues, seed);
    SimRunner runner(buf, *wl);
    runner.run(30000);
    const auto rep = buf.report();

    // Measured high-water vs. the capacity an enforced buffer would
    // use: the measurement mode must never exceed it (this is the
    // empirical validation of the dimensioning).
    BufferConfig enforced = cfg;
    enforced.measureOnly = false;
    HybridBuffer sized(enforced);
    EXPECT_LE(rep.headSramHighWater,
              static_cast<std::int64_t>(sized.headSram().capacity()));
    EXPECT_LE(rep.tailSramHighWater,
              static_cast<std::int64_t>(sized.tailSram().capacity()));
    if (!cfg.params.isRads()) {
        EXPECT_LE(rep.rrHighWater,
                  static_cast<std::int64_t>(
                      model::rrSize(cfg.params)) + 4);
    }
}
