/**
 * @file
 * End-to-end tests of the RADS baseline (Section 3): the zero-miss
 * guarantee under the adversarial round-robin pattern and random
 * traffic, FIFO integrity via the golden model, and empirical
 * validation of the ECQF dimensioning formulas.  Any miss, SRAM
 * overflow or bank-conflict panics, so "the run completed" is the
 * assertion; the golden checker additionally verifies every cell.
 */

#include <gtest/gtest.h>

#include <memory>

#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

BufferConfig
radsConfig(unsigned queues, unsigned gran_rads)
{
    BufferConfig cfg;
    cfg.params = model::BufferParams{queues, gran_rads, gran_rads, 1};
    return cfg;
}

} // namespace

TEST(RadsBuffer, ConstructionResolvesEcqfDefaults)
{
    HybridBuffer buf(radsConfig(8, 4));
    EXPECT_EQ(buf.lookaheadDepth(), 8u * 3 + 1);
    // RADS still needs the delivery stage hiding the B-slot access.
    EXPECT_EQ(buf.latencyDepth(), 4u);
    EXPECT_EQ(buf.pipelineDepth(), 29u);
}

TEST(RadsBuffer, WorstCaseRoundRobinZeroMiss)
{
    // The ECQF worst case: all queues drain in lockstep.
    HybridBuffer buf(radsConfig(8, 4));
    RoundRobinWorstCase wl(8, /*seed=*/1, /*load=*/1.0,
                           /*warmup=*/64);
    SimRunner runner(buf, wl);
    const auto r = runner.run(50000);
    EXPECT_GT(r.grants, 40000u);
    EXPECT_EQ(r.drops, 0u);
}

TEST(RadsBuffer, UniformRandomZeroMiss)
{
    HybridBuffer buf(radsConfig(16, 8));
    UniformRandom wl(16, 42, 0.95);
    SimRunner runner(buf, wl);
    const auto r = runner.run(60000);
    EXPECT_GT(r.grants, 30000u);
}

TEST(RadsBuffer, BurstyTrafficZeroMiss)
{
    HybridBuffer buf(radsConfig(8, 8));
    BurstyOnOff wl(8, 7, /*burst=*/64, /*load=*/1.0);
    SimRunner runner(buf, wl);
    const auto r = runner.run(60000);
    EXPECT_GT(r.grants, 20000u);
}

TEST(RadsBuffer, SingleQueueStream)
{
    HybridBuffer buf(radsConfig(4, 4));
    SingleQueue wl(4, 3, /*target=*/2, /*lead=*/32);
    SimRunner runner(buf, wl);
    const auto r = runner.run(20000);
    // Full line rate on one queue: essentially every slot grants
    // once the pipeline fills.
    EXPECT_GT(r.grants, 19000u);
}

TEST(RadsBuffer, DrainDeliversEverything)
{
    HybridBuffer buf(radsConfig(8, 4));
    RoundRobinWorstCase wl(8, 11);
    SimRunner runner(buf, wl);
    runner.run(9973); // odd length: pipeline mid-flight
    runner.drain(100000);
    // Every arrived cell was eventually granted in order.
    std::uint64_t credit = 0;
    for (QueueId q = 0; q < 8; ++q)
        credit += wl.credit(q);
    EXPECT_EQ(credit, 0u);
}

TEST(RadsBuffer, HeadSramStaysWithinEcqfBound)
{
    // The formula capacity is enforced by panic inside the buffer;
    // here we additionally record how tight the bound is.
    HybridBuffer buf(radsConfig(8, 4));
    RoundRobinWorstCase wl(8, 5, 1.0, 32);
    SimRunner runner(buf, wl);
    runner.run(40000);
    const auto rep = buf.report();
    EXPECT_LE(rep.headSramHighWater,
              static_cast<std::int64_t>(
                  2 * model::ecqfSramCells(8, 4) + 4 + 4 + 1));
    EXPECT_LE(rep.tailSramHighWater,
              static_cast<std::int64_t>(model::tailSramCells(8, 4)));
}

TEST(RadsBuffer, ReportCountsAreConsistent)
{
    HybridBuffer buf(radsConfig(8, 4));
    UniformRandom wl(8, 9, 0.9);
    SimRunner runner(buf, wl);
    const auto r = runner.run(30000);
    const auto rep = buf.report();
    EXPECT_EQ(rep.arrivals, r.arrivals);
    EXPECT_EQ(rep.grants, r.grants);
    EXPECT_GE(rep.arrivals, rep.grants);
    // Every DRAM read had a matching earlier write.
    EXPECT_LE(rep.dramReads, rep.dramWrites);
}

TEST(RadsBuffer, GrantsRespectPipelineLatency)
{
    // A request issued at slot t must be granted exactly at
    // t + lookahead (RADS has no latency register).
    HybridBuffer buf(radsConfig(4, 2));
    const auto depth = buf.pipelineDepth();
    // Fill queue 0 with cells first.
    for (int i = 0; i < 32; ++i) {
        Cell c;
        c.queue = 0;
        c.seq = static_cast<SeqNum>(i);
        c.arrival = buf.now();
        buf.step(c, kInvalidQueue);
    }
    // Issue one request and count slots to the grant.
    const Slot issued = buf.now();
    auto g = buf.step(std::nullopt, 0);
    EXPECT_FALSE(g.has_value());
    std::uint64_t waited = 0;
    while (!g && waited < depth + 8) {
        g = buf.step(std::nullopt, kInvalidQueue);
        ++waited;
    }
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(buf.now() - issued, depth + 1);
    EXPECT_EQ(g->cell.queue, 0u);
    EXPECT_EQ(g->cell.seq, 0u);
}

TEST(RadsBuffer, MdqfWithLargerSramSurvivesWorstCase)
{
    // Ablation: the no-lookahead MDQF needs Q(b-1)(2+lnQ) cells.
    BufferConfig cfg = radsConfig(8, 4);
    cfg.mma = MmaKind::Mdqf;
    HybridBuffer buf(cfg);
    EXPECT_EQ(buf.lookaheadDepth(), 1u);
    RoundRobinWorstCase wl(8, 21, 1.0, 64);
    SimRunner runner(buf, wl);
    const auto r = runner.run(40000);
    EXPECT_GT(r.grants, 30000u);
}

TEST(RadsBuffer, FiniteDramAdmissionControl)
{
    BufferConfig cfg = radsConfig(4, 4);
    cfg.dramCells = 64; // tiny DRAM
    HybridBuffer buf(cfg);
    // Arrivals only (no requests): queues fill DRAM, then the
    // buffer must refuse admission rather than overflow.
    SingleQueue wl(4, 13, 0, /*lead=*/1u << 30);
    SimRunner runner(buf, wl);
    const auto r = runner.run(5000);
    EXPECT_GT(r.drops, 0u);
    EXPECT_LE(buf.report().dramResidentCells, 64u);
}
