/**
 * @file
 * Unit tests of the queue-renaming machinery (Section 6): tail
 * assignment, cross-group allocation when a group fills, FIFO
 * translation across the physical-queue chain, retirement and
 * recycling, and oversubscription exhaustion.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/logging.hh"
#include "rename/renaming_table.hh"

using namespace pktbuf;
using namespace pktbuf::rename;

namespace
{

GroupFreeFn
unbounded()
{
    return [](unsigned) { return UINT64_MAX; };
}

} // namespace

TEST(Renaming, FirstArrivalAllocatesOnePhysQueue)
{
    RenamingTable rt(2, 8, 4);
    EXPECT_TRUE(rt.canAssign(0, unbounded()));
    const auto p = rt.assignArrival(0, unbounded());
    EXPECT_LT(p, 8u);
    EXPECT_EQ(rt.chainLength(0), 1u);
    EXPECT_EQ(rt.tailPhys(0), p);
    EXPECT_EQ(rt.freePhysCount(), 7u);
    // Subsequent arrivals stay on the same physical queue.
    EXPECT_EQ(rt.assignArrival(0, unbounded()), p);
    EXPECT_EQ(rt.chainLength(0), 1u);
}

TEST(Renaming, FullGroupForcesCrossGroupSpill)
{
    RenamingTable rt(1, 8, 4);
    const auto p0 = rt.assignArrival(0, unbounded());
    const auto g0 = rt.groupOf(p0);
    // Now report the tail's group as full: next arrival must land
    // on a different group.
    auto g_free = [&](unsigned g) -> std::uint64_t {
        return g == g0 ? 0 : 1000;
    };
    const auto p1 = rt.assignArrival(0, g_free);
    EXPECT_NE(rt.groupOf(p1), g0);
    EXPECT_EQ(rt.chainLength(0), 2u);
    EXPECT_EQ(rt.renames(), 1u);
}

TEST(Renaming, AllocationBalancesTowardEmptiestGroup)
{
    RenamingTable rt(4, 16, 4);
    std::map<unsigned, std::uint64_t> free_cells{
        {0, 10}, {1, 500}, {2, 50}, {3, 40}};
    auto g_free = [&](unsigned g) { return free_cells[g]; };
    const auto p = rt.assignArrival(0, g_free);
    EXPECT_EQ(rt.groupOf(p), 1u);
}

TEST(Renaming, AllocationAvoidsGroupsServingActiveChains)
{
    // A DRAM bank group sustains ~1 cell/slot of combined read+write
    // bandwidth, so free SPACE alone is the wrong placement signal: a
    // group draining a hot head has plenty of space precisely because
    // it is saturated with reads.  The allocator must weight groups by
    // the head/tail elements they already serve and steer new tails
    // elsewhere, even when the busy group has the most free cells.
    RenamingTable rt(4, 16, 4);
    const auto p0 = rt.assignArrival(0, unbounded());
    const auto g0 = rt.groupOf(p0);
    // g0 now serves q0's head AND tail (single-element chain) -- give
    // it the most free space and still expect a different group.
    auto g_free = [&](unsigned g) -> std::uint64_t {
        return g == g0 ? 1000 : 500;
    };
    const auto p1 = rt.assignArrival(1, g_free);
    EXPECT_NE(rt.groupOf(p1), g0);
    // With every OTHER group equally loaded, a third queue also
    // avoids both busy groups.
    const auto p2 = rt.assignArrival(2, g_free);
    EXPECT_NE(rt.groupOf(p2), g0);
    EXPECT_NE(rt.groupOf(p2), rt.groupOf(p1));
}

TEST(Renaming, TranslationFollowsFifoAcrossChain)
{
    RenamingTable rt(1, 8, 2);
    // 3 cells on phys A, then the group "fills", 2 cells on phys B.
    const auto pa = rt.assignArrival(0, unbounded());
    rt.assignArrival(0, unbounded());
    rt.assignArrival(0, unbounded());
    auto full = [&](unsigned g) -> std::uint64_t {
        return g == rt.groupOf(pa) ? 0 : 1000;
    };
    const auto pb = rt.assignArrival(0, full);
    rt.assignArrival(0, full);
    ASSERT_NE(pa, pb);
    // Requests 1-3 drain phys A, 4-5 drain phys B.
    EXPECT_EQ(rt.translateRequest(0), pa);
    EXPECT_EQ(rt.translateRequest(0), pa);
    EXPECT_EQ(rt.translateRequest(0), pa);
    EXPECT_EQ(rt.translateRequest(0), pb);
    EXPECT_EQ(rt.translateRequest(0), pb);
}

TEST(Renaming, RetireAndRecycleAfterFullDrain)
{
    RenamingTable rt(1, 4, 2);
    const auto pa = rt.assignArrival(0, unbounded());
    rt.assignArrival(0, unbounded());
    auto full = [&](unsigned g) -> std::uint64_t {
        return g == rt.groupOf(pa) ? 0 : 1000;
    };
    rt.assignArrival(0, full); // phys B allocated
    rt.translateRequest(0);
    rt.translateRequest(0);
    // First grant: element A not yet fully granted.
    EXPECT_TRUE(rt.onGrant(0).empty());
    // Second grant drains A completely; A retires.
    const auto rec = rt.onGrant(0);
    ASSERT_EQ(rec.size(), 1u);
    EXPECT_EQ(rec[0], pa);
    EXPECT_EQ(rt.chainLength(0), 1u);
    EXPECT_EQ(rt.recycles(), 1u);
    // The recycled name is available again.
    EXPECT_EQ(rt.freePhysCount(), 3u);
}

TEST(Renaming, TailElementNeverRetiresEarly)
{
    RenamingTable rt(1, 4, 2);
    rt.assignArrival(0, unbounded());
    rt.translateRequest(0);
    // Fully requested and granted, but it is the tail: more
    // arrivals may come, so it must stay.
    EXPECT_TRUE(rt.onGrant(0).empty());
    EXPECT_EQ(rt.chainLength(0), 1u);
}

TEST(Renaming, RequestBeyondArrivalsPanics)
{
    RenamingTable rt(1, 2, 1);
    rt.assignArrival(0, unbounded());
    rt.translateRequest(0);
    EXPECT_THROW(rt.translateRequest(0), PanicError);
}

TEST(Renaming, ExhaustionRefusesAdmission)
{
    // 2 logical queues, 2 physical queues, 2 groups: once both
    // names are taken and the tails' groups are full, admission
    // must fail rather than corrupt state.
    RenamingTable rt(2, 2, 2);
    const auto p0 = rt.assignArrival(0, unbounded());
    const auto p1 = rt.assignArrival(1, unbounded());
    auto all_full = [&](unsigned) -> std::uint64_t { return 0; };
    EXPECT_FALSE(rt.canAssign(0, all_full));
    (void)p0;
    (void)p1;
}

TEST(Renaming, OversubscriptionRequired)
{
    EXPECT_THROW(RenamingTable(8, 4, 2), FatalError);
    EXPECT_NO_THROW(RenamingTable(4, 8, 2));
}

TEST(Renaming, IndependentLogicalQueues)
{
    RenamingTable rt(3, 12, 4);
    const auto a = rt.assignArrival(0, unbounded());
    const auto b = rt.assignArrival(1, unbounded());
    const auto c = rt.assignArrival(2, unbounded());
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_NE(a, c);
    EXPECT_EQ(rt.translateRequest(1), b);
}
