/**
 * @file
 * End-to-end tests of CFDS with queue renaming (Section 6): FIFO
 * integrity across physical-queue chains, whole-DRAM usage by few
 * logical queues (the fragmentation fix), recycling, and the
 * comparison against static assignment.
 */

#include <gtest/gtest.h>

#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

BufferConfig
renamingConfig(unsigned logical, unsigned phys, unsigned B, unsigned b,
               unsigned banks, std::uint64_t dram_cells)
{
    BufferConfig cfg;
    cfg.params = model::BufferParams{phys, B, b, banks};
    cfg.logicalQueues = logical;
    cfg.renaming = true;
    cfg.dramCells = dram_cells;
    return cfg;
}

} // namespace

TEST(RenamingBuffer, FifoAcrossChainsUnderRandomTraffic)
{
    // 4 groups, small per-group DRAM: chains form and the golden
    // checker verifies order end to end.
    HybridBuffer buf(renamingConfig(4, 8, 8, 2, 16, 512));
    UniformRandom wl(4, 3, 0.9);
    SimRunner runner(buf, wl);
    const auto r = runner.run(60000);
    EXPECT_GT(r.grants, 30000u);
}

TEST(RenamingBuffer, SingleLogicalQueueFillsWholeDram)
{
    // THE fragmentation experiment: statically, one queue could use
    // only DRAM/G cells; with renaming it must reach (nearly) the
    // full capacity.
    const std::uint64_t dram = 64 * 16; // 1024 cells over 8 groups
    HybridBuffer buf(renamingConfig(2, 16, 8, 2, 32, dram));
    SingleQueue wl(2, 5, 0, /*lead=*/1u << 30); // arrivals only
    SimRunner runner(buf, wl);
    runner.run(4000);
    const auto rep = buf.report();
    const auto per_group = dram / 8;
    EXPECT_GT(rep.dramResidentCells, per_group * 5)
        << "renaming failed to spread one logical queue over groups";
    EXPECT_GT(rep.renames, 3u);
}

TEST(RenamingBuffer, StaticAssignmentFragmentsByComparison)
{
    // Identical traffic without renaming: the single queue is
    // confined to its group's partition and drops appear early.
    const std::uint64_t dram = 64 * 16;
    BufferConfig cfg;
    cfg.params = model::BufferParams{16, 8, 2, 32};
    cfg.dramCells = dram;
    HybridBuffer buf(cfg);
    SingleQueue wl(16, 5, 0, /*lead=*/1u << 30);
    SimRunner runner(buf, wl);
    const auto r = runner.run(4000);
    const auto rep = buf.report();
    EXPECT_GT(r.drops, 0u);
    // Confined to one group's share (plus SRAM slack).
    EXPECT_LE(rep.dramResidentCells, dram / 8);
}

TEST(RenamingBuffer, DrainAndRecycle)
{
    // Build a deep backlog on one logical queue so it spills across
    // groups, then drain everything: retired physical queues must be
    // recycled and the DRAM must end empty.
    const std::uint64_t dram = 64 * 8;
    auto cfg = renamingConfig(2, 12, 8, 2, 16, dram);
    // A single queue at full line rate consumes exactly one group's
    // access bandwidth (1 per b slots); the Eq. (1) size has no
    // slack for that marginal operating point, so give the RR
    // explicit headroom here (see DESIGN.md).
    cfg.rrCapacity = 64;
    HybridBuffer buf(cfg);
    SingleQueue wl(2, 9, 0, /*lead=*/2000);
    SimRunner runner(buf, wl);
    runner.run(30000);
    runner.drain(300000);
    std::uint64_t left = 0;
    for (QueueId q = 0; q < 2; ++q)
        left += wl.credit(q);
    EXPECT_EQ(left, 0u);
    const auto rep = buf.report();
    // Chains formed and physical queues were recycled back.
    EXPECT_GT(rep.renameRecycles, 0u);
    EXPECT_EQ(rep.dramResidentCells, 0u);
}

TEST(RenamingBuffer, ManyLogicalQueuesSoak)
{
    HybridBuffer buf(renamingConfig(8, 16, 8, 4, 8, 2048));
    UniformRandom wl(8, 21, 0.95);
    SimRunner runner(buf, wl);
    const auto r = runner.run(80000);
    EXPECT_GT(r.grants, 40000u);
}

TEST(RenamingBuffer, AdmissionStopsAtTrueCapacity)
{
    // With renaming, drops may begin only once the *whole* DRAM is
    // committed, not one group's share.
    const std::uint64_t dram = 32 * 8;
    HybridBuffer buf(renamingConfig(2, 16, 8, 2, 16, dram));
    SingleQueue wl(2, 11, 0, 1u << 30);
    SimRunner runner(buf, wl);
    const auto r = runner.run(3000);
    const auto rep = buf.report();
    if (r.drops > 0) {
        // Nearly the full DRAM (every group's rounded share) was in
        // use before the first drop.
        EXPECT_GT(rep.dramResidentCells + rep.arrivals -
                      rep.dramResidentCells, // arrivals include SRAM
                  dram / 2);
    }
    EXPECT_GT(rep.arrivals, dram / 2);
}
