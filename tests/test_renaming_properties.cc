/**
 * @file
 * Parameterized property sweeps for CFDS + queue renaming: the same
 * end-to-end guarantees as test_properties but with logical queues
 * renamed across physical queues and a finite DRAM, over
 * (logical, oversubscription, b, dram size, pattern, seed).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "buffer/hybrid_buffer.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

// (logical queues, extra phys queues, b, dram cells, pattern, seed)
using RenCfg = std::tuple<unsigned, unsigned, unsigned, unsigned,
                          int, int>;

class RenamingProperty : public ::testing::TestWithParam<RenCfg>
{
};

std::unique_ptr<Workload>
makeWorkload(int pat, unsigned queues, std::uint64_t seed)
{
    switch (pat) {
      case 0:
        return std::make_unique<RoundRobinWorstCase>(queues, seed,
                                                     1.0, 64);
      case 1:
        return std::make_unique<UniformRandom>(queues, seed, 0.9);
      default:
        // 0.45: a burst concentrates on ONE queue, whose group
        // sustains 1 cell/slot for read+write combined; loads above
        // 0.5 are infeasible without a renaming spill (DESIGN.md
        // section 7.4), which large DRAMs never trigger.
        return std::make_unique<BurstyOnOff>(queues, seed, 64, 0.45);
    }
}

std::string
renName(const ::testing::TestParamInfo<RenCfg> &info)
{
    return "L" + std::to_string(std::get<0>(info.param)) + "_x" +
           std::to_string(std::get<1>(info.param)) + "_b" +
           std::to_string(std::get<2>(info.param)) + "_D" +
           std::to_string(std::get<3>(info.param)) + "_p" +
           std::to_string(std::get<4>(info.param)) + "_s" +
           std::to_string(std::get<5>(info.param));
}

} // namespace

TEST_P(RenamingProperty, FifoAndSpaceGuaranteesHold)
{
    const auto [logical, extra, b, dram, pat, seed] = GetParam();
    BufferConfig cfg;
    cfg.params = model::BufferParams{logical + extra, 8, b, 32};
    cfg.logicalQueues = logical;
    cfg.renaming = true;
    cfg.dramCells = dram;
    // Bursty phases drive one queue toward full line rate, which
    // exceeds the spread-traffic assumptions behind Eq. (1) and the
    // t-SRAM bound: until the hot queue's group fills (triggering a
    // renaming spill), the burst parks in the tail SRAM.  Size both
    // for the concentration (DESIGN.md section 7.4).
    cfg.rrCapacity =
        2 * model::rrSize(cfg.params) + 2 * 64 / b + 16;
    cfg.tailSramCells =
        model::tailSramCells(cfg.params.queues, b) +
        model::latencySlots(cfg.params) + 2 * 64 /*burst*/;
    HybridBuffer buf(cfg);
    auto wl = makeWorkload(pat, logical, seed);
    SimRunner runner(buf, *wl);

    // Zero miss / conflict freedom / FIFO via golden checker; any
    // violation panics.
    const auto r = runner.run(40000);
    EXPECT_GT(r.grants, 5000u);

    // Drain completely: every non-dropped cell delivered in order,
    // all DRAM space reclaimed, no physical queue leaked.
    runner.drain(400000);
    std::uint64_t left = 0;
    for (QueueId q = 0; q < logical; ++q)
        left += wl->credit(q);
    EXPECT_EQ(left, 0u);
    const auto rep = buf.report();
    EXPECT_EQ(rep.dramResidentCells, 0u);
    ASSERT_NE(buf.renaming(), nullptr);
    // Every logical queue holds at most one (tail) element now, so
    // at least P - L names are free again.
    EXPECT_GE(buf.renaming()->freePhysCount(),
              static_cast<std::size_t>(extra));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RenamingProperty,
    ::testing::Combine(::testing::Values(4u, 8u),   // logical
                       ::testing::Values(4u, 8u),   // extra phys
                       ::testing::Values(1u, 2u),   // b
                       ::testing::Values(256u, 1024u),
                       ::testing::Values(0, 1, 2),  // pattern
                       ::testing::Values(1, 5)),    // seed
    renName);
