/**
 * @file
 * Parameterized property sweeps for CFDS + queue renaming: the same
 * end-to-end guarantees as test_properties but with logical queues
 * renamed across physical queues and a finite DRAM, over
 * (logical, oversubscription, b, dram size, pattern, seed).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>

#include "buffer/hybrid_buffer.hh"
#include "common/random.hh"
#include "fuzz_env.hh"
#include "sim/runner.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::buffer;
using namespace pktbuf::sim;

namespace
{

// (logical queues, extra phys queues, b, dram cells, pattern, seed)
using RenCfg = std::tuple<unsigned, unsigned, unsigned, unsigned,
                          int, int>;

class RenamingProperty : public ::testing::TestWithParam<RenCfg>
{
};

std::unique_ptr<Workload>
makeWorkload(int pat, unsigned queues, std::uint64_t seed)
{
    switch (pat) {
      case 0:
        return std::make_unique<RoundRobinWorstCase>(queues, seed,
                                                     1.0, 64);
      case 1:
        return std::make_unique<UniformRandom>(queues, seed, 0.9);
      default:
        // 0.45: a burst concentrates on ONE queue, whose group
        // sustains 1 cell/slot for read+write combined; loads above
        // 0.5 are infeasible without a renaming spill (DESIGN.md
        // section 7.4), which large DRAMs never trigger.
        return std::make_unique<BurstyOnOff>(queues, seed, 64, 0.45);
    }
}

std::string
renName(const ::testing::TestParamInfo<RenCfg> &info)
{
    return "L" + std::to_string(std::get<0>(info.param)) + "_x" +
           std::to_string(std::get<1>(info.param)) + "_b" +
           std::to_string(std::get<2>(info.param)) + "_D" +
           std::to_string(std::get<3>(info.param)) + "_p" +
           std::to_string(std::get<4>(info.param)) + "_s" +
           std::to_string(std::get<5>(info.param));
}

} // namespace

TEST_P(RenamingProperty, FifoAndSpaceGuaranteesHold)
{
    const auto [logical, extra, b, dram, pat, seed] = GetParam();
    BufferConfig cfg;
    cfg.params = model::BufferParams{logical + extra, 8, b, 32};
    cfg.logicalQueues = logical;
    cfg.renaming = true;
    cfg.dramCells = dram;
    // Bursty phases drive one queue toward full line rate, which
    // exceeds the spread-traffic assumptions behind Eq. (1) and the
    // t-SRAM bound: until the hot queue's group fills (triggering a
    // renaming spill), the burst parks in the tail SRAM.  Size both
    // for the concentration (DESIGN.md section 7.4), plus the L < 4
    // write-backlog slack (model::concentrationSlackSlots).
    cfg.rrCapacity =
        2 * model::rrSize(cfg.params) + 2 * 64 / b + 16 +
        model::concentrationSlackSlots(cfg.params, logical) / b;
    cfg.tailSramCells =
        model::tailSramCells(cfg.params.queues, b) +
        model::latencySlots(cfg.params) + 2 * 64 /*burst*/ +
        model::concentrationSlackSlots(cfg.params, logical);
    HybridBuffer buf(cfg);
    auto wl = makeWorkload(pat, logical, seed);
    SimRunner runner(buf, *wl);

    // Zero miss / conflict freedom / FIFO via golden checker; any
    // violation panics.
    const auto r = runner.run(40000);
    EXPECT_GT(r.grants, 5000u);

    // Drain completely: every non-dropped cell delivered in order,
    // all DRAM space reclaimed, no physical queue leaked.
    runner.drain(400000);
    std::uint64_t left = 0;
    for (QueueId q = 0; q < logical; ++q)
        left += wl->credit(q);
    EXPECT_EQ(left, 0u);
    const auto rep = buf.report();
    EXPECT_EQ(rep.dramResidentCells, 0u);
    ASSERT_NE(buf.renaming(), nullptr);
    // Every logical queue holds at most one (tail) element now, so
    // at least P - L names are free again.
    EXPECT_GE(buf.renaming()->freePhysCount(),
              static_cast<std::size_t>(extra));
}

/**
 * Seeded fuzz smoke over the renaming envelope: random (logical,
 * oversubscription, b, DRAM size, pattern) points with the same
 * concentration-aware RR/t-SRAM sizing the parameterized grid uses.
 * PKTBUF_FUZZ_ITERS scales the iteration count (default 3); CTest
 * registers a longer fixed-seed pass under the `fuzz` label.  Any
 * failing assert prints the master seed, iteration and leg seed via
 * the surrounding SCOPED_TRACE.
 */
TEST(RenamingFuzzSmoke, RandomRenamingConfigsHoldGuarantees)
{
    const std::uint64_t master =
        testutil::envU64("PKTBUF_FUZZ_SEED", 1);
    const std::uint64_t iters =
        testutil::envU64("PKTBUF_FUZZ_ITERS", 3);
    Rng rng(master);
    for (std::uint64_t it = 0; it < iters; ++it) {
        // The full envelope includes L < 4: few logical queues
        // funnel the whole grant stream through one physical chain.
        // The buffer now absorbs this with bandwidth-aware group
        // allocation in the RenamingTable plus
        // model::concentrationSlackSlots of extra lookahead,
        // h-SRAM and t-SRAM headroom.  These configs used to
        // MISS-panic at the documented concentration bound; the
        // pinned-seed regression test below replays the first
        // failing config verbatim.
        const unsigned logical =
            1 + static_cast<unsigned>(rng.below(8));  // 1..8
        const unsigned extra =
            4 + static_cast<unsigned>(rng.below(5));  // 4..8
        const unsigned b = 1 + static_cast<unsigned>(rng.below(2));
        const unsigned dram =
            256u << rng.below(3);  // 256, 512, 1024
        const int pat = static_cast<int>(rng.below(3));
        const std::uint64_t seed = rng.next();

        std::ostringstream desc;
        desc << "fuzz iter " << it << ": L=" << logical << " x"
             << extra << " b=" << b << " D=" << dram << " p=" << pat
             << " leg_seed=" << seed << " (PKTBUF_FUZZ_SEED="
             << master << " PKTBUF_FUZZ_ITERS=" << iters << ")";
        SCOPED_TRACE(desc.str());

        BufferConfig cfg;
        cfg.params = model::BufferParams{logical + extra, 8, b, 32};
        cfg.logicalQueues = logical;
        cfg.renaming = true;
        cfg.dramCells = dram;
        // Concentration-aware sizing, exactly as the grid above.
        cfg.rrCapacity =
            2 * model::rrSize(cfg.params) + 2 * 64 / b + 16 +
            model::concentrationSlackSlots(cfg.params, logical) / b;
        cfg.tailSramCells =
            model::tailSramCells(cfg.params.queues, b) +
            model::latencySlots(cfg.params) + 2 * 64 +
            model::concentrationSlackSlots(cfg.params, logical);
        try {
            HybridBuffer buf(cfg);
            auto wl = makeWorkload(pat, logical, seed);
            SimRunner runner(buf, *wl);
            const auto r = runner.run(10000);
            EXPECT_GT(r.grants, 500u);
            runner.drain(200000);
            std::uint64_t left = 0;
            for (QueueId q = 0; q < logical; ++q)
                left += wl->credit(q);
            EXPECT_EQ(left, 0u);
            EXPECT_EQ(buf.report().dramResidentCells, 0u);
        } catch (const std::exception &e) {
            FAIL() << "buffer panicked: " << e.what();
        }
    }
}

/**
 * Pinned-seed regression: before the concentration-lookahead fix
 * (concentrationLookaheadSlack in hybrid_buffer.cc), this exact
 * config -- a single logical queue over 5 physical names, b=1,
 * D=512, adversarial round-robin, seed 1 -- MISS-panicked with
 * "queue 0 has no cells for replenish seq 48": the base ECQF
 * lookahead saw only the head chain's share of the grant stream and
 * replenished too late.  The config must now run clean end to end
 * with every guarantee held.
 */
TEST(RenamingRegression, SingleLogicalQueueConcentrationNoMiss)
{
    BufferConfig cfg;
    cfg.params = model::BufferParams{1 + 4, 8, 1, 32};
    cfg.logicalQueues = 1;
    cfg.renaming = true;
    cfg.dramCells = 512;
    // Deliberately the PRE-fix harness sizing (no explicit
    // concentrationSlackSlots terms): the default lookahead and
    // h-SRAM slack alone must absorb the concentration.
    cfg.rrCapacity = 2 * model::rrSize(cfg.params) + 2 * 64 + 16;
    cfg.tailSramCells =
        model::tailSramCells(cfg.params.queues, 1) +
        model::latencySlots(cfg.params) + 2 * 64;
    HybridBuffer buf(cfg);
    RoundRobinWorstCase wl(1, /*seed=*/1, 1.0, 64);
    SimRunner runner(buf, wl);
    const auto r = runner.run(10000);
    EXPECT_GT(r.grants, 500u);
    runner.drain(200000);
    EXPECT_EQ(wl.credit(0), 0u);
    EXPECT_EQ(buf.report().dramResidentCells, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RenamingProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),  // logical
                       ::testing::Values(4u, 8u),   // extra phys
                       ::testing::Values(1u, 2u),   // b
                       ::testing::Values(256u, 1024u),
                       ::testing::Values(0, 1, 2),  // pattern
                       ::testing::Values(1, 5)),    // seed
    renName);
