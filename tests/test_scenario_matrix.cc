/**
 * @file
 * The scenario-matrix differential suite: every leg of the
 * variant x workload x granularity x queue-count sweep runs with the
 * golden FIFO checker enabled and must deliver every admitted cell
 * in order.  A failing leg prints its full scenario description,
 * including the seed, so it can be replayed from the log alone.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/scenario.hh"

using namespace pktbuf;
using namespace pktbuf::sim;

class ScenarioMatrix : public ::testing::TestWithParam<Scenario>
{};

TEST_P(ScenarioMatrix, EveryGrantMatchesGoldenModel)
{
    const Scenario &s = GetParam();
    const ScenarioOutcome out = runScenario(s);
    EXPECT_TRUE(out.passed) << out.failure;
    EXPECT_EQ(out.undelivered, 0u) << s.describe();
    EXPECT_EQ(out.verified, out.run.grants + out.drained)
        << s.describe();
    EXPECT_EQ(out.verified, out.run.arrivals) << s.describe();
    EXPECT_GT(out.verified, 0u) << s.describe();
}

INSTANTIATE_TEST_SUITE_P(
    Full, ScenarioMatrix, ::testing::ValuesIn(defaultMatrix()),
    [](const ::testing::TestParamInfo<Scenario> &pinfo) {
        return pinfo.param.name();
    });

// The timed-DRAM legs (refresh storm, turnaround thrash, asymmetric
// bank groups, full DDR) run through the very same differential
// check: every admitted cell granted in order, zero misses, full
// drain -- the extended latency/RR slack must absorb whatever the
// timing policy refuses.
INSTANTIATE_TEST_SUITE_P(
    Timing, ScenarioMatrix, ::testing::ValuesIn(timingMatrix()),
    [](const ::testing::TestParamInfo<Scenario> &pinfo) {
        return pinfo.param.name();
    });

TEST(ScenarioMatrixShape, CoversRequiredVariantsAndWorkloads)
{
    const auto matrix = defaultMatrix();
    std::set<BufferVariant> variants;
    std::set<WorkloadKind> workloads;
    std::set<unsigned> grans;
    std::set<unsigned> queue_counts;
    std::set<std::string> names;
    for (const auto &s : matrix) {
        variants.insert(s.variant);
        workloads.insert(s.workload);
        grans.insert(s.variant == BufferVariant::Rads ? s.granRads
                                                      : s.gran);
        queue_counts.insert(s.queues);
        names.insert(s.name());
    }
    EXPECT_GE(variants.size(), 3u);
    EXPECT_GE(workloads.size(), 4u);
    EXPECT_GE(grans.size(), 3u);
    EXPECT_GE(queue_counts.size(), 2u);
    // Leg names double as gtest parameter names: must be unique.
    EXPECT_EQ(names.size(), matrix.size());
}

TEST(ScenarioMatrixShape, SmokeIsASmallerSweepOfAllCells)
{
    const auto smoke = smokeMatrix();
    const auto full = defaultMatrix();
    EXPECT_LT(smoke.size(), full.size());
    std::set<BufferVariant> variants;
    std::set<WorkloadKind> workloads;
    for (const auto &s : smoke) {
        variants.insert(s.variant);
        workloads.insert(s.workload);
        EXPECT_LT(s.slots, full.front().slots);
    }
    EXPECT_GE(variants.size(), 3u);
    EXPECT_GE(workloads.size(), 4u);
}

TEST(ScenarioMatrixShape, RenamingLegsActuallyExerciseRenaming)
{
    // The matrix must regress the Section 6 machinery, not merely
    // switch it on: with the legs' tight per-group DRAM share,
    // renaming chains form on several legs and the bounded-DRAM
    // admission (drop) path runs too.
    std::uint64_t renames = 0, drops = 0;
    unsigned legs_with_renames = 0;
    for (const auto &s : defaultMatrix()) {
        if (s.variant != BufferVariant::CfdsRenaming)
            continue;
        const auto out = runScenario(s);
        ASSERT_TRUE(out.passed) << out.failure;
        renames += out.report.renames;
        drops += out.run.drops;
        legs_with_renames += out.report.renames > 0 ? 1 : 0;
    }
    EXPECT_GE(legs_with_renames, 2u);
    EXPECT_GT(renames, 0u);
    EXPECT_GT(drops, 0u);
}

TEST(ScenarioMatrixShape, TimingLegsProvokeTheirStallCauses)
{
    // Each timing family must actually exercise its constraint:
    // summed over a family's legs, the signature stall cause is
    // nonzero (otherwise the leg is a no-op rename of a uniform
    // leg), and the default matrix stays timing-free.
    std::uint64_t refresh = 0, turnaround = 0, bank_busy = 0;
    std::set<std::string> tags;
    for (const auto &s : timingMatrix()) {
        ASSERT_FALSE(s.timing.isUniform()) << s.describe();
        ASSERT_FALSE(s.timingTag.empty()) << s.describe();
        tags.insert(s.timingTag);
        const auto out = runScenario(s);
        ASSERT_TRUE(out.passed) << out.failure;
        if (s.timingTag == "refresh" || s.timingTag == "ddr")
            refresh += out.report.dsaStallsRefresh;
        if (s.timingTag == "turnaround" || s.timingTag == "ddr")
            turnaround += out.report.dsaStallsTurnaround;
        if (s.timingTag == "asym" || s.timingTag == "ddr")
            bank_busy += out.report.dsaStallsBankBusy;
    }
    EXPECT_GE(tags.size(), 4u);
    EXPECT_GT(refresh, 0u);
    EXPECT_GT(turnaround, 0u);
    EXPECT_GT(bank_busy, 0u);
    for (const auto &s : defaultMatrix())
        EXPECT_TRUE(s.timing.isUniform()) << s.describe();
}

TEST(ScenarioMatrixShape, TimingLegNamesAreUniqueAndTagged)
{
    const auto legs = timingMatrix();
    std::set<std::string> names;
    for (const auto &s : legs) {
        names.insert(s.name());
        EXPECT_NE(s.name().find(s.timingTag), std::string::npos);
        // The seed and the timing knobs must both appear in the
        // replay line.
        EXPECT_NE(s.describe().find("timing=["), std::string::npos);
        EXPECT_NE(s.describe().find("seed="), std::string::npos);
    }
    EXPECT_EQ(names.size(), legs.size());
    const auto smoke = timingSmokeMatrix();
    EXPECT_LT(smoke.size(), legs.size());
    for (const auto &s : smoke)
        EXPECT_LT(s.slots, legs.front().slots);
}

TEST(ScenarioMatrixShape, LegsAreDeterministic)
{
    // Two runs of the same leg produce identical counters.
    Scenario s = smokeMatrix().front();
    const auto a = runScenario(s);
    const auto b = runScenario(s);
    EXPECT_EQ(a.run.arrivals, b.run.arrivals);
    EXPECT_EQ(a.run.grants, b.run.grants);
    EXPECT_EQ(a.drained, b.drained);
    EXPECT_EQ(a.verified, b.verified);
    // A different seed perturbs a randomized leg.
    Scenario other = s;
    other.workload = WorkloadKind::Bernoulli;
    other.load = 0.9;
    Scenario reseeded = other;
    reseeded.seed = other.seed + 1;
    EXPECT_NE(runScenario(other).run.arrivals,
              runScenario(reseeded).run.arrivals);
}

TEST(ScenarioMatrixShape, FailureReportNamesTheSeed)
{
    // An impossible configuration (b does not divide B) must fail
    // gracefully and the diagnosis must carry the seed for replay.
    Scenario s;
    s.variant = BufferVariant::Cfds;
    s.granRads = 8;
    s.gran = 3;
    s.groups = 2;
    s.seed = 424242;
    const auto out = runScenario(s);
    EXPECT_FALSE(out.passed);
    EXPECT_NE(out.failure.find("seed=424242"), std::string::npos)
        << out.failure;
}
