/**
 * @file
 * Direct unit tests for src/common/shift_register.hh beyond the
 * basics covered in test_common: construction guards, the
 * forEachFromHead fast-path traversal (the per-slot ECQF scan), the
 * head pointer after clear(), and long-run wraparound.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/shift_register.hh"

using namespace pktbuf;

namespace
{

TEST(ShiftRegisterGuards, DepthZeroPanics)
{
    EXPECT_THROW(ShiftRegister<int>(0, -1), PanicError);
}

TEST(ShiftRegisterGuards, DepthIsFixedAtConstruction)
{
    ShiftRegister<int> sr(5, 0);
    EXPECT_EQ(sr.depth(), 5u);
    for (int i = 0; i < 100; ++i)
        sr.shift(i);
    EXPECT_EQ(sr.depth(), 5u);
}

TEST(ShiftRegisterTraversal, ForEachFromHeadVisitsInEmergenceOrder)
{
    ShiftRegister<int> sr(4, 0);
    sr.shift(1);
    sr.shift(2);
    // Stages now: [idle, idle, 1, 2] in emergence order; the visit
    // order must match what peek(0..depth-1) reports.
    std::vector<int> seen;
    sr.forEachFromHead([&seen](int v) { seen.push_back(v); });
    ASSERT_EQ(seen.size(), sr.depth());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], sr.peek(i)) << "stage " << i;
    EXPECT_EQ(seen, (std::vector<int>{0, 0, 1, 2}));
}

TEST(ShiftRegisterTraversal, ForEachFromHeadAfterWraparound)
{
    // Push more than depth values so the internal head index wraps:
    // the two linear segments of the traversal must still splice
    // into one emergence-ordered pass.
    ShiftRegister<int> sr(3, -1);
    for (int i = 1; i <= 5; ++i)
        sr.shift(i);  // register now holds 3, 4, 5
    std::vector<int> seen;
    sr.forEachFromHead([&seen](int v) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<int>{3, 4, 5}));
    EXPECT_EQ(sr.occupancy(), 3u);
    EXPECT_EQ(sr.shift(-1), 3);
}

TEST(ShiftRegisterClear, ClearResetsContentsAndHead)
{
    ShiftRegister<int> sr(3, -1);
    sr.shift(1);
    sr.shift(2);
    sr.clear();
    EXPECT_EQ(sr.occupancy(), 0u);
    // After clear() the register must behave exactly like a fresh
    // one: `depth` shifts before the first value re-emerges.
    EXPECT_EQ(sr.shift(7), -1);
    EXPECT_EQ(sr.shift(8), -1);
    EXPECT_EQ(sr.shift(9), -1);
    EXPECT_EQ(sr.shift(-1), 7);
}

TEST(ShiftRegisterValues, NonTrivialElementType)
{
    // The MMA pipes carry struct entries; exercise a non-POD T.
    ShiftRegister<std::string> sr(2, "");
    EXPECT_EQ(sr.shift("a"), "");
    EXPECT_EQ(sr.shift("b"), "");
    EXPECT_EQ(sr.occupancy(), 2u);
    EXPECT_EQ(sr.shift(""), "a");
    EXPECT_EQ(sr.peek(0), "b");
    EXPECT_EQ(sr.occupancy(), 1u);
}

TEST(ShiftRegisterLongRun, MillionShiftsKeepFifoOrder)
{
    ShiftRegister<int> sr(7, -1);
    for (int i = 0; i < 1000000; ++i) {
        const int out = sr.shift(i);
        EXPECT_EQ(out, i < 7 ? -1 : i - 7);
    }
}

} // namespace
