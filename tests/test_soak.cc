/**
 * @file
 * Soak-layer tests: the serialization codec, the P^2 streaming
 * quantile estimator, the checkpoint envelope (including corruption
 * rejection), and the layer's core invariant -- save-at-slot-k +
 * restore-into-fresh-objects + run-to-N is bit-identical to an
 * unbroken N-slot run, on every scenario-matrix leg, every timing
 * leg, and a multi-port switch smoke.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "fuzz_env.hh"
#include "soak/checkpoint.hh"
#include "sweep/scenario_sweep.hh"
#include "switch/switch_sim.hh"

using namespace pktbuf;

namespace
{

// ------------------------------------------------------------- codec

TEST(SerializeCodec, RoundTripsEveryFieldType)
{
    ser::Writer w;
    w.tag("TEST");
    w.u8(0xab);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.i64(-42);
    w.b(true);
    w.real(3.141592653589793);
    w.real(-0.0);
    w.str("hello \0 world");  // embedded NUL survives via length
    const std::string bytes = w.take();

    ser::Reader r(bytes);
    r.tag("TEST");
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_TRUE(r.b());
    EXPECT_EQ(r.real(), 3.141592653589793);
    EXPECT_TRUE(std::signbit(r.real()));  // -0.0 bit-exact
    EXPECT_EQ(r.str(), std::string("hello "));
    r.done();
}

TEST(SerializeCodec, RejectsMalformedInput)
{
    ser::Writer w;
    w.tag("GOOD");
    w.u64(7);
    const std::string bytes = w.take();

    {
        ser::Reader r(bytes);
        EXPECT_THROW(r.tag("EVIL"), FatalError);
    }
    {
        // Short read: ask for more than remains.  The Reader holds a
        // view, so the buffer must outlive it -- keep a named local.
        const std::string head = bytes.substr(0, 6);
        ser::Reader r(head);
        r.tag("GOOD");
        EXPECT_THROW(r.u64(), FatalError);
    }
    {
        // Trailing bytes must be an error, not silence.
        const std::string padded = bytes + "x";
        ser::Reader r(padded);
        r.tag("GOOD");
        EXPECT_EQ(r.u64(), 7u);
        EXPECT_THROW(r.done(), FatalError);
    }
    {
        // A bool octet above 1 is corruption, not "truthy".
        const std::string bad("\x02", 1);
        ser::Reader r(bad);
        EXPECT_THROW(r.b(), FatalError);
    }
}

TEST(SerializeCodec, RngStreamContinuesAcrossRoundTrip)
{
    Rng a(12345);
    for (int i = 0; i < 100; ++i)
        a.next();
    ser::Writer w;
    a.save(w);
    Rng b(999);  // different seed; load must fully overwrite
    ser::Reader r(w.bytes());
    b.load(r);
    r.done();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

// ------------------------------------------------- P^2 quantile

/** Exact percentile: linear interpolation at rank p*(n-1). */
double
exactQuantile(std::vector<double> v, double p)
{
    std::sort(v.begin(), v.end());
    const double rank = p * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    if (lo + 1 >= v.size())
        return v.back();
    const double frac = rank - static_cast<double>(lo);
    return v[lo] + frac * (v[lo + 1] - v[lo]);
}

TEST(P2Quantile, ExactForFiveOrFewerSamples)
{
    const std::vector<double> data = {4.0, 1.0, 3.0, 2.0, 5.0};
    for (std::size_t n = 1; n <= data.size(); ++n) {
        const std::vector<double> prefix(data.begin(),
                                         data.begin() + n);
        for (const double p : {0.5, 0.9, 0.99}) {
            P2Quantile q(p);
            for (const double v : prefix)
                q.sample(v);
            EXPECT_DOUBLE_EQ(q.quantile(), exactQuantile(prefix, p))
                << "n=" << n << " p=" << p;
        }
    }
}

TEST(P2Quantile, TracksExactPercentilesOnLargeStreams)
{
    // Deterministic uniform stream: the P^2 markers must stay close
    // to the exact percentile of the full sample.
    Rng rng(7);
    std::vector<double> all;
    P2Quantile p50(0.5);
    P2Quantile p99(0.99);
    for (int i = 0; i < 20000; ++i) {
        const double v =
            static_cast<double>(rng.below(100000)) / 100.0;
        all.push_back(v);
        p50.sample(v);
        p99.sample(v);
    }
    // Uniform on [0, 1000): exact p50 ~ 500, p99 ~ 990.
    EXPECT_NEAR(p50.quantile(), exactQuantile(all, 0.5), 10.0);
    EXPECT_NEAR(p99.quantile(), exactQuantile(all, 0.99), 10.0);
    // Estimates never leave the observed range.
    EXPECT_GE(p50.quantile(), 0.0);
    EXPECT_LE(p99.quantile(), 1000.0);
}

TEST(P2Quantile, MemoryStaysConstantAndRoundTrips)
{
    // Stream a million samples through an estimator whose footprint
    // is 20 doubles, checkpoint it mid-stream, and confirm the
    // restored copy produces bit-identical estimates ever after.
    P2Quantile a(0.99);
    Rng rng(3);
    for (int i = 0; i < 500000; ++i)
        a.sample(static_cast<double>(rng.below(1 << 20)));

    ser::Writer w;
    a.save(w);
    P2Quantile b(0.99);
    ser::Reader r(w.bytes());
    b.load(r);
    r.done();

    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.quantile(), b.quantile());
    for (int i = 0; i < 500000; ++i) {
        const double v = static_cast<double>(rng.below(1 << 20));
        a.sample(v);
        b.sample(v);
    }
    EXPECT_EQ(a.quantile(), b.quantile());
}

// ------------------------------------------- joint P^2 estimator

/**
 * Regression (stats-correctness sweep): *independent* P^2 estimators
 * can cross each other -- on the pinned alternating stream {0, 0.5,
 * 0, 0.5, ...} the standalone p50 exceeds the standalone p99 at
 * n == 7 -- which is the defect the old SwitchReport flooring hack
 * papered over.  The joint P2QuantileSet shares one sorted marker
 * vector, so its quantiles are ordered by construction; the hack is
 * gone.
 */
TEST(P2QuantileSet, PinnedCrossingStreamStaysOrdered)
{
    P2Quantile lone50(0.5);
    P2Quantile lone99(0.99);
    P2QuantileSet joint({0.5, 0.99});
    bool lone_crossed = false;
    for (int n = 1; n <= 50; ++n) {
        const double v = ((n - 1) % 2) * 0.5;
        lone50.sample(v);
        lone99.sample(v);
        joint.sample(v);
        if (lone99.quantile() < lone50.quantile())
            lone_crossed = true;
        EXPECT_GE(joint.quantile(0.99), joint.quantile(0.5))
            << "n=" << n;
    }
    // The defect is real: the independent estimators do cross on
    // this stream (first at n == 7).
    EXPECT_TRUE(lone_crossed);
}

TEST(P2QuantileSet, ExactForSevenOrFewerSamples)
{
    // 2k+3 = 7 markers for two targets: the estimator holds every
    // sample until the marker count is exceeded, so small-n results
    // are the exact order statistics.
    const std::vector<double> data = {4.0, 1.0, 3.0, 2.0,
                                      7.0, 5.0, 6.0};
    for (std::size_t n = 1; n <= data.size(); ++n) {
        const std::vector<double> prefix(data.begin(),
                                         data.begin() + n);
        P2QuantileSet q({0.5, 0.99});
        for (const double v : prefix)
            q.sample(v);
        EXPECT_DOUBLE_EQ(q.quantile(0.5),
                         exactQuantile(prefix, 0.5))
            << "n=" << n;
        EXPECT_DOUBLE_EQ(q.quantile(0.99),
                         exactQuantile(prefix, 0.99))
            << "n=" << n;
    }
}

TEST(P2QuantileSet, OrderedAndCloseOnAdversarialStreams)
{
    // Duplicate-heavy and monotone streams are the classic P^2
    // stress cases (marker positions saturate); the joint estimator
    // must stay ordered everywhere and track the exact percentile.
    const auto run = [](const std::vector<double> &stream,
                        double tol50, double tol99) {
        P2QuantileSet q({0.5, 0.99});
        std::vector<double> seen;
        for (const double v : stream) {
            q.sample(v);
            seen.push_back(v);
            ASSERT_GE(q.quantile(0.99), q.quantile(0.5))
                << "after " << seen.size() << " samples";
        }
        EXPECT_NEAR(q.quantile(0.5), exactQuantile(seen, 0.5),
                    tol50);
        EXPECT_NEAR(q.quantile(0.99), exactQuantile(seen, 0.99),
                    tol99);
    };

    // 90% duplicates of one value, 10% outliers.
    std::vector<double> dup;
    Rng rng(13);
    for (int i = 0; i < 5000; ++i)
        dup.push_back(rng.below(10) == 0
                          ? 100.0 + double(rng.below(100))
                          : 7.0);
    run(dup, 1.0, 60.0);

    // Monotone ascending and descending.
    std::vector<double> asc, desc;
    for (int i = 0; i < 5000; ++i) {
        asc.push_back(double(i));
        desc.push_back(double(5000 - i));
    }
    run(asc, 100.0, 100.0);
    run(desc, 100.0, 100.0);
}

TEST(P2QuantileSet, RoundTripsMidStream)
{
    P2QuantileSet a({0.5, 0.99});
    Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        a.sample(static_cast<double>(rng.below(1 << 16)));

    ser::Writer w;
    a.save(w);
    P2QuantileSet b({0.5, 0.99});
    ser::Reader r(w.bytes());
    b.load(r);
    r.done();

    EXPECT_EQ(a.count(), b.count());
    for (int i = 0; i < 10000; ++i) {
        const double v = static_cast<double>(rng.below(1 << 16));
        a.sample(v);
        b.sample(v);
    }
    EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
    EXPECT_EQ(a.quantile(0.99), b.quantile(0.99));
}

TEST(AggregateStat, MatchesExactPercentiles)
{
    // <= 5 ports: the aggregation is exact by construction.
    const std::vector<double> four = {4.0, 1.0, 3.0, 2.0};
    const auto a = sw::aggregateStat(four);
    EXPECT_DOUBLE_EQ(a.p50, exactQuantile(four, 0.50));
    EXPECT_DOUBLE_EQ(a.p99, exactQuantile(four, 0.99));
    EXPECT_DOUBLE_EQ(a.max, 4.0);

    // Larger port counts: close to exact, inside [min, max], and
    // monotone (p99 >= p50) -- the properties the old fixed-width
    // Histogram could not guarantee.
    std::vector<double> many;
    Rng rng(11);
    for (int i = 0; i < 64; ++i)
        many.push_back(static_cast<double>(rng.below(1000)));
    const auto m = sw::aggregateStat(many);
    EXPECT_NEAR(m.p50, exactQuantile(many, 0.50), 60.0);
    EXPECT_GE(m.p99, m.p50);
    EXPECT_GE(m.p50, m.min);
    EXPECT_LE(m.p99, m.max);
}

// -------------------------------------------------- stat registry

TEST(StatRegistry, LoadPreservesComponentPointers)
{
    StatRegistry reg;
    Counter &c = reg.counter("layer.events");
    c.inc(5);
    reg.sampler("layer.delay").sample(2.0);
    reg.quantile("layer.p99", 0.99).sample(7.0);

    ser::Writer w;
    reg.save(w);
    c.inc(100);  // diverge after the snapshot

    ser::Reader r(w.bytes());
    reg.load(r);
    r.done();
    // The pointer obtained before load() must still be live and must
    // see the restored value: components cache Counter* across
    // checkpoint cycles.
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(reg.quantile("layer.p99", 0.99).count(), 1u);
}

// ---------------------------------------------- checkpoint envelope

TEST(CheckpointEnvelope, SealOpenRoundTrip)
{
    const std::string payload = "arbitrary \x00\x01\x02 bytes";
    const auto sealed = soak::sealCheckpoint(payload, 0x1234);
    EXPECT_EQ(soak::openCheckpoint(sealed, 0x1234), payload);
}

TEST(CheckpointEnvelope, RejectsCorruptionAndMismatch)
{
    const std::string payload(256, 'z');
    const auto sealed = soak::sealCheckpoint(payload, 77);

    // Wrong configuration fingerprint.
    EXPECT_THROW(soak::openCheckpoint(sealed, 78), FatalError);
    // Truncation (short read).
    EXPECT_THROW(
        soak::openCheckpoint(sealed.substr(0, sealed.size() / 2), 77),
        FatalError);
    // Bit rot in the payload flips the checksum.
    {
        std::string bad = sealed;
        bad[bad.size() / 2] ^= 0x40;
        EXPECT_THROW(soak::openCheckpoint(bad, 77), FatalError);
    }
    // Unknown version.
    {
        std::string bad = sealed;
        bad[4] = 0x7f;  // version lives right after the 4-byte magic
        EXPECT_THROW(soak::openCheckpoint(bad, 77), FatalError);
    }
    // Trailing garbage.
    EXPECT_THROW(soak::openCheckpoint(sealed + "!", 77), FatalError);
    // Wrong magic.
    {
        std::string bad = sealed;
        bad[0] = 'X';
        EXPECT_THROW(soak::openCheckpoint(bad, 77), FatalError);
    }
}

TEST(CheckpointEnvelope, FileRoundTripAndMissingFile)
{
    const std::string path =
        ::testing::TempDir() + "pktbuf_ck_test.bin";
    const auto sealed = soak::sealCheckpoint("state", 1);
    soak::writeFile(path, sealed);
    EXPECT_EQ(soak::readFile(path), sealed);
    std::remove(path.c_str());
    EXPECT_THROW(soak::readFile(path), FatalError);
}

TEST(CheckpointEnvelope, RestoreRejectsForeignLeg)
{
    // A checkpoint from one leg must not restore into another: the
    // describe() fingerprint differs (different seed).
    auto legs = sim::smokeMatrix();
    ASSERT_GE(legs.size(), 2u);
    soak::ScenarioRun a(legs[0]);
    a.runTo(100);
    const auto bytes = a.checkpoint();
    soak::ScenarioRun b(legs[1]);
    EXPECT_THROW(b.restore(bytes), FatalError);
}

// ------------------------------------------------- bit identity

/** The leg's emitted record, flattened to comparable bytes. */
std::string
recordBytes(const sim::Scenario &s, const sim::ScenarioOutcome &o)
{
    std::string out;
    const auto rec = sweep::scenarioRecord(s, o);
    for (const auto &[k, v] : rec.fields())
        out += k + "=" + v.json() + ";";
    return out;
}

std::string
portRecordBytes(const sw::PortPlan &plan,
                const sim::ScenarioOutcome &o)
{
    std::string out;
    const auto rec = sw::portRecord(plan, o);
    for (const auto &[k, v] : rec.fields())
        out += k + "=" + v.json() + ";";
    return out;
}

/**
 * Core invariant on one leg: for saves at 25/50/75% of the main
 * phase, restore into completely fresh objects and finish; the
 * emitted record must equal the unbroken run's byte for byte.
 */
void
expectBitIdentical(const sim::Scenario &s)
{
    SCOPED_TRACE(s.describe());
    const auto plain = sim::runScenario(s);
    const auto expect = recordBytes(s, plain);
    for (const unsigned pct : {25u, 50u, 75u}) {
        SCOPED_TRACE("save at " + std::to_string(pct) + "%");
        soak::ScenarioRun a(s);
        a.runTo(s.slots * pct / 100);
        const auto bytes = a.checkpoint();
        soak::ScenarioRun b(s);
        b.restore(bytes);
        const auto seg = b.finish();
        EXPECT_EQ(seg.passed, plain.passed);
        EXPECT_EQ(recordBytes(s, seg), expect);
    }
}

TEST(SoakBitIdentity, EveryScenarioMatrixLeg)
{
    for (const auto &s : sim::defaultMatrix())
        expectBitIdentical(s);
}

TEST(SoakBitIdentity, EveryTimingLeg)
{
    for (const auto &s : sim::timingMatrix())
        expectBitIdentical(s);
}

TEST(SoakBitIdentity, CheckpointEveryMSelfTest)
{
    // The nightly driver's mode: checkpoint every M slots, restoring
    // each snapshot into a fresh run before continuing.
    for (const auto &s : sim::smokeMatrix()) {
        SCOPED_TRACE(s.describe());
        const auto plain = sim::runScenario(s);
        const auto seg =
            soak::runScenarioCheckpointed(s, s.slots / 7 + 1);
        EXPECT_EQ(recordBytes(s, seg), recordBytes(s, plain));
    }
}

TEST(SoakBitIdentity, FourPortSwitchSmoke)
{
    // A 4-port mixed-variant switch: every port (CFDS, RADS,
    // renaming) checkpoints and restores through the same driver,
    // with the port's workload injected via the factory.
    sw::SwitchConfig cfg;
    cfg.ports = 4;
    cfg.mixedVariants = true;
    cfg.slots = 4000;
    cfg.masterSeed = 20260808;
    const auto plans = sw::planPorts(cfg);
    for (const auto &plan : plans) {
        SCOPED_TRACE("port " + std::to_string(plan.port) + ": " +
                     plan.scenario.describe());
        const auto plain = sw::runPort(plan);
        const auto expect = portRecordBytes(plan, plain);
        const auto factory = [&plan] {
            return sw::makePortWorkload(plan);
        };
        for (const unsigned pct : {25u, 50u, 75u}) {
            SCOPED_TRACE("save at " + std::to_string(pct) + "%");
            soak::ScenarioRun a(plan.scenario, factory);
            a.runTo(plan.scenario.slots * pct / 100);
            const auto bytes = a.checkpoint();
            soak::ScenarioRun b(plan.scenario, factory);
            b.restore(bytes);
            const auto seg = b.finish();
            EXPECT_EQ(seg.passed, plain.passed);
            EXPECT_EQ(portRecordBytes(plan, seg), expect);
        }
    }
}

// --------------------------------------------------- fuzz smoke

/**
 * Seeded soak fuzz: random matrix legs run through the
 * checkpoint-every-M driver and compared to their unbroken twin.
 * PKTBUF_FUZZ_ITERS scales the iteration count, PKTBUF_SOAK_EVERY
 * overrides the checkpoint cadence; the nightly workflow runs this
 * at 100x iterations.  Failures print the leg description and seed;
 * when PKTBUF_SOAK_ARTIFACT_DIR is set, each failing iteration also
 * drops a mid-run checkpoint plus a replay line there, which the
 * nightly workflow uploads for offline diagnosis.
 */
TEST(SoakFuzzSmoke, RandomLegsSurviveCheckpointCycles)
{
    const std::uint64_t master =
        testutil::envU64("PKTBUF_FUZZ_SEED", 1);
    const std::uint64_t iters =
        testutil::envU64("PKTBUF_FUZZ_ITERS", 3);
    const char *artifact_dir =
        std::getenv("PKTBUF_SOAK_ARTIFACT_DIR");
    const auto matrix = sim::defaultMatrix();
    Rng rng(master);
    for (std::uint64_t it = 0; it < iters; ++it) {
        sim::Scenario s = matrix[rng.below(matrix.size())];
        s.seed = rng.next();  // fresh seed: a genuinely new leg
        s.slots = 2000 + rng.below(4000);
        const std::uint64_t every = testutil::envU64(
            "PKTBUF_SOAK_EVERY", 1 + s.slots / (2 + rng.below(6)));
        std::ostringstream desc;
        desc << "fuzz iter " << it << ": " << s.describe()
             << " every=" << every << " (PKTBUF_FUZZ_SEED=" << master
             << ")";
        SCOPED_TRACE(desc.str());
        const bool failed_before = ::testing::Test::HasFailure();
        const auto plain = sim::runScenario(s);
        const auto seg = soak::runScenarioCheckpointed(s, every);
        EXPECT_EQ(seg.passed, plain.passed)
            << "plain: " << plain.failure
            << " seg: " << seg.failure;
        EXPECT_EQ(recordBytes(s, seg), recordBytes(s, plain));
        if (artifact_dir && !failed_before &&
            ::testing::Test::HasFailure()) {
            // Replayable failure artifact: a mid-run checkpoint plus
            // the exact leg parameters.  Best effort -- an
            // unwritable directory must not mask the real failure.
            try {
                soak::ScenarioRun run(s);
                run.runTo(s.slots / 2);
                const std::string stem = std::string(artifact_dir) +
                    "/soak_fail_iter" + std::to_string(it);
                soak::writeFile(stem + ".ck", run.checkpoint());
                std::ofstream log(std::string(artifact_dir) +
                                      "/soak_failures.txt",
                                  std::ios::app);
                log << desc.str() << "\n";
            } catch (const std::exception &e) {
                std::fprintf(stderr,
                             "artifact dump failed: %s\n", e.what());
            }
        }
    }
}

} // namespace
