/**
 * @file
 * Unit tests of the functional SRAM caches: in-order consumption of
 * out-of-order refills in the head SRAM, miss/overflow panics, and
 * the claim/bypass protocol of the tail SRAM.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sram/head_sram.hh"
#include "sram/tail_sram.hh"

using namespace pktbuf;
using namespace pktbuf::sram;

namespace
{

std::vector<Cell>
block(QueueId q, SeqNum first, unsigned n)
{
    std::vector<Cell> cells;
    for (unsigned i = 0; i < n; ++i)
        cells.push_back(Cell{q, first + i, 0});
    return cells;
}

} // namespace

TEST(HeadSram, InOrderRoundTrip)
{
    HeadSram h(2, 0);
    h.insertBlock(0, 0, block(0, 0, 2));
    h.insertBlock(0, 1, block(0, 2, 2));
    for (SeqNum s = 0; s < 4; ++s)
        EXPECT_EQ(h.pop(0).seq, s);
    EXPECT_EQ(h.occupancy(), 0u);
}

TEST(HeadSram, OutOfOrderRefillConsumedInOrder)
{
    HeadSram h(2, 0);
    // Replenish seq 1 completes before seq 0 (DSA reordering).
    h.insertBlock(0, 1, block(0, 2, 2));
    EXPECT_TRUE(h.wouldMiss(0));
    h.insertBlock(0, 0, block(0, 0, 2));
    EXPECT_FALSE(h.wouldMiss(0));
    for (SeqNum s = 0; s < 4; ++s)
        EXPECT_EQ(h.pop(0).seq, s);
}

TEST(HeadSram, MissPanics)
{
    HeadSram h(2, 0);
    EXPECT_THROW(h.pop(0), PanicError);
    h.insertBlock(0, 1, block(0, 2, 2)); // gap at seq 0
    EXPECT_THROW(h.pop(0), PanicError);
}

TEST(HeadSram, OverflowPanics)
{
    HeadSram h(1, 3);
    h.insertBlock(0, 0, block(0, 0, 2));
    EXPECT_THROW(h.insertBlock(0, 1, block(0, 2, 2)), PanicError);
}

TEST(HeadSram, DuplicateAndStaleSeqPanic)
{
    HeadSram h(1, 0);
    h.insertBlock(0, 0, block(0, 0, 2));
    EXPECT_THROW(h.insertBlock(0, 0, block(0, 2, 2)), PanicError);
    h.pop(0);
    h.pop(0); // block 0 fully consumed
    EXPECT_THROW(h.insertBlock(0, 0, block(0, 4, 2)), PanicError);
}

TEST(HeadSram, PerQueueIsolationAndHighWater)
{
    HeadSram h(3, 0);
    h.insertBlock(0, 0, block(0, 0, 2));
    h.insertBlock(2, 0, block(2, 0, 4));
    EXPECT_EQ(h.cellsOf(0), 2u);
    EXPECT_EQ(h.cellsOf(1), 0u);
    EXPECT_EQ(h.cellsOf(2), 4u);
    EXPECT_EQ(h.occupancy(), 6u);
    EXPECT_EQ(h.highWater(), 6);
    h.pop(2);
    EXPECT_EQ(h.occupancy(), 5u);
    EXPECT_EQ(h.highWater(), 6);
}

TEST(HeadSram, RecycleResetsSequenceSpace)
{
    HeadSram h(1, 0);
    h.insertBlock(0, 0, block(0, 0, 1));
    h.pop(0);
    h.recycle(0);
    // After recycling, seq numbering restarts at 0.
    EXPECT_NO_THROW(h.insertBlock(0, 0, block(0, 0, 1)));
    EXPECT_EQ(h.pop(0).seq, 0u);
}

TEST(HeadSram, RecycleNonEmptyPanics)
{
    HeadSram h(1, 0);
    h.insertBlock(0, 0, block(0, 0, 1));
    EXPECT_THROW(h.recycle(0), PanicError);
}

TEST(TailSram, PushClaimExtractOrder)
{
    TailSram t(2, 0);
    for (SeqNum s = 0; s < 6; ++s)
        t.push(0, Cell{0, s, 0});
    EXPECT_EQ(t.unclaimed(0), 6u);
    t.claim(0, 4);
    EXPECT_EQ(t.unclaimed(0), 2u);
    EXPECT_EQ(t.cellsOf(0), 6u);
    const auto cells = t.extractClaimed(0, 4);
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].seq, 0u);
    EXPECT_EQ(cells[3].seq, 3u);
    EXPECT_EQ(t.cellsOf(0), 2u);
}

TEST(TailSram, ClaimMoreThanUnclaimedPanics)
{
    TailSram t(1, 0);
    t.push(0, Cell{0, 0, 0});
    EXPECT_THROW(t.claim(0, 2), PanicError);
}

TEST(TailSram, BypassTakesOldestUnclaimed)
{
    TailSram t(1, 0);
    for (SeqNum s = 0; s < 3; ++s)
        t.push(0, Cell{0, s, 0});
    const auto cells = t.extractBypass(0, 2);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].seq, 0u);
    EXPECT_EQ(cells[1].seq, 1u);
    EXPECT_EQ(t.cellsOf(0), 1u);
}

TEST(TailSram, BypassBehindClaimPanics)
{
    TailSram t(1, 0);
    for (SeqNum s = 0; s < 4; ++s)
        t.push(0, Cell{0, s, 0});
    t.claim(0, 2);
    // Claimed cells are older; bypassing around them would reorder.
    EXPECT_THROW(t.extractBypass(0, 2), PanicError);
    t.unclaim(0, 2);
    EXPECT_NO_THROW(t.extractBypass(0, 2));
}

TEST(TailSram, BypassShorterThanRequested)
{
    TailSram t(1, 0);
    t.push(0, Cell{0, 0, 0});
    const auto cells = t.extractBypass(0, 4);
    EXPECT_EQ(cells.size(), 1u);
}

TEST(TailSram, OverflowPanics)
{
    TailSram t(1, 2);
    t.push(0, Cell{0, 0, 0});
    t.push(0, Cell{0, 1, 0});
    EXPECT_THROW(t.push(0, Cell{0, 2, 0}), PanicError);
}

TEST(TailSram, HighWaterTracksPeak)
{
    TailSram t(1, 0);
    t.push(0, Cell{0, 0, 0});
    t.push(0, Cell{0, 1, 0});
    t.extractBypass(0, 2);
    EXPECT_EQ(t.occupancy(), 0u);
    EXPECT_EQ(t.highWater(), 2);
}

TEST(TailSram, RecycleRequiresDrained)
{
    TailSram t(1, 0);
    t.push(0, Cell{0, 0, 0});
    EXPECT_THROW(t.recycle(0), PanicError);
    t.extractBypass(0, 1);
    EXPECT_NO_THROW(t.recycle(0));
}
