/**
 * @file
 * Tests of the parallel sweep engine (src/sweep): determinism of the
 * aggregated output across thread counts (the engine's core
 * contract), failure propagation with seeds in the message, ordered
 * aggregation under heavy oversubscription, seed derivation, and the
 * JSON/CSV emitters.
 */

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>

#include "sim/scenario.hh"
#include "sweep/emit.hh"
#include "sweep/record.hh"
#include "sweep/scenario_sweep.hh"
#include "sweep/sweep.hh"

using namespace pktbuf;
using namespace pktbuf::sweep;

namespace
{

TEST(DeriveSeed, DeterministicAndDecorrelated)
{
    EXPECT_EQ(deriveSeed(1, 0), deriveSeed(1, 0));
    std::set<std::uint64_t> seen;
    for (std::uint64_t m : {0ull, 1ull, 42ull})
        for (std::uint64_t i = 0; i < 64; ++i)
            seen.insert(deriveSeed(m, i));
    // All (master, index) pairs distinct -- no shard shares a stream.
    EXPECT_EQ(seen.size(), 3u * 64u);
}

TEST(SweepEngine, OrderedAggregationUnderOversubscription)
{
    // 64 tasks on 8 threads (massively oversubscribed on any core
    // count): results must still land at their task's index.
    std::vector<Task> tasks;
    for (int i = 0; i < 64; ++i) {
        tasks.push_back(Task{
            "t" + std::to_string(i),
            [i](const SweepContext &ctx) {
                EXPECT_EQ(ctx.index, static_cast<std::size_t>(i));
                TaskResult r;
                r.text = std::to_string(i) + "\n";
                Record rec;
                rec.set("i", i).set("seed", ctx.seed);
                r.records.push_back(std::move(rec));
                return r;
            },
        });
    }
    SweepOptions opt;
    opt.jobs = 8;
    const auto rep = runSweep(tasks, opt);
    ASSERT_EQ(rep.results.size(), 64u);
    EXPECT_EQ(rep.failed, 0u);
    for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(rep.results[i].records.size(), 1u);
        EXPECT_EQ(rep.results[i].records[0].find("i")->asUInt(),
                  static_cast<std::uint64_t>(i));
        EXPECT_EQ(rep.results[i].text, std::to_string(i) + "\n");
    }
}

TEST(SweepEngine, FailurePropagation)
{
    std::vector<Task> tasks;
    tasks.push_back(Task{"good", [](const SweepContext &) {
                             return TaskResult{};
                         }});
    tasks.push_back(Task{"bad", [](const SweepContext &) -> TaskResult {
                             panic("leg violated the golden model");
                         }});
    tasks.push_back(Task{"also_good", [](const SweepContext &) {
                             return TaskResult{};
                         }});
    SweepOptions opt;
    opt.jobs = 4;
    opt.masterSeed = 99;
    const auto rep = runSweep(tasks, opt);
    // One failing leg fails the whole sweep ...
    EXPECT_EQ(rep.failed, 1u);
    EXPECT_TRUE(rep.results[0].ok);
    ASSERT_FALSE(rep.results[1].ok);
    EXPECT_TRUE(rep.results[2].ok);
    // ... but the others still ran (no fail-fast hiding of legs).
    const auto &err = rep.results[1].error;
    // The failure names the task and prints its shard seed.
    EXPECT_NE(err.find("'bad'"), std::string::npos) << err;
    EXPECT_NE(err.find("shard seed " +
                       std::to_string(deriveSeed(99, 1))),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("golden model"), std::string::npos) << err;
}

/** Reduced scenario legs so three sweeps stay fast. */
std::vector<sim::Scenario>
tinyMatrix()
{
    auto legs = sim::smokeMatrix();
    for (auto &l : legs)
        l.slots = 1500;
    return legs;
}

TEST(SweepDeterminism, JsonByteIdenticalAcrossJobs)
{
    // The acceptance contract of the whole subsystem: same master
    // seed, --jobs 1/4/8, byte-identical aggregated JSON (and text).
    const auto legs = tinyMatrix();
    std::string json[3];
    std::string text[3];
    const unsigned jobs[3] = {1, 4, 8};
    for (int k = 0; k < 3; ++k) {
        auto tasks = makeScenarioTasks(legs, /*deriveSeeds=*/false);
        SweepOptions opt;
        opt.jobs = jobs[k];
        const auto rep = runSweep(tasks, opt);
        EXPECT_EQ(rep.failed, 0u);
        EmitMeta meta;
        meta.tool = "test";
        json[k] = toJson(rep, tasks, meta);
        for (const auto &r : rep.results)
            text[k] += r.text;
    }
    EXPECT_EQ(json[0], json[1]);
    EXPECT_EQ(json[0], json[2]);
    EXPECT_EQ(text[0], text[1]);
    EXPECT_EQ(text[0], text[2]);
    // And the artifact is non-trivial: every leg contributed a row.
    for (const auto &leg : legs)
        EXPECT_NE(json[0].find(leg.name()), std::string::npos);
}

TEST(SweepDeterminism, MasterSeedDerivesPerLegSeeds)
{
    // With deriveSeeds on, leg i must run with splitmix(master, i),
    // and two different masters must give different outcomes streams
    // (the records echo the seed actually used).
    auto legs = tinyMatrix();
    legs.resize(2);
    auto tasks = makeScenarioTasks(legs, /*deriveSeeds=*/true);
    SweepOptions opt;
    opt.jobs = 2;
    opt.masterSeed = 7;
    const auto rep = runSweep(tasks, opt);
    ASSERT_EQ(rep.results.size(), 2u);
    for (std::size_t i = 0; i < rep.results.size(); ++i) {
        ASSERT_EQ(rep.results[i].records.size(), 1u);
        EXPECT_EQ(rep.results[i].records[0].find("seed")->asUInt(),
                  deriveSeed(7, i));
    }
}

TEST(Emitters, JsonEscapingAndShapes)
{
    std::vector<Task> tasks;
    tasks.push_back(Task{"esc", [](const SweepContext &) {
                             TaskResult r;
                             Record rec;
                             rec.set("s", "q\"b\\n\nx\ty")
                                 .set("i", -3)
                                 .set("u", 7u)
                                 .set("d", 0.5)
                                 .set("whole", 4.0)
                                 .set("flag", true);
                             r.records.push_back(std::move(rec));
                             return r;
                         }});
    const auto rep = runSweep(tasks, SweepOptions{});
    EmitMeta meta;
    meta.tool = "unit";
    meta.extra.set("note", "n");
    const auto js = toJson(rep, tasks, meta);
    EXPECT_NE(js.find("\"schema\": \"pktbuf-sweep-v1\""),
              std::string::npos);
    EXPECT_NE(js.find("\"tool\": \"unit\""), std::string::npos);
    EXPECT_NE(js.find("\"s\": \"q\\\"b\\\\n\\nx\\ty\""),
              std::string::npos)
        << js;
    EXPECT_NE(js.find("\"i\": -3"), std::string::npos);
    EXPECT_NE(js.find("\"u\": 7"), std::string::npos);
    EXPECT_NE(js.find("\"d\": 0.5"), std::string::npos);
    // Integral doubles still read back as JSON numbers with a point.
    EXPECT_NE(js.find("\"whole\": 4.0"), std::string::npos) << js;
    EXPECT_NE(js.find("\"flag\": true"), std::string::npos);

    const auto csv = toCsv(rep, tasks);
    EXPECT_EQ(csv.substr(0, csv.find('\n')),
              "task,s,i,u,d,whole,flag");
    // CSV quotes fields containing commas/quotes/newlines.
    EXPECT_NE(csv.find("\"q\"\"b\\n\nx\ty\""), std::string::npos)
        << csv;
}

TEST(Emitters, NonFiniteRealsBecomeNullAndEmpty)
{
    // JSON has no inf/nan tokens and CSV's idiom for "not available"
    // is an empty cell.  A NaN mean (empty sampler) or an inf rate
    // (0-second wall clock) must degrade to those forms instead of
    // emitting "inf"/"nan" and corrupting the whole artifact.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(Value(nan).json(), "null");
    EXPECT_EQ(Value(inf).json(), "null");
    EXPECT_EQ(Value(-inf).json(), "null");
    EXPECT_EQ(Value(nan).csv(), "");
    EXPECT_EQ(Value(inf).csv(), "");
    EXPECT_EQ(Value(-inf).csv(), "");
    // Finite values are untouched by the screening.
    EXPECT_EQ(Value(0.5).json(), "0.5");
    EXPECT_EQ(Value(0.5).csv(), "0.5");

    // End to end: a record carrying non-finite measurements still
    // emits, with null JSON fields and empty CSV cells.
    std::vector<Task> tasks;
    tasks.push_back(Task{"nf", [=](const SweepContext &) {
                             TaskResult r;
                             Record rec;
                             rec.set("bad_mean", nan)
                                 .set("bad_rate", inf)
                                 .set("ok", 1.5);
                             r.records.push_back(std::move(rec));
                             return r;
                         }});
    const auto rep = runSweep(tasks, SweepOptions{});
    EmitMeta meta;
    meta.tool = "unit";
    const auto js = toJson(rep, tasks, meta);
    EXPECT_NE(js.find("\"bad_mean\": null"), std::string::npos) << js;
    EXPECT_NE(js.find("\"bad_rate\": null"), std::string::npos) << js;
    EXPECT_NE(js.find("\"ok\": 1.5"), std::string::npos) << js;
    EXPECT_EQ(js.find("inf"), std::string::npos) << js;
    EXPECT_EQ(js.find("nan"), std::string::npos) << js;

    const auto csv = toCsv(rep, tasks);
    const auto row = csv.substr(csv.find('\n') + 1);
    EXPECT_EQ(row.substr(0, row.find('\n')), "nf,,,1.5") << csv;
}

TEST(Emitters, CsvQuotesCommasNewlinesAndQuotes)
{
    // RFC-4180: fields containing commas, quotes or newlines must be
    // quoted (with embedded quotes doubled); everything else stays
    // bare.  A comma leaking through unquoted silently shifts every
    // later column of the row -- the worst kind of artifact rot.
    std::vector<Task> tasks;
    tasks.push_back(Task{"csv", [](const SweepContext &) {
                             TaskResult r;
                             Record rec;
                             rec.set("comma", "a,b")
                                 .set("newline", "l1\nl2")
                                 .set("crlf", "l1\r\nl2")
                                 .set("quote", "say \"hi\"")
                                 .set("plain", "safe")
                                 .set("empty", "")
                                 .set("missing", Value());
                             r.records.push_back(std::move(rec));
                             return r;
                         }});
    const auto rep = runSweep(tasks, SweepOptions{});
    const auto csv = toCsv(rep, tasks);
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos) << csv;
    EXPECT_NE(csv.find("\"l1\nl2\""), std::string::npos) << csv;
    EXPECT_NE(csv.find("\"l1\r\nl2\""), std::string::npos) << csv;
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos)
        << csv;
    // Bare fields stay unquoted.
    EXPECT_NE(csv.find(",safe,"), std::string::npos) << csv;
    EXPECT_EQ(csv.find("\"safe\""), std::string::npos) << csv;
    // A Null value serializes as an empty field: the row must end
    // with ",," then "" (empty string and missing are both empty).
    const auto row = csv.substr(csv.find('\n') + 1);
    EXPECT_NE(row.find(",,"), std::string::npos) << row;
}

TEST(Emitters, CsvQuotesHeaderNamesToo)
{
    // Field *names* become header cells and need the same quoting.
    std::vector<Task> tasks;
    tasks.push_back(Task{"hdr", [](const SweepContext &) {
                             TaskResult r;
                             Record rec;
                             rec.set("odd,name", 1u).set("sane", 2u);
                             r.records.push_back(std::move(rec));
                             return r;
                         }});
    const auto rep = runSweep(tasks, SweepOptions{});
    const auto csv = toCsv(rep, tasks);
    const auto header = csv.substr(0, csv.find('\n'));
    EXPECT_EQ(header, "task,\"odd,name\",sane") << csv;
}

TEST(Emitters, FailedTaskBecomesErrorRow)
{
    std::vector<Task> tasks;
    tasks.push_back(Task{"boom", [](const SweepContext &) -> TaskResult {
                             throw std::runtime_error("kapow");
                         }});
    const auto rep = runSweep(tasks, SweepOptions{});
    EXPECT_EQ(rep.failed, 1u);
    EmitMeta meta;
    meta.tool = "unit";
    const auto js = toJson(rep, tasks, meta);
    EXPECT_NE(js.find("\"failed\": 1"), std::string::npos);
    EXPECT_NE(js.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(js.find("kapow"), std::string::npos);
    // CSV skips failed tasks entirely (no error channel).
    const auto csv = toCsv(rep, tasks);
    EXPECT_EQ(csv.find("boom"), std::string::npos);
}

TEST(Emitters, FailedTaskKeepsDiagnosticRecords)
{
    // A failing harness row (e.g. a violated validation bound) still
    // collects counters; the artifacts must carry them, tagged with
    // the failure, instead of replacing them with a bare error row.
    std::vector<Task> tasks;
    tasks.push_back(Task{"viol", [](const SweepContext &) {
                             TaskResult r;
                             Record rec;
                             rec.set("grants", 123u)
                                 .set("violation", "bank conflict");
                             r.records.push_back(std::move(rec));
                             r.ok = false;
                             r.error = "bound violated";
                             return r;
                         }});
    const auto rep = runSweep(tasks, SweepOptions{});
    EXPECT_EQ(rep.failed, 1u);
    EmitMeta meta;
    meta.tool = "unit";
    const auto js = toJson(rep, tasks, meta);
    EXPECT_NE(js.find("\"grants\": 123"), std::string::npos) << js;
    EXPECT_NE(js.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(js.find("bound violated"), std::string::npos);
    const auto csv = toCsv(rep, tasks);
    EXPECT_NE(csv.find("viol,123"), std::string::npos) << csv;
}

TEST(Emitters, RecordOverwriteKeepsPosition)
{
    Record r;
    r.set("a", 1u).set("b", 2u).set("a", 3u);
    ASSERT_EQ(r.fields().size(), 2u);
    EXPECT_EQ(r.fields()[0].first, "a");
    EXPECT_EQ(r.fields()[0].second.asUInt(), 3u);
    EXPECT_EQ(r.fields()[1].first, "b");
}

} // namespace
