/**
 * @file
 * Tests of the switch layer (src/switch): the 1-port == single-buffer
 * golden equivalence, byte-identical aggregation across thread
 * counts, hotspot/incast traffic shapes, per-port seed independence
 * under port-order permutation, mixed variants with per-port DDR
 * timing, and the aggregation/namespacing helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sweep/scenario_sweep.hh"
#include "sweep/sweep.hh"
#include "switch/switch_sim.hh"

using namespace pktbuf;
using namespace pktbuf::sw;

namespace
{

/** Serialize a record to one JSON-ish line for byte comparison. */
std::string
recordJson(const sweep::Record &rec)
{
    std::string out = "{";
    for (const auto &[k, v] : rec.fields()) {
        if (out.size() > 1)
            out += ", ";
        out += sweep::Value(k).json() + ": " + v.json();
    }
    return out + "}";
}

/** Concatenated per-port + aggregate rows: the artifact's payload. */
std::string
outcomeJson(const SwitchConfig &cfg, const SwitchOutcome &out)
{
    std::string all;
    for (std::size_t i = 0; i < out.ports.size(); ++i)
        all += recordJson(portRecord(out.plans[i], out.ports[i])) + "\n";
    all += recordJson(switchRecord(cfg, out)) + "\n";
    return all;
}

SwitchConfig
baseConfig(unsigned ports, TrafficPattern pattern,
           std::uint64_t slots = 3000)
{
    SwitchConfig cfg;
    cfg.ports = ports;
    cfg.pattern = pattern;
    cfg.slots = slots;
    cfg.masterSeed = 11;
    return cfg;
}

TEST(SwitchPlan, SeedsDeriveFromMasterAndPortIndex)
{
    const auto cfg = baseConfig(6, TrafficPattern::Uniform);
    const auto plans = planPorts(cfg);
    ASSERT_EQ(plans.size(), 6u);
    for (unsigned p = 0; p < 6; ++p) {
        EXPECT_EQ(plans[p].port, p);
        EXPECT_EQ(plans[p].scenario.seed,
                  sweep::deriveSeed(cfg.masterSeed, p));
        EXPECT_EQ(plans[p].scenario.slots, cfg.slots);
    }
}

TEST(SwitchPlan, ImpossibleKnobsAreFatal)
{
    SwitchConfig cfg = baseConfig(0, TrafficPattern::Uniform);
    EXPECT_THROW(planPorts(cfg), FatalError);
    cfg = baseConfig(4, TrafficPattern::Incast);
    cfg.incastVictim = 4;  // out of range
    EXPECT_THROW(planPorts(cfg), FatalError);
    cfg = baseConfig(4, TrafficPattern::Uniform);
    cfg.load = 0.0;
    EXPECT_THROW(planPorts(cfg), FatalError);
    // A fraction at either extreme starves one side of the split;
    // that must be a config fatal, not a misleading invariant
    // failure on the starved ports.
    cfg = baseConfig(4, TrafficPattern::Hotspot);
    cfg.hotFraction = 1.5;
    EXPECT_THROW(planPorts(cfg), FatalError);
    cfg.hotFraction = 0.0;
    EXPECT_THROW(planPorts(cfg), FatalError);
    cfg = baseConfig(4, TrafficPattern::Incast);
    cfg.hotFraction = 1.0;
    EXPECT_THROW(planPorts(cfg), FatalError);
}

TEST(SwitchEquivalence, OnePortUniformReproducesSingleBufferLeg)
{
    // The load-bearing invariant: a 1-port uniform switch *is* the
    // matching single-buffer scenario leg -- same buffer config,
    // same derived seed, same workload stream, same drain budget --
    // so the serialized records must agree byte for byte.
    SwitchConfig cfg = baseConfig(1, TrafficPattern::Uniform, 4000);
    cfg.masterSeed = 23;
    const SwitchSim sim(cfg);
    const auto out = sim.run(/*jobs=*/1);
    ASSERT_TRUE(out.passed) << out.failure;
    ASSERT_EQ(out.ports.size(), 1u);

    sim::Scenario leg;
    leg.variant = sim::BufferVariant::Cfds;
    leg.workload = sim::WorkloadKind::Bernoulli;
    leg.queues = cfg.queues;
    leg.granRads = cfg.granRads;
    leg.gran = cfg.gran;
    leg.groups = cfg.groups;
    leg.load = cfg.load;
    leg.slots = cfg.slots;
    leg.seed = sweep::deriveSeed(cfg.masterSeed, 0);
    const auto ref = sim::runScenario(leg);
    ASSERT_TRUE(ref.passed) << ref.failure;

    EXPECT_EQ(
        recordJson(sweep::scenarioRecord(out.plans[0].scenario,
                                         out.ports[0])),
        recordJson(sweep::scenarioRecord(leg, ref)));
    // Belt and braces on the raw counters too.
    EXPECT_EQ(out.ports[0].verified, ref.verified);
    EXPECT_EQ(out.ports[0].drained, ref.drained);
    EXPECT_EQ(out.ports[0].run.arrivals, ref.run.arrivals);
    EXPECT_EQ(out.ports[0].run.meanDelaySlots, ref.run.meanDelaySlots);
}

TEST(SwitchDeterminism, ByteIdenticalAcrossJobs)
{
    // The acceptance contract: same configuration, --jobs 1/4/8,
    // byte-identical serialized output (ports shard dynamically but
    // aggregate positionally).
    SwitchConfig cfg = baseConfig(8, TrafficPattern::Hotspot, 2500);
    cfg.mixedVariants = true;
    const SwitchSim sim(cfg);
    std::string json[3];
    const unsigned jobs[3] = {1, 4, 8};
    for (int k = 0; k < 3; ++k) {
        const auto out = sim.run(jobs[k]);
        EXPECT_TRUE(out.passed) << out.failure;
        json[k] = outcomeJson(cfg, out);
    }
    EXPECT_EQ(json[0], json[1]);
    EXPECT_EQ(json[0], json[2]);
    EXPECT_NE(json[0].find("\"pattern\": \"hotspot\""),
              std::string::npos);
}

TEST(SwitchDeterminism, ArtifactFilesByteIdenticalAcrossJobs)
{
    SwitchConfig cfg = baseConfig(4, TrafficPattern::Permutation, 2000);
    const SwitchSim sim(cfg);
    const std::string p1 =
        testing::TempDir() + "/switch_jobs1.json";
    const std::string p4 =
        testing::TempDir() + "/switch_jobs4.json";
    emitSwitchArtifacts(cfg, sim.run(1), "test", {}, p1, "");
    emitSwitchArtifacts(cfg, sim.run(4), "test", {}, p4, "");
    const auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };
    const auto a = slurp(p1);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, slurp(p4));
    EXPECT_NE(a.find("\"schema\": \"pktbuf-sweep-v1\""),
              std::string::npos);
    EXPECT_NE(a.find("\"task\": \"aggregate\""), std::string::npos);
    EXPECT_NE(a.find("\"task\": \"port3\""), std::string::npos);
    std::remove(p1.c_str());
    std::remove(p4.c_str());
}

TEST(SwitchShape, HotspotConcentratesArrivalsOnHotPorts)
{
    SwitchConfig cfg = baseConfig(16, TrafficPattern::Hotspot, 3000);
    const auto plans = planPorts(cfg);
    const unsigned hot = 4;  // max(1, 16/4)
    // Hot ports plan a strictly higher load than cold ports...
    for (unsigned p = 0; p < cfg.ports; ++p) {
        if (p < hot) {
            EXPECT_GT(plans[p].scenario.load,
                      2 * plans[hot].scenario.load);
        }
    }
    // ...and actually receive (and deliver) more cells.
    const auto out = runPlans(plans, 4);
    ASSERT_TRUE(out.passed) << out.failure;
    std::uint64_t min_hot = ~0ull, max_cold = 0;
    for (unsigned p = 0; p < cfg.ports; ++p) {
        const auto arr = out.ports[p].run.arrivals;
        if (p < hot)
            min_hot = std::min(min_hot, arr);
        else
            max_cold = std::max(max_cold, arr);
    }
    EXPECT_GT(min_hot, 2 * max_cold);
    // The across-port aggregates surface the same skew.
    const auto *granted = out.report.agg("granted");
    ASSERT_NE(granted, nullptr);
    EXPECT_GT(granted->max, 2 * granted->min);
    EXPECT_GE(granted->p99, granted->p50);
}

TEST(SwitchShape, IncastConcentratesBurstsOnVictim)
{
    SwitchConfig cfg = baseConfig(8, TrafficPattern::Incast, 3000);
    cfg.incastVictim = 3;
    const auto plans = planPorts(cfg);
    ASSERT_TRUE(plans[3].victim);
    EXPECT_EQ(plans[3].scenario.workload, sim::WorkloadKind::Bursty);
    const auto out = runPlans(plans, 4);
    ASSERT_TRUE(out.passed) << out.failure;
    const auto victim_arr = out.ports[3].run.arrivals;
    for (unsigned p = 0; p < cfg.ports; ++p) {
        if (p == 3)
            continue;
        EXPECT_FALSE(plans[p].victim);
        // Victim load is at least double the cold share.
        EXPECT_GT(victim_arr, 3 * out.ports[p].run.arrivals / 2)
            << "port " << p;
    }
}

TEST(SwitchIndependence, PortOrderPermutationLeavesPortsUnchanged)
{
    // Every plan is self-contained (own seed, own buffer), so
    // running the ports in any order -- here fully reversed, on a
    // pool -- must reproduce each port's report byte for byte.
    SwitchConfig cfg = baseConfig(6, TrafficPattern::Hotspot, 2500);
    cfg.mixedVariants = true;
    const auto plans = planPorts(cfg);
    const auto fwd = runPlans(plans, 2);
    ASSERT_TRUE(fwd.passed) << fwd.failure;

    auto reversed = plans;
    std::reverse(reversed.begin(), reversed.end());
    const auto rev = runPlans(reversed, 2);
    ASSERT_TRUE(rev.passed) << rev.failure;

    const unsigned n = cfg.ports;
    for (unsigned k = 0; k < n; ++k) {
        EXPECT_EQ(rev.plans[k].port, n - 1 - k);
        EXPECT_EQ(
            recordJson(portRecord(rev.plans[k], rev.ports[k])),
            recordJson(portRecord(plans[n - 1 - k],
                                  fwd.ports[n - 1 - k])));
    }
    // Aggregation is order-insensitive for the sums...
    EXPECT_EQ(rev.report.granted, fwd.report.granted);
    EXPECT_EQ(rev.report.arrivals, fwd.report.arrivals);
    // ...and the namespaced registry keys follow the port id, not
    // the execution position.
    for (unsigned p = 0; p < n; ++p) {
        const auto key = "port" + std::to_string(p) + ".granted";
        EXPECT_EQ(rev.report.stats.counterValue(key),
                  fwd.report.stats.counterValue(key));
    }
}

TEST(SwitchMixed, VariantsCycleAndPerPortTimingHolds)
{
    SwitchConfig cfg = baseConfig(6, TrafficPattern::Uniform, 3000);
    cfg.mixedVariants = true;
    cfg.load = 0.35;  // feasible under a refresh-storm timing model
    auto plans = planPorts(cfg);
    EXPECT_EQ(plans[0].scenario.variant, sim::BufferVariant::Cfds);
    EXPECT_EQ(plans[1].scenario.variant, sim::BufferVariant::Rads);
    EXPECT_EQ(plans[2].scenario.variant,
              sim::BufferVariant::CfdsRenaming);
    EXPECT_EQ(plans[3].scenario.variant, sim::BufferVariant::Cfds);
    // Renaming ports keep fewer logical than physical queues.
    EXPECT_EQ(plans[2].scenario.queues, cfg.queues / 2);
    EXPECT_EQ(plans[2].scenario.physQueues, cfg.queues);

    // Per-port DDR timing: give one CFDS port the refresh-storm
    // model; everything else keeps the uniform default.
    plans[0].scenario.timing.tRefi = 128;
    plans[0].scenario.timing.tRfc = 16;
    plans[0].scenario.timing.refreshBanks = 2;
    const auto out = runPlans(plans, 3);
    ASSERT_TRUE(out.passed) << out.failure;
    EXPECT_GT(out.ports[0].report.dsaStallsRefresh, 0u);
    for (unsigned p = 1; p < cfg.ports; ++p)
        EXPECT_EQ(out.ports[p].report.dsaStallsRefresh, 0u);
}

TEST(SwitchPatterns, EveryPatternPassesGoldenChecksAtScale)
{
    for (const auto pattern :
         {TrafficPattern::Uniform, TrafficPattern::Hotspot,
          TrafficPattern::Incast, TrafficPattern::Permutation}) {
        SwitchConfig cfg = baseConfig(8, pattern, 2000);
        cfg.masterSeed = 77;
        const auto out = SwitchSim(cfg).run(4);
        EXPECT_TRUE(out.passed)
            << toString(pattern) << ": " << out.failure;
        EXPECT_EQ(out.report.undelivered, 0u) << toString(pattern);
        EXPECT_GT(out.report.granted, 0u) << toString(pattern);
    }
}

TEST(SwitchPatterns, PermutationBuildsSeededAffinityStripes)
{
    SwitchConfig cfg = baseConfig(4, TrafficPattern::Permutation);
    const auto plans = planPorts(cfg);
    for (const auto &plan : plans) {
        ASSERT_EQ(plan.affinity.size(), cfg.queues / 2);
        for (const auto q : plan.affinity)
            EXPECT_LT(q, cfg.queues);
    }
    // Same master seed -> same map; different master -> (almost
    // surely) a different stripe assignment somewhere.
    const auto again = planPorts(cfg);
    SwitchConfig other = cfg;
    other.masterSeed = 12345;
    const auto moved = planPorts(other);
    bool any_diff = false;
    for (unsigned p = 0; p < cfg.ports; ++p) {
        EXPECT_EQ(plans[p].affinity, again[p].affinity);
        any_diff |= plans[p].affinity != moved[p].affinity;
    }
    EXPECT_TRUE(any_diff);
}

TEST(SwitchAggregate, StatAggregationMatchesHandComputation)
{
    const auto a = aggregateStat({4.0, 1.0, 3.0, 2.0});
    EXPECT_DOUBLE_EQ(a.sum, 10.0);
    EXPECT_DOUBLE_EQ(a.min, 1.0);
    EXPECT_DOUBLE_EQ(a.max, 4.0);
    EXPECT_DOUBLE_EQ(a.mean, 2.5);
    EXPECT_GE(a.p50, 2.0);
    EXPECT_LE(a.p50, 3.1);
    EXPECT_GE(a.p99, a.p50);
    EXPECT_LE(a.p99, a.max);

    // All-zero stats must not report histogram bucket bounds.
    const auto z = aggregateStat({0.0, 0.0, 0.0});
    EXPECT_DOUBLE_EQ(z.p50, 0.0);
    EXPECT_DOUBLE_EQ(z.p99, 0.0);
    EXPECT_DOUBLE_EQ(z.max, 0.0);

    const auto e = aggregateStat({});
    EXPECT_DOUBLE_EQ(e.sum, 0.0);
    EXPECT_DOUBLE_EQ(e.max, 0.0);
}

TEST(SwitchAggregate, RegistryNamespacesPerPortStats)
{
    SwitchConfig cfg = baseConfig(3, TrafficPattern::Uniform, 1500);
    const auto out = SwitchSim(cfg).run(1);
    ASSERT_TRUE(out.passed) << out.failure;
    std::uint64_t sum = 0;
    for (unsigned p = 0; p < cfg.ports; ++p) {
        const auto key = "port" + std::to_string(p) + ".granted";
        EXPECT_EQ(out.report.stats.counterValue(key),
                  out.ports[p].verified);
        sum += out.report.stats.counterValue(key);
    }
    EXPECT_EQ(sum, out.report.granted);
    // The dump contains the namespaced keys and the across-port
    // samplers.
    std::ostringstream os;
    out.report.stats.dump(os);
    EXPECT_NE(os.str().find("port2.granted"), std::string::npos);
    EXPECT_NE(os.str().find("across_ports.granted.mean"),
              std::string::npos);
}

TEST(SwitchFailure, FailingPortFailsTheSwitchAndNamesItsSeed)
{
    SwitchConfig cfg = baseConfig(3, TrafficPattern::Uniform, 1000);
    auto plans = planPorts(cfg);
    // Sabotage port 1 with an impossible configuration: b > B makes
    // the buffer construction fatal inside the leg.
    plans[1].scenario.gran = 64;
    const auto out = runPlans(plans, 2);
    EXPECT_FALSE(out.passed);
    EXPECT_EQ(out.report.failedPorts, 1u);
    EXPECT_NE(out.failure.find("port1"), std::string::npos)
        << out.failure;
    EXPECT_NE(out.failure.find(
                  "seed=" + std::to_string(plans[1].scenario.seed)),
              std::string::npos)
        << out.failure;
    // The healthy ports still ran and aggregated.
    EXPECT_TRUE(out.ports[0].passed);
    EXPECT_TRUE(out.ports[2].passed);
    EXPECT_GT(out.report.granted, 0u);
}

} // namespace
