/**
 * @file
 * Unit tests of the workload generators: credit discipline (a
 * request only for arrived cells), determinism, admission drops,
 * and the characteristic shape of each pattern.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/logging.hh"
#include "sim/golden.hh"
#include "sim/workload.hh"

using namespace pktbuf;
using namespace pktbuf::sim;

TEST(Workload, RequestsNeverExceedArrivals)
{
    UniformRandom wl(8, 3, 0.7);
    std::vector<std::int64_t> balance(8, 0);
    for (Slot t = 0; t < 20000; ++t) {
        const auto s = wl.step(t);
        if (s.arrival)
            ++balance[s.arrival->queue];
        if (s.request != kInvalidQueue) {
            --balance[s.request];
            ASSERT_GE(balance[s.request], 0) << "slot " << t;
        }
    }
}

TEST(Workload, SequenceNumbersAreDensePerQueue)
{
    RoundRobinWorstCase wl(4, 1);
    std::vector<SeqNum> next(4, 0);
    for (Slot t = 0; t < 1000; ++t) {
        const auto s = wl.step(t);
        if (s.arrival) {
            EXPECT_EQ(s.arrival->seq, next[s.arrival->queue]);
            ++next[s.arrival->queue];
        }
    }
}

TEST(Workload, DeterministicForSameSeed)
{
    UniformRandom a(8, 99), b(8, 99);
    for (Slot t = 0; t < 2000; ++t) {
        const auto sa = a.step(t);
        const auto sb = b.step(t);
        EXPECT_EQ(sa.request, sb.request);
        ASSERT_EQ(sa.arrival.has_value(), sb.arrival.has_value());
        if (sa.arrival) {
            EXPECT_EQ(sa.arrival->queue, sb.arrival->queue);
        }
    }
}

TEST(Workload, AdmissionPredicateDropsBeforeCredit)
{
    SingleQueue wl(2, 5, 0, /*lead=*/1u << 30);
    std::uint64_t admitted = 0;
    for (Slot t = 0; t < 100; ++t) {
        const auto s = wl.step(t, [&](QueueId) { return t % 2 == 0; });
        if (s.arrival)
            ++admitted;
    }
    EXPECT_EQ(admitted, 50u);
    EXPECT_EQ(wl.drops(), 50u);
    EXPECT_EQ(wl.credit(0), 50u);
}

TEST(Workload, RoundRobinWorstCaseDrainsAllQueuesEvenly)
{
    RoundRobinWorstCase wl(4, 2, 1.0, /*warmup=*/16);
    std::vector<std::uint64_t> requested(4, 0);
    for (Slot t = 0; t < 4016; ++t) {
        const auto s = wl.step(t);
        if (s.request != kInvalidQueue)
            ++requested[s.request];
    }
    for (unsigned q = 0; q < 4; ++q) {
        EXPECT_NEAR(static_cast<double>(requested[q]), 1000.0, 20.0);
    }
}

TEST(Workload, SingleQueueTargetsOneQueue)
{
    SingleQueue wl(4, 7, 2, 8);
    for (Slot t = 0; t < 500; ++t) {
        const auto s = wl.step(t);
        if (s.arrival) {
            EXPECT_EQ(s.arrival->queue, 2u);
        }
        if (s.request != kInvalidQueue) {
            EXPECT_EQ(s.request, 2u);
        }
    }
}

TEST(Workload, SubsetRoundRobinStaysInSubset)
{
    SubsetRoundRobin wl(16, 3, {1, 5, 9}, 0.5);
    std::set<QueueId> seen;
    for (Slot t = 0; t < 300; ++t) {
        const auto s = wl.step(t);
        if (s.arrival)
            seen.insert(s.arrival->queue);
    }
    EXPECT_EQ(seen, (std::set<QueueId>{1, 5, 9}));
}

TEST(Workload, SubsetRoundRobinArrivalLoadBoundaries)
{
    // arrival_load == 1.0 must not consult the RNG on the arrival
    // path at all, so naming the default explicitly replays the
    // legacy (pre-arrival_load) constructor bit-for-bit -- request
    // draws and all.
    SubsetRoundRobin legacy(8, 21, {2, 4, 6}, 0.5);
    SubsetRoundRobin full(8, 21, {2, 4, 6}, 0.5,
                          /*arrival_load=*/1.0);
    for (Slot t = 0; t < 2000; ++t) {
        const auto a = legacy.step(t);
        const auto b = full.step(t);
        ASSERT_EQ(a.arrival.has_value(), b.arrival.has_value());
        if (a.arrival) {
            EXPECT_EQ(a.arrival->queue, b.arrival->queue);
            EXPECT_EQ(a.arrival->seq, b.arrival->seq);
        }
        EXPECT_EQ(a.request, b.request);
    }

    // At 1.0 every slot carries an arrival, cycling the subset in
    // declaration order (no thinning, no reordering).
    SubsetRoundRobin cyc(8, 5, {1, 3}, /*request_load=*/0.0, 1.0);
    for (Slot t = 0; t < 10; ++t) {
        const auto s = cyc.step(t);
        ASSERT_TRUE(s.arrival.has_value());
        EXPECT_EQ(s.arrival->queue, t % 2 ? 3u : 1u);
        EXPECT_EQ(s.request, kInvalidQueue);
    }

    // arrival_load == 0.0 is a per-slot chance(0.0): never true, so
    // no cell ever arrives and nothing ever becomes requestable --
    // and none of that counts as a drop.
    SubsetRoundRobin none(8, 9, {0, 7}, 1.0, 0.0);
    for (Slot t = 0; t < 500; ++t) {
        const auto s = none.step(t);
        EXPECT_FALSE(s.arrival.has_value());
        EXPECT_EQ(s.request, kInvalidQueue);
    }
    EXPECT_EQ(none.drops(), 0u);
}

TEST(Workload, BurstyProducesRuns)
{
    BurstyOnOff wl(8, 11, 64, 1.0);
    QueueId prev = kInvalidQueue;
    std::uint64_t same = 0, total = 0;
    for (Slot t = 0; t < 5000; ++t) {
        const auto s = wl.step(t);
        if (s.arrival) {
            if (s.arrival->queue == prev)
                ++same;
            prev = s.arrival->queue;
            ++total;
        }
    }
    // Strong autocorrelation: most consecutive arrivals share a
    // queue (mean burst 32 cells).
    EXPECT_GT(static_cast<double>(same) / total, 0.9);
}

TEST(Workload, TraceReplayIsExact)
{
    const std::vector<TraceReplay::Entry> entries{
        {0, kInvalidQueue},
        {1, 0},
        {kInvalidQueue, 1},
        {2, kInvalidQueue}};
    TraceReplay wl(3, entries, /*seed=*/42);
    for (Slot t = 0; t < 6; ++t) {
        const auto s = wl.step(t);
        const TraceReplay::Entry want =
            t < entries.size() ? entries[t]
                               : TraceReplay::Entry{};
        EXPECT_EQ(s.arrival.has_value(),
                  want.arrival != kInvalidQueue)
            << "slot " << t;
        if (s.arrival && want.arrival != kInvalidQueue) {
            EXPECT_EQ(s.arrival->queue, want.arrival);
        }
        EXPECT_EQ(s.request, want.request) << "slot " << t;
    }
}

TEST(Workload, RequestingUnavailableCellPanics)
{
    TraceReplay wl(2, {{kInvalidQueue, 0}}, /*seed=*/42);
    EXPECT_THROW(wl.step(0), PanicError);
}

TEST(Workload, ConsumeCreditWithoutCreditPanics)
{
    UniformRandom wl(2, 17, 0.0); // no arrivals ever
    EXPECT_THROW(wl.consumeCredit(0), PanicError);
}

// The credit invariant -- a request may never precede its cell's
// arrival -- must hold for every generator, including under an
// admission predicate that drops arrivals (a dropped cell must not
// mint credit).  The per-queue balance of (admitted arrivals -
// requests) never goes negative.
TEST(Workload, CreditInvariantHoldsForEveryGeneratorUnderDrops)
{
    constexpr unsigned kQueues = 6;
    std::vector<std::unique_ptr<Workload>> generators;
    generators.push_back(
        std::make_unique<RoundRobinWorstCase>(kQueues, 21, 1.0, 8));
    generators.push_back(
        std::make_unique<UniformRandom>(kQueues, 22, 0.9));
    generators.push_back(
        std::make_unique<BurstyOnOff>(kQueues, 23, 32, 1.0));
    generators.push_back(
        std::make_unique<SingleQueue>(kQueues, 24, 1, 4));
    generators.push_back(std::make_unique<SubsetRoundRobin>(
        kQueues, 25, std::vector<QueueId>{0, 2, 4}, 0.8));
    generators.push_back(
        std::make_unique<PermutedDrain>(kQueues, 26, 8, 1.0));
    for (auto &wl : generators) {
        std::vector<std::int64_t> balance(kQueues, 0);
        // Admission rejects every third slot's arrival.
        for (Slot t = 0; t < 10000; ++t) {
            const auto s = wl->step(
                t, [&](QueueId) { return t % 3 != 0; });
            if (s.arrival)
                ++balance[s.arrival->queue];
            if (s.request != kInvalidQueue) {
                --balance[s.request];
                ASSERT_GE(balance[s.request], 0)
                    << wl->name() << " slot " << t;
            }
        }
        // The generator's own bookkeeping agrees with ours.
        for (QueueId q = 0; q < kQueues; ++q) {
            EXPECT_EQ(wl->credit(q),
                      static_cast<std::uint64_t>(balance[q]))
                << wl->name() << " queue " << q;
        }
    }
}

TEST(Workload, PermutedDrainEmptiesWholeQueuesInRuns)
{
    PermutedDrain wl(8, 31, /*warmup=*/64, 1.0);
    QueueId prev = kInvalidQueue;
    std::uint64_t switches = 0, requests = 0;
    for (Slot t = 0; t < 8000; ++t) {
        const auto s = wl.step(t);
        if (s.request == kInvalidQueue)
            continue;
        ++requests;
        if (prev != kInvalidQueue && s.request != prev) {
            // The drained queue must be empty before moving on.
            EXPECT_EQ(wl.credit(prev), 0u) << "slot " << t;
            ++switches;
        }
        prev = s.request;
    }
    ASSERT_GT(requests, 0u);
    // Whole-queue drains: far fewer queue switches than requests.
    EXPECT_LT(switches * 4, requests);
}

TEST(Workload, PermutedDrainIsDeterministicPerSeed)
{
    PermutedDrain a(8, 77, 16), b(8, 77, 16);
    for (Slot t = 0; t < 2000; ++t) {
        const auto sa = a.step(t);
        const auto sb = b.step(t);
        ASSERT_EQ(sa.request, sb.request) << "slot " << t;
    }
}

TEST(Golden, DetectsReorderAndWrongQueue)
{
    GoldenChecker g(2);
    Cell c0{0, 0, 0}, c1{0, 1, 0};
    g.onGrant(0, c0);
    EXPECT_EQ(g.granted(), 1u);
    // Skipping seq 1 is a violation.
    Cell c2{0, 2, 0};
    EXPECT_THROW(g.onGrant(0, c2), PanicError);
    // Wrong queue is a violation.
    EXPECT_THROW(g.onGrant(1, c1), PanicError);
}

namespace
{

/** Exposes the two request pickers for distribution tests. */
class PickerProbe : public Workload
{
  public:
    PickerProbe(unsigned queues, std::uint64_t seed)
        : Workload(queues, seed)
    {}

    std::string name() const override { return "picker-probe"; }

    using Workload::step;
    QueueId legacyPick() { return randomRequestable(); }
    QueueId uniformPick() { return uniformRequestable(); }

  protected:
    QueueId arrivalQueue(Slot now) override
    {
        // Credit exactly queues 0 and 3 once, then stop.
        if (now == 0)
            return 0;
        if (now == 1)
            return 3;
        return kInvalidQueue;
    }
    QueueId requestQueue(Slot) override { return kInvalidQueue; }
};

} // namespace

TEST(Workload, LegacyPickerIsBiasedUniformPickerIsNot)
{
    // With credit on queues {0, 3} of 4, the legacy scan picks 3
    // whenever it starts at 1, 2 or 3 (P = 3/4), because 3 follows
    // the credit-less run {1, 2}.  The uniform picker must split
    // ~50/50.  Both counts are deterministic under the fixed seed.
    const auto frequency = [](bool uniform) {
        PickerProbe wl(4, 99);
        wl.step(0);
        wl.step(1);
        unsigned picked3 = 0;
        const unsigned trials = 4000;
        for (unsigned i = 0; i < trials; ++i) {
            const QueueId q =
                uniform ? wl.uniformPick() : wl.legacyPick();
            EXPECT_TRUE(q == 0 || q == 3);
            picked3 += q == 3 ? 1 : 0;
        }
        return static_cast<double>(picked3) / trials;
    };
    EXPECT_GT(frequency(/*uniform=*/false), 0.70);  // ~0.75
    EXPECT_LT(frequency(/*uniform=*/true), 0.55);   // ~0.50
    EXPECT_GT(frequency(/*uniform=*/true), 0.45);
}

TEST(Workload, UniformPickerWithNoCreditReturnsInvalid)
{
    PickerProbe wl(4, 7);
    EXPECT_EQ(wl.uniformPick(), kInvalidQueue);
    wl.step(0);  // queue 0 gains credit
    EXPECT_EQ(wl.uniformPick(), 0u);
}

TEST(Workload, UnbiasedFlagIsDeterministicAndCreditSafe)
{
    // The unbiased picker consumes the shared RNG differently from
    // the legacy scan, so toggling it changes the whole stream --
    // which is exactly why the legacy legs keep the old path and
    // only the new timing legs opt in.  What must hold: the
    // unbiased variant replays bit-for-bit under its seed and never
    // violates the credit discipline.
    UniformRandom a(8, 123, 0.5, /*unbiased_requests=*/true);
    UniformRandom b(8, 123, 0.5, /*unbiased_requests=*/true);
    std::vector<std::int64_t> balance(8, 0);
    for (Slot t = 0; t < 2000; ++t) {
        const auto sa = a.step(t);
        const auto sb = b.step(t);
        ASSERT_EQ(sa.arrival.has_value(), sb.arrival.has_value());
        if (sa.arrival) {
            EXPECT_EQ(sa.arrival->queue, sb.arrival->queue);
        }
        EXPECT_EQ(sa.request, sb.request);
        if (sa.arrival)
            ++balance[sa.arrival->queue];
        if (sa.request != kInvalidQueue) {
            --balance[sa.request];
            ASSERT_GE(balance[sa.request], 0) << "slot " << t;
        }
    }
}
