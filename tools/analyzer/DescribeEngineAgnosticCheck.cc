//===--- DescribeEngineAgnosticCheck.cc - pktbuf-describe-engine-agnostic ===//

#include "DescribeEngineAgnosticCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::pktbuf
{

void
DescribeEngineAgnosticCheck::registerMatchers(MatchFinder *Finder)
{
    // Engine-selector declarations by name, in any spelling the
    // codebase uses (eventCore, eventEngine, event_core, ...).
    const auto EngineDecl =
        namedDecl(matchesName(".*[eE]vent_?([cC]ore|[eE]ngine).*"));
    const auto InNameOrDescribe =
        forFunction(functionDecl(hasAnyName("name", "describe"))
                        .bind("fn"));

    Finder->addMatcher(memberExpr(member(EngineDecl), InNameOrDescribe,
                                  unless(isExpansionInSystemHeader()))
                           .bind("use"),
                       this);
    Finder->addMatcher(declRefExpr(to(EngineDecl), InNameOrDescribe,
                                   unless(isExpansionInSystemHeader()))
                           .bind("use"),
                       this);
}

void
DescribeEngineAgnosticCheck::check(const MatchFinder::MatchResult &Result)
{
    const auto *Use = Result.Nodes.getNodeAs<Expr>("use");
    const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
    if (Use == nullptr || Fn == nullptr)
        return;
    diag(Use->getBeginLoc(),
         "engine-selector value flows into %0(): names, artifacts and "
         "checkpoint fingerprints must be engine-agnostic (the PR-9 "
         "differential-oracle contract); derive presentation from the "
         "experiment parameters only")
        << Fn;
}

} // namespace clang::tidy::pktbuf
