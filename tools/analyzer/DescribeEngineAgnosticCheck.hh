//===--- DescribeEngineAgnosticCheck.hh - pktbuf-describe-engine-agnostic ===//
//
// The PR-9 fingerprint contract: leg names, sweep artifacts and
// checkpoint fingerprints derive from name()/describe(), and the
// execution engine (eventCore / eventEngine) is a strategy, not part
// of the experiment -- so no engine-selector value may flow into a
// name() or describe() body.  A violation silently forks artifact
// bytes and checkpoint fingerprints between engines, which the
// differential oracle can only catch after the fact.
//
// Enforced shape: no reference to a declaration whose name matches
// event{Core,Engine} (any casing/underscore spelling) inside a
// function named `name` or `describe`.
//
//===----------------------------------------------------------------------===//

#ifndef PKTBUF_TOOLS_ANALYZER_DESCRIBE_ENGINE_AGNOSTIC_CHECK_HH
#define PKTBUF_TOOLS_ANALYZER_DESCRIBE_ENGINE_AGNOSTIC_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::pktbuf
{

class DescribeEngineAgnosticCheck : public ClangTidyCheck
{
  public:
    DescribeEngineAgnosticCheck(StringRef Name, ClangTidyContext *Context)
        : ClangTidyCheck(Name, Context)
    {}

    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::pktbuf

#endif // PKTBUF_TOOLS_ANALYZER_DESCRIBE_ENGINE_AGNOSTIC_CHECK_HH
