//===--- EnumSwitchCheck.cc - pktbuf-enum-switch -------------------------===//

#include "EnumSwitchCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/DenseSet.h"
#include "llvm/ADT/SmallString.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

using namespace clang::ast_matchers;

namespace clang::tidy::pktbuf
{

namespace
{

/// The project's determinism-critical mode enums.  Adding an
/// enumerator to any of these must fail loudly at every switch.
const char kDefaultEnumNames[] =
    "pktbuf::dram::StallCause;pktbuf::dram::AccessKind;"
    "pktbuf::sim::BufferVariant;pktbuf::sim::WorkloadKind;"
    "pktbuf::sw::TrafficPattern;pktbuf::xbar::SchedulerKind;"
    "pktbuf::buffer::MmaKind;pktbuf::core::BufferKind;"
    "pktbuf::model::SramDesign;pktbuf::model::SchedFeasibility;"
    "pktbuf::LineRate";

std::vector<std::string>
splitNames(llvm::StringRef Raw)
{
    std::vector<std::string> Out;
    llvm::SmallVector<llvm::StringRef, 16> Parts;
    Raw.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
    for (llvm::StringRef P : Parts) {
        P = P.trim();
        // Normalize away a leading "::" so both spellings configure
        // the same enum.
        if (P.size() >= 2 && P.take_front(2) == "::")
            P = P.drop_front(2);
        if (!P.empty())
            Out.push_back(P.str());
    }
    return Out;
}

} // namespace

EnumSwitchCheck::EnumSwitchCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      rawEnumNames_(Options.get("EnumNames", kDefaultEnumNames)),
      enumNames_(splitNames(rawEnumNames_))
{}

void
EnumSwitchCheck::storeOptions(ClangTidyOptions::OptionMap &Opts)
{
    Options.store(Opts, "EnumNames", rawEnumNames_);
}

void
EnumSwitchCheck::registerMatchers(MatchFinder *Finder)
{
    Finder->addMatcher(
        switchStmt(unless(isExpansionInSystemHeader())).bind("switch"),
        this);
}

void
EnumSwitchCheck::check(const MatchFinder::MatchResult &Result)
{
    const auto *Switch = Result.Nodes.getNodeAs<SwitchStmt>("switch");
    if (Switch == nullptr || Switch->getCond() == nullptr)
        return;

    const QualType CondType =
        Switch->getCond()->IgnoreImpCasts()->getType();
    const auto *ET = CondType->getAs<EnumType>();
    if (ET == nullptr)
        return;
    const EnumDecl *ED = ET->getDecl();
    if (ED == nullptr)
        return;
    ED = ED->getDefinition() ? ED->getDefinition() : ED;

    const std::string Qual = ED->getQualifiedNameAsString();
    bool Tracked = false;
    for (const std::string &Name : enumNames_) {
        if (Qual == Name) {
            Tracked = true;
            break;
        }
    }
    if (!Tracked)
        return;

    // Collect covered enumerators and spot default labels.
    llvm::DenseSet<const EnumConstantDecl *> Covered;
    for (const SwitchCase *SC = Switch->getSwitchCaseList(); SC != nullptr;
         SC = SC->getNextSwitchCase()) {
        if (llvm::isa<DefaultStmt>(SC)) {
            diag(SC->getKeywordLoc(),
                 "default label in a switch over %0 swallows future "
                 "enumerators; enumerate every case so new modes "
                 "break this switch at compile time")
                << Qual;
            continue;
        }
        const auto *CS = llvm::dyn_cast<CaseStmt>(SC);
        if (CS == nullptr || CS->getLHS() == nullptr)
            continue;
        const Expr *LHS = CS->getLHS()->IgnoreParenImpCasts();
        if (const auto *CE = llvm::dyn_cast<ConstantExpr>(LHS))
            LHS = CE->getSubExpr()->IgnoreParenImpCasts();
        if (const auto *DRE = llvm::dyn_cast<DeclRefExpr>(LHS)) {
            if (const auto *ECD =
                    llvm::dyn_cast<EnumConstantDecl>(DRE->getDecl()))
                Covered.insert(ECD);
        }
    }

    llvm::SmallString<128> Missing;
    for (const EnumConstantDecl *ECD : ED->enumerators()) {
        if (Covered.contains(ECD))
            continue;
        if (!Missing.empty())
            Missing += ", ";
        Missing += ECD->getName();
    }
    if (!Missing.empty()) {
        diag(Switch->getSwitchLoc(),
             "switch over %0 is not exhaustive; missing enumerator(s) "
             "%1")
            << Qual << Missing.str();
    }
}

} // namespace clang::tidy::pktbuf
