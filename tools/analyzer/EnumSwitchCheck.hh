//===--- EnumSwitchCheck.hh - pktbuf-enum-switch -------------------------===//
//
// Switches over the project's mode enums (StallCause, scheduler /
// pattern / engine selectors, ...) must be exhaustive -- every
// enumerator listed as a case -- and must not carry a default label:
// a default swallows enumerators added later, silencing the
// -Wswitch-enum wall that is supposed to break the build at every
// switch the new mode must teach.
//
// The enum list is configurable (CheckOption pktbuf-enum-switch.
// EnumNames, a semicolon-separated list of fully qualified names).
//
//===----------------------------------------------------------------------===//

#ifndef PKTBUF_TOOLS_ANALYZER_ENUM_SWITCH_CHECK_HH
#define PKTBUF_TOOLS_ANALYZER_ENUM_SWITCH_CHECK_HH

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::pktbuf
{

class EnumSwitchCheck : public ClangTidyCheck
{
  public:
    EnumSwitchCheck(StringRef Name, ClangTidyContext *Context);

    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
    void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

  private:
    const std::string rawEnumNames_;
    std::vector<std::string> enumNames_;
};

} // namespace clang::tidy::pktbuf

#endif // PKTBUF_TOOLS_ANALYZER_ENUM_SWITCH_CHECK_HH
