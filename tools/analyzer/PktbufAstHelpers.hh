//===--- PktbufAstHelpers.hh - shared helpers for the pktbuf checks ------===//
//
// Small utilities shared by the five pktbuf clang-tidy checks:
// annotation-comment lookup (the linters' "// ser: config" /
// "// seed: fixed" grammar lives in source text, not the AST) and the
// StatRegistry key grammar.
//
// The plugin is deliberately header-only glue over the clang-tidy
// plugin API (-load / CheckFactories); it links against nothing --
// every symbol resolves from the hosting clang-tidy binary at load
// time, which is the supported out-of-tree plugin model.
//
//===----------------------------------------------------------------------===//

#ifndef PKTBUF_TOOLS_ANALYZER_PKTBUF_AST_HELPERS_HH
#define PKTBUF_TOOLS_ANALYZER_PKTBUF_AST_HELPERS_HH

#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace clang::tidy::pktbuf
{

/// The source line containing `Loc` plus up to `Above` lines before
/// it, as one StringRef slice of the file buffer.  Annotations sit on
/// the declaration line or just above it (mirroring the Python
/// linters, which accept the line and the two lines above).
inline llvm::StringRef
lineAndAbove(const SourceManager &SM, SourceLocation Loc, unsigned Above)
{
    Loc = SM.getExpansionLoc(Loc);
    const FileID FID = SM.getFileID(Loc);
    bool Invalid = false;
    const llvm::StringRef Buf = SM.getBufferData(FID, &Invalid);
    if (Invalid)
        return llvm::StringRef();
    const unsigned Offset = SM.getFileOffset(Loc);
    size_t End = Buf.find('\n', Offset);
    if (End == llvm::StringRef::npos)
        End = Buf.size();
    size_t Start = Offset ? Buf.rfind('\n', Offset) : 0;
    if (Start == llvm::StringRef::npos)
        Start = 0;
    for (unsigned i = 0; i < Above && Start > 0; ++i) {
        const size_t Prev = Buf.rfind('\n', Start - 1);
        if (Prev == llvm::StringRef::npos) {
            Start = 0;
            break;
        }
        Start = Prev;
    }
    return Buf.slice(Start, End);
}

/// True when the annotation `tag: word` (e.g. "ser: config",
/// "seed: fixed") appears in `Text`.  `Words` is the allowed word
/// set; pass an empty list to accept any word after the tag.
inline bool
hasAnnotation(llvm::StringRef Text, llvm::StringRef Tag,
              std::initializer_list<llvm::StringRef> Words)
{
    size_t Pos = 0;
    while ((Pos = Text.find(Tag, Pos)) != llvm::StringRef::npos) {
        llvm::StringRef Rest = Text.drop_front(Pos + Tag.size());
        Pos += Tag.size();
        if (!Rest.consume_front(":"))
            continue;
        Rest = Rest.ltrim(" \t");
        if (Words.size() == 0)
            return true;
        for (llvm::StringRef W : Words) {
            if (Rest.size() >= W.size() && Rest.take_front(W.size()) == W)
                return true;
        }
    }
    return false;
}

/// The StatRegistry key grammar: `component.metric` -- lower-case
/// alnum/underscore tokens joined by at least one dot, starting with
/// a letter.
inline bool
isValidStatKey(llvm::StringRef Key)
{
    if (Key.empty() || Key[0] < 'a' || Key[0] > 'z')
        return false;
    bool SawDot = false;
    char Prev = '\0';
    for (const char C : Key) {
        const bool Ok = (C >= 'a' && C <= 'z') || (C >= '0' && C <= '9') ||
                        C == '_' || C == '.';
        if (!Ok)
            return false;
        if (C == '.') {
            if (Prev == '.' || Prev == '\0')
                return false;  // empty component
            SawDot = true;
        }
        Prev = C;
    }
    return SawDot && Prev != '.';
}

/// Charset rule for literal fragments of runtime-composed keys
/// ("across_ports." + name): only lower-case alnum, '_' and '.'.
inline bool
isValidStatKeyFragment(llvm::StringRef Fragment)
{
    for (const char C : Fragment) {
        const bool Ok = (C >= 'a' && C <= 'z') || (C >= '0' && C <= '9') ||
                        C == '_' || C == '.';
        if (!Ok)
            return false;
    }
    return true;
}

/// True when a declaration name smells like a seed ("seed",
/// "masterSeed", "master_seed", "seed_"...).
inline bool
isSeedName(llvm::StringRef Name)
{
    const std::string Lower = Name.lower();
    return Lower.find("seed") != std::string::npos;
}

} // namespace clang::tidy::pktbuf

#endif // PKTBUF_TOOLS_ANALYZER_PKTBUF_AST_HELPERS_HH
