//===--- PktbufTidyModule.cc - registers the pktbuf check module ---------===//
//
// The in-tree clang-tidy plugin: load with
//
//   clang-tidy --load=libPktbufTidyChecks.so \
//              --checks='-*,pktbuf-*' <file> -- -std=c++20 -Isrc
//
// (tools/lint/run_tidy.sh does this automatically when the plugin
// has been built).  Registration happens through the static
// ClangTidyModuleRegistry -- the supported out-of-tree plugin model
// since clang-tidy 14 -- so the module needs no entry point and
// links against nothing: all clang symbols resolve from the hosting
// clang-tidy binary when the shared object is loaded.
//
//===----------------------------------------------------------------------===//

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "DescribeEngineAgnosticCheck.hh"
#include "EnumSwitchCheck.hh"
#include "SeedDisciplineCheck.hh"
#include "SerializationCompleteCheck.hh"
#include "StatKeyCheck.hh"

namespace clang::tidy::pktbuf
{

class PktbufModule : public ClangTidyModule
{
  public:
    void
    addCheckFactories(ClangTidyCheckFactories &CheckFactories) override
    {
        CheckFactories.registerCheck<SeedDisciplineCheck>(
            "pktbuf-seed-discipline");
        CheckFactories.registerCheck<SerializationCompleteCheck>(
            "pktbuf-serialization-complete");
        CheckFactories.registerCheck<StatKeyCheck>("pktbuf-stat-key");
        CheckFactories.registerCheck<EnumSwitchCheck>(
            "pktbuf-enum-switch");
        CheckFactories.registerCheck<DescribeEngineAgnosticCheck>(
            "pktbuf-describe-engine-agnostic");
    }
};

} // namespace clang::tidy::pktbuf

namespace clang::tidy
{

// Static registration: the registry is scanned when clang-tidy
// enumerates checks, after -load has pulled this object in.
static ClangTidyModuleRegistry::Add<pktbuf::PktbufModule>
    pktbufModuleInit("pktbuf-module",
                     "pktbuf simulator invariant checks");

// Anchor so the static initializer above is never dead-stripped.
volatile int pktbufModuleAnchorSource = 0;

} // namespace clang::tidy
