//===--- SeedDisciplineCheck.cc - pktbuf-seed-discipline -----------------===//

#include "SeedDisciplineCheck.hh"

#include "PktbufAstHelpers.hh"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::pktbuf
{

void
SeedDisciplineCheck::registerMatchers(MatchFinder *Finder)
{
    // Every non-copy/move construction of pktbuf::Rng.
    Finder->addMatcher(
        cxxConstructExpr(
            hasDeclaration(cxxConstructorDecl(
                ofClass(hasName("::pktbuf::Rng")),
                unless(isCopyConstructor()), unless(isMoveConstructor()))),
            argumentCountIs(1), unless(isExpansionInSystemHeader()))
            .bind("rngCtor"),
        this);

    // Raw arithmetic flowing into a seed-carrying parameter of any
    // call.  deriveSeed() itself names its first parameter `master`,
    // so the name net covers both spellings of "this is a seed".
    Finder->addMatcher(
        callExpr(forEachArgumentWithParam(
                     binaryOperator().bind("seedArith"),
                     parmVarDecl(matchesName(".*([sS]eed|[mM]aster).*"))),
                 unless(isExpansionInSystemHeader())),
        this);
}

namespace
{

/// Strip parens, implicit casts and explicit integer casts so the
/// seed-source classification sees the underlying expression.
const clang::Expr *
stripSeedWrappers(const clang::Expr *E)
{
    while (true) {
        E = E->IgnoreParenImpCasts();
        if (const auto *EC = llvm::dyn_cast<clang::ExplicitCastExpr>(E)) {
            E = EC->getSubExpr();
            continue;
        }
        return E;
    }
}

/// True for a call whose (possibly qualified) callee is deriveSeed.
bool
isDeriveSeedCall(const clang::Expr *E)
{
    const auto *Call = llvm::dyn_cast<clang::CallExpr>(E);
    if (Call == nullptr)
        return false;
    const clang::FunctionDecl *Callee = Call->getDirectCallee();
    return Callee != nullptr && Callee->getName() == "deriveSeed";
}

/// True when the expression reads a seed-named declaration (variable,
/// parameter or member such as `seed`, `masterSeed`, `cfg.seed`).
bool
readsSeedNamedDecl(const clang::Expr *E)
{
    if (const auto *DRE = llvm::dyn_cast<clang::DeclRefExpr>(E))
        return isSeedName(DRE->getDecl()->getName());
    if (const auto *ME = llvm::dyn_cast<clang::MemberExpr>(E))
        return isSeedName(ME->getMemberDecl()->getName());
    return false;
}

} // namespace

void
SeedDisciplineCheck::checkSeedExpr(const Expr *Arg,
                                   const MatchFinder::MatchResult &Result)
{
    const Expr *E = stripSeedWrappers(Arg);

    if (isDeriveSeedCall(E) || readsSeedNamedDecl(E))
        return;

    // Conditional: both branches must be disciplined.
    if (const auto *Cond = llvm::dyn_cast<ConditionalOperator>(E)) {
        checkSeedExpr(Cond->getTrueExpr(), Result);
        checkSeedExpr(Cond->getFalseExpr(), Result);
        return;
    }

    if (llvm::isa<BinaryOperator>(E)) {
        diag(E->getBeginLoc(),
             "raw arithmetic seeds this Rng; derive sub-stream seeds "
             "with deriveSeed(master, index) so streams stay "
             "statistically independent");
        return;
    }

    if (llvm::isa<IntegerLiteral>(E)) {
        const StringRef Line =
            lineAndAbove(*Result.SourceManager, E->getBeginLoc(), 0);
        if (hasAnnotation(Line, "seed", {}))
            return;  // explicitly-annotated literal: "// seed: <why>"
        diag(E->getBeginLoc(),
             "literal Rng seed without a '// seed: <why>' annotation; "
             "derive it with deriveSeed(...) or annotate why this "
             "stream is intentionally fixed");
        return;
    }

    diag(E->getBeginLoc(),
         "Rng seed does not trace to deriveSeed(...), a seed-named "
         "value, or an annotated literal; every stream's seed must be "
         "explicitly derived (replay-from-log rule)");
}

void
SeedDisciplineCheck::check(const MatchFinder::MatchResult &Result)
{
    if (const auto *Ctor =
            Result.Nodes.getNodeAs<CXXConstructExpr>("rngCtor")) {
        checkSeedExpr(Ctor->getArg(0), Result);
        return;
    }
    if (const auto *Arith =
            Result.Nodes.getNodeAs<BinaryOperator>("seedArith")) {
        if (!Arith->isAssignmentOp())
            diag(Arith->getBeginLoc(),
                 "raw arithmetic flows into a seed parameter; use "
                 "deriveSeed(master, index) instead of ad-hoc seed "
                 "math");
    }
}

} // namespace clang::tidy::pktbuf
