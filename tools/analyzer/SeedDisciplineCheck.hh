//===--- SeedDisciplineCheck.hh - pktbuf-seed-discipline -----------------===//
//
// Every pktbuf::Rng construction must trace its seed to
// deriveSeed(...), to a seed-named value flowing in from the caller,
// or to an integer literal annotated "// seed: <why>" on its line.
// Raw arithmetic on seeds ("seed + port") is flagged wherever it is
// passed into an Rng construction or a seed-named parameter: ad-hoc
// seed math collides streams that deriveSeed's splitmix64 mixing
// keeps independent (the PR-2 sharding rule, now compiler-grade).
//
//===----------------------------------------------------------------------===//

#ifndef PKTBUF_TOOLS_ANALYZER_SEED_DISCIPLINE_CHECK_HH
#define PKTBUF_TOOLS_ANALYZER_SEED_DISCIPLINE_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::pktbuf
{

class SeedDisciplineCheck : public ClangTidyCheck
{
  public:
    SeedDisciplineCheck(StringRef Name, ClangTidyContext *Context)
        : ClangTidyCheck(Name, Context)
    {}

    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

  private:
    /// Diagnose `Arg` (an expression seeding an Rng or a seed-named
    /// parameter) unless it traces to an approved seed source.
    void checkSeedExpr(const Expr *Arg, const ast_matchers::MatchFinder::
                                            MatchResult &Result);
};

} // namespace clang::tidy::pktbuf

#endif // PKTBUF_TOOLS_ANALYZER_SEED_DISCIPLINE_CHECK_HH
