//===--- SerializationCompleteCheck.cc - pktbuf-serialization-complete ---===//

#include "SerializationCompleteCheck.hh"

#include "PktbufAstHelpers.hh"
#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/DenseSet.h"
#include "llvm/ADT/SmallVector.h"

using namespace clang::ast_matchers;

namespace clang::tidy::pktbuf
{

namespace
{

/// Does this type (stripped of references/const) name `ser::Writer`
/// or `ser::Reader`?
bool
isSerParam(clang::QualType T, llvm::StringRef Which)
{
    const clang::CXXRecordDecl *RD =
        T.getNonReferenceType()->getAsCXXRecordDecl();
    if (RD == nullptr || RD->getName() != Which)
        return false;
    const auto *NS =
        llvm::dyn_cast_or_null<clang::NamespaceDecl>(RD->getDeclContext());
    return NS != nullptr && NS->getName() == "ser";
}

bool
nameStartsWith(const clang::NamedDecl *D, llvm::StringRef Prefix)
{
    const auto *II = D->getIdentifier();
    if (II == nullptr)
        return false;
    const llvm::StringRef Name = II->getName();
    return Name.size() >= Prefix.size() &&
           Name.take_front(Prefix.size()) == Prefix;
}

/// save*/load* method taking a ser::Writer& / ser::Reader&.
bool
isHook(const clang::CXXMethodDecl *M, llvm::StringRef Prefix,
       llvm::StringRef ParamType)
{
    if (!nameStartsWith(M, Prefix))
        return false;
    for (const clang::ParmVarDecl *P : M->parameters()) {
        if (isSerParam(P->getType(), ParamType))
            return true;
    }
    return false;
}

/// Any (transitive) base declaring both a save and a load hook?
bool
baseDeclaresHooks(const clang::CXXRecordDecl *RD)
{
    for (const clang::CXXBaseSpecifier &B : RD->bases()) {
        const clang::CXXRecordDecl *BD = B.getType()->getAsCXXRecordDecl();
        if (BD == nullptr)
            continue;
        BD = BD->getDefinition();
        if (BD == nullptr)
            continue;
        bool Save = false;
        bool Load = false;
        for (const clang::CXXMethodDecl *M : BD->methods()) {
            Save = Save || isHook(M, "save", "Writer");
            Load = Load || isHook(M, "load", "Reader");
        }
        if ((Save && Load) || baseDeclaresHooks(BD))
            return true;
    }
    return false;
}

/// Every FieldDecl referenced (as a MemberExpr) anywhere inside Body.
void
collectReferencedFields(const clang::Stmt *Body, clang::ASTContext &Ctx,
                        llvm::DenseSet<const clang::FieldDecl *> &Out)
{
    for (const auto &M :
         match(findAll(memberExpr().bind("m")), *Body, Ctx)) {
        const auto *ME = M.getNodeAs<clang::MemberExpr>("m");
        if (ME == nullptr)
            continue;
        if (const auto *FD =
                llvm::dyn_cast<clang::FieldDecl>(ME->getMemberDecl()))
            Out.insert(FD->getCanonicalDecl());
    }
}

} // namespace

void
SerializationCompleteCheck::registerMatchers(MatchFinder *Finder)
{
    Finder->addMatcher(cxxRecordDecl(isDefinition(), unless(isImplicit()),
                                     unless(isExpansionInSystemHeader()))
                           .bind("record"),
                       this);
}

void
SerializationCompleteCheck::check(const MatchFinder::MatchResult &Result)
{
    const auto *Record = Result.Nodes.getNodeAs<CXXRecordDecl>("record");
    if (Record == nullptr || Record->isDependentType() ||
        Record->isUnion() || Record->getIdentifier() == nullptr)
        return;
    // Abstract bases are interfaces: concrete classes are checked.
    if (Record->isAbstract())
        return;

    llvm::SmallVector<const CXXMethodDecl *, 4> Saves;
    llvm::SmallVector<const CXXMethodDecl *, 4> Loads;
    for (const CXXMethodDecl *M : Record->methods()) {
        if (isHook(M, "save", "Writer"))
            Saves.push_back(M);
        else if (isHook(M, "load", "Reader"))
            Loads.push_back(M);
    }

    const bool OwnHooks = !Saves.empty() && !Loads.empty();
    const bool Inherited = baseDeclaresHooks(Record);
    if (!OwnHooks && !Inherited)
        return;  // not a serializable class

    if (!OwnHooks && Saves.empty() && Loads.empty()) {
        // Subclass of a serializable base with no hooks of its own:
        // the base's hooks cannot reference members added here, so
        // every unannotated member is checkpoint drift.
        for (const FieldDecl *FD : Record->fields()) {
            if (FD->getIdentifier() == nullptr)
                continue;
            const StringRef Lines =
                lineAndAbove(*Result.SourceManager, FD->getLocation(), 2);
            if (hasAnnotation(Lines, "ser", {"config", "derived"}))
                continue;
            diag(FD->getLocation(),
                 "%0 inherits save()/load() but declares no hook "
                 "referencing member %1; add a saveExtra/loadExtra-"
                 "style hook or annotate with '// ser: config' or "
                 "'// ser: derived'")
                << Record << FD;
        }
        return;
    }

    // Only judge completeness in a TU that can see every hook body.
    llvm::DenseSet<const FieldDecl *> InSave;
    llvm::DenseSet<const FieldDecl *> InLoad;
    for (const CXXMethodDecl *M : Saves) {
        const FunctionDecl *Def = nullptr;
        if (!M->hasBody(Def))
            return;
        collectReferencedFields(Def->getBody(), *Result.Context, InSave);
    }
    for (const CXXMethodDecl *M : Loads) {
        const FunctionDecl *Def = nullptr;
        if (!M->hasBody(Def))
            return;
        collectReferencedFields(Def->getBody(), *Result.Context, InLoad);
    }

    for (const FieldDecl *FD : Record->fields()) {
        if (FD->getIdentifier() == nullptr)
            continue;
        const FieldDecl *Canon = FD->getCanonicalDecl();
        const bool Saved = InSave.contains(Canon);
        const bool Loaded = InLoad.contains(Canon);
        if (Saved && Loaded)
            continue;
        const StringRef Lines =
            lineAndAbove(*Result.SourceManager, FD->getLocation(), 2);
        if (hasAnnotation(Lines, "ser", {"config", "derived"}))
            continue;
        const char *Missing = (!Saved && !Loaded)
                                  ? "save() or load()"
                                  : (Saved ? "load()" : "save()");
        diag(FD->getLocation(),
             "member %0 of %1 is not referenced in %2; serialize it "
             "or annotate the declaration with '// ser: config' or "
             "'// ser: derived' (checkpoint restore drifts silently "
             "otherwise)")
            << FD << Record << Missing;
    }
}

} // namespace clang::tidy::pktbuf
