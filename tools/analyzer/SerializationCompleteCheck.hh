//===--- SerializationCompleteCheck.hh - pktbuf-serialization-complete ---===//
//
// The AST-true version of tools/lint/check_serialization.py: every
// non-static data member of a class with save(ser::Writer&) /
// load(ser::Reader&) hooks (own, saveExtra/loadExtra-style, or
// out-of-line in a .cc) must be referenced in both hook bodies or
// carry a "// ser: config" / "// ser: derived" annotation on (or just
// above) its declaration.  Unlike the lexical engine, this check sees
// through member-expression spelling, helper calls and out-of-line
// definitions -- it matches actual FieldDecl references, not words.
//
// Per-TU scoping rule: the completeness verdict is only issued in a
// translation unit where *every* declared hook body is visible
// (inline hooks: any TU including the header; out-of-line hooks: the
// defining .cc).  TUs that see only declarations stay silent, so
// scanning all of src/*.cc covers every class exactly once or more,
// never wrongly.
//
//===----------------------------------------------------------------------===//

#ifndef PKTBUF_TOOLS_ANALYZER_SERIALIZATION_COMPLETE_CHECK_HH
#define PKTBUF_TOOLS_ANALYZER_SERIALIZATION_COMPLETE_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::pktbuf
{

class SerializationCompleteCheck : public ClangTidyCheck
{
  public:
    SerializationCompleteCheck(StringRef Name, ClangTidyContext *Context)
        : ClangTidyCheck(Name, Context)
    {}

    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::pktbuf

#endif // PKTBUF_TOOLS_ANALYZER_SERIALIZATION_COMPLETE_CHECK_HH
