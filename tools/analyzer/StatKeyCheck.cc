//===--- StatKeyCheck.cc - pktbuf-stat-key -------------------------------===//

#include "StatKeyCheck.hh"

#include "PktbufAstHelpers.hh"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::pktbuf
{

void
StatKeyCheck::registerMatchers(MatchFinder *Finder)
{
    Finder->addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(
                hasAnyName("counter", "sampler", "highWater", "quantile"),
                ofClass(hasName("::pktbuf::StatRegistry")))),
            unless(isExpansionInSystemHeader()))
            .bind("reg"),
        this);
}

namespace
{

/// Descend through the temporary-materialization / std::string
/// construction wrappers the AST puts between a call argument and the
/// string literal that seeds it.  Returns the literal when the whole
/// argument is one literal, nullptr when it is runtime-composed.
const clang::StringLiteral *
fullLiteral(const clang::Expr *E)
{
    while (true) {
        E = E->IgnoreParenImpCasts();
        if (const auto *MT =
                llvm::dyn_cast<clang::MaterializeTemporaryExpr>(E)) {
            E = MT->getSubExpr();
            continue;
        }
        if (const auto *BT =
                llvm::dyn_cast<clang::CXXBindTemporaryExpr>(E)) {
            E = BT->getSubExpr();
            continue;
        }
        if (const auto *CE = llvm::dyn_cast<clang::CXXConstructExpr>(E)) {
            if (CE->getNumArgs() == 0)
                return nullptr;
            E = CE->getArg(0);
            continue;
        }
        return llvm::dyn_cast<clang::StringLiteral>(E);
    }
}

} // namespace

void
StatKeyCheck::check(const MatchFinder::MatchResult &Result)
{
    const auto *Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("reg");
    if (Call == nullptr || Call->getNumArgs() == 0)
        return;
    const Expr *Arg = Call->getArg(0);

    if (const StringLiteral *Lit = fullLiteral(Arg)) {
        const StringRef Key = Lit->getString();
        if (!isValidStatKey(Key)) {
            diag(Lit->getBeginLoc(),
                 "stat key '%0' does not match the component.metric "
                 "grammar (lower-case [a-z0-9_] tokens joined by "
                 "'.', at least one dot)")
                << Key;
            return;
        }
        const SourceLocation Loc =
            Result.SourceManager->getExpansionLoc(Lit->getBeginLoc());
        std::string Site = Loc.printToString(*Result.SourceManager);
        // printToString appends a column; drop it so the same line
        // re-parsed in another TU dedups cleanly.
        const size_t LastColon = Site.rfind(':');
        if (LastColon != std::string::npos)
            Site.resize(LastColon);
        auto It = seen_.find(std::string(Key));
        if (It == seen_.end()) {
            seen_.emplace(std::string(Key), Site);
        } else if (It->second != Site) {
            diag(Lit->getBeginLoc(),
                 "stat key '%0' is also registered at %1; keys must "
                 "be tree-unique so a dump line greps to one site")
                << Key << It->second;
        }
        return;
    }

    // Runtime-composed key: charset-check every literal fragment.
    for (const auto &M :
         match(findAll(stringLiteral().bind("lit")), *Arg,
               *Result.Context)) {
        const auto *Lit = M.getNodeAs<StringLiteral>("lit");
        if (Lit == nullptr)
            continue;
        const StringRef Frag = Lit->getString();
        if (!isValidStatKeyFragment(Frag)) {
            diag(Lit->getBeginLoc(),
                 "stat key fragment '%0' contains characters outside "
                 "the component.metric grammar ([a-z0-9_.])")
                << Frag;
        }
    }
}

} // namespace clang::tidy::pktbuf
