//===--- StatKeyCheck.hh - pktbuf-stat-key -------------------------------===//
//
// String literals passed to StatRegistry registration (counter /
// sampler / highWater / quantile) must follow the `component.metric`
// grammar -- lower-case alnum/underscore tokens joined by dots -- and
// a full-literal key must be registered from exactly one source
// location, so `grep <key>` from a stat dump lands on one site.
// Literal fragments of runtime-composed keys ("across_ports." +
// name) are charset-checked.
//
//===----------------------------------------------------------------------===//

#ifndef PKTBUF_TOOLS_ANALYZER_STAT_KEY_CHECK_HH
#define PKTBUF_TOOLS_ANALYZER_STAT_KEY_CHECK_HH

#include <map>
#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::pktbuf
{

class StatKeyCheck : public ClangTidyCheck
{
  public:
    StatKeyCheck(StringRef Name, ClangTidyContext *Context)
        : ClangTidyCheck(Name, Context)
    {}

    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

  private:
    /// Full-literal key -> "file:line" of its first registration.
    /// Two *different* sites registering the same key is ambiguity a
    /// dump reader cannot resolve; the same site seen again (header
    /// re-parsed in another TU of this invocation) is not.
    std::map<std::string, std::string> seen_;
};

} // namespace clang::tidy::pktbuf

#endif // PKTBUF_TOOLS_ANALYZER_STAT_KEY_CHECK_HH
