// pktbuf-describe-engine-agnostic: clean fixture.

#include "pktbuf_stubs.hh"

namespace fixture
{

struct Scenario
{
    unsigned queues = 8;
    bool eventEngine = false;

    // name()/describe() derive from experiment parameters only.
    std::string
    name() const
    {
        return "q" + std::to_string(queues);
    }

    std::string
    describe() const
    {
        return name() + " slots=20000";
    }

    // Any *other* method may read the selector freely.
    const char *
    engineLabel() const
    {
        return eventEngine ? "event" : "reference";
    }
};

} // namespace fixture
