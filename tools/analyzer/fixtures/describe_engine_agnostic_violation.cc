// pktbuf-describe-engine-agnostic: violating fixture.

#include "pktbuf_stubs.hh"

namespace fixture
{

struct Scenario
{
    unsigned queues = 8;
    bool eventEngine = false;

    // Engine selector leaks into the leg name: artifact bytes and
    // checkpoint fingerprints would fork between engines.
    std::string
    name() const
    {
        return eventEngine ? "event" : "reference";
    }

    std::string describe() const;
};

// Out-of-line describe() leaking the selector through a member read.
std::string
Scenario::describe() const
{
    std::string out = "q" + std::to_string(queues);
    if (eventEngine)
        out += " engine=event";
    return out;
}

} // namespace fixture
