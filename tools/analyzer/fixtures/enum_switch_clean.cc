// pktbuf-enum-switch: clean fixture.

#include "pktbuf_stubs.hh"

using pktbuf::dram::StallCause;

// Exhaustive, no default: adding an enumerator breaks this switch at
// compile time, which is the point.
int
exhaustive(StallCause c)
{
    switch (c) {
      case StallCause::BankBusy:
        return 1;
      case StallCause::Refresh:
        return 2;
      case StallCause::Turnaround:
        return 3;
    }
    return 0;
}

// Enums outside the configured project list are not this check's
// business (the compiler's -Wswitch-enum wall still sees them).
enum class Local
{
    A,
    B,
};

int
untracked(Local l)
{
    switch (l) {
      case Local::A:
        return 1;
      default:
        return 0;
    }
}
