// pktbuf-enum-switch: violating fixture.

#include "pktbuf_stubs.hh"

using pktbuf::dram::StallCause;

// Missing an enumerator (Turnaround) entirely.
int
missingCase(StallCause c)
{
    switch (c) {
      case StallCause::BankBusy:
        return 1;
      case StallCause::Refresh:
        return 2;
    }
    return 0;
}

// A default label swallowing future enumerators -- even though every
// current case is listed.
int
defaultSwallows(StallCause c)
{
    switch (c) {
      case StallCause::BankBusy:
        return 1;
      case StallCause::Refresh:
        return 2;
      case StallCause::Turnaround:
        return 3;
      default:
        return 0;
    }
}
