// Minimal stand-ins for the pktbuf declarations the fixture
// translation units exercise.  The checks match on *qualified names*
// (::pktbuf::Rng, ::pktbuf::StatRegistry, pktbuf::dram::StallCause),
// so these stubs mirror the real namespaces exactly while keeping
// fixture compiles hermetic -- no project headers, no system
// dependencies beyond <string>.

#ifndef PKTBUF_ANALYZER_FIXTURE_STUBS_HH
#define PKTBUF_ANALYZER_FIXTURE_STUBS_HH

#include <string>

namespace pktbuf
{

namespace ser
{
class Writer
{
  public:
    void u32(unsigned v);
    void u64(unsigned long long v);
    void real(double v);
};

class Reader
{
  public:
    unsigned u32();
    unsigned long long u64();
    double real();
};
} // namespace ser

class Rng
{
  public:
    explicit Rng(unsigned long long seed);
    unsigned long long next();
};

class Counter
{
  public:
    void inc(unsigned long long delta = 1);
};

class Sampler
{
  public:
    void sample(double v);
};

class HighWater
{
  public:
    void observe(long long v);
};

class P2Quantile
{
  public:
    void sample(double v);
};

class StatRegistry
{
  public:
    Counter &counter(const std::string &name);
    Sampler &sampler(const std::string &name);
    HighWater &highWater(const std::string &name);
    P2Quantile &quantile(const std::string &name, double prob);
};

namespace sweep
{
unsigned long long deriveSeed(unsigned long long master,
                              unsigned long long index);
} // namespace sweep

namespace dram
{
enum class StallCause
{
    BankBusy,
    Refresh,
    Turnaround,
};
} // namespace dram

} // namespace pktbuf

#endif // PKTBUF_ANALYZER_FIXTURE_STUBS_HH
