// pktbuf-seed-discipline: clean fixture.  No construction here may
// warn.

#include "pktbuf_stubs.hh"

struct Config
{
    unsigned long long masterSeed = 0;
};

void
clean(unsigned long long seed, const Config &cfg, bool alt)
{
    // Derived sub-stream.
    pktbuf::Rng derived(pktbuf::sweep::deriveSeed(cfg.masterSeed, 7));

    // Seed-named values flowing through (parameter and member).
    pktbuf::Rng fromParam(seed);
    pktbuf::Rng fromMember(cfg.masterSeed);

    // Annotated literal: a deliberately pinned calibration stream.
    pktbuf::Rng pinned(20260730);  // seed: fixed calibration stream

    // Both branches of a conditional are disciplined.
    pktbuf::Rng either(alt ? seed : cfg.masterSeed);

    // Copy construction is not a seeding site.
    pktbuf::Rng copy(derived);

    (void)fromParam;
    (void)fromMember;
    (void)pinned;
    (void)either;
    (void)copy;
}
