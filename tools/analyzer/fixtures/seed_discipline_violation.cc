// pktbuf-seed-discipline: violating fixture.  Every construction
// below must produce exactly one warning (the driver counts them).

#include "pktbuf_stubs.hh"

unsigned long long wallClockEntropy();

void
violations(unsigned long long masterSeed, unsigned port)
{
    // Unannotated literal seed.
    pktbuf::Rng bare(12345);

    // Raw arithmetic on a seed (stream-collision hazard).
    pktbuf::Rng arith(masterSeed + port);

    // Untraceable source: neither deriveSeed nor a seed-named value.
    pktbuf::Rng opaque(wallClockEntropy());

    // Raw arithmetic flowing into a seed-named parameter.
    pktbuf::sweep::deriveSeed(masterSeed * 31, port);

    (void)bare;
    (void)arith;
    (void)opaque;
}
