// pktbuf-serialization-complete: clean fixture.

#include "pktbuf_stubs.hh"

namespace fixture
{

class Good
{
  public:
    void
    save(pktbuf::ser::Writer &w) const
    {
        w.u64(a_);
        w.real(b_);
    }
    void
    load(pktbuf::ser::Reader &r)
    {
        a_ = r.u64();
        b_ = r.real();
        rebuildScratch();
    }

  private:
    void rebuildScratch();

    unsigned long long a_ = 0;
    double b_ = 0.0;
    unsigned queues_ = 8;  // ser: config
    // ser: derived (rebuilt from a_ by load())
    unsigned long long scratch_ = 0;
};

// The saveExtra/loadExtra subclass pattern: the subclass hook
// serializes the subclass state.
class Base
{
  public:
    void
    save(pktbuf::ser::Writer &w) const
    {
        w.u64(a_);
        saveExtra(w);
    }
    void
    load(pktbuf::ser::Reader &r)
    {
        a_ = r.u64();
        loadExtra(r);
    }

  protected:
    virtual void
    saveExtra(pktbuf::ser::Writer &) const
    {}
    virtual void
    loadExtra(pktbuf::ser::Reader &)
    {}

  private:
    unsigned long long a_ = 0;
};

class Sub : public Base
{
  protected:
    void
    saveExtra(pktbuf::ser::Writer &w) const override
    {
        w.u64(cursor_);
    }
    void
    loadExtra(pktbuf::ser::Reader &r) override
    {
        cursor_ = r.u64();
    }

  private:
    unsigned long long cursor_ = 0;
};

// Out-of-line bodies, complete.
class OutOfLine
{
  public:
    void save(pktbuf::ser::Writer &w) const;
    void load(pktbuf::ser::Reader &r);

  private:
    unsigned long long a_ = 0;
};

void
OutOfLine::save(pktbuf::ser::Writer &w) const
{
    w.u64(a_);
}

void
OutOfLine::load(pktbuf::ser::Reader &r)
{
    a_ = r.u64();
}

// A class with no hooks at all is not serializable: no findings.
class Plain
{
  private:
    unsigned long long whatever_ = 0;
};

void
touch(Good &, Sub &, OutOfLine &, Plain &)
{}

} // namespace fixture
