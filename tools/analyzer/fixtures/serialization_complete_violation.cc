// pktbuf-serialization-complete: violating fixture.

#include "pktbuf_stubs.hh"

namespace fixture
{

// A member added without updating either hook.
class Drifty
{
  public:
    void
    save(pktbuf::ser::Writer &w) const
    {
        w.u64(a_);
    }
    void
    load(pktbuf::ser::Reader &r)
    {
        a_ = r.u64();
    }

  private:
    unsigned long long a_ = 0;
    unsigned long long forgotten_ = 0;
};

// Saved but never loaded: restore silently zeroes it.
class HalfDone
{
  public:
    void
    save(pktbuf::ser::Writer &w) const
    {
        w.u64(a_);
        w.u64(half_);
    }
    void
    load(pktbuf::ser::Reader &r)
    {
        a_ = r.u64();
    }

  private:
    unsigned long long a_ = 0;
    unsigned long long half_ = 0;
};

// Subclass of a serializable base with state of its own but no
// saveExtra/loadExtra-style hook: the base cannot serialize cursor_.
class Base
{
  public:
    void
    save(pktbuf::ser::Writer &w) const
    {
        w.u64(a_);
    }
    void
    load(pktbuf::ser::Reader &r)
    {
        a_ = r.u64();
    }

  private:
    unsigned long long a_ = 0;
};

class Sub : public Base
{
  private:
    unsigned long long cursor_ = 0;
};

// Out-of-line hook bodies (the hybrid_buffer.cc pattern): the check
// must see through them in the TU that defines them.
class OutOfLine
{
  public:
    void save(pktbuf::ser::Writer &w) const;
    void load(pktbuf::ser::Reader &r);

  private:
    unsigned long long a_ = 0;
    unsigned long long skipped_ = 0;
};

void
OutOfLine::save(pktbuf::ser::Writer &w) const
{
    w.u64(a_);
}

void
OutOfLine::load(pktbuf::ser::Reader &r)
{
    a_ = r.u64();
}

void
touch(Drifty &, HalfDone &, Sub &, OutOfLine &)
{}

} // namespace fixture
