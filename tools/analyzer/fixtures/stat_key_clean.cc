// pktbuf-stat-key: clean fixture.

#include "pktbuf_stubs.hh"

void
registerOnce(pktbuf::StatRegistry &stats, const std::string &cause,
             const std::string &pre)
{
    // Namespaced literals, each registered at one site.
    stats.counter("dsa.stall.bank_busy");
    stats.sampler("dsa.queue_delay");
    stats.highWater("rr.occupancy");
    stats.quantile("across_ports.delay_p99", 0.99);

    // Runtime-composed keys: literal fragments follow the charset.
    stats.counter(std::string("dsa.stall.") + cause);
    stats.sampler(pre + "arrivals");
}

void
sameSiteTwice(pktbuf::StatRegistry &stats)
{
    // The same *site* re-executed (loops, multiple calls) is not a
    // duplicate registration -- only distinct source sites are.
    for (int i = 0; i < 2; ++i)
        stats.counter("loop.reentries").inc();
}
