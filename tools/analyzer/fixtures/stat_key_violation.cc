// pktbuf-stat-key: violating fixture.

#include "pktbuf_stubs.hh"

void
violations(pktbuf::StatRegistry &stats, const std::string &suffix)
{
    // No namespace dot.
    stats.counter("arrivals");

    // Upper-case / grammar breakage.
    stats.sampler("Dsa.Stall");

    // Trailing dot (empty metric component).
    stats.highWater("rr.");

    // Duplicate full-literal key at two distinct sites.
    stats.counter("dup.key");
    stats.counter("dup.key");

    // Composed key with an out-of-grammar literal fragment.
    stats.sampler(std::string("Across Ports ") + suffix);
}
