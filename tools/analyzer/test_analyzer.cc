/**
 * @file
 * GTest driver for the pktbuf clang-tidy plugin fixtures: every
 * check's violating fixture must produce its expected warnings and
 * its clean fixture none -- the compiled-through-the-check analog of
 * the Python linters' --self-test.
 *
 * The driver shells out to the clang-tidy binary CMake found at
 * configure time, loading the freshly built plugin with --load and
 * restricting --checks to the one check under test, so a fixture
 * can never pass because a *different* check stayed silent.
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

// All three injected by tools/analyzer/CMakeLists.txt.
#ifndef PKTBUF_ANALYZER_PLUGIN
#error "PKTBUF_ANALYZER_PLUGIN must point at the built plugin .so"
#endif
#ifndef PKTBUF_CLANG_TIDY
#error "PKTBUF_CLANG_TIDY must point at the clang-tidy binary"
#endif
#ifndef PKTBUF_ANALYZER_FIXTURES
#error "PKTBUF_ANALYZER_FIXTURES must point at the fixtures dir"
#endif

namespace
{

struct TidyRun
{
    int exitStatus = -1;
    std::string output;  // stdout + stderr, interleaved
};

/** Run one check over one fixture; never throws. */
TidyRun
runTidy(const std::string &check, const std::string &fixture)
{
    const std::string fixtures = PKTBUF_ANALYZER_FIXTURES;
    const std::string cmd = std::string(PKTBUF_CLANG_TIDY) +
                            " --load=" + PKTBUF_ANALYZER_PLUGIN +
                            " --checks='-*," + check + "'" + " '" +
                            fixtures + "/" + fixture + "'" +
                            " -- -std=c++17 -w -I'" + fixtures + "' 2>&1";
    TidyRun run;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return run;
    std::array<char, 4096> buf{};
    size_t n = 0;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        run.output.append(buf.data(), n);
    run.exitStatus = pclose(pipe);
    return run;
}

/** Occurrences of `needle` in `haystack`. */
int
countOf(const std::string &haystack, const std::string &needle)
{
    int count = 0;
    for (size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

/** Warnings attributed to `check` in clang-tidy output. */
int
warningsFrom(const TidyRun &run, const std::string &check)
{
    return countOf(run.output, "[" + check + "]");
}

class AnalyzerFixture
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
  protected:
    /**
     * The plugin must load and the check must register; a clang-tidy
     * that cannot load the plugin prints an error and lists no
     * pktbuf checks, which must fail loudly, not silently pass the
     * clean fixtures.
     */
    static void
    SetUpTestSuite()
    {
        const TidyRun list = runTidy("pktbuf-*", "enum_switch_clean.cc");
        ASSERT_EQ(countOf(list.output, "Error opening plugin"), 0)
            << "plugin failed to load:\n"
            << list.output;
    }
};

TEST_P(AnalyzerFixture, ViolationsDetectedCleanSilent)
{
    const std::string check = std::get<0>(GetParam());
    const int expected = std::get<1>(GetParam());
    const std::string base = [&] {
        std::string b = check.substr(std::string("pktbuf-").size());
        for (auto &c : b)
            if (c == '-')
                c = '_';
        return b;
    }();

    const TidyRun bad = runTidy(check, base + "_violation.cc");
    EXPECT_EQ(warningsFrom(bad, check), expected)
        << check << " on the violating fixture:\n"
        << bad.output;

    const TidyRun good = runTidy(check, base + "_clean.cc");
    EXPECT_EQ(warningsFrom(good, check), 0)
        << check << " on the clean fixture:\n"
        << good.output;
}

INSTANTIATE_TEST_SUITE_P(
    AllChecks, AnalyzerFixture,
    ::testing::Values(
        std::make_tuple("pktbuf-seed-discipline", 4),
        std::make_tuple("pktbuf-serialization-complete", 4),
        std::make_tuple("pktbuf-stat-key", 5),
        std::make_tuple("pktbuf-enum-switch", 2),
        std::make_tuple("pktbuf-describe-engine-agnostic", 2)),
    [](const ::testing::TestParamInfo<std::tuple<const char *, int>>
           &pinfo) {
        std::string name = std::get<0>(pinfo.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

/**
 * The check must also be *reachable* the way run_tidy.sh invokes it:
 * --list-checks with the plugin loaded names all five.
 */
TEST(AnalyzerPlugin, ListsAllFiveChecks)
{
    const std::string cmd =
        std::string(PKTBUF_CLANG_TIDY) + " --load=" +
        PKTBUF_ANALYZER_PLUGIN + " --checks='-*,pktbuf-*' --list-checks "
        " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::string out;
    std::array<char, 4096> buf{};
    size_t n = 0;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        out.append(buf.data(), n);
    pclose(pipe);
    for (const char *check :
         {"pktbuf-seed-discipline", "pktbuf-serialization-complete",
          "pktbuf-stat-key", "pktbuf-enum-switch",
          "pktbuf-describe-engine-agnostic"}) {
        EXPECT_NE(out.find(check), std::string::npos)
            << "missing " << check << " in:\n"
            << out;
    }
}

} // namespace
