#!/usr/bin/env bash
# Check that every relative markdown link in the committed docs
# resolves to an existing file or directory.  External (http/https/
# mailto) links and pure #fragment anchors are skipped.  Exits
# non-zero listing every broken link, so CI fails when a doc rots.
set -u

cd "$(dirname "$0")/.."

fail=0
# Committed markdown only (build trees may contain generated .md);
# everything is read line-wise so paths and link targets containing
# spaces survive intact.
while IFS= read -r f; do
    dir=$(dirname "$f")
    # Extract (target) of every [text](target), one per line.
    while IFS= read -r link; do
        [ -z "$link" ] && continue
        case "$link" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        target="${link%%#*}"        # drop any #fragment
        [ -z "$target" ] && continue
        # Markdown links resolve relative to the containing file
        # only -- no repo-root fallback, which would pass links that
        # 404 when rendered.
        if [ ! -e "$dir/$target" ]; then
            echo "BROKEN LINK: $f -> $link"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done < <(git ls-files '*.md')

if [ "$fail" -eq 0 ]; then
    echo "all markdown links resolve"
fi
exit $fail
