#!/usr/bin/env bash
# Line-coverage gate for src/ (the CI "coverage" job).
#
# Builds an instrumented tree (PKTBUF_COVERAGE=ON), runs the whole
# CTest suite, computes the union line coverage of src/ with
# tools/coverage_percent.py (gcov --json-format under the hood), and
# fails if it drops below the floor recorded in
# tools/coverage_floor.txt -- the value measured when the coverage
# gate was merged.  Raise the floor when coverage genuinely improves;
# never lower it to make a PR pass.
#
# When lcov/genhtml are installed, an HTML report is also rendered to
# $BUILD_DIR/coverage-html (uploaded as a CI artifact); its absence
# only skips the report, never the gate.
#
# Env knobs: BUILD_DIR (default build-cov), JOBS (default nproc),
# CTEST_ARGS (extra ctest arguments, e.g. -L unit for a quick look).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-cov}
JOBS=${JOBS:-$(nproc)}
FLOOR_FILE=tools/coverage_floor.txt

cmake -B "$BUILD_DIR" -S . -DPKTBUF_COVERAGE=ON \
      -DCMAKE_BUILD_TYPE=Debug > /dev/null
cmake --build "$BUILD_DIR" -j"$JOBS" > /dev/null

# Stale counters from a previous run would inflate the union.
find "$BUILD_DIR" -name '*.gcda' -delete

# CTEST_ARGS is a space-separated list by contract; split it into an
# array so shellcheck-clean quoting still passes multiple arguments.
read -r -a ctest_extra <<< "${CTEST_ARGS:-}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS" \
      "${ctest_extra[@]}"

pct=$(python3 tools/coverage_percent.py "$BUILD_DIR")
floor=$(tr -d '[:space:]' < "$FLOOR_FILE")
echo "src/ line coverage: ${pct}% (floor: ${floor}%)"

if command -v lcov > /dev/null && command -v genhtml > /dev/null; then
    lcov --capture --directory "$BUILD_DIR" \
         --output-file "$BUILD_DIR/coverage.info" \
         --rc branch_coverage=0 --quiet 2> /dev/null \
      || lcov --capture --directory "$BUILD_DIR" \
              --output-file "$BUILD_DIR/coverage.info" --quiet
    lcov --extract "$BUILD_DIR/coverage.info" "$(pwd)/src/*" \
         --output-file "$BUILD_DIR/coverage-src.info" --quiet
    genhtml "$BUILD_DIR/coverage-src.info" \
            --output-directory "$BUILD_DIR/coverage-html" --quiet
    echo "HTML report: $BUILD_DIR/coverage-html/index.html"
else
    echo "lcov/genhtml not installed: skipping the HTML report"
fi

awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p + 1e-9 >= f) }' || {
    echo "FAIL: coverage ${pct}% fell below the recorded floor" \
         "${floor}% (tools/coverage_floor.txt)" >&2
    exit 1
}
echo "coverage gate passed"
