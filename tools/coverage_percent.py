#!/usr/bin/env python3
"""Aggregate gcov line coverage of src/ across a whole build tree.

Walks BUILD_DIR for .gcda note files, runs `gcov --json-format -t`
on each, and unions the per-line execution counts of every file
under SRC_PREFIX (headers are compiled into many translation units;
a line is covered if ANY unit executed it -- the same union lcov
computes).  Prints a single percentage with one decimal on stdout.

Usage: coverage_percent.py BUILD_DIR [SRC_PREFIX]

SRC_PREFIX defaults to "<repo>/src" where <repo> is the parent of
this script's directory.
"""

import json
import os
import subprocess
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    build_dir = os.path.abspath(sys.argv[1])
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src_prefix = os.path.abspath(
        sys.argv[2] if len(sys.argv) > 2 else os.path.join(repo, "src"))

    gcdas = []
    for root, _dirs, files in os.walk(build_dir):
        gcdas.extend(
            os.path.join(root, f) for f in files if f.endswith(".gcda"))
    if not gcdas:
        print("no .gcda files under", build_dir, file=sys.stderr)
        return 1

    # (file, line) -> executed?  Union over all translation units.
    lines: dict[tuple[str, int], bool] = {}
    for gcda in sorted(gcdas):
        proc = subprocess.run(
            ["gcov", "--json-format", "-t", gcda],
            capture_output=True,
            text=True,
            cwd=os.path.dirname(gcda),
        )
        if proc.returncode != 0:
            print("gcov failed on", gcda, file=sys.stderr)
            print(proc.stderr, file=sys.stderr)
            return 1
        # One JSON document per line (gcov emits one per .gcno).
        for doc in proc.stdout.splitlines():
            if not doc.strip():
                continue
            data = json.loads(doc)
            for f in data.get("files", []):
                path = f["file"]
                if not os.path.isabs(path):
                    path = os.path.join(data.get("current_working_directory",
                                                 build_dir), path)
                path = os.path.realpath(path)
                if not path.startswith(src_prefix + os.sep):
                    continue
                for ln in f.get("lines", []):
                    key = (path, ln["line_number"])
                    lines[key] = lines.get(key, False) or ln["count"] > 0
    if not lines:
        print("no instrumented lines under", src_prefix, file=sys.stderr)
        return 1

    covered = sum(1 for hit in lines.values() if hit)
    pct = 100.0 * covered / len(lines)
    # Floor to one decimal so the printed value never overstates.
    print(f"{int(pct * 10) / 10:.1f}")
    print(f"covered {covered} of {len(lines)} lines under {src_prefix}",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
