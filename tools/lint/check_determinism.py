#!/usr/bin/env python3
"""Determinism lint: the bit-identical-output rules, machine-checked.

The repo's headline invariant is that every simulation artifact --
sweep JSON/CSV, scenario stdout, PKCK checkpoints -- is a pure
function of the named seeds, for any ``--jobs``.  These rules keep it
that way:

``det-banned-call`` (everywhere)
    ``rand()``/``srand()``, ``std::random_device``, every ``<random>``
    engine, ``drand48``-family, ``arc4random``: nondeterministic or
    implementation-defined streams.  The project PRNG is ``Rng``
    (xoshiro256**, explicit seed).

``det-wall-clock`` (src/ only)
    ``time()``, ``clock()``, ``gettimeofday``, ``localtime``,
    ``std::chrono::system_clock``: calendar time must never reach
    simulation state.  ``steady_clock`` is allowed -- it only feeds
    wall-seconds measurement fields that the perf gate explicitly
    band-checks instead of byte-compares.

``det-default-seed`` (everywhere)
    A function parameter named ``*seed*`` with a default argument.
    The PR-1 rule: every randomized user names its seed at the call
    site so any failure is replayable from the log alone.

``det-unordered-emit`` (emitter/aggregation paths)
    Any use of ``std::unordered_map``/``unordered_set`` in files that
    produce ordered output (src/sweep/, src/common/stats*): iteration
    order is implementation-defined, which is exactly how byte-
    identical JSON silently stops being byte-identical.

``det-unordered-iter`` (src/ everywhere)
    Range-for or ``.begin()`` iteration over a variable declared as an
    unordered container anywhere in the library: emitters are where
    the bytes escape, but aggregation upstream of them drifts too.

A finding can be suppressed on its line with ``// det: allow(<rule>)``
plus a justification; the allowance is per-line and greppable.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lintlib import (Finding, cxx_files, read_stripped, report,
                     run_self_test)

TOOL = "check_determinism"

# Paths (relative, prefix-matched) that emit or aggregate ordered
# output: the strictest rule set applies there.
EMITTER_PATHS = ("src/sweep/", "src/common/stats")

BANNED_CALLS = [
    (r"\bsrand\s*\(", "srand()"),
    (r"(?<![\w:])rand\s*\(\s*\)", "rand()"),
    (r"\bstd::random_device\b", "std::random_device"),
    (r"\bstd::mt19937(_64)?\b", "std::mt19937"),
    (r"\bstd::default_random_engine\b", "std::default_random_engine"),
    (r"\bstd::minstd_rand0?\b", "std::minstd_rand"),
    (r"\b[dlm]rand48\s*\(", "*rand48()"),
    (r"\barc4random\w*\s*\(", "arc4random()"),
    (r"#\s*include\s*<random>", "#include <random>"),
]

WALL_CLOCK = [
    (r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)?\s*\)", "time()"),
    (r"(?<![\w:])clock\s*\(\s*\)", "clock()"),
    (r"\bgettimeofday\s*\(", "gettimeofday()"),
    (r"\b(localtime|gmtime|mktime)\s*\(", "calendar time"),
    (r"\bstd::chrono::system_clock\b", "std::chrono::system_clock"),
]

DEFAULT_SEED_RE = re.compile(
    r"[(,]\s*(?:std::)?(?:uint64_t|uint32_t|unsigned(?:\s+long)?(?:\s+int)?"
    r"|int|long|size_t|std::size_t)\s+(\w*[sS]eed\w*)\s*=\s*[^,)]+")

UNORDERED_RE = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")
ALLOW_RE = re.compile(r"\bdet:\s*allow\(([\w-]+)\)")


def _allowed(comments: dict[int, str], line: int, rule: str) -> bool:
    for ln in (line, line - 1):
        for m in ALLOW_RE.finditer(comments.get(ln, "")):
            if m.group(1) == rule:
                return True
    return False


def scan_file(path: str, rel: str) -> list[Finding]:
    st = read_stripped(path)
    findings: list[Finding] = []
    in_src = rel.startswith("src/") or "/src/" in rel
    in_emitter = any(rel.startswith(p) or p in rel
                     for p in EMITTER_PATHS)

    def add(offset: int, rule: str, msg: str) -> None:
        line = st.line_of(offset)
        if not _allowed(st.comments, line, rule):
            findings.append(Finding(path, line, rule, msg))

    for pat, what in BANNED_CALLS:
        for m in re.finditer(pat, st.code):
            add(m.start(), "det-banned-call",
                f"{what} is nondeterministic or implementation-defined; "
                f"use pktbuf::Rng with an explicit seed")
    if in_src:
        for pat, what in WALL_CLOCK:
            for m in re.finditer(pat, st.code):
                add(m.start(), "det-wall-clock",
                    f"{what} must not reach simulation state; "
                    f"steady_clock is allowed for wall-seconds "
                    f"measurement only")

    for m in DEFAULT_SEED_RE.finditer(st.code):
        add(m.start(), "det-default-seed",
            f"parameter '{m.group(1)}' has a default value; the seed "
            f"rule requires every caller to name its seed explicitly")

    if in_emitter:
        for m in UNORDERED_RE.finditer(st.code):
            add(m.start(), "det-unordered-emit",
                f"std::unordered_{m.group(1)} in an emitter/aggregation "
                f"path: iteration order is implementation-defined and "
                f"breaks byte-identical output; use std::map/std::set "
                f"or a sorted vector")
    elif in_src:
        # Track unordered-container variables declared in this file
        # and flag iteration over them.
        names = set()
        for m in re.finditer(
                UNORDERED_RE.pattern + r"\s*<[^;{]*>\s+(\w+)", st.code):
            names.add(m.group(2))
        for name in names:
            for m in re.finditer(
                    rf"for\s*\([^;)]*:\s*{re.escape(name)}\b"
                    rf"|\b{re.escape(name)}\s*[.]\s*(?:c?begin|c?end)"
                    rf"\s*\(", st.code):
                add(m.start(), "det-unordered-iter",
                    f"iteration over unordered container '{name}': "
                    f"order is implementation-defined; sort keys or "
                    f"use an ordered container")

    return findings


def run(roots: list[str], repo_root: str) -> list[Finding]:
    findings = []
    for path in cxx_files(roots):
        rel = os.path.relpath(path, repo_root)
        findings.extend(scan_file(path, rel))
    return findings


# ---------------------------------------------------------------- fixtures

CLEAN_FIXTURE = """
#include "common/random.hh"
#include <chrono>
void run(std::uint64_t seed) {
    pktbuf::Rng rng(seed);
    const auto t0 = std::chrono::steady_clock::now();
    (void)t0;
    (void)rng.next();
}
"""

VIOLATION_FIXTURE = """
#include <random>
#include <ctime>
unsigned pick() {
    std::mt19937 gen(std::random_device{}());
    srand(time(nullptr));
    return gen() + rand();
}
void sim(unsigned n, std::uint64_t seed = 1234) { (void)n; (void)seed; }
"""

UNORDERED_FIXTURE = """
#include <unordered_map>
#include <string>
#include <ostream>
void emit(std::ostream &os) {
    std::unordered_map<std::string, int> rows;
    for (const auto &kv : rows)
        os << kv.first << kv.second;
}
"""

ALLOWED_FIXTURE = """
void stamp() {
    // det: allow(det-wall-clock) -- nightly soak log header only
    auto t = time(nullptr);
    (void)t;
}
"""


def self_test() -> int:
    cases = []
    with tempfile.TemporaryDirectory(prefix="det_lint_") as tmp:
        src = os.path.join(tmp, "src", "sweep")
        os.makedirs(src)
        for desc, text, clean, name in (
                ("clean fixture", CLEAN_FIXTURE, True, "clean.cc"),
                ("rand/random_device/default-seed", VIOLATION_FIXTURE,
                 False, "viol.cc"),
                ("unordered iteration in emitter", UNORDERED_FIXTURE,
                 False, "emit.cc"),
                ("det: allow() suppression", ALLOWED_FIXTURE, True,
                 "allowed.cc")):
            path = os.path.join(src, name)
            with open(path, "w") as f:
                f.write(text)
            count = len(run([path], tmp))
            cases.append((desc, clean, count))
            os.unlink(path)
    return run_self_test(TOOL, cases)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to scan "
                         "(default: src bench examples tests)")
    ap.add_argument("--root", default=".",
                    help="repo root for path-scoped rules")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    roots = args.paths or ["src", "bench", "examples", "tests"]
    roots = [r for r in roots if os.path.exists(r)]
    if not roots:
        print(f"{TOOL}: nothing to scan", file=sys.stderr)
        return 2
    return report(run(roots, args.root), TOOL)


if __name__ == "__main__":
    sys.exit(main())
