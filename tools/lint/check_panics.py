#!/usr/bin/env python3
"""Panic-path lint: every panic/fatal message unique and greppable.

When a soak run dies at 3 a.m., the only artifact is the message.
This linter guarantees the message finds the code:

``panic-no-literal``
    A ``panic()``/``fatal()``/``panic_if()``/``fatal_if()`` call whose
    arguments contain no string literal at all -- nothing to grep.

``panic-too-short``
    The literal part of the message is under 8 characters ("bad" or
    "oops" matches half the tree).

``panic-duplicate``
    Two call sites share the same literal skeleton (the literals
    joined with a placeholder for interpolated values).  A duplicated
    message points at N places at once; make each unique.

The scan covers ``src/`` by default: tests may deliberately construct
odd panics, and the macros themselves live in common/logging.hh
(skipped by name).

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lintlib import (Finding, cxx_files, find_matching, read_stripped,
                     report, run_self_test)

TOOL = "check_panics"

CALL_RE = re.compile(r"\b(panic_if|fatal_if|panic|fatal)\s*\(")
MIN_LITERAL_CHARS = 8


def _split_args(raw: str, stripped: str) -> list[str]:
    """Split an argument list at top-level commas.

    Comma positions come from the *stripped* view (string literals
    blanked, so a comma inside a message literal never splits), the
    returned slices from the raw text (so the literals survive).
    """
    cuts = [-1]
    depth = 0
    for i, c in enumerate(stripped):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            cuts.append(i)
    cuts.append(len(raw))
    return [raw[cuts[k] + 1:cuts[k + 1]] for k in range(len(cuts) - 1)]


def _literal_skeleton(args: list[str]) -> tuple[str, int]:
    """Join the string literals of an argument list into a skeleton.

    Non-literal arguments become ``{}`` placeholders.  Returns the
    skeleton and the total literal character count.
    """
    parts = []
    total = 0
    for arg in args:
        arg = arg.strip()
        literals = re.findall(r'"((?:[^"\\]|\\.)*)"', arg)
        if literals:
            text = "".join(literals)
            parts.append(text)
            total += len(text)
        elif arg:
            parts.append("{}")
    return "".join(parts), total


def scan_file(path: str) -> list[tuple[str, int, str, str, int]]:
    """(path, line, macro, skeleton, literal_chars) per call site."""
    st = read_stripped(path)
    # The skeleton needs the *raw* literals, so re-extract arguments
    # from the raw text at offsets found in the stripped view.
    sites = []
    for m in CALL_RE.finditer(st.code):
        # Skip the macro definitions / forwarding helpers themselves.
        line_start = st.code.rfind("\n", 0, m.start()) + 1
        line_text = st.raw[line_start:st.raw.find("\n", m.start())]
        if "#define" in line_text:
            continue
        open_paren = m.end() - 1
        close = find_matching(st.code, open_paren, "(", ")")
        if close == -1:
            continue
        raw_args = st.raw[open_paren + 1:close - 1]
        stripped_args = st.code[open_paren + 1:close - 1]
        args = _split_args(raw_args, stripped_args)
        macro = m.group(1)
        if macro.endswith("_if"):
            args = args[1:]  # drop the condition argument
        skeleton, chars = _literal_skeleton(args)
        sites.append((path, st.line_of(m.start()), macro, skeleton,
                      chars))
    return sites


def check(paths: list[str]) -> list[Finding]:
    findings = []
    seen: dict[str, tuple[str, int]] = {}
    for path in paths:
        if os.path.basename(path) == "logging.hh":
            continue
        for p, line, macro, skeleton, chars in scan_file(path):
            if chars == 0:
                findings.append(Finding(
                    p, line, "panic-no-literal",
                    f"{macro}() message has no string literal; "
                    f"nothing to grep for when it fires"))
                continue
            if chars < MIN_LITERAL_CHARS:
                findings.append(Finding(
                    p, line, "panic-too-short",
                    f"{macro}() literal text {skeleton!r} is under "
                    f"{MIN_LITERAL_CHARS} chars; make it greppable"))
            if skeleton in seen:
                first_path, first_line = seen[skeleton]
                findings.append(Finding(
                    p, line, "panic-duplicate",
                    f"{macro}() message {skeleton!r} duplicates "
                    f"{first_path}:{first_line}; a fired message must "
                    f"identify one call site"))
            else:
                seen[skeleton] = (p, line)
    return findings


# ---------------------------------------------------------------- fixtures

CLEAN_FIXTURE = """
#include "common/logging.hh"
void f(unsigned q, unsigned n) {
    panic_if(q >= n, "queue ", q, " out of range (", n, " queues)");
    fatal_if(n == 0, "buffer configured with zero queues");
}
"""

DUP_FIXTURE = """
#include "common/logging.hh"
void f(unsigned a, unsigned b) {
    panic_if(a > 4, "value out of range");
    panic_if(b > 4, "value out of range");
}
"""

SHORT_FIXTURE = """
#include "common/logging.hh"
void f(bool bad, int x) {
    panic_if(bad, "bad");
    fatal_if(x < 0, x);
}
"""


def self_test() -> int:
    cases = []
    with tempfile.TemporaryDirectory(prefix="panic_lint_") as tmp:
        for desc, text, clean in (
                ("clean fixture", CLEAN_FIXTURE, True),
                ("duplicated message", DUP_FIXTURE, False),
                ("short / literal-free messages", SHORT_FIXTURE,
                 False)):
            path = os.path.join(tmp, "fixture.cc")
            with open(path, "w") as f:
                f.write(text)
            cases.append((desc, clean, len(check([path]))))
    return run_self_test(TOOL, cases)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to scan (default: src/)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    paths = cxx_files(args.paths or ["src"])
    if not paths:
        print(f"{TOOL}: no C++ sources found", file=sys.stderr)
        return 2
    return report(check(paths), TOOL)


if __name__ == "__main__":
    sys.exit(main())
