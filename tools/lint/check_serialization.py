#!/usr/bin/env python3
"""Serialization-completeness checker (the PKCK bit-identity rule).

For every class that declares checkpoint hooks -- a ``save*`` method
taking ``ser::Writer&`` and a ``load*`` method taking ``ser::Reader&``
-- every non-static data member must be *referenced* in both hook
bodies.  A member a hook forgets is exactly the checkpoint drift that
breaks the soak layer's restore-is-bit-identical invariant, silently:
the run restores, diverges later, and the divergence points nowhere
near the missing field.

Members that are legitimately not serialized carry an annotation on
their declaration line (or the line above):

    // ser: config   -- fixed at construction, restore requires the
                        same configuration (validated separately)
    // ser: derived  -- recomputed from serialized state on load()
                        or scoped to a single call (scratch space)

Both hooks must still *mention* an unannotated member; referencing it
in load() alone (e.g. a reset) without saving it is reported, and
vice versa.

Engine: uses the clang AST via ``clang.cindex`` when libclang is
importable.  The regex/lexical parser is a *fallback only* -- the
authoritative AST-grade enforcement lives in the in-tree clang-tidy
plugin (``tools/analyzer``, check ``pktbuf-serialization-complete``),
and when this script drops to the regex engine it says so on stderr.
The two engines enforce the same rule; ``--engine`` forces one, and
``--cross-check`` runs both and fails if they disagree on the tree
(exit 77 = skipped because libclang is unavailable).

Exit status: 0 clean/agree, 1 findings/disagree, 2 usage error,
77 cross-check skipped.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lintlib import (Finding, Stripped, cxx_files, find_matching,
                     read_stripped, report, run_self_test,
                     split_top_level)

TOOL = "check_serialization"

ANNOTATION_RE = re.compile(r"\bser:\s*(config|derived)\b")
SAVE_HOOK_RE = re.compile(r"\b(save\w*)\s*\(\s*(?:pktbuf::)?ser::Writer\b")
LOAD_HOOK_RE = re.compile(r"\b(load\w*)\s*\(\s*(?:pktbuf::)?ser::Reader\b")
OUT_OF_LINE_RE = re.compile(
    r"\b(\w+)::(save\w*|load\w*)\s*\(\s*(?:pktbuf::)?ser::(Writer|Reader)\b")
CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)"
                      r"(?:\s+final)?\s*(:[^;{]*)?\{")
MEMBER_SKIP_RE = re.compile(
    r"^\s*(using|typedef|friend|static|template|enum|public|private|"
    r"protected|return|if|for|while|switch|case|goto|break|continue)\b")


class ClassInfo:
    def __init__(self, name: str, path: str, line: int):
        self.name = name
        self.path = path
        self.line = line
        # member name -> (line, annotated)
        self.members: dict[str, tuple[int, bool]] = {}
        self.save_bodies: list[str] = []
        self.load_bodies: list[str] = []
        self.save_declared = False
        self.load_declared = False
        self.pure_save = False
        self.pure_load = False
        self.bases: list[str] = []


def _member_name(stmt: str) -> str | None:
    """Extract the declared member name from one class-body statement.

    Returns None for anything that is not a plain data-member
    declaration (functions, nested types, access labels, ...).
    """
    s = stmt.strip()
    # Drop access labels glued to the front of the statement.
    s = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "", s)
    s = s.strip()
    if not s or MEMBER_SKIP_RE.match(s):
        return None
    # A paren outside template angle brackets means a function;
    # std::function<bool(QueueId)> members keep theirs inside <>.
    head = s.split("=", 1)[0].split("{", 1)[0]
    angle = 0
    for c in head:
        if c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "(" and angle == 0:
            return None  # function declaration / definition
    # Chop any initializer, then array extents, then take the last
    # identifier: "std::vector<T> foo_ = {}" -> foo_.
    decl = re.split(r"[={]", s, 1)[0]
    decl = re.sub(r"\[[^\]]*\]", "", decl)
    m = re.search(r"([A-Za-z_]\w*)\s*$", decl)
    if not m:
        return None
    name = m.group(1)
    # A lone type keyword is not a member name.
    if name in ("const", "override", "final", "noexcept", "int",
                "unsigned", "double", "float", "bool", "char", "auto"):
        return None
    return name


def _base_names(spec: str | None) -> list[str]:
    """Base-class names out of an inheritance spec (': public A, B<T>')."""
    if not spec:
        return []
    names = []
    for part in split_top_level(spec.lstrip(":")):
        part = re.sub(r"<.*", "", part)
        m = re.search(r"([A-Za-z_]\w*)\s*$", part)
        if m and m.group(1) not in ("public", "private", "protected",
                                    "virtual"):
            names.append(m.group(1))
    return names


def _annotated(st: Stripped, line: int) -> bool:
    for ln in (line, line - 1, line - 2):
        text = st.comments.get(ln, "")
        if ANNOTATION_RE.search(text):
            return True
    return False


def _scan_class_body(st: Stripped, cls: ClassInfo, body_start: int,
                     body_end: int,
                     classes: dict[str, ClassInfo]) -> None:
    """Collect members and inline hooks at this class's top level.

    Nested class/struct definitions are recursed into as their own
    classes and blanked out of the parent's view.
    """
    body = st.code[body_start:body_end]
    view = list(body)

    # Recurse into (and blank) nested class/struct definitions.
    for m in CLASS_RE.finditer(body):
        open_pos = body.index("{", m.end() - 1)
        close = find_matching(body, open_pos)
        if close == -1:
            continue
        nested = ClassInfo(m.group(2), st.path,
                           st.line_of(body_start + m.start()))
        nested.bases = _base_names(m.group(3))
        _scan_class_body(st, nested, body_start + open_pos + 1,
                         body_start + close - 1, classes)
        classes.setdefault(nested.name, nested)
        for k in range(m.start(), close):
            if view[k] != "\n":
                view[k] = " "
    flat = "".join(view)

    # Inline hook bodies (and pure-virtual / declaration-only hooks).
    for hook_re, which in ((SAVE_HOOK_RE, "save"), (LOAD_HOOK_RE, "load")):
        for m in hook_re.finditer(flat):
            open_paren = m.start() + m.group(0).index("(")
            close_paren = find_matching(flat, open_paren, "(", ")")
            if close_paren == -1:
                continue
            tail = flat[close_paren:]
            head = re.match(r"\s*(?:const)?\s*(?:noexcept)?\s*"
                            r"(?:override)?\s*(=\s*0\s*;|;|\{)", tail)
            if not head:
                continue
            tok = head.group(1)
            if which == "save":
                cls.save_declared = True
            else:
                cls.load_declared = True
            if tok.startswith("="):
                if which == "save":
                    cls.pure_save = True
                else:
                    cls.pure_load = True
                # Blank so the declaration is not seen as a member.
                continue
            if tok == "{":
                open_brace = close_paren + head.end(1) - 1
                body_close = find_matching(flat, open_brace)
                if body_close == -1:
                    continue
                text = flat[open_brace:body_close]
                (cls.save_bodies if which == "save"
                 else cls.load_bodies).append(text)

    # Blank member-function bodies so their locals are not mistaken
    # for member declarations, then split the remainder into
    # statements at top level.
    depth = 0
    stmt_start = 0
    statements: list[tuple[int, str]] = []
    for i, c in enumerate(flat):
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                # End of a braced chunk: if the statement so far has
                # no "=", it is a function/initializer block --
                # terminate the statement here (no semicolon after a
                # function body).
                nxt = flat[i + 1:i + 2]
                if nxt != ";":
                    statements.append((stmt_start, flat[stmt_start:i + 1]))
                    stmt_start = i + 1
        elif c == ";" and depth == 0:
            statements.append((stmt_start, flat[stmt_start:i]))
            stmt_start = i + 1

    for off, stmt in statements:
        if "(" in stmt:
            continue
        name = _member_name(stmt)
        if name is None:
            continue
        # Line of the declaration = line of the statement's last
        # non-space content (annotations sit on or above it).
        content = off + len(stmt) - len(stmt.rstrip())
        line = st.line_of(body_start + off + len(stmt.rstrip()) - 1) \
            if stmt.strip() else st.line_of(body_start + off)
        _ = content
        cls.members[name] = (line, _annotated(st, line))


def parse_regex(paths: list[str]) -> dict[str, ClassInfo]:
    classes: dict[str, ClassInfo] = {}
    stripped = [read_stripped(p) for p in paths]

    # Pass 1: class definitions in every file.
    for st in stripped:
        for m in CLASS_RE.finditer(st.code):
            # Skip out-of-line "Name::method" hits and forward decls
            # (CLASS_RE requires a brace, so forward decls never match).
            open_pos = st.code.index("{", m.end() - 1)
            close = find_matching(st.code, open_pos)
            if close == -1:
                continue
            name = m.group(2)
            cls = ClassInfo(name, st.path, st.line_of(m.start()))
            cls.bases = _base_names(m.group(3))
            _scan_class_body(st, cls, open_pos + 1, close - 1, classes)
            if name in classes:
                # Same-named class seen twice (e.g. in a .hh and a
                # test fixture): merge hooks/members conservatively.
                prev = classes[name]
                prev.members.update(cls.members)
                prev.save_bodies += cls.save_bodies
                prev.load_bodies += cls.load_bodies
                prev.save_declared |= cls.save_declared
                prev.load_declared |= cls.load_declared
                prev.pure_save |= cls.pure_save
                prev.pure_load |= cls.pure_load
                prev.bases = sorted(set(prev.bases) | set(cls.bases))
            else:
                classes[name] = cls

    # Pass 2: out-of-line hook definitions (hybrid_buffer.cc style).
    for st in stripped:
        for m in OUT_OF_LINE_RE.finditer(st.code):
            cls = classes.get(m.group(1))
            if cls is None:
                continue
            open_paren = m.start() + m.group(0).index("(")
            close_paren = find_matching(st.code, open_paren, "(", ")")
            if close_paren == -1:
                continue
            brace = re.match(r"\s*(?:const)?\s*\{", st.code[close_paren:])
            if not brace:
                continue
            open_brace = close_paren + brace.end() - 1
            body_close = find_matching(st.code, open_brace)
            if body_close == -1:
                continue
            text = st.code[open_brace:body_close]
            if m.group(3) == "Writer":
                cls.save_bodies.append(text)
            else:
                cls.load_bodies.append(text)

    return classes


def parse_clang(paths: list[str]) -> dict[str, ClassInfo] | None:
    """clang.cindex engine; returns None when libclang is unusable."""
    try:
        from clang import cindex  # type: ignore
        index = cindex.Index.create()
    except Exception:
        return None

    classes: dict[str, ClassInfo] = {}
    kinds = cindex.CursorKind
    for path in paths:
        try:
            tu = index.parse(path, args=["-std=c++20", "-Isrc"])
        except Exception:
            return None

        def visit(node):
            if node.kind in (kinds.CLASS_DECL, kinds.STRUCT_DECL) \
                    and node.is_definition():
                cls = classes.setdefault(
                    node.spelling,
                    ClassInfo(node.spelling, path,
                              node.location.line))
                for ch in node.get_children():
                    if ch.kind == kinds.FIELD_DECL:
                        st = read_stripped(path)
                        cls.members[ch.spelling] = (
                            ch.location.line,
                            _annotated(st, ch.location.line))
                    elif ch.kind == kinds.CXX_METHOD:
                        args = [a.type.spelling
                                for a in ch.get_arguments()]
                        body = " ".join(t.spelling
                                        for t in ch.get_tokens())
                        if ch.spelling.startswith("save") and any(
                                "Writer" in a for a in args):
                            cls.save_declared = True
                            if ch.is_definition():
                                cls.save_bodies.append(body)
                            elif ch.is_pure_virtual_method():
                                cls.pure_save = True
                        if ch.spelling.startswith("load") and any(
                                "Reader" in a for a in args):
                            cls.load_declared = True
                            if ch.is_definition():
                                cls.load_bodies.append(body)
                            elif ch.is_pure_virtual_method():
                                cls.pure_load = True
            for ch in node.get_children():
                visit(ch)

        visit(tu.cursor)
    return classes


def _inherits_hooks(cls: ClassInfo, classes: dict[str, ClassInfo],
                    seen: frozenset[str] = frozenset()) -> bool:
    """True when an ancestor declares both hooks (pure or concrete)."""
    for base_name in cls.bases:
        if base_name in seen:
            continue
        base = classes.get(base_name)
        if base is None:
            continue
        if base.save_declared and base.load_declared:
            return True
        if _inherits_hooks(base, classes, seen | {cls.name}):
            return True
    return False


def check(classes: dict[str, ClassInfo]) -> list[Finding]:
    findings = []
    for cls in classes.values():
        own_hooks = cls.save_declared and cls.load_declared
        inherited = _inherits_hooks(cls, classes)
        if not own_hooks and not inherited:
            continue  # not a serializable class
        if cls.pure_save or cls.pure_load:
            continue  # interface; concrete classes are checked
        if inherited and not own_hooks and not cls.save_bodies \
                and not cls.load_bodies:
            # Subclass of a serializable base with no extra hooks of
            # its own: every unannotated member it adds is drift (the
            # base's hooks cannot reference it).
            for name, (line, annotated) in sorted(cls.members.items()):
                if annotated:
                    continue
                findings.append(Finding(
                    cls.path, line, "ser-member-missing",
                    f"{cls.name}::{name}: class inherits save()/load()"
                    f" but declares no save/load hook referencing this"
                    f" member; add a saveExtra/loadExtra-style hook or"
                    f" annotate with '// ser: config' or"
                    f" '// ser: derived'"))
            continue
        if not cls.save_bodies or not cls.load_bodies:
            # Hook declared here, body defined in some TU we did not
            # scan -- only possible if the caller narrowed the file
            # set, so say so rather than guessing.
            findings.append(Finding(
                cls.path, cls.line, "ser-missing-body",
                f"{cls.name}: save()/load() declared but no body "
                f"found in the scanned files"))
            continue
        save_text = "\n".join(cls.save_bodies)
        load_text = "\n".join(cls.load_bodies)
        for name, (line, annotated) in sorted(cls.members.items()):
            if annotated:
                continue
            word = re.compile(rf"\b{re.escape(name)}\b")
            in_save = bool(word.search(save_text))
            in_load = bool(word.search(load_text))
            if in_save and in_load:
                continue
            missing = [h for h, ok in (("save()", in_save),
                                       ("load()", in_load)) if not ok]
            findings.append(Finding(
                cls.path, line, "ser-member-missing",
                f"{cls.name}::{name} not referenced in "
                f"{' or '.join(missing)}; serialize it or annotate "
                f"the declaration with '// ser: config' or "
                f"'// ser: derived'"))
    return findings


def run(paths: list[str], engine: str) -> list[Finding]:
    classes = None
    if engine in ("auto", "clang"):
        classes = parse_clang(paths)
        if classes is None and engine == "clang":
            print(f"{TOOL}: libclang unavailable", file=sys.stderr)
            sys.exit(2)
    if classes is None:
        if engine == "auto":
            # The regex engine is demoted to fallback duty: the
            # clang-tidy plugin (tools/analyzer) is the authoritative
            # AST-grade enforcement; say which engine actually ran so
            # a silent downgrade never masquerades as an AST pass.
            print(f"{TOOL}: note: libclang unavailable, using the "
                  f"regex fallback engine", file=sys.stderr)
        classes = parse_regex(paths)
    return check(classes)


def cross_check(paths: list[str]) -> int:
    """Both engines over the same files must report the same findings.

    Guards the fallback's fidelity: if the regex engine drifts from
    the AST view of the tree (a parsing style it cannot follow, an
    annotation it misses), this fails before the drift ships.
    """
    clang_classes = parse_clang(paths)
    if clang_classes is None:
        print(f"{TOOL}: --cross-check skipped: libclang unavailable",
              file=sys.stderr)
        return 77
    def as_key(f: Finding) -> tuple[str, str, str]:
        return (f.path, f.rule, f.message)

    clang_findings = {as_key(f) for f in check(clang_classes)}
    regex_findings = {as_key(f) for f in check(parse_regex(paths))}
    for label, extra in (("clang-only", clang_findings - regex_findings),
                         ("regex-only", regex_findings - clang_findings)):
        for path, rule, message in sorted(extra):
            print(f"{TOOL}: {label}: {path}: [{rule}] {message}")
    if clang_findings != regex_findings:
        print(f"{TOOL}: engines disagree on {len(paths)} files",
              file=sys.stderr)
        return 1
    print(f"{TOOL}: engines agree on {len(paths)} files "
          f"({len(clang_findings)} findings)")
    return 0


# ---------------------------------------------------------------- fixtures

CLEAN_FIXTURE = """
#include "common/serialize.hh"
class Good {
  public:
    void save(ser::Writer &w) const { w.u64(a_); w.u64(b_); }
    void load(ser::Reader &r) { a_ = r.u64(); b_ = r.u64(); }
  private:
    unsigned a_ = 0;
    unsigned long b_ = 0;
    unsigned cfg_queues_;  // ser: config
    // ser: derived (rebuilt by load from a_)
    unsigned scratch_ = 0;
};
"""

VIOLATION_FIXTURE = """
#include "common/serialize.hh"
class Drifty {
  public:
    void save(ser::Writer &w) const { w.u64(a_); }
    void load(ser::Reader &r) { a_ = r.u64(); }
  private:
    unsigned a_ = 0;
    unsigned forgotten_ = 0;   // added without updating save/load
};
"""

INHERIT_FIXTURE = """
#include "common/serialize.hh"
class Base {
  public:
    void save(ser::Writer &w) const { w.u64(a_); saveExtra(w); }
    void load(ser::Reader &r) { a_ = r.u64(); loadExtra(r); }
  protected:
    virtual void saveExtra(ser::Writer &) const {}
    virtual void loadExtra(ser::Reader &) {}
  private:
    unsigned a_ = 0;
};
class Sub : public Base {
  private:
    unsigned cursor_ = 0;  // stateful, but Sub overrides no hook
};
"""

HALF_FIXTURE = """
#include "common/serialize.hh"
class HalfDone {
  public:
    void save(ser::Writer &w) const { w.u64(a_); w.u64(half_); }
    void load(ser::Reader &r) { a_ = r.u64(); }
  private:
    unsigned a_ = 0;
    unsigned half_ = 0;  // saved but never loaded
};
"""


def self_test() -> int:
    cases = []
    with tempfile.TemporaryDirectory(prefix="ser_lint_") as tmp:
        for desc, text, clean in (
                ("clean fixture", CLEAN_FIXTURE, True),
                ("forgotten member", VIOLATION_FIXTURE, False),
                ("saved-but-not-loaded member", HALF_FIXTURE, False),
                ("hook-less subclass with state", INHERIT_FIXTURE,
                 False)):
            path = os.path.join(tmp, "fixture.hh")
            with open(path, "w") as f:
                f.write(text)
            count = len(run([path], "regex"))
            cases.append((desc + " (regex)", clean, count))
            try:
                from clang import cindex  # noqa: F401
                count = len(run([path], "clang"))
                cases.append((desc + " (clang)", clean, count))
            except Exception:
                pass
    return run_self_test(TOOL, cases)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/dirs to scan (default: src/)")
    ap.add_argument("--engine", choices=("auto", "regex", "clang"),
                    default="auto")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--cross-check", action="store_true",
                    help="run both engines and fail on disagreement "
                         "(exit 77 when libclang is unavailable)")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    roots = args.paths or ["src"]
    paths = cxx_files(roots)
    if not paths:
        print(f"{TOOL}: no C++ sources under {roots}", file=sys.stderr)
        return 2
    if args.cross_check:
        return cross_check(paths)
    return report(run(paths, args.engine), TOOL)


if __name__ == "__main__":
    sys.exit(main())
