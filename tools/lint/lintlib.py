"""Shared plumbing for the pktbuf project-invariant linters.

The linters operate on a lightweight lexical view of the C++ sources:
``strip_code()`` replaces comments and string/char literals with
spaces (preserving byte offsets and line numbers exactly, so every
finding can be reported as file:line), while ``comment_text()``
exposes the stripped comments for the allowlist annotations
(``// ser: derived``, ``// det: allow(...)``).

Each linter ships a ``--self-test`` that injects a violation into a
temp fixture and asserts detection (and that a clean fixture passes),
mirroring ``tools/perf_gate.py --self-test``.
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass, field

# ----------------------------------------------------------------- findings


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def report(findings: list[Finding], tool: str) -> int:
    """Print findings and return the process exit status."""
    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f.render(), file=sys.stderr)
    if findings:
        print(f"{tool}: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"{tool}: clean")
    return 0


# ------------------------------------------------------------ file walking

CXX_EXTENSIONS = (".hh", ".cc", ".hpp", ".cpp", ".h")


def cxx_files(roots: list[str]) -> list[str]:
    """All C++ sources under the given files/directories, sorted."""
    out = []
    for root in roots:
        if os.path.isfile(root):
            out.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


# ------------------------------------------------------- lexical stripping


@dataclass
class Stripped:
    """A source file with comments/literals blanked, offsets preserved."""

    path: str
    raw: str
    code: str                     # comments + string/char literals -> spaces
    comments: dict[int, str] = field(default_factory=dict)  # line -> text

    def line_of(self, offset: int) -> int:
        return self.raw.count("\n", 0, offset) + 1


def strip_code(path: str, text: str) -> Stripped:
    """Blank comments and literals out of ``text``, keeping offsets.

    Newlines inside block comments and raw strings are preserved so
    line numbers in the stripped view match the original file.
    Comment text is collected per starting line for the annotation
    allowlists.
    """
    n = len(text)
    out = list(text)
    comments: dict[int, str] = {}
    i = 0
    line = 1

    def blank(start: int, end: int) -> None:
        for k in range(start, end):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            comments.setdefault(line, "")
            comments[line] += text[i:end]
            blank(i, end)
            i = end
            continue
        if c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            comments.setdefault(line, "")
            comments[line] += text[i:end]
            line += text.count("\n", i, end)
            blank(i, end)
            i = end
            continue
        if c == '"' or c == "'":
            # Raw string literal R"delim( ... )delim"
            if c == '"' and i >= 1 and text[i - 1] == "R":
                m = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
                if m:
                    delim = m.group(1)
                    close = text.find(")" + delim + '"', i)
                    end = n if close == -1 else close + len(delim) + 2
                    line += text.count("\n", i, end)
                    blank(i + 1, end - 1)
                    i = end
                    continue
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == c:
                    break
                j += 1
            end = min(j + 1, n)
            blank(i + 1, end - 1)
            i = end
            continue
        i += 1
    return Stripped(path=path, raw=text, code="".join(out),
                    comments=comments)


def read_stripped(path: str) -> Stripped:
    with open(path, encoding="utf-8", errors="replace") as f:
        return strip_code(path, f.read())


def find_matching(code: str, open_pos: int,
                  open_ch: str = "{", close_ch: str = "}") -> int:
    """Offset just past the brace matching ``code[open_pos]``, or -1."""
    depth = 0
    for i in range(open_pos, len(code)):
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def split_top_level(text: str, sep: str = ",") -> list[str]:
    """Split on ``sep`` at zero paren/brace/bracket depth."""
    parts = []
    depth = 0
    start = 0
    for i, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == sep and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


# ------------------------------------------------------------- self-tests


def run_self_test(tool: str, cases: list[tuple[str, bool, int]]) -> int:
    """Run (description, expect_clean, actual_findings) cases.

    ``actual_findings`` is the finding count the linter produced for
    the fixture; a clean fixture must produce zero, a violating
    fixture at least one.
    """
    failures = 0
    for desc, expect_clean, count in cases:
        ok = (count == 0) if expect_clean else (count > 0)
        status = "ok" if ok else "FAIL"
        want = "clean" if expect_clean else "detected"
        print(f"{tool} --self-test: {desc}: {status} "
              f"({count} finding(s), expected {want})")
        if not ok:
            failures += 1
    if failures:
        print(f"{tool} --self-test: {failures} case(s) FAILED",
              file=sys.stderr)
        return 1
    print(f"{tool} --self-test: all cases passed")
    return 0
