#!/usr/bin/env bash
# Run clang-tidy over the library with the repo's curated .clang-tidy.
#
# Usage: tools/lint/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build dir must contain compile_commands.json (the top-level
# CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS unconditionally, so
# any configured build dir works).  When clang-tidy is not installed
# the script prints a notice and exits 0 so hermetic containers and
# pre-push hooks do not fail spuriously; CI installs the tool and
# gets the real scan.
set -euo pipefail

cd "$(dirname "$0")/../.."

build_dir="build"
if [ "${1-}" != "" ] && [ "${1-}" != "--" ]; then
    build_dir="$1"
    shift
fi
if [ "${1-}" = "--" ]; then
    shift
fi

tidy=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" > /dev/null 2>&1; then
        tidy="$cand"
        break
    fi
done
if [ -z "$tidy" ]; then
    echo "run_tidy.sh: clang-tidy not installed; skipping (CI runs it)"
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_tidy.sh: $build_dir/compile_commands.json not found;" \
         "configure first: cmake -B $build_dir -S ." >&2
    exit 2
fi

# Scan the library sources; headers are covered transitively through
# HeaderFilterRegex in .clang-tidy.
mapfile -t sources < <(find src -name '*.cc' | sort)
echo "run_tidy.sh: $tidy over ${#sources[@]} sources ($build_dir)"

# In-tree analyzer plugin (tools/analyzer): when the build dir has it,
# load it so the pktbuf-* semantic checks ride along with the curated
# .clang-tidy set.  The plugin must match the host clang-tidy's major
# version or dlopen fails; probe with --list-checks before committing.
plugin=""
plugin_candidate=$(find "$build_dir" -name 'libPktbufTidyChecks.so' \
                   -print -quit 2> /dev/null || true)
if [ -n "$plugin_candidate" ]; then
    if "$tidy" --load="$plugin_candidate" --checks='-*,pktbuf-*' \
            --list-checks > /dev/null 2>&1; then
        plugin="$plugin_candidate"
        echo "run_tidy.sh: loading analyzer plugin $plugin"
    else
        echo "run_tidy.sh: $plugin_candidate does not load into $tidy" \
             "(version mismatch?); running without the pktbuf-* checks" >&2
    fi
fi

status=0
runner=""
for cand in run-clang-tidy "${tidy/clang-tidy/run-clang-tidy}"; do
    if command -v "$cand" > /dev/null 2>&1; then
        runner="$cand"
        break
    fi
done
if [ -n "$runner" ] && [ -z "$plugin" ]; then
    "$runner" -clang-tidy-binary "$tidy" -p "$build_dir" -quiet \
        "$@" "${sources[@]}" || status=$?
elif [ -n "$plugin" ]; then
    # Single invocation, not run-clang-tidy's per-file processes:
    # pktbuf-stat-key enforces tree-wide key uniqueness and needs all
    # registration sites in one process to see a cross-file collision.
    # --checks appends to the .clang-tidy Checks list, so the curated
    # set still runs alongside the plugin's.
    "$tidy" --load="$plugin" --checks='pktbuf-*' -p "$build_dir" \
        --quiet "$@" "${sources[@]}" || status=$?
else
    for f in "${sources[@]}"; do
        "$tidy" -p "$build_dir" --quiet "$@" "$f" || status=$?
    done
fi

if [ "$status" -ne 0 ]; then
    echo "run_tidy.sh: clang-tidy reported findings" >&2
    exit 1
fi
echo "run_tidy.sh: clean"
