#!/usr/bin/env python3
"""Unit tests for lintlib's lexer and the regex engine's edge cases.

The linters' credibility rests on strip_code: if a raw string
containing ``//`` were treated as a comment, or a multi-line member
declaration dropped on the floor, a checker would silently pass code
it should flag.  These tests pin the tricky inputs; run directly or
via ``ctest -R lint_lintlib``.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lintlib import Finding, find_matching, split_top_level, strip_code

import check_serialization


class StripCodeRawStrings(unittest.TestCase):
    def test_raw_string_slashes_are_not_comments(self):
        text = 'auto s = R"(// not a comment)";  // trailing note\n'
        st = strip_code("t.cc", text)
        # The fake comment is blanked out of the code view...
        self.assertNotIn("not a comment", st.code)
        # ...and never captured as a comment, while the real one is.
        self.assertIn("trailing note", st.comments.get(1, ""))
        self.assertNotIn("not a comment", st.comments.get(1, ""))

    def test_raw_string_custom_delimiter(self):
        # The inner )" must not close a delimited raw string.
        text = 'auto s = R"ser((inner )" quote))ser";\nint after_;\n'
        st = strip_code("t.cc", text)
        self.assertNotIn("inner", st.code)
        self.assertIn("int after_;", st.code)

    def test_multiline_raw_string_preserves_line_numbers(self):
        text = ('auto q = R"(line one\n'
                '// line two\n'
                'line three)";\n'
                'int x_ = 0;  // ser: config\n')
        st = strip_code("t.cc", text)
        self.assertEqual(st.comments.get(2), None)
        offset = st.code.index("x_")
        self.assertEqual(st.line_of(offset), 4)
        self.assertIn("ser: config", st.comments.get(4, ""))

    def test_escaped_quote_then_comment(self):
        text = 'auto s = "a\\"b";  // ser: derived\n'
        st = strip_code("t.cc", text)
        self.assertIn("ser: derived", st.comments.get(1, ""))
        self.assertNotIn("a\\", st.code)

    def test_char_literal_quote_does_not_open_string(self):
        text = "char c = '\"';  // note\nint y_;\n"
        st = strip_code("t.cc", text)
        self.assertIn("note", st.comments.get(1, ""))
        self.assertIn("int y_;", st.code)

    def test_block_comment_line_tracking(self):
        text = "/* a\n b\n c */\nint z_;  // here\n"
        st = strip_code("t.cc", text)
        self.assertIn(" a", st.comments.get(1, ""))
        self.assertEqual(st.line_of(st.code.index("z_")), 4)
        self.assertIn("here", st.comments.get(4, ""))


class Matching(unittest.TestCase):
    def test_find_matching_nested(self):
        code = "f { a { b } c { d } }"
        open_pos = code.index("{")
        self.assertEqual(find_matching(code, open_pos), len(code))

    def test_find_matching_unbalanced(self):
        self.assertEqual(find_matching("{ { }", 0), -1)

    def test_split_top_level_respects_nesting(self):
        parts = split_top_level("a<x, y>(1, 2), b{3, 4}, c")
        # Angle brackets are not tracked, but parens/braces are; the
        # template's comma sits inside neither, so it splits.  This
        # pins the documented behavior rather than an aspiration.
        self.assertEqual([p.strip() for p in parts],
                         ["a<x", "y>(1, 2)", "b{3, 4}", "c"])


def _regex_findings(text: str) -> list[Finding]:
    with tempfile.TemporaryDirectory(prefix="lintlib_t_") as tmp:
        path = os.path.join(tmp, "fixture.hh")
        with open(path, "w") as f:
            f.write(text)
        return check_serialization.run([path], "regex")


class RegexEngineMembers(unittest.TestCase):
    def test_multiline_member_declaration_found(self):
        text = """
class Multi {
  public:
    void save(ser::Writer &w) const { w.u64(plain_); w.u64(wide_); }
    void load(ser::Reader &r) { plain_ = r.u64(); wide_ = r.u64(); }
  private:
    unsigned plain_ = 0;
    std::map<unsigned,
             unsigned>
        wide_;
};
"""
        self.assertEqual(_regex_findings(text), [])

    def test_multiline_member_forgotten_is_flagged(self):
        text = """
class Multi {
  public:
    void save(ser::Writer &w) const { w.u64(plain_); }
    void load(ser::Reader &r) { plain_ = r.u64(); }
  private:
    unsigned plain_ = 0;
    std::vector<
        unsigned> forgotten_;
};
"""
        findings = _regex_findings(text)
        self.assertEqual(len(findings), 1)
        self.assertIn("forgotten_", findings[0].message)

    def test_mention_inside_string_does_not_count(self):
        # The hook "mentions" the member only inside a string literal;
        # literals are blanked, so this must still be a finding.
        text = """
class Stringy {
  public:
    void save(ser::Writer &w) const { w.u64(a_); log("b_"); }
    void load(ser::Reader &r) { a_ = r.u64(); log("b_"); }
  private:
    unsigned a_ = 0;
    unsigned b_ = 0;
};
"""
        findings = _regex_findings(text)
        self.assertEqual(len(findings), 1)
        self.assertIn("b_", findings[0].message)

    def test_annotation_two_lines_above(self):
        text = """
class Annotated {
  public:
    void save(ser::Writer &w) const { w.u64(a_); }
    void load(ser::Reader &r) { a_ = r.u64(); }
  private:
    unsigned a_ = 0;
    // ser: derived -- rebuilt by the first tick after restore;
    // spans two comment lines before the declaration.
    unsigned scratch_ = 0;
};
"""
        self.assertEqual(_regex_findings(text), [])


if __name__ == "__main__":
    unittest.main()
