#!/usr/bin/env python3
"""Perf-regression gate over pktbuf-sweep-v1 bench artifacts.

Compares freshly generated bench JSON against the committed baselines
in bench/baselines/ and fails on regressions:

* Deterministic fields (grants, drops, SRAM high-water marks, ...)
  must match the baseline exactly -- the simulator is deterministic,
  so any drift is a behavior change that must be reviewed and
  committed as a new baseline, never silently absorbed.  The check
  only runs when both artifacts were produced in the same mode
  (``meta.smoke``), since smoke runs use reduced slot budgets.

* Wall-clock metrics (``slots_per_sec``) are machine-dependent, so
  raw ratios are useless across runners.  The gate computes each
  task's fresh/baseline speed ratio, normalizes by the *median* ratio
  (which calibrates away uniform machine-speed differences), and
  fails any task whose normalized ratio drops below ``1 - tolerance``.
  This catches regressions that hit a minority of configurations; a
  uniform slowdown of the whole suite is indistinguishable from a
  slower machine by design.

``--self-test`` proves the gate can fail: it injects a 20% throughput
regression into a copy of the first FRESH artifact, gates the copy
against the unmodified original (a hermetic comparison -- every speed
ratio is exactly 1.0 except the injected one, so the check is
machine-independent), and exits successfully only if the gate rejects
the injection.

Usage:
    perf_gate.py [--tolerance T] [--self-test] FRESH BASELINE \
                 [FRESH BASELINE ...]

Exit status: 0 all gates passed (or self-test caught the injection),
1 regression detected (or self-test failed to), 2 usage/schema error.
"""

import argparse
import copy
import json
import sys

SCHEMA = "pktbuf-sweep-v1"
# Machine-dependent fields: excluded from the exact comparison,
# slots_per_sec is gated through the normalized band instead.
PERF_FIELDS = {"seconds", "slots_per_sec"}


def fail(msg):
    print(f"perf_gate: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}")
    if "results" not in doc or "tool" not in doc:
        fail(f"{path}: missing results/tool")
    return doc


def median(xs):
    s = sorted(xs)
    n = len(s)
    return s[n // 2] if n % 2 else (s[n // 2 - 1] + s[n // 2]) / 2.0


def compare(fresh, base, tolerance, label):
    """Returns a list of human-readable violations (empty = pass)."""
    bad = []
    if fresh["tool"] != base["tool"]:
        bad.append(f"tool mismatch: {fresh['tool']} vs {base['tool']}")
        return bad
    if fresh.get("failed", 0):
        bad.append(f"fresh run has {fresh['failed']} failed tasks")

    ft = {r["task"]: r for r in fresh["results"]}
    bt = {r["task"]: r for r in base["results"]}
    missing = sorted(set(bt) - set(ft))
    if missing:
        bad.append(f"tasks missing from fresh run: {', '.join(missing)}")

    same_mode = (fresh.get("meta", {}).get("smoke")
                 == base.get("meta", {}).get("smoke"))
    if not same_mode:
        print(f"  [{label}] smoke modes differ; deterministic fields"
              " not compared")

    ratios = {}
    for task in sorted(set(bt) & set(ft)):
        fr, br = ft[task], bt[task]
        if same_mode:
            for key, bval in br.items():
                if key in PERF_FIELDS:
                    continue
                if fr.get(key) != bval:
                    bad.append(f"{task}.{key}: baseline {bval!r},"
                               f" fresh {fr.get(key)!r}"
                               " (deterministic drift: review and"
                               " recommit the baseline if intended)")
        if "slots_per_sec" in br and "slots_per_sec" in fr:
            if br["slots_per_sec"] > 0:
                ratios[task] = fr["slots_per_sec"] / br["slots_per_sec"]

    if ratios:
        m = median(ratios.values())
        if m <= 0:
            bad.append(f"non-positive median speed ratio {m}")
        else:
            for task, r in sorted(ratios.items()):
                norm = r / m
                if norm < 1.0 - tolerance:
                    bad.append(
                        f"{task}: slots_per_sec {norm:.3f}x of the"
                        f" machine-calibrated expectation (raw"
                        f" {r:.3f}x, median {m:.3f}x, tolerance"
                        f" {tolerance:.0%})")
        print(f"  [{label}] {len(ratios)} perf tasks, median speed"
              f" ratio {m:.3f}x")
    return bad


def inject_regression(fresh):
    """Return a deep copy with one task slowed down by 20%."""
    doc = copy.deepcopy(fresh)
    for rec in doc["results"]:
        if "slots_per_sec" in rec:
            rec["slots_per_sec"] *= 0.8
            rec["seconds"] = rec.get("seconds", 0) / 0.8
            return doc, rec["task"], "slots_per_sec"
    # No wall-clock metric in this artifact: perturb the first numeric
    # deterministic field instead, which must trip the exact check.
    rec = doc["results"][0]
    for key, val in rec.items():
        if key in PERF_FIELDS or not isinstance(val, (int, float)):
            continue
        if isinstance(val, bool) or val == 0:
            continue
        rec[key] = type(val)(val * 0.8)
        return doc, rec["task"], key
    fail("self-test: no injectable field found")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed normalized slowdown (default 0.15;"
                         " must be < 0.20 for the self-test)")
    ap.add_argument("--self-test", action="store_true",
                    help="inject a 20%% regression and require the"
                         " gate to catch it")
    ap.add_argument("files", nargs="+",
                    help="FRESH BASELINE pairs")
    args = ap.parse_args()
    if len(args.files) % 2:
        fail("files must come in FRESH BASELINE pairs")
    if not 0 < args.tolerance < 0.20:
        fail("tolerance must be in (0, 0.20) so a 20% regression"
             " is always caught")

    pairs = [(args.files[i], args.files[i + 1])
             for i in range(0, len(args.files), 2)]

    if args.self_test:
        # Hermetic: gate an injected copy against the pristine fresh
        # artifact itself, so machine speed cancels out exactly.
        fresh = load(pairs[0][0])
        doc, task, field = inject_regression(fresh)
        bad = compare(doc, fresh, args.tolerance, "self-test")
        if bad:
            print(f"self-test PASSED: injected 20% regression in"
                  f" {task}.{field} was rejected:")
            print(f"  {bad[0]}")
            sys.exit(0)
        print(f"self-test FAILED: injected 20% regression in"
              f" {task}.{field} slipped through", file=sys.stderr)
        sys.exit(1)

    failures = 0
    for fresh_path, base_path in pairs:
        label = f"{fresh_path} vs {base_path}"
        print(f"gate: {label}")
        bad = compare(load(fresh_path), load(base_path),
                      args.tolerance, label)
        for b in bad:
            print(f"  FAIL: {b}")
        failures += len(bad)
    if failures:
        print(f"perf_gate: {failures} violation(s)", file=sys.stderr)
        sys.exit(1)
    print("perf_gate: all gates passed")


if __name__ == "__main__":
    main()
